//! Heavy-tailed samplers for backbone traffic synthesis.
//!
//! Backbone flow populations are famously skewed: endpoint and port
//! popularity follow Zipf-like laws, and flow sizes are heavy-tailed
//! (Pareto). These samplers drive the background generator so the
//! synthetic trace exercises the same distributional machinery — hash
//! collisions on popular values, frequent-item false positives, deep
//! histogram tails — the paper's SWITCH traces did.

use rand::Rng;

/// A Zipf(α) sampler over ranks `0..n` using a precomputed CDF.
///
/// Rank 0 is the most popular element. Sampling is O(log n) by binary
/// search on the CDF.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a Zipf sampler with `n` ranks and exponent `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `alpha` is negative/non-finite.
    #[must_use]
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            alpha.is_finite() && alpha >= 0.0,
            "Zipf exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += (rank as f64).powf(-alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the rank space is empty (never true by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// A bounded Pareto sampler for flow sizes (packets per flow).
#[derive(Debug, Clone, Copy)]
pub struct BoundedPareto {
    x_min: f64,
    x_max: f64,
    alpha: f64,
}

impl BoundedPareto {
    /// Pareto with scale `x_min`, truncation `x_max`, shape `alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < x_min < x_max` and `alpha > 0`.
    #[must_use]
    pub fn new(x_min: f64, x_max: f64, alpha: f64) -> Self {
        assert!(x_min > 0.0 && x_max > x_min, "need 0 < x_min < x_max");
        assert!(alpha > 0.0, "shape must be positive");
        BoundedPareto {
            x_min,
            x_max,
            alpha,
        }
    }

    /// Draw a sample in `[x_min, x_max]` (inverse-CDF of the truncated
    /// Pareto).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random();
        let lo = self.x_min.powf(-self.alpha);
        let hi = self.x_max.powf(-self.alpha);
        (lo - u * (lo - hi)).powf(-1.0 / self.alpha)
    }

    /// Draw an integer sample (round down, clamped to `x_min.ceil()`).
    pub fn sample_int<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        (self.sample(rng) as u32).max(self.x_min.ceil() as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_rank_zero_is_most_popular() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0u32; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[50]);
        // Rough Zipf(1) check: rank 0 ≈ 10× rank 9 frequency (harmonic).
        let ratio = f64::from(counts[0]) / f64::from(counts[9].max(1));
        assert!(ratio > 4.0, "rank0/rank9 ratio {ratio}");
    }

    #[test]
    fn zipf_alpha_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0u32; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let dev = (f64::from(c) - 5000.0).abs() / 5000.0;
            assert!(dev < 0.15, "uniform deviation {dev}");
        }
    }

    #[test]
    fn zipf_samples_stay_in_range() {
        let z = Zipf::new(7, 1.3);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn zipf_single_rank() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn pareto_respects_bounds() {
        let p = BoundedPareto::new(1.0, 10_000.0, 1.2);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..5000 {
            let x = p.sample(&mut rng);
            assert!((1.0..=10_000.0).contains(&x), "sample {x} out of bounds");
        }
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        let p = BoundedPareto::new(1.0, 100_000.0, 1.1);
        let mut rng = StdRng::seed_from_u64(6);
        let samples: Vec<f64> = (0..20_000).map(|_| p.sample(&mut rng)).collect();
        let small = samples.iter().filter(|&&x| x < 2.0).count() as f64 / samples.len() as f64;
        let large = samples.iter().filter(|&&x| x > 100.0).count();
        assert!(small > 0.4, "mass near x_min should dominate: {small}");
        assert!(large > 10, "the tail must produce elephants: {large}");
    }

    #[test]
    fn pareto_int_samples_floor_at_xmin() {
        let p = BoundedPareto::new(1.0, 100.0, 2.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(p.sample_int(&mut rng) >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "0 < x_min < x_max")]
    fn pareto_bad_bounds_panic() {
        let _ = BoundedPareto::new(5.0, 2.0, 1.0);
    }
}
