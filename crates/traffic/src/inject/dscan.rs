//! Distributed (botnet) scan injector: *many* sources probing one target
//! subnet on one port.
//!
//! This is the §III-D hard case: no single source or destination IP is
//! frequent, so canonical item-set mining can only pin the destination
//! port and flow length — the *network range* under attack is invisible
//! without the prefix dimensions.

use std::net::Ipv4Addr;

use anomex_netflow::{FlowRecord, Protocol, TcpFlags};
use rand::rngs::StdRng;
use rand::Rng;

use super::{ephemeral_port, start_in};

/// Generate `n` probes from `attackers` distinct bots into the /16 subnet
/// of `subnet` on `port`.
pub fn generate(
    subnet: Ipv4Addr,
    port: u16,
    attackers: u32,
    n: u64,
    begin_ms: u64,
    interval_ms: u64,
    rng: &mut StdRng,
) -> Vec<FlowRecord> {
    assert!(
        attackers > 0,
        "distributed scan needs at least one attacker"
    );
    let net = u32::from(subnet) & 0xFFFF_0000;
    let bot_base: u32 = 0x7300_0000 ^ (u32::from(port) << 10);
    (0..n)
        .map(|_| {
            let bot = bot_base.wrapping_add(rng.random_range(0..attackers).wrapping_mul(1361));
            // Each probe hits a random host inside the target subnet.
            let dst = Ipv4Addr::from(net | (rng.random::<u32>() & 0xFFFF));
            let start = start_in(begin_ms, interval_ms, rng);
            FlowRecord::new(
                start,
                Ipv4Addr::from(bot),
                dst,
                ephemeral_port(rng),
                port,
                Protocol::Tcp,
            )
            .with_volume(1, 40)
            .with_flags(TcpFlags::syn_only())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn probes_stay_in_the_target_subnet() {
        let subnet = Ipv4Addr::new(10, 16, 0, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let flows = generate(subnet, 445, 500, 2000, 0, 60_000, &mut rng);
        assert!(flows
            .iter()
            .all(|f| u32::from(f.dst_ip) & 0xFFFF_0000 == u32::from(subnet) & 0xFFFF_0000));
        assert!(flows.iter().all(|f| f.dst_port == 445));
    }

    #[test]
    fn no_single_endpoint_dominates() {
        let mut rng = StdRng::seed_from_u64(2);
        let flows = generate(
            Ipv4Addr::new(10, 16, 0, 0),
            445,
            800,
            4000,
            0,
            60_000,
            &mut rng,
        );
        let mut src_counts = std::collections::HashMap::new();
        let mut dst_counts = std::collections::HashMap::new();
        for f in &flows {
            *src_counts.entry(f.src_ip).or_insert(0u32) += 1;
            *dst_counts.entry(f.dst_ip).or_insert(0u32) += 1;
        }
        let max_src = src_counts.values().max().copied().unwrap();
        let max_dst = dst_counts.values().max().copied().unwrap();
        // The heaviest endpoint carries well under 1% of the probes —
        // canonical mining cannot pin this anomaly to an address.
        assert!(max_src < 40, "heaviest source {max_src}");
        assert!(max_dst < 40, "heaviest destination {max_dst}");
    }

    #[test]
    #[should_panic(expected = "at least one attacker")]
    fn zero_attackers_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = generate(Ipv4Addr::new(10, 16, 0, 0), 445, 0, 10, 0, 60_000, &mut rng);
    }
}
