//! Unknown-class injector: an intense, unattributable exchange between two
//! hosts over churning ports — the kind of event the paper's analysts
//! could not classify but that still disrupts feature distributions.

use std::net::Ipv4Addr;

use anomex_netflow::{FlowRecord, Protocol};
use rand::rngs::StdRng;
use rand::Rng;

use super::start_in;

/// Generate `n` flows of an odd bidirectional exchange between `a` and `b`.
pub fn generate(
    a: Ipv4Addr,
    b: Ipv4Addr,
    n: u64,
    begin_ms: u64,
    interval_ms: u64,
    rng: &mut StdRng,
) -> Vec<FlowRecord> {
    (0..n)
        .map(|i| {
            let start = start_in(begin_ms, interval_ms, rng);
            let (src, dst) = if i % 2 == 0 { (a, b) } else { (b, a) };
            // Random high ports on both sides, fixed tiny payload — looks
            // like a custom UDP protocol or tunneling.
            FlowRecord::new(
                start,
                src,
                dst,
                rng.random_range(20_000..60_000),
                rng.random_range(20_000..60_000),
                Protocol::Udp,
            )
            .with_volume(2, 2 * 128)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn exchange_stays_between_the_two_hosts() {
        let a = Ipv4Addr::new(10, 9, 9, 9);
        let b = Ipv4Addr::new(185, 2, 2, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let flows = generate(a, b, 600, 0, 60_000, &mut rng);
        assert!(flows
            .iter()
            .all(|f| (f.src_ip == a && f.dst_ip == b) || (f.src_ip == b && f.dst_ip == a)));
        let forward = flows.iter().filter(|f| f.src_ip == a).count();
        assert_eq!(forward, 300, "both directions present");
    }

    #[test]
    fn ports_churn() {
        let mut rng = StdRng::seed_from_u64(2);
        let flows = generate(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            400,
            0,
            60_000,
            &mut rng,
        );
        let ports: std::collections::BTreeSet<u16> = flows.iter().map(|f| f.dst_port).collect();
        assert!(ports.len() > 350);
    }
}
