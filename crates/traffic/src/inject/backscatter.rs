//! Backscatter injector.
//!
//! When a third party is hit by a spoofed-source DoS attack, its replies
//! (SYN-ACK/RST) go to the spoofed addresses — some of which land in the
//! monitored network. The paper identified such traffic on destination
//! port 9022: "each flow has a different source IP address and a random
//! source port number".

use std::net::Ipv4Addr;

use anomex_netflow::{FlowRecord, Protocol, TcpFlags};
use rand::rngs::StdRng;
use rand::Rng;

use super::{ephemeral_port, start_in};

/// Generate `n` backscatter flows converging on destination `port`.
pub fn generate(
    port: u16,
    n: u64,
    begin_ms: u64,
    interval_ms: u64,
    rng: &mut StdRng,
) -> Vec<FlowRecord> {
    (0..n)
        .map(|_| {
            // Every flow from a different (random remote) source.
            let src = Ipv4Addr::from(rng.random::<u32>());
            // Scattered across the local address space.
            let dst = Ipv4Addr::from(0x0a00_0000 | (rng.random::<u32>() & 0x001F_FFFF));
            let start = start_in(begin_ms, interval_ms, rng);
            FlowRecord::new(start, src, dst, ephemeral_port(rng), port, Protocol::Tcp)
                .with_volume(1, 40)
                .with_flags(TcpFlags::syn_ack())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fixed_dst_port_random_sources() {
        let mut rng = StdRng::seed_from_u64(1);
        let flows = generate(9022, 2000, 0, 60_000, &mut rng);
        assert!(flows.iter().all(|f| f.dst_port == 9022));
        let distinct_srcs: std::collections::BTreeSet<Ipv4Addr> =
            flows.iter().map(|f| f.src_ip).collect();
        // "each flow has a different source IP": collisions are rare.
        assert!(
            distinct_srcs.len() > 1990,
            "only {} distinct sources",
            distinct_srcs.len()
        );
    }

    #[test]
    fn single_packet_syn_ack_replies() {
        let mut rng = StdRng::seed_from_u64(2);
        let flows = generate(9022, 100, 0, 60_000, &mut rng);
        assert!(flows
            .iter()
            .all(|f| f.packets == 1 && f.tcp_flags == TcpFlags::syn_ack()));
    }
}
