//! Scanning injector: one source probing many destinations on a fixed
//! port with identical minimal flows — "distributed scanning activity
//! typically has a common destination port and often a fixed flow length
//! that will appear as a frequent item-set" (paper §III-D).

use std::net::Ipv4Addr;

use anomex_netflow::{FlowRecord, Protocol, TcpFlags};
use rand::rngs::StdRng;
use rand::Rng;

use super::{ephemeral_port, start_in};

/// Generate `n` scan probes from `scanner` across the local address space
/// on `port`.
pub fn generate(
    scanner: Ipv4Addr,
    port: u16,
    n: u64,
    begin_ms: u64,
    interval_ms: u64,
    rng: &mut StdRng,
) -> Vec<FlowRecord> {
    // Sequential sweep with a random starting offset — the classic
    // horizontal-scan footprint.
    let sweep_base: u32 = 0x0a00_0000 | (rng.random::<u32>() & 0x001F_0000);
    (0..n)
        .map(|i| {
            let dst = Ipv4Addr::from(sweep_base.wrapping_add(i as u32));
            let start = start_in(begin_ms, interval_ms, rng);
            // Fixed flow length: 1 SYN packet, 40 bytes.
            FlowRecord::new(
                start,
                scanner,
                dst,
                ephemeral_port(rng),
                port,
                Protocol::Tcp,
            )
            .with_volume(1, 40)
            .with_flags(TcpFlags::syn_only())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn one_source_many_destinations_fixed_port() {
        let scanner = Ipv4Addr::new(66, 6, 6, 6);
        let mut rng = StdRng::seed_from_u64(1);
        let flows = generate(scanner, 445, 3000, 0, 60_000, &mut rng);
        assert!(flows
            .iter()
            .all(|f| f.src_ip == scanner && f.dst_port == 445));
        let dsts: std::collections::BTreeSet<Ipv4Addr> = flows.iter().map(|f| f.dst_ip).collect();
        assert_eq!(dsts.len(), 3000, "every probe hits a distinct destination");
    }

    #[test]
    fn fixed_flow_length_signature() {
        let mut rng = StdRng::seed_from_u64(2);
        let flows = generate(Ipv4Addr::new(6, 6, 6, 6), 22, 500, 0, 60_000, &mut rng);
        assert!(flows.iter().all(|f| f.packets == 1 && f.bytes == 40));
    }
}
