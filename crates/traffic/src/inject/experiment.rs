//! Network-experiment injector: the paper traced one anomaly class to "a
//! PlanetLab node running in our university" — a measurement host emitting
//! bulk probe traffic with tool-fixed ports.

use std::net::Ipv4Addr;

use anomex_netflow::{FlowRecord, Protocol};
use rand::rngs::StdRng;
use rand::Rng;

use super::start_in;

/// Generate `n` probe flows from the experiment `node` with fixed
/// source/destination ports toward many remote hosts.
pub fn generate(
    node: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    n: u64,
    begin_ms: u64,
    interval_ms: u64,
    rng: &mut StdRng,
) -> Vec<FlowRecord> {
    (0..n)
        .map(|_| {
            let dst = Ipv4Addr::from(rng.random::<u32>());
            let start = start_in(begin_ms, interval_ms, rng);
            // Measurement probes: fixed small UDP payload.
            FlowRecord::new(start, node, dst, src_port, dst_port, Protocol::Udp)
                .with_volume(3, 3 * 64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fixed_endpoint_ports_many_destinations() {
        let node = Ipv4Addr::new(10, 2, 3, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let flows = generate(node, 33434, 33435, 800, 0, 60_000, &mut rng);
        assert!(flows
            .iter()
            .all(|f| f.src_ip == node && f.src_port == 33434 && f.dst_port == 33435));
        let dsts: std::collections::BTreeSet<Ipv4Addr> = flows.iter().map(|f| f.dst_ip).collect();
        assert!(dsts.len() > 700);
    }

    #[test]
    fn probes_are_udp_with_fixed_size() {
        let mut rng = StdRng::seed_from_u64(2);
        let flows = generate(
            Ipv4Addr::new(10, 2, 3, 4),
            33434,
            33435,
            100,
            0,
            60_000,
            &mut rng,
        );
        assert!(flows
            .iter()
            .all(|f| f.proto == Protocol::Udp && f.packets == 3));
    }
}
