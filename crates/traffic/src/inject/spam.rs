//! Spam injector: a botnet delivering bulk mail to the monitored
//! network's SMTP servers (destination port 25).

use std::net::Ipv4Addr;

use anomex_netflow::{FlowRecord, Protocol, TcpFlags};
use rand::rngs::StdRng;
use rand::Rng;

use super::{ephemeral_port, start_in};

/// SMTP destination port.
pub const SMTP_PORT: u16 = 25;

/// Generate `n` spam delivery flows from `senders` bots to the given mail
/// servers.
pub fn generate(
    servers: &[Ipv4Addr],
    senders: u32,
    n: u64,
    begin_ms: u64,
    interval_ms: u64,
    rng: &mut StdRng,
) -> Vec<FlowRecord> {
    assert!(!servers.is_empty(), "spam needs at least one target server");
    assert!(senders > 0, "spam needs at least one sender");
    let base: u32 = 0x5b00_0000;
    (0..n)
        .map(|_| {
            let bot = base.wrapping_add(rng.random_range(0..senders).wrapping_mul(2003));
            let server = servers[rng.random_range(0..servers.len())];
            let start = start_in(begin_ms, interval_ms, rng);
            // A mail delivery: handshake + DATA, a few kB.
            let packets = rng.random_range(8..25u32);
            let bytes = packets * rng.random_range(300..900u32);
            FlowRecord::new(
                start,
                Ipv4Addr::from(bot),
                server,
                ephemeral_port(rng),
                SMTP_PORT,
                Protocol::Tcp,
            )
            .with_volume(packets, bytes)
            .with_end(start + u64::from(rng.random_range(500..5000u32)))
            .with_flags(TcpFlags(
                TcpFlags::SYN | TcpFlags::ACK | TcpFlags::PSH | TcpFlags::FIN,
            ))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn all_flows_target_port_25_on_given_servers() {
        let servers = vec![Ipv4Addr::new(10, 0, 0, 25), Ipv4Addr::new(10, 0, 1, 25)];
        let mut rng = StdRng::seed_from_u64(1);
        let flows = generate(&servers, 60, 1000, 0, 60_000, &mut rng);
        assert!(flows.iter().all(|f| f.dst_port == SMTP_PORT));
        assert!(flows.iter().all(|f| servers.contains(&f.dst_ip)));
    }

    #[test]
    fn mail_flows_are_bigger_than_probes() {
        let servers = vec![Ipv4Addr::new(10, 0, 0, 25)];
        let mut rng = StdRng::seed_from_u64(2);
        let flows = generate(&servers, 10, 200, 0, 60_000, &mut rng);
        assert!(flows.iter().all(|f| f.packets >= 8 && f.bytes >= 2400));
    }

    #[test]
    #[should_panic(expected = "at least one target server")]
    fn no_servers_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = generate(&[], 10, 10, 0, 60_000, &mut rng);
    }
}
