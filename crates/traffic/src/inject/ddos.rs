//! DDoS injector: *many* distinct sources attacking one victim service.
//! Distinguished from Flooding by the size of the source set (paper:
//! "'Flooding' differs from a standard 'DDoS' in that it involves a small
//! number of sources").

use std::net::Ipv4Addr;

use anomex_netflow::{FlowRecord, Protocol, TcpFlags};
use rand::rngs::StdRng;
use rand::Rng;

use super::{ephemeral_port, start_in};

/// Generate `n` attack flows from `attackers` distinct bots toward
/// `victim:port`.
pub fn generate(
    victim: Ipv4Addr,
    port: u16,
    attackers: u32,
    n: u64,
    begin_ms: u64,
    interval_ms: u64,
    rng: &mut StdRng,
) -> Vec<FlowRecord> {
    assert!(attackers > 0, "DDoS needs at least one attacker");
    // A stable bot army: derive attacker addresses from a base so the same
    // event keeps the same bots across intervals (realistic for botnets).
    let base: u32 = 0x2d00_0000 ^ (u32::from(port) << 8);
    (0..n)
        .map(|_| {
            let bot = base.wrapping_add(rng.random_range(0..attackers).wrapping_mul(977));
            let start = start_in(begin_ms, interval_ms, rng);
            let packets = rng.random_range(1..=4);
            FlowRecord::new(
                start,
                Ipv4Addr::from(bot),
                victim,
                ephemeral_port(rng),
                port,
                Protocol::Tcp,
            )
            .with_volume(packets, packets * 52)
            .with_flags(TcpFlags::syn_only())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn many_sources_one_victim() {
        let victim = Ipv4Addr::new(10, 0, 0, 80);
        let mut rng = StdRng::seed_from_u64(1);
        let flows = generate(victim, 80, 800, 4000, 0, 60_000, &mut rng);
        assert!(flows.iter().all(|f| f.dst_ip == victim && f.dst_port == 80));
        let sources: std::collections::BTreeSet<Ipv4Addr> =
            flows.iter().map(|f| f.src_ip).collect();
        assert!(
            sources.len() > 500,
            "expected a large bot army, got {}",
            sources.len()
        );
    }

    #[test]
    fn bot_army_is_stable_across_intervals() {
        let victim = Ipv4Addr::new(10, 0, 0, 80);
        let mut rng1 = StdRng::seed_from_u64(1);
        let mut rng2 = StdRng::seed_from_u64(99);
        let a: std::collections::BTreeSet<Ipv4Addr> =
            generate(victim, 80, 50, 2000, 0, 60_000, &mut rng1)
                .iter()
                .map(|f| f.src_ip)
                .collect();
        let b: std::collections::BTreeSet<Ipv4Addr> =
            generate(victim, 80, 50, 2000, 60_000, 60_000, &mut rng2)
                .iter()
                .map(|f| f.src_ip)
                .collect();
        assert_eq!(a, b, "same bots attack in every interval");
    }

    #[test]
    #[should_panic(expected = "at least one attacker")]
    fn zero_attackers_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = generate(Ipv4Addr::new(10, 0, 0, 1), 80, 0, 10, 0, 60_000, &mut rng);
    }
}
