//! Per-class anomaly injectors.
//!
//! Each injector turns an [`crate::anomaly::EventSpec`] into the
//! flow-level footprint the paper describes for that class: flooding is a
//! few sources hammering one service; backscatter converges on a port with
//! random sources; scans fan one source across destinations; and so on.
//! All injectors are deterministic given the caller's RNG.

pub mod backscatter;
pub mod ddos;
pub mod dscan;
pub mod experiment;
pub mod flooding;
pub mod scan;
pub mod spam;
pub mod unknown;

use anomex_netflow::FlowRecord;
use rand::rngs::StdRng;
use rand::Rng;

use crate::anomaly::{EventParams, EventSpec};

/// Generate the flows an event injects into one interval.
///
/// `begin_ms..begin_ms + interval_ms` is the measurement window. Real
/// attacks do not align to measurement grids: the event's flows are
/// concentrated in a random contiguous **burst** covering 35–100 % of the
/// window (drawn from `rng`, so deterministic per event/interval). Returns
/// an empty vector when the event is not active in `interval`.
pub fn inject(
    spec: &EventSpec,
    interval: u64,
    begin_ms: u64,
    interval_ms: u64,
    rng: &mut StdRng,
) -> Vec<FlowRecord> {
    if !spec.active_in(interval) {
        return Vec::new();
    }
    // Burst placement: a contiguous sub-span of the window.
    let burst_frac = rng.random_range(0.35..=1.0);
    let burst_ms = ((interval_ms as f64) * burst_frac) as u64;
    let burst_ms = burst_ms.max(1);
    let offset = rng.random_range(0..=interval_ms - burst_ms);
    let begin_ms = begin_ms + offset;
    let interval_ms = burst_ms;
    let n = spec.flows_per_interval;
    match &spec.params {
        EventParams::Flooding {
            sources,
            victim,
            port,
        } => flooding::generate(sources, *victim, *port, n, begin_ms, interval_ms, rng),
        EventParams::Backscatter { port } => {
            backscatter::generate(*port, n, begin_ms, interval_ms, rng)
        }
        EventParams::NetworkExperiment {
            node,
            src_port,
            dst_port,
        } => experiment::generate(*node, *src_port, *dst_port, n, begin_ms, interval_ms, rng),
        EventParams::DDoS {
            victim,
            port,
            attackers,
        } => ddos::generate(*victim, *port, *attackers, n, begin_ms, interval_ms, rng),
        EventParams::Scanning { scanner, port } => {
            scan::generate(*scanner, *port, n, begin_ms, interval_ms, rng)
        }
        EventParams::DistributedScan {
            subnet,
            port,
            attackers,
        } => dscan::generate(*subnet, *port, *attackers, n, begin_ms, interval_ms, rng),
        EventParams::Spam { servers, senders } => {
            spam::generate(servers, *senders, n, begin_ms, interval_ms, rng)
        }
        EventParams::Unknown { a, b } => unknown::generate(*a, *b, n, begin_ms, interval_ms, rng),
    }
}

/// Uniform flow start time within the interval window.
pub(crate) fn start_in<R: Rng + ?Sized>(begin_ms: u64, interval_ms: u64, rng: &mut R) -> u64 {
    begin_ms + rng.random_range(0..interval_ms)
}

/// A random ephemeral source port (1024–65535).
pub(crate) fn ephemeral_port<R: Rng + ?Sized>(rng: &mut R) -> u16 {
    rng.random_range(1024..=u16::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anomaly::EventId;
    use rand::SeedableRng;
    use std::net::Ipv4Addr;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn spec(params: EventParams) -> EventSpec {
        EventSpec {
            id: EventId(0),
            start_interval: 5,
            duration: 2,
            flows_per_interval: 500,
            params,
        }
    }

    #[test]
    fn inactive_interval_injects_nothing() {
        let s = spec(EventParams::Backscatter { port: 9022 });
        assert!(inject(&s, 4, 0, 60_000, &mut rng()).is_empty());
        assert!(inject(&s, 7, 0, 60_000, &mut rng()).is_empty());
    }

    #[test]
    fn active_interval_injects_requested_count() {
        let s = spec(EventParams::Scanning {
            scanner: Ipv4Addr::new(7, 7, 7, 7),
            port: 22,
        });
        let flows = inject(&s, 5, 300_000, 60_000, &mut rng());
        assert_eq!(flows.len(), 500);
        for f in &flows {
            assert!(f.start_ms >= 300_000 && f.start_ms < 360_000);
        }
    }

    #[test]
    fn injection_is_deterministic_per_rng_seed() {
        let s = spec(EventParams::DDoS {
            victim: Ipv4Addr::new(10, 0, 0, 9),
            port: 80,
            attackers: 100,
        });
        let a = inject(&s, 5, 0, 60_000, &mut rng());
        let b = inject(&s, 5, 0, 60_000, &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    fn every_class_injects_flows_matching_its_signature() {
        let all = [
            EventParams::Flooding {
                sources: vec![Ipv4Addr::new(9, 9, 9, 9), Ipv4Addr::new(9, 9, 9, 10)],
                victim: Ipv4Addr::new(10, 0, 0, 5),
                port: 7000,
            },
            EventParams::Backscatter { port: 9022 },
            EventParams::NetworkExperiment {
                node: Ipv4Addr::new(10, 1, 1, 1),
                src_port: 33434,
                dst_port: 33435,
            },
            EventParams::DDoS {
                victim: Ipv4Addr::new(10, 0, 0, 6),
                port: 80,
                attackers: 300,
            },
            EventParams::Scanning {
                scanner: Ipv4Addr::new(7, 7, 7, 7),
                port: 445,
            },
            EventParams::Spam {
                servers: vec![Ipv4Addr::new(10, 0, 0, 25)],
                senders: 30,
            },
            EventParams::Unknown {
                a: Ipv4Addr::new(1, 1, 1, 1),
                b: Ipv4Addr::new(2, 2, 2, 2),
            },
        ];
        for params in all {
            let s = spec(params);
            let flows = inject(&s, 5, 0, 60_000, &mut rng());
            assert_eq!(flows.len(), 500, "{}", s.class());
            // At least one signature value must hold for most of the
            // injected flows (anomalies have common characteristics — the
            // paper's core assumption).
            let sig = s.signature_values();
            let matching = flows
                .iter()
                .filter(|f| sig.iter().any(|v| v.matches(f)))
                .count();
            assert!(
                matching as f64 >= 0.99 * flows.len() as f64,
                "{}: only {matching}/{} flows match the signature",
                s.class(),
                flows.len()
            );
            // All flows fit the feature-value width contract (ports < 2^16
            // etc.) — implicitly checked by FlowRecord's types.
        }
    }
}
