//! Flooding injector: a *few* compromised hosts hammering one victim
//! host/port (the paper's §II-B example: "several compromised hosts were
//! flooding the victim host E on destination port 7000").

use std::net::Ipv4Addr;

use anomex_netflow::{FlowRecord, Protocol, TcpFlags};
use rand::rngs::StdRng;
use rand::Rng;

use super::{ephemeral_port, start_in};

/// Generate `n` flood flows from the given sources toward `victim:port`.
pub fn generate(
    sources: &[Ipv4Addr],
    victim: Ipv4Addr,
    port: u16,
    n: u64,
    begin_ms: u64,
    interval_ms: u64,
    rng: &mut StdRng,
) -> Vec<FlowRecord> {
    assert!(!sources.is_empty(), "flooding needs at least one source");
    (0..n)
        .map(|_| {
            let src = sources[rng.random_range(0..sources.len())];
            let start = start_in(begin_ms, interval_ms, rng);
            // Flood flows are short bursts of small packets. Packet counts
            // and sizes vary flow to flow (scripted floods retransmit and
            // fragment), so no single (#packets, #bytes) pair dominates —
            // what stays frequent is the (source, victim, port) triple.
            let packets = rng.random_range(1..=8u32);
            let bytes = packets * rng.random_range(40..=60u32);
            FlowRecord::new(start, src, victim, ephemeral_port(rng), port, Protocol::Tcp)
                .with_volume(packets, bytes)
                .with_end(start + u64::from(rng.random_range(0..200u32)))
                .with_flags(TcpFlags::syn_only())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn all_flows_hit_victim_and_port() {
        let sources = vec![Ipv4Addr::new(9, 1, 1, 1), Ipv4Addr::new(9, 1, 1, 2)];
        let victim = Ipv4Addr::new(10, 0, 0, 5);
        let mut rng = StdRng::seed_from_u64(1);
        let flows = generate(&sources, victim, 7000, 1000, 0, 60_000, &mut rng);
        assert_eq!(flows.len(), 1000);
        assert!(flows
            .iter()
            .all(|f| f.dst_ip == victim && f.dst_port == 7000));
        assert!(flows.iter().all(|f| sources.contains(&f.src_ip)));
    }

    #[test]
    fn uses_few_sources_many_src_ports() {
        let sources = vec![Ipv4Addr::new(9, 1, 1, 1)];
        let mut rng = StdRng::seed_from_u64(2);
        let flows = generate(
            &sources,
            Ipv4Addr::new(10, 0, 0, 5),
            7000,
            500,
            0,
            60_000,
            &mut rng,
        );
        let distinct_src_ports: std::collections::BTreeSet<u16> =
            flows.iter().map(|f| f.src_port).collect();
        assert!(distinct_src_ports.len() > 300, "source ports should churn");
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn empty_sources_panic() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = generate(
            &[],
            Ipv4Addr::new(10, 0, 0, 5),
            7000,
            10,
            0,
            60_000,
            &mut rng,
        );
    }
}
