//! Multi-exporter scenarios: one workload observed over several links.
//!
//! The paper's traces come from **multiple SWITCH border routers**, each
//! exporting its own link's traffic into one collector. This module
//! synthesizes that setting: a [`MultiSourceScenario`] is a set of links,
//! each with its own background volume (`rate`), its own exporter clock
//! offset (`skew_ms`), and its own share of the planted anomalies —
//! events hit a *subset* of links, exactly as a scan entering through one
//! border router does.
//!
//! Each link is an ordinary [`Scenario`] (independent Zipf/Pareto
//! background, deterministic per `(seed, link, interval)`), so per-link
//! traffic streams in O(interval) memory;
//! [`generate`](MultiSourceScenario::generate) returns flows timestamped
//! in the **link-local clock** (grid time plus the link's skew), matching what
//! that exporter would put on the wire. Feed them to a merge layer with
//! [`source_specs`](MultiSourceScenario::source_specs) and the skews
//! cancel back onto one shared interval grid.

use anomex_netflow::{SourceId, SourceSpec};

use crate::labeled::LabeledInterval;
use crate::scenario::Scenario;

/// One link (exporter) of a multi-source scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Background volume multiplier relative to the base scenario
    /// (1.0 = the base link rate). Must be positive.
    pub rate: f64,
    /// Exporter clock offset: this link's flows are timestamped
    /// `skew_ms` later than grid time, as if the router's clock ran
    /// ahead. The link's [`SourceSpec::origin_ms`] equals this skew.
    pub skew_ms: u64,
    /// Whether the planted anomaly events traverse this link.
    pub carries_anomalies: bool,
}

impl Default for LinkConfig {
    /// A full-rate, skew-free link that carries anomalies.
    fn default() -> Self {
        LinkConfig {
            rate: 1.0,
            skew_ms: 0,
            carries_anomalies: true,
        }
    }
}

/// A reproducible multi-exporter workload: one [`Scenario`] per link,
/// sharing an interval grid but differing in volume, clock skew, and
/// anomaly exposure.
#[derive(Debug, Clone)]
pub struct MultiSourceScenario {
    links: Vec<LinkConfig>,
    scenarios: Vec<Scenario>,
}

impl MultiSourceScenario {
    /// Build a multi-link workload over the fast test scenario
    /// ([`Scenario::small`]): each link gets an independent background
    /// (derived from `seed` and the link index), volume scaled by its
    /// `rate`, and the small scenario's three planted events only when
    /// it `carries_anomalies`.
    ///
    /// # Panics
    ///
    /// Panics when `links` is empty or any rate is not positive.
    #[must_use]
    pub fn small(seed: u64, links: Vec<LinkConfig>) -> Self {
        assert!(!links.is_empty(), "a multi-source scenario needs links");
        let scenarios = links
            .iter()
            .enumerate()
            .map(|(i, link)| {
                assert!(link.rate > 0.0, "link {i} rate must be positive");
                // Each link sees different traffic: its own seed, hence
                // its own endpoint mix, drift, and event details.
                let base = Scenario::small(seed ^ (0x5EED_0001_u64.wrapping_mul(i as u64 + 1)));
                let mut config = base.config().clone();
                config.background.flows_per_interval =
                    ((config.background.flows_per_interval as f64 * link.rate) as u64).max(1);
                let events = if link.carries_anomalies {
                    base.events().to_vec()
                } else {
                    Vec::new()
                };
                Scenario::new(config, events)
            })
            .collect();
        MultiSourceScenario { links, scenarios }
    }

    /// A ready-made `n`-link preset: link 0 at full rate, skew-free,
    /// carrying the anomalies; each further link at a lower rate with a
    /// distinct sub-interval clock skew, anomaly-free — the common
    /// "attack enters through one border router" shape.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    #[must_use]
    pub fn uniform(seed: u64, n: usize) -> Self {
        assert!(n > 0, "need at least one link");
        let links = (0..n)
            .map(|i| LinkConfig {
                rate: 1.0 / (1.0 + 0.5 * i as f64),
                skew_ms: (i as u64) * 437,
                carries_anomalies: i == 0,
            })
            .collect();
        Self::small(seed, links)
    }

    /// The link configurations, in source order.
    #[must_use]
    pub fn links(&self) -> &[LinkConfig] {
        &self.links
    }

    /// Number of links (sources).
    #[must_use]
    pub fn source_count(&self) -> usize {
        self.links.len()
    }

    /// The merge-layer bindings: source `i` with origin equal to its
    /// clock skew, so every link lands on the same grid.
    #[must_use]
    pub fn source_specs(&self) -> Vec<SourceSpec> {
        self.links
            .iter()
            .enumerate()
            .map(|(i, link)| SourceSpec::new(SourceId(i as u32), link.skew_ms))
            .collect()
    }

    /// Number of grid intervals (shared by every link).
    #[must_use]
    pub fn interval_count(&self) -> u64 {
        self.scenarios[0].interval_count()
    }

    /// Interval length Δ in ms (shared by every link).
    #[must_use]
    pub fn interval_ms(&self) -> u64 {
        self.scenarios[0].interval_ms()
    }

    /// The per-link scenario (events, anomalous intervals, …).
    ///
    /// # Panics
    ///
    /// Panics when `source` is out of range.
    #[must_use]
    pub fn link_scenario(&self, source: usize) -> &Scenario {
        &self.scenarios[source]
    }

    /// Generate one link's interval, timestamped in the **link-local
    /// clock** (grid time shifted by the link's skew) — what that
    /// exporter would emit on the wire. Deterministic in
    /// `(seed, source, interval)`.
    ///
    /// # Panics
    ///
    /// Panics when `source` or `interval` is out of range.
    #[must_use]
    pub fn generate(&self, source: usize, interval: u64) -> LabeledInterval {
        let skew = self.links[source].skew_ms;
        let mut iv = self.scenarios[source].generate(interval);
        if skew > 0 {
            iv.begin_ms += skew;
            iv.end_ms += skew;
            for flow in &mut iv.flows {
                flow.start_ms += skew;
                flow.end_ms += skew;
            }
        }
        iv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_preset_shapes_links() {
        let ms = MultiSourceScenario::uniform(7, 3);
        assert_eq!(ms.source_count(), 3);
        assert!(ms.links()[0].carries_anomalies);
        assert!(!ms.links()[1].carries_anomalies);
        assert!(ms.links()[1].rate < ms.links()[0].rate);
        let specs = ms.source_specs();
        assert_eq!(specs[0].origin_ms, 0);
        assert_eq!(specs[2].origin_ms, 2 * 437);
        assert_eq!(specs[1].id, SourceId(1));
    }

    #[test]
    fn anomalies_only_on_carrying_links() {
        let ms = MultiSourceScenario::uniform(3, 2);
        assert!(!ms.link_scenario(0).events().is_empty());
        assert!(ms.link_scenario(1).events().is_empty());
        // The small scenario's flood interval is anomalous on link 0
        // only.
        let flood = *ms
            .link_scenario(0)
            .anomalous_intervals()
            .iter()
            .next()
            .unwrap();
        assert!(ms.generate(0, flood).is_anomalous());
        assert!(!ms.generate(1, flood).is_anomalous());
    }

    #[test]
    fn skew_shifts_timestamps_into_the_local_clock() {
        let links = vec![
            LinkConfig::default(),
            LinkConfig {
                skew_ms: 250,
                ..LinkConfig::default()
            },
        ];
        let ms = MultiSourceScenario::small(5, links);
        let grid = ms.interval_ms();
        let iv0 = ms.generate(0, 2);
        let iv1 = ms.generate(1, 2);
        assert_eq!(iv0.begin_ms, 2 * grid);
        assert_eq!(iv1.begin_ms, 2 * grid + 250);
        assert!(iv1.flows.iter().all(|f| f.start_ms >= iv1.begin_ms));
        assert!(iv1.flows.iter().all(|f| f.start_ms < iv1.end_ms));
    }

    #[test]
    fn links_see_different_traffic_but_generation_is_deterministic() {
        let ms = MultiSourceScenario::uniform(11, 2);
        let a = ms.generate(0, 4);
        let b = ms.generate(1, 4);
        assert_ne!(a.flows, b.flows, "independent backgrounds");
        let again = ms.generate(1, 4);
        assert_eq!(b.flows, again.flows, "deterministic per (seed, link)");
    }

    #[test]
    fn rate_scales_link_volume() {
        let links = vec![
            LinkConfig::default(),
            LinkConfig {
                rate: 0.25,
                ..LinkConfig::default()
            },
        ];
        let ms = MultiSourceScenario::small(9, links);
        let full = ms.generate(0, 5).flows.len();
        let quarter = ms.generate(1, 5).flows.len();
        assert!(
            quarter * 3 < full,
            "quarter-rate link carries much less: {quarter} vs {full}"
        );
    }

    #[test]
    #[should_panic(expected = "needs links")]
    fn empty_links_panic() {
        let _ = MultiSourceScenario::small(1, Vec::new());
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn non_positive_rate_panics() {
        let _ = MultiSourceScenario::small(
            1,
            vec![LinkConfig {
                rate: 0.0,
                ..LinkConfig::default()
            }],
        );
    }
}
