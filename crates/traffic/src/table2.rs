//! The paper's §II-B worked example (Table II) as a reproducible workload.
//!
//! The paper took a 15-minute window where destination port 7000 was the
//! only flagged feature (53 467 candidate flows) and *artificially added*
//! the flows of the three most popular destination ports — 80 (252 069
//! flows), 9022 (22 667, backscatter), and 25 (22 659) — to force
//! false-positive item-sets. Apriori with s = 10 000 then produced 15
//! maximal item-sets. This module rebuilds that input set, component by
//! component, at any volume scale.
//!
//! (The paper quotes 350 872 total flows while its per-port numbers sum to
//! 350 862; we reproduce the per-port numbers, which are the operative
//! ones.)

use std::net::Ipv4Addr;

use anomex_netflow::{FlowRecord, Protocol, TcpFlags};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::inject::{backscatter, flooding};

/// Component volumes of the Table II input set at `scale = 1.0`.
pub mod paper_counts {
    /// Candidate anomalous flows on destination port 7000.
    pub const FLOODING: u64 = 53_467;
    /// Flows on the most popular destination port, 80.
    pub const WEB: u64 = 252_069;
    /// Backscatter flows on destination port 9022.
    pub const BACKSCATTER: u64 = 22_667;
    /// Mail flows on destination port 25.
    pub const SMTP: u64 = 22_659;
    /// The minimum support used in the example.
    pub const MIN_SUPPORT: u64 = 10_000;
}

/// The constructed workload with its named actors.
#[derive(Debug, Clone)]
pub struct Table2Workload {
    /// All flows (flooding + injected popular-port flows), time-sorted.
    pub flows: Vec<FlowRecord>,
    /// The flood victim (the paper's host E).
    pub victim: Ipv4Addr,
    /// The flooded destination port (7000).
    pub flood_port: u16,
    /// The flooding sources.
    pub flood_sources: Vec<Ipv4Addr>,
    /// The HTTP proxies/caches (the paper's hosts A, B, C).
    pub proxies: [Ipv4Addr; 3],
    /// The SMTP servers receiving the port-25 traffic.
    pub mail_servers: [Ipv4Addr; 2],
    /// The scaled minimum support matching the workload volume.
    pub min_support: u64,
}

/// Build the Table II input set at the given volume scale
/// (`scale = 1.0` reproduces the paper's 350 k flows; 0.1 is plenty for
/// tests).
///
/// # Panics
///
/// Panics if `scale` is not positive.
#[must_use]
pub fn table2_workload(seed: u64, scale: f64) -> Table2Workload {
    assert!(scale > 0.0, "scale must be positive");
    let s = |n: u64| ((n as f64 * scale) as u64).max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let window_ms = 15 * 60 * 1000;

    let victim = Ipv4Addr::new(10, 3, 0, 7);
    let flood_port = 7000;
    let flood_sources = vec![
        Ipv4Addr::new(91, 7, 1, 1),
        Ipv4Addr::new(91, 7, 1, 2),
        Ipv4Addr::new(91, 7, 1, 3),
    ];
    let proxies = [
        Ipv4Addr::new(10, 1, 0, 10),
        Ipv4Addr::new(10, 1, 0, 11),
        Ipv4Addr::new(10, 1, 0, 12),
    ];
    let mail_servers = [Ipv4Addr::new(10, 8, 0, 25), Ipv4Addr::new(10, 8, 1, 25)];

    let mut flows = Vec::new();

    // --- Port 7000: the real anomaly (Flooding at host E). ---
    flows.extend(flooding::generate(
        &flood_sources,
        victim,
        flood_port,
        s(paper_counts::FLOODING),
        0,
        window_ms,
        &mut rng,
    ));

    // --- Port 80: proxies A, B, C plus a diffuse client population. ---
    // Proxies/caches ship page content: bulk transfers with per-flow
    // varying sizes, so each proxy surfaces as ONE maximal item-set
    // {srcIP, dstPort=80, proto} like the paper's hosts A, B, C.
    let proxy_volumes = [s(65_000), s(48_000), s(32_000)];
    for (proxy, volume) in proxies.iter().zip(proxy_volumes) {
        for _ in 0..volume {
            flows.push(web_flow(*proxy, &mut rng, window_ms, true));
        }
    }
    let diffuse_web = s(paper_counts::WEB) - proxy_volumes.iter().sum::<u64>();
    for _ in 0..diffuse_web {
        let client = Ipv4Addr::from(0x0a00_0000 | (rng.random::<u32>() & 0x001F_FFFF));
        flows.push(web_flow(client, &mut rng, window_ms, false));
    }

    // --- Port 9022: backscatter (each flow a different source). ---
    flows.extend(backscatter::generate(
        9022,
        s(paper_counts::BACKSCATTER),
        0,
        window_ms,
        &mut rng,
    ));

    // --- Port 25: mail toward two MX hosts. ---
    let mx_volumes = [s(13_000), s(paper_counts::SMTP) - s(13_000)];
    for (server, volume) in mail_servers.iter().zip(mx_volumes) {
        for _ in 0..volume {
            flows.push(smtp_flow(*server, &mut rng, window_ms));
        }
    }

    flows.sort_by_key(|f| f.start_ms);
    Table2Workload {
        flows,
        victim,
        flood_port,
        flood_sources,
        proxies,
        mail_servers,
        min_support: s(paper_counts::MIN_SUPPORT),
    }
}

/// One web flow originated by `src` toward a random external server.
/// `bulk` flows (proxy/cache content) vary freely in size; client flows
/// include the quantized mice (SYN-only, small control exchanges) whose
/// (#packets, #bytes) pairs become the paper's benign frequent item-sets.
fn web_flow(src: Ipv4Addr, rng: &mut StdRng, window_ms: u64, bulk: bool) -> FlowRecord {
    let dst = Ipv4Addr::from(rng.random::<u32>() | 0x4000_0000);
    let start = rng.random_range(0..window_ms);
    let packets: u32 = if bulk {
        rng.random_range(4..60)
    } else {
        match rng.random_range(0..10u32) {
            0..=4 => rng.random_range(1..=3),
            5..=8 => rng.random_range(4..30),
            _ => rng.random_range(30..2000),
        }
    };
    let bytes = if packets <= 3 {
        packets * [40u32, 48, 52][rng.random_range(0..3usize)]
    } else {
        packets * rng.random_range(200..1400u32)
    };
    FlowRecord::new(
        start,
        src,
        dst,
        rng.random_range(1024..=u16::MAX),
        80,
        Protocol::Tcp,
    )
    .with_volume(packets, bytes)
    .with_end(start + u64::from(rng.random_range(1..20_000u32)))
    .with_flags(TcpFlags(TcpFlags::SYN | TcpFlags::ACK | TcpFlags::FIN))
}

/// One mail delivery toward `server` from a random sender.
fn smtp_flow(server: Ipv4Addr, rng: &mut StdRng, window_ms: u64) -> FlowRecord {
    let sender = Ipv4Addr::from(rng.random::<u32>() | 0x2000_0000);
    let start = rng.random_range(0..window_ms);
    let packets = rng.random_range(8..25u32);
    FlowRecord::new(
        start,
        sender,
        server,
        rng.random_range(1024..=u16::MAX),
        25,
        Protocol::Tcp,
    )
    .with_volume(packets, packets * rng.random_range(300..900u32))
    .with_end(start + u64::from(rng.random_range(500..8000u32)))
    .with_flags(TcpFlags(
        TcpFlags::SYN | TcpFlags::ACK | TcpFlags::PSH | TcpFlags::FIN,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_volumes_match_paper_at_full_scale() {
        let w = table2_workload(1, 1.0);
        let by_port = |p: u16| w.flows.iter().filter(|f| f.dst_port == p).count() as u64;
        assert_eq!(by_port(7000), paper_counts::FLOODING);
        assert_eq!(by_port(80), paper_counts::WEB);
        assert_eq!(by_port(9022), paper_counts::BACKSCATTER);
        assert_eq!(by_port(25), paper_counts::SMTP);
        assert_eq!(w.min_support, paper_counts::MIN_SUPPORT);
        assert_eq!(
            w.flows.len() as u64,
            paper_counts::FLOODING
                + paper_counts::WEB
                + paper_counts::BACKSCATTER
                + paper_counts::SMTP
        );
    }

    #[test]
    fn scaled_volumes_track_scale() {
        let w = table2_workload(1, 0.1);
        let by_port = |p: u16| w.flows.iter().filter(|f| f.dst_port == p).count() as u64;
        assert_eq!(by_port(7000), (paper_counts::FLOODING as f64 * 0.1) as u64);
        assert_eq!(w.min_support, 1000);
    }

    #[test]
    fn proxies_each_exceed_min_support() {
        let w = table2_workload(1, 0.1);
        for proxy in w.proxies {
            let n = w.flows.iter().filter(|f| f.src_ip == proxy).count() as u64;
            assert!(n >= w.min_support, "proxy {proxy} has only {n} flows");
        }
    }

    #[test]
    fn flood_sources_each_exceed_min_support() {
        let w = table2_workload(1, 0.1);
        for src in &w.flood_sources {
            let n = w.flows.iter().filter(|f| f.src_ip == *src).count() as u64;
            assert!(n >= w.min_support, "flood source {src} has only {n} flows");
        }
    }

    #[test]
    fn deterministic() {
        let a = table2_workload(9, 0.05);
        let b = table2_workload(9, 0.05);
        assert_eq!(a.flows, b.flows);
    }
}
