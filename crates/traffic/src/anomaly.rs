//! Anomaly classes and event specifications (paper Table IV).
//!
//! The paper's two-week SWITCH trace contained 36 events across seven
//! manually-classified anomaly classes. Each [`EventSpec`] describes one
//! synthetic event precisely enough to (a) inject its flows and (b) score
//! extracted item-sets against it (the *signature values* an analyst would
//! recognize as the root cause).

use std::fmt;
use std::net::Ipv4Addr;

use anomex_netflow::{FeatureValue, FlowFeature};
use serde::{Deserialize, Serialize};

/// The seven anomaly classes of the paper's ground truth (Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AnomalyClass {
    /// High-volume flows from a *small* number of sources to one victim.
    Flooding,
    /// Responses to a spoofed attack elsewhere: many distinct source IPs
    /// and random source ports toward a fixed destination port.
    Backscatter,
    /// A measurement host (the paper's PlanetLab node) generating bulk
    /// probe traffic with fixed ports.
    NetworkExperiment,
    /// Distributed denial of service: *many* sources, one victim.
    DDoS,
    /// Horizontal scan: one source probing many destinations on one port.
    Scanning,
    /// Bulk mail toward SMTP servers (destination port 25).
    Spam,
    /// An event the analyst could not attribute.
    Unknown,
}

impl AnomalyClass {
    /// All classes, in Table IV order.
    pub const ALL: [AnomalyClass; 7] = [
        AnomalyClass::Flooding,
        AnomalyClass::Backscatter,
        AnomalyClass::NetworkExperiment,
        AnomalyClass::DDoS,
        AnomalyClass::Scanning,
        AnomalyClass::Spam,
        AnomalyClass::Unknown,
    ];
}

impl fmt::Display for AnomalyClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AnomalyClass::Flooding => "Flooding",
            AnomalyClass::Backscatter => "Backscatter",
            AnomalyClass::NetworkExperiment => "Network Experiment",
            AnomalyClass::DDoS => "DDoS",
            AnomalyClass::Scanning => "Scanning",
            AnomalyClass::Spam => "Spam",
            AnomalyClass::Unknown => "Unknown",
        };
        f.write_str(name)
    }
}

/// Identifier of one injected event within a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EventId(pub u32);

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{:02}", self.0)
    }
}

/// Class-specific event parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventParams {
    /// Few sources flooding one victim host/port.
    Flooding {
        /// The attacking hosts (small set).
        sources: Vec<Ipv4Addr>,
        /// The flooded host.
        victim: Ipv4Addr,
        /// The flooded destination port.
        port: u16,
    },
    /// Backscatter arriving on a fixed destination port.
    Backscatter {
        /// The destination port the backscatter converges on.
        port: u16,
    },
    /// A measurement node probing from a fixed source.
    NetworkExperiment {
        /// The experimenting host.
        node: Ipv4Addr,
        /// Source port of the probe tool.
        src_port: u16,
        /// Destination port of the probe tool.
        dst_port: u16,
    },
    /// Many sources attacking one victim.
    DDoS {
        /// The attacked host.
        victim: Ipv4Addr,
        /// The attacked service port.
        port: u16,
        /// Number of distinct attacking sources.
        attackers: u32,
    },
    /// One source scanning many destinations on one port.
    Scanning {
        /// The scanning host.
        scanner: Ipv4Addr,
        /// The scanned destination port.
        port: u16,
    },
    /// A botnet scanning one /16 subnet: many sources, many destinations,
    /// one port — only the *prefix* dimension pins the target range
    /// (paper §III-D).
    DistributedScan {
        /// Any address inside the targeted /16 (the low 16 bits are
        /// ignored).
        subnet: Ipv4Addr,
        /// The scanned destination port.
        port: u16,
        /// Number of distinct scanning bots.
        attackers: u32,
    },
    /// Bulk mail toward a set of SMTP servers.
    Spam {
        /// The targeted mail servers.
        servers: Vec<Ipv4Addr>,
        /// Number of distinct spamming sources.
        senders: u32,
    },
    /// Unattributed: an intense, odd flow pattern between two hosts.
    Unknown {
        /// One endpoint.
        a: Ipv4Addr,
        /// The other endpoint.
        b: Ipv4Addr,
    },
}

impl EventParams {
    /// The class this parameter set belongs to.
    #[must_use]
    pub fn class(&self) -> AnomalyClass {
        match self {
            EventParams::Flooding { .. } => AnomalyClass::Flooding,
            EventParams::Backscatter { .. } => AnomalyClass::Backscatter,
            EventParams::NetworkExperiment { .. } => AnomalyClass::NetworkExperiment,
            EventParams::DDoS { .. } => AnomalyClass::DDoS,
            EventParams::Scanning { .. } => AnomalyClass::Scanning,
            EventParams::DistributedScan { .. } => AnomalyClass::Scanning,
            EventParams::Spam { .. } => AnomalyClass::Spam,
            EventParams::Unknown { .. } => AnomalyClass::Unknown,
        }
    }
}

/// One injected anomaly event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventSpec {
    /// Scenario-unique identifier.
    pub id: EventId,
    /// First interval (inclusive) the event is active in.
    pub start_interval: u64,
    /// Number of consecutive active intervals (≥ 1).
    pub duration: u64,
    /// Event flows injected per active interval.
    pub flows_per_interval: u64,
    /// Class-specific parameters.
    pub params: EventParams,
}

impl EventSpec {
    /// The event's anomaly class.
    #[must_use]
    pub fn class(&self) -> AnomalyClass {
        self.params.class()
    }

    /// Whether the event is active in the given interval.
    #[must_use]
    pub fn active_in(&self, interval: u64) -> bool {
        interval >= self.start_interval && interval < self.start_interval + self.duration
    }

    /// The intervals this event is active in.
    pub fn active_intervals(&self) -> impl Iterator<Item = u64> {
        self.start_interval..self.start_interval + self.duration
    }

    /// The feature values an analyst would recognize as this event's root
    /// cause — used to score extracted item-sets as true positives.
    #[must_use]
    pub fn signature_values(&self) -> Vec<FeatureValue> {
        let ip = |addr: Ipv4Addr| u64::from(u32::from(addr));
        match &self.params {
            EventParams::Flooding {
                sources,
                victim,
                port,
            } => {
                let mut v = vec![
                    FeatureValue::new(FlowFeature::DstIp, ip(*victim)),
                    FeatureValue::new(FlowFeature::DstPort, u64::from(*port)),
                ];
                v.extend(
                    sources
                        .iter()
                        .map(|s| FeatureValue::new(FlowFeature::SrcIp, ip(*s))),
                );
                v
            }
            EventParams::Backscatter { port } => {
                vec![FeatureValue::new(FlowFeature::DstPort, u64::from(*port))]
            }
            EventParams::NetworkExperiment {
                node,
                src_port,
                dst_port,
            } => vec![
                FeatureValue::new(FlowFeature::SrcIp, ip(*node)),
                FeatureValue::new(FlowFeature::SrcPort, u64::from(*src_port)),
                FeatureValue::new(FlowFeature::DstPort, u64::from(*dst_port)),
            ],
            EventParams::DDoS { victim, port, .. } => vec![
                FeatureValue::new(FlowFeature::DstIp, ip(*victim)),
                FeatureValue::new(FlowFeature::DstPort, u64::from(*port)),
            ],
            EventParams::Scanning { scanner, port } => vec![
                FeatureValue::new(FlowFeature::SrcIp, ip(*scanner)),
                FeatureValue::new(FlowFeature::DstPort, u64::from(*port)),
            ],
            EventParams::DistributedScan { subnet, port, .. } => vec![
                FeatureValue::new(FlowFeature::DstPort, u64::from(*port)),
                FeatureValue::new(FlowFeature::DstNet16, u64::from(u32::from(*subnet) >> 16)),
            ],
            EventParams::Spam { servers, .. } => {
                let mut v = vec![FeatureValue::new(FlowFeature::DstPort, 25)];
                v.extend(
                    servers
                        .iter()
                        .map(|s| FeatureValue::new(FlowFeature::DstIp, ip(*s))),
                );
                v
            }
            // The exchange is bidirectional: both hosts appear as source
            // and as destination.
            EventParams::Unknown { a, b } => vec![
                FeatureValue::new(FlowFeature::SrcIp, ip(*a)),
                FeatureValue::new(FlowFeature::DstIp, ip(*b)),
                FeatureValue::new(FlowFeature::SrcIp, ip(*b)),
                FeatureValue::new(FlowFeature::DstIp, ip(*a)),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> EventSpec {
        EventSpec {
            id: EventId(3),
            start_interval: 10,
            duration: 2,
            flows_per_interval: 1000,
            params: EventParams::Scanning {
                scanner: Ipv4Addr::new(1, 2, 3, 4),
                port: 445,
            },
        }
    }

    #[test]
    fn activity_window() {
        let e = spec();
        assert!(!e.active_in(9));
        assert!(e.active_in(10));
        assert!(e.active_in(11));
        assert!(!e.active_in(12));
        assert_eq!(e.active_intervals().collect::<Vec<_>>(), vec![10, 11]);
    }

    #[test]
    fn class_derived_from_params() {
        assert_eq!(spec().class(), AnomalyClass::Scanning);
    }

    #[test]
    fn scanning_signature_has_scanner_and_port() {
        let sig = spec().signature_values();
        assert!(sig.contains(&FeatureValue::new(FlowFeature::DstPort, 445)));
        assert!(sig.contains(&FeatureValue::new(
            FlowFeature::SrcIp,
            u64::from(u32::from(Ipv4Addr::new(1, 2, 3, 4)))
        )));
    }

    #[test]
    fn every_class_has_a_nonempty_signature() {
        let params = [
            EventParams::Flooding {
                sources: vec![Ipv4Addr::new(9, 9, 9, 9)],
                victim: Ipv4Addr::new(10, 0, 0, 5),
                port: 7000,
            },
            EventParams::Backscatter { port: 9022 },
            EventParams::NetworkExperiment {
                node: Ipv4Addr::new(10, 1, 1, 1),
                src_port: 33434,
                dst_port: 33435,
            },
            EventParams::DDoS {
                victim: Ipv4Addr::new(10, 0, 0, 6),
                port: 80,
                attackers: 500,
            },
            EventParams::Scanning {
                scanner: Ipv4Addr::new(7, 7, 7, 7),
                port: 22,
            },
            EventParams::Spam {
                servers: vec![Ipv4Addr::new(10, 0, 0, 25)],
                senders: 40,
            },
            EventParams::Unknown {
                a: Ipv4Addr::new(1, 1, 1, 1),
                b: Ipv4Addr::new(2, 2, 2, 2),
            },
        ];
        for (i, p) in params.into_iter().enumerate() {
            let spec = EventSpec {
                id: EventId(i as u32),
                start_interval: 0,
                duration: 1,
                flows_per_interval: 10,
                params: p,
            };
            assert!(!spec.signature_values().is_empty(), "{}", spec.class());
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(
            AnomalyClass::NetworkExperiment.to_string(),
            "Network Experiment"
        );
        assert_eq!(EventId(7).to_string(), "E07");
        assert_eq!(AnomalyClass::ALL.len(), 7);
    }
}
