//! # anomex-traffic — synthetic backbone workloads with exact ground truth
//!
//! The workload substrate of the
//! [anomex](https://crates.io/crates/anomex) anomaly-extraction system
//! (Brauckhoff et al., IMC 2009 / IEEE ToN 2012).
//!
//! The paper evaluates on two weeks of proprietary SWITCH/AS559 NetFlow;
//! this crate synthesizes the closest open equivalent (see DESIGN.md §2 for
//! the substitution argument):
//!
//! - [`background`] — Zipf-popular endpoints/services, Pareto flow sizes,
//!   diurnal cycle, configurable heavy hitters (the paper's proxies
//!   A/B/C);
//! - [`inject`] — one injector per Table IV anomaly class: Flooding,
//!   Backscatter, Network Experiment, DDoS, Scanning, Spam, Unknown;
//! - [`scenario`] — [`Scenario::two_weeks`] plants 36 events in 31
//!   anomalous intervals over two weeks of 15-minute windows, streaming
//!   and fully deterministic;
//! - [`table2`] — the §II-B worked example (port-7000 flood + injected
//!   popular ports) at any scale;
//! - [`multi`] — multi-exporter scenarios: the same grid observed over
//!   several links with per-link rate, clock skew, and anomaly exposure
//!   (the paper's multi-router collection setting);
//! - [`labeled`] — per-flow ground-truth labels, exact by construction.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod anomaly;
pub mod background;
pub mod dist;
pub mod inject;
pub mod labeled;
pub mod multi;
pub mod scenario;
pub mod table2;

pub use anomaly::{AnomalyClass, EventId, EventParams, EventSpec};
pub use background::{BackgroundConfig, BackgroundModel, HeavyHitter};
pub use dist::{BoundedPareto, Zipf};
pub use labeled::LabeledInterval;
pub use multi::{LinkConfig, MultiSourceScenario};
pub use scenario::{
    Scenario, ScenarioConfig, FIFTEEN_MIN_MS, INTERVALS_PER_DAY, TWO_WEEKS_INTERVALS,
};
pub use table2::{table2_workload, Table2Workload};
