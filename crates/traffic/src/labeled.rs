//! Ground-truth-labeled intervals.
//!
//! The paper's hardest practical problem — "inherent limitations in finding
//! the precise ground truth of event flows in real-world traffic traces"
//! (§I-B) — disappears with a synthetic workload: every flow knows which
//! event injected it. [`LabeledInterval`] carries that per-flow label.

use anomex_netflow::FlowRecord;

use crate::anomaly::EventId;

/// One generated measurement interval with exact per-flow ground truth.
#[derive(Debug, Clone)]
pub struct LabeledInterval {
    /// Zero-based interval index within the scenario.
    pub index: u64,
    /// Inclusive window start, ms.
    pub begin_ms: u64,
    /// Exclusive window end, ms.
    pub end_ms: u64,
    /// The interval's flows, time-ordered.
    pub flows: Vec<FlowRecord>,
    /// Parallel to `flows`: the event that injected each flow
    /// (`None` = background).
    pub labels: Vec<Option<EventId>>,
}

impl LabeledInterval {
    /// Whether any event flow is present.
    #[must_use]
    pub fn is_anomalous(&self) -> bool {
        self.labels.iter().any(Option::is_some)
    }

    /// Number of flows injected by a specific event.
    #[must_use]
    pub fn event_flow_count(&self, id: EventId) -> usize {
        self.labels.iter().filter(|l| **l == Some(id)).count()
    }

    /// Total number of event (non-background) flows.
    #[must_use]
    pub fn anomalous_flow_count(&self) -> usize {
        self.labels.iter().filter(|l| l.is_some()).count()
    }

    /// The distinct events present in this interval.
    #[must_use]
    pub fn events_present(&self) -> Vec<EventId> {
        let mut ids: Vec<EventId> = self.labels.iter().flatten().copied().collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Iterate (flow, label) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&FlowRecord, Option<EventId>)> + '_ {
        self.flows.iter().zip(self.labels.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomex_netflow::Protocol;
    use std::net::Ipv4Addr;

    fn flow() -> FlowRecord {
        FlowRecord::new(
            0,
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            1,
            2,
            Protocol::Tcp,
        )
    }

    fn interval() -> LabeledInterval {
        LabeledInterval {
            index: 0,
            begin_ms: 0,
            end_ms: 1000,
            flows: vec![flow(); 5],
            labels: vec![
                None,
                Some(EventId(1)),
                Some(EventId(1)),
                Some(EventId(2)),
                None,
            ],
        }
    }

    #[test]
    fn counts_and_presence() {
        let iv = interval();
        assert!(iv.is_anomalous());
        assert_eq!(iv.anomalous_flow_count(), 3);
        assert_eq!(iv.event_flow_count(EventId(1)), 2);
        assert_eq!(iv.event_flow_count(EventId(2)), 1);
        assert_eq!(iv.event_flow_count(EventId(9)), 0);
        assert_eq!(iv.events_present(), vec![EventId(1), EventId(2)]);
    }

    #[test]
    fn background_only_interval() {
        let iv = LabeledInterval {
            index: 1,
            begin_ms: 0,
            end_ms: 1000,
            flows: vec![flow(); 3],
            labels: vec![None; 3],
        };
        assert!(!iv.is_anomalous());
        assert_eq!(iv.anomalous_flow_count(), 0);
        assert!(iv.events_present().is_empty());
    }

    #[test]
    fn iter_pairs_flows_with_labels() {
        let iv = interval();
        let labeled: Vec<_> = iv.iter().filter(|(_, l)| l.is_some()).collect();
        assert_eq!(labeled.len(), 3);
    }
}
