//! Background backbone traffic model.
//!
//! Synthesizes SWITCH-like peering-link traffic: Zipf-popular services and
//! endpoints, heavy-tailed (Pareto) flow sizes, a diurnal rate cycle, and
//! configurable **heavy hitters** (the paper's HTTP proxies/caches A, B, C
//! that "sent a lot of traffic on destination port 80" and show up as
//! legitimate frequent item-sets). The generator is deterministic given a
//! seed, and each interval can be generated independently.

use std::net::Ipv4Addr;

use anomex_netflow::{FlowRecord, Protocol, TcpFlags};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dist::{BoundedPareto, Zipf};

/// Well-known service ports and their relative popularity on a backbone
/// link (HTTP dominates, then TLS, mail, DNS, and a long tail).
const SERVICES: [(u16, f64); 14] = [
    (80, 30.0),
    (443, 18.0),
    (53, 8.0),
    (25, 6.0),
    (8080, 3.0),
    (110, 2.0),
    (143, 2.0),
    (993, 2.0),
    (22, 2.0),
    (123, 2.0),
    (21, 1.0),
    (3389, 1.0),
    (8443, 1.0),
    (1935, 1.0),
];
/// Relative weight of the random-high-port (P2P-ish) tail.
const TAIL_WEIGHT: f64 = 21.0;

/// A host that originates a disproportionate share of traffic to one
/// service port (HTTP proxy, cache, mail relay, …).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeavyHitter {
    /// The heavy-hitting local host.
    pub host: Ipv4Addr,
    /// The destination service port its traffic goes to.
    pub port: u16,
    /// Fraction of the interval's flows this host originates (0..1).
    pub share: f64,
}

/// Background traffic model configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BackgroundConfig {
    /// Mean flows per measurement interval (before diurnal/noise factors).
    pub flows_per_interval: u64,
    /// First address of the local (campus) range.
    pub local_base: u32,
    /// Number of addresses in the local range (SWITCH: ≈ 2.2 M).
    pub local_size: u32,
    /// Distinct popular external hosts.
    pub external_population: u32,
    /// Enable the diurnal (day/night) rate cycle.
    pub diurnal: bool,
    /// Intervals per day (96 at Δ = 15 min) for the diurnal phase.
    pub intervals_per_day: u64,
    /// Multiplicative volume jitter amplitude (0 = none, 0.05 = ±5%).
    pub noise: f64,
    /// Traffic-*mix* drift amplitude (0 = stationary composition). Real
    /// backbone traffic changes composition between intervals — the share
    /// of control mice, the flow-size tail, the service mix all wander.
    /// This drift is what calibrates the detectors' MAD σ̂: without it the
    /// first-difference of the KL series is unrealistically quiet and the
    /// detectors hair-trigger on common feature values (flow sizes in
    /// particular), flooding the meta-data. 0.2 ≈ ±20% relative swing.
    ///
    /// The drift is *continuous*: mix parameters are drawn per interval
    /// from [`BackgroundConfig::mix_seed`] and linearly interpolated within
    /// each interval, so re-slicing the stream at a different Δ never sees
    /// artificial composition jumps at interval boundaries.
    pub mix_drift: f64,
    /// Seed of the drift process (independent of the flow-level RNG so
    /// consecutive intervals share their boundary mix).
    pub mix_seed: u64,
    /// Heavy-hitter hosts (legitimate frequent item-set sources).
    pub heavy_hitters: Vec<HeavyHitter>,
}

impl Default for BackgroundConfig {
    /// Test-scale defaults: 20 k flows per interval over a /11-sized local
    /// range, three HTTP proxies mirroring the paper's hosts A, B, C.
    fn default() -> Self {
        BackgroundConfig {
            flows_per_interval: 20_000,
            local_base: 0x0a00_0000, // 10.0.0.0
            local_size: 1 << 21,     // ≈ 2.1 M addresses, SWITCH-like
            external_population: 500_000,
            diurnal: true,
            intervals_per_day: 96,
            noise: 0.04,
            mix_drift: 0.2,
            mix_seed: 0xA5A5_5A5A,
            heavy_hitters: vec![
                HeavyHitter {
                    host: Ipv4Addr::new(10, 1, 0, 10),
                    port: 80,
                    share: 0.035,
                },
                HeavyHitter {
                    host: Ipv4Addr::new(10, 1, 0, 11),
                    port: 80,
                    share: 0.030,
                },
                HeavyHitter {
                    host: Ipv4Addr::new(10, 1, 0, 12),
                    port: 80,
                    share: 0.025,
                },
            ],
        }
    }
}

/// Traffic-mix parameters at one point of the drift process.
#[derive(Debug, Clone, Copy)]
struct IntervalMix {
    pareto_alpha: f64,
    control_frac: f64,
    udp_frac: f64,
}

impl IntervalMix {
    /// Linear interpolation between two mix states.
    fn lerp(a: &IntervalMix, b: &IntervalMix, t: f64) -> IntervalMix {
        let l = |x: f64, y: f64| x + (y - x) * t;
        IntervalMix {
            pareto_alpha: l(a.pareto_alpha, b.pareto_alpha),
            control_frac: l(a.control_frac, b.control_frac),
            udp_frac: l(a.udp_frac, b.udp_frac),
        }
    }
}

/// The background traffic generator.
#[derive(Debug, Clone)]
pub struct BackgroundModel {
    config: BackgroundConfig,
    local_zipf: Zipf,
    external_zipf: Zipf,
}

impl BackgroundModel {
    /// Build a generator from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `local_size` or `external_population` is zero, or a heavy
    /// hitter share is outside `[0, 1)`.
    #[must_use]
    pub fn new(config: BackgroundConfig) -> Self {
        assert!(config.local_size > 0, "local range must be non-empty");
        assert!(
            config.external_population > 0,
            "external population must be non-empty"
        );
        let total_share: f64 = config.heavy_hitters.iter().map(|h| h.share).sum();
        assert!(
            (0.0..1.0).contains(&total_share),
            "heavy hitter shares must sum to less than 1"
        );
        // Popularity over *ranks*; ranks are mapped to addresses below.
        // Cap the rank space so CDF precomputation stays cheap even for
        // multi-million address ranges (ranks beyond the cap are in the
        // far tail anyway).
        let local_ranks = config.local_size.min(100_000) as usize;
        let external_ranks = config.external_population.min(100_000) as usize;
        BackgroundModel {
            local_zipf: Zipf::new(local_ranks, 0.9),
            external_zipf: Zipf::new(external_ranks, 1.0),
            config,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &BackgroundConfig {
        &self.config
    }

    /// Diurnal volume factor for an interval (mean ≈ 1).
    #[must_use]
    pub fn diurnal_factor(&self, interval: u64) -> f64 {
        if !self.config.diurnal {
            return 1.0;
        }
        let phase = (interval % self.config.intervals_per_day) as f64
            / self.config.intervals_per_day as f64;
        // Peak mid-day, trough at night.
        1.0 + 0.3 * (std::f64::consts::TAU * (phase - 0.25)).sin()
    }

    /// Number of flows to generate in an interval (diurnal × jitter).
    pub fn flow_count<R: Rng + ?Sized>(&self, interval: u64, rng: &mut R) -> u64 {
        let base = self.config.flows_per_interval as f64 * self.diurnal_factor(interval);
        let jitter = 1.0 + self.config.noise * (rng.random::<f64>() * 2.0 - 1.0);
        (base * jitter).max(0.0) as u64
    }

    /// Map a popularity rank to a local address (rank 0 = most popular).
    fn local_addr(&self, rank: usize) -> Ipv4Addr {
        // Spread ranks over the range with a multiplicative hash so
        // popular hosts are not numerically adjacent.
        let spread = (rank as u32).wrapping_mul(2_654_435_761) % self.config.local_size;
        Ipv4Addr::from(self.config.local_base.wrapping_add(spread))
    }

    /// Map a popularity rank to an external address.
    fn external_addr(&self, rank: usize) -> Ipv4Addr {
        let mut z = (rank as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let addr = (z >> 16) as u32;
        // Avoid mapping into the local range.
        if (addr.wrapping_sub(self.config.local_base)) < self.config.local_size {
            Ipv4Addr::from(addr ^ 0x8000_0000)
        } else {
            Ipv4Addr::from(addr)
        }
    }

    /// Pick a service port using the weighted popularity table.
    fn service_port<R: Rng + ?Sized>(&self, rng: &mut R) -> u16 {
        let total: f64 = SERVICES.iter().map(|&(_, w)| w).sum::<f64>() + TAIL_WEIGHT;
        let mut u = rng.random::<f64>() * total;
        for &(port, w) in &SERVICES {
            if u < w {
                return port;
            }
            u -= w;
        }
        // Long tail: a random unprivileged port.
        rng.random_range(1024..=u16::MAX)
    }

    /// Flow volume: heavy-tailed packets. A *fraction* of the small flows
    /// are pure control exchanges with quantized packet sizes (40-byte
    /// SYN/ACK-class packets) — these produce the frequent
    /// (#packets, #bytes) pairs the paper observes as benign frequent
    /// item-sets — while the rest vary freely, keeping any single pair a
    /// sub-percent minority like in real traffic.
    fn volume<R: Rng + ?Sized>(&self, mix: &IntervalMix, rng: &mut R) -> (u32, u32) {
        let packets = BoundedPareto::new(1.0, 20_000.0, mix.pareto_alpha).sample_int(rng);
        let pkt_size = if packets <= 3 && rng.random::<f64>() < mix.control_frac {
            // Control mice: the classic quantized sizes.
            *[40u32, 44, 48, 52]
                .get(rng.random_range(0..4usize))
                .expect("fixed table")
        } else if packets <= 3 {
            // Small data flows: diverse sizes.
            rng.random_range(40..1460)
        } else {
            rng.random_range(64..1460)
        };
        (packets, packets.saturating_mul(pkt_size))
    }

    /// Generate one interval's background flows.
    ///
    /// `begin_ms` is the interval's wall-clock start; flows start uniformly
    /// within `[begin_ms, begin_ms + interval_ms)`.
    pub fn generate(
        &self,
        interval: u64,
        begin_ms: u64,
        interval_ms: u64,
        rng: &mut StdRng,
    ) -> Vec<FlowRecord> {
        let n = self.flow_count(interval, rng);
        let mix_start = self.mix_at(interval);
        let mix_end = self.mix_at(interval + 1);
        let mut flows = Vec::with_capacity(n as usize);
        for _ in 0..n {
            flows.push(self.one_flow(begin_ms, interval_ms, &mix_start, &mix_end, rng));
        }
        flows
    }

    /// The drift process state at an interval boundary — deterministic in
    /// `(mix_seed, interval)` so neighbouring intervals agree on their
    /// shared boundary.
    fn mix_at(&self, interval: u64) -> IntervalMix {
        use rand::SeedableRng;
        let mut z = self.config.mix_seed ^ interval.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 31;
        let mut rng = StdRng::seed_from_u64(z);
        let d = self.config.mix_drift;
        let mut wobble = || 1.0 + d * (rng.random::<f64>() * 2.0 - 1.0);
        IntervalMix {
            pareto_alpha: (1.15 * wobble()).clamp(1.01, 1.6),
            control_frac: (0.35 * wobble()).clamp(0.05, 0.8),
            udp_frac: (0.10 * wobble()).clamp(0.01, 0.4),
        }
    }

    fn one_flow(
        &self,
        begin_ms: u64,
        interval_ms: u64,
        mix_start: &IntervalMix,
        mix_end: &IntervalMix,
        rng: &mut StdRng,
    ) -> FlowRecord {
        let start = begin_ms + rng.random_range(0..interval_ms);
        // Continuous drift: the mix at this flow's position in the window.
        let t = (start - begin_ms) as f64 / interval_ms as f64;
        let mix = IntervalMix::lerp(mix_start, mix_end, t);
        let (packets, bytes) = self.volume(&mix, rng);

        // Heavy hitter?
        let mut share_roll: f64 = rng.random();
        for hh in &self.config.heavy_hitters {
            if share_roll < hh.share {
                // The proxy/cache originates a flow to some external
                // server on its service port.
                let dst = self.external_addr(self.external_zipf.sample(rng));
                return FlowRecord::new(
                    start,
                    hh.host,
                    dst,
                    rng.random_range(1024..=u16::MAX),
                    hh.port,
                    Protocol::Tcp,
                )
                .with_volume(packets, bytes)
                .with_end(start + u64::from(rng.random_range(1..30_000u32)))
                .with_flags(TcpFlags(TcpFlags::SYN | TcpFlags::ACK | TcpFlags::FIN));
            }
            share_roll -= hh.share;
        }

        // Regular client/server session, inbound or outbound.
        let local = self.local_addr(self.local_zipf.sample(rng));
        let external = self.external_addr(self.external_zipf.sample(rng));
        let service = self.service_port(rng);
        let client_port = rng.random_range(1024..=u16::MAX);
        let proto = match service {
            53 | 123 => Protocol::Udp,
            _ if rng.random::<f64>() < 0.02 => Protocol::Icmp,
            _ if rng.random::<f64>() < mix.udp_frac => Protocol::Udp,
            _ => Protocol::Tcp,
        };
        let outbound = rng.random::<f64>() < 0.5;
        let (src, dst, sport, dport) = if outbound {
            (local, external, client_port, service)
        } else {
            (external, local, client_port, service)
        };
        let mut flow = FlowRecord::new(start, src, dst, sport, dport, proto)
            .with_volume(packets, bytes)
            .with_end(start + u64::from(rng.random_range(1..60_000u32)));
        if proto == Protocol::Tcp {
            flow = flow.with_flags(TcpFlags(TcpFlags::SYN | TcpFlags::ACK | TcpFlags::FIN));
        }
        flow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn model() -> BackgroundModel {
        BackgroundModel::new(BackgroundConfig {
            flows_per_interval: 5000,
            noise: 0.0,
            diurnal: false,
            ..BackgroundConfig::default()
        })
    }

    #[test]
    fn generates_requested_volume() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(1);
        let flows = m.generate(0, 0, 900_000, &mut rng);
        assert_eq!(flows.len(), 5000);
        assert!(flows.iter().all(|f| f.start_ms < 900_000));
    }

    #[test]
    fn deterministic_given_seed() {
        let m = model();
        let a = m.generate(3, 0, 900_000, &mut StdRng::seed_from_u64(7));
        let b = m.generate(3, 0, 900_000, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn port_80_dominates() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(2);
        let flows = m.generate(0, 0, 900_000, &mut rng);
        let web = flows.iter().filter(|f| f.dst_port == 80).count();
        let ssh = flows.iter().filter(|f| f.dst_port == 22).count();
        assert!(web > 5 * ssh, "web {web} vs ssh {ssh}");
        // Port 80 should be roughly 30% + proxies ≈ 35% of traffic.
        let share = web as f64 / flows.len() as f64;
        assert!((0.25..0.50).contains(&share), "port-80 share {share}");
    }

    #[test]
    fn heavy_hitters_originate_their_share() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(3);
        let flows = m.generate(0, 0, 900_000, &mut rng);
        let hh_host = Ipv4Addr::new(10, 1, 0, 10);
        let from_hh = flows.iter().filter(|f| f.src_ip == hh_host).count();
        let share = from_hh as f64 / flows.len() as f64;
        assert!((0.02..0.05).contains(&share), "proxy share {share}");
        // All proxy flows go to port 80.
        assert!(flows
            .iter()
            .filter(|f| f.src_ip == hh_host)
            .all(|f| f.dst_port == 80));
    }

    #[test]
    fn flow_sizes_are_heavy_tailed() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(4);
        // Pool several intervals: with Pareto(α≈1.15) the expected
        // >1000-packet count in a single 5000-flow interval is ~2, so a
        // one-interval assertion is at the mercy of the RNG stream.
        let flows: Vec<_> = (0..4)
            .flat_map(|i| m.generate(i, 0, 900_000, &mut rng))
            .collect();
        let small = flows.iter().filter(|f| f.packets <= 3).count() as f64 / flows.len() as f64;
        let elephants = flows.iter().filter(|f| f.packets > 1000).count();
        assert!(small > 0.5, "mice dominate: {small}");
        assert!(elephants > 0, "elephants exist");
    }

    #[test]
    fn diurnal_cycle_peaks_and_troughs() {
        let m = BackgroundModel::new(BackgroundConfig {
            flows_per_interval: 10_000,
            diurnal: true,
            intervals_per_day: 96,
            noise: 0.0,
            ..BackgroundConfig::default()
        });
        // factor at mid-day (interval 48 = phase 0.5) vs midnight (0).
        let noon = m.diurnal_factor(48);
        let midnight = m.diurnal_factor(0);
        assert!(
            noon > 1.1 && midnight < 0.9,
            "noon {noon} midnight {midnight}"
        );
        // Mean over a day ≈ 1.
        let mean: f64 = (0..96).map(|i| m.diurnal_factor(i)).sum::<f64>() / 96.0;
        assert!((mean - 1.0).abs() < 0.01);
    }

    #[test]
    fn external_addresses_stay_external() {
        let m = model();
        let base = m.config().local_base;
        let size = m.config().local_size;
        for rank in 0..10_000 {
            let addr = u32::from(m.external_addr(rank));
            assert!(
                addr.wrapping_sub(base) >= size,
                "external rank {rank} mapped into the local range"
            );
        }
    }

    #[test]
    fn dns_flows_are_udp() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(5);
        let flows = m.generate(0, 0, 900_000, &mut rng);
        assert!(flows
            .iter()
            .filter(|f| f.dst_port == 53)
            .all(|f| f.proto == Protocol::Udp));
    }

    #[test]
    #[should_panic(expected = "must sum to less than 1")]
    fn oversubscribed_heavy_hitters_panic() {
        let cfg = BackgroundConfig {
            heavy_hitters: vec![HeavyHitter {
                host: Ipv4Addr::new(10, 0, 0, 1),
                port: 80,
                share: 1.5,
            }],
            ..BackgroundConfig::default()
        };
        let _ = BackgroundModel::new(cfg);
    }
}
