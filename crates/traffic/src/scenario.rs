//! Scenarios: reproducible multi-interval workloads with planted events.
//!
//! [`Scenario::two_weeks`] mirrors the paper's evaluation dataset: two
//! weeks of 15-minute intervals with **36 events in 31 anomalous
//! intervals** across the seven Table IV classes, after a one-day training
//! period. Volumes are scaled (configurable) so the default runs on a
//! laptop; `scale` multiplies both background and event flow counts up to
//! paper magnitude.
//!
//! Every interval is generated independently and deterministically from
//! `(seed, interval)`, so scenarios stream in O(interval) memory and can be
//! regenerated piecewise.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use anomex_netflow::FlowRecord;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::anomaly::{EventId, EventParams, EventSpec};
use crate::background::{BackgroundConfig, BackgroundModel};
use crate::inject;
use crate::labeled::LabeledInterval;

/// 15 minutes in milliseconds — the paper's Δ.
pub const FIFTEEN_MIN_MS: u64 = 15 * 60 * 1000;
/// Intervals per day at Δ = 15 min.
pub const INTERVALS_PER_DAY: u64 = 96;
/// Two weeks of 15-minute intervals.
pub const TWO_WEEKS_INTERVALS: u64 = 14 * INTERVALS_PER_DAY;

/// Scenario configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Master seed; every interval derives its own RNG from it.
    pub seed: u64,
    /// Number of measurement intervals.
    pub intervals: u64,
    /// Interval length in milliseconds.
    pub interval_ms: u64,
    /// Background traffic model.
    pub background: BackgroundConfig,
}

/// A reproducible workload: background model + planted events.
#[derive(Debug, Clone)]
pub struct Scenario {
    config: ScenarioConfig,
    model: BackgroundModel,
    events: Vec<EventSpec>,
}

/// SplitMix64 step used to derive per-interval/per-event seeds.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Scenario {
    /// Build a scenario from a config and explicit events.
    ///
    /// # Panics
    ///
    /// Panics if any event extends beyond the scenario or injects zero
    /// flows.
    #[must_use]
    pub fn new(config: ScenarioConfig, events: Vec<EventSpec>) -> Self {
        for e in &events {
            assert!(
                e.start_interval + e.duration <= config.intervals,
                "{} extends beyond the scenario ({} + {} > {})",
                e.id,
                e.start_interval,
                e.duration,
                config.intervals
            );
            assert!(e.flows_per_interval > 0, "{} injects no flows", e.id);
            assert!(e.duration > 0, "{} has zero duration", e.id);
        }
        let model = BackgroundModel::new(config.background.clone());
        Scenario {
            config,
            model,
            events,
        }
    }

    /// The paper-shaped evaluation workload: two weeks, Δ = 15 min,
    /// 36 events in 31 distinct anomalous intervals across all seven
    /// classes, first day anomaly-free for training. Event volumes are a
    /// few percent of the interval volume — like the paper's, large enough
    /// to disrupt their own feature values but not the global flow-size
    /// mix.
    ///
    /// `scale = 1.0` gives a laptop-friendly ~20 k background flows per
    /// interval; `scale ≈ 50` reaches the paper's 0.7–2.6 M.
    #[must_use]
    pub fn two_weeks(seed: u64, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        let s = |n: u64| ((n as f64 * scale) as u64).max(1);
        let background = BackgroundConfig {
            flows_per_interval: s(20_000),
            mix_seed: seed ^ 0xD1F7,
            ..BackgroundConfig::default()
        };
        let config = ScenarioConfig {
            seed,
            intervals: TWO_WEEKS_INTERVALS,
            interval_ms: FIFTEEN_MIN_MS,
            background,
        };

        // 31 anomalous intervals, spread over days 2–14; the first five
        // host two events each (36 events total, like the paper).
        let slots: Vec<u64> = (0..31)
            .map(|i| 100 + i * 38 + (mix(seed, i) % 7)) // jittered spacing
            .collect();
        debug_assert!(slots.iter().all(|&s| s < TWO_WEEKS_INTERVALS));

        let local = |a: u8, b: u8, c: u8| Ipv4Addr::new(10, a, b, c);
        let mut events = Vec::new();
        let mut next_id = 0u32;
        let mut push =
            |events: &mut Vec<EventSpec>, interval: u64, flows: u64, params: EventParams| {
                events.push(EventSpec {
                    id: EventId(next_id),
                    start_interval: interval,
                    duration: 1,
                    flows_per_interval: s(flows),
                    params,
                });
                next_id += 1;
            };

        // Class layout: 12 scans, 5 floods, 5 backscatter, 4 DDoS, 4 spam,
        // 3 network experiments, 3 unknown = 36 events.
        let scan_ports = [
            445u16, 22, 3389, 23, 1433, 5900, 139, 445, 80, 8080, 22, 445,
        ];
        for (i, &port) in scan_ports.iter().enumerate() {
            let scanner = Ipv4Addr::new(60 + i as u8, 7, 7, 7);
            push(
                &mut events,
                slots[i],
                700 + (i as u64 % 3) * 150,
                EventParams::Scanning { scanner, port },
            );
        }
        for i in 0..5u64 {
            let sources = vec![
                Ipv4Addr::new(90 + i as u8, 1, 1, 1),
                Ipv4Addr::new(90 + i as u8, 1, 1, 2),
                Ipv4Addr::new(90 + i as u8, 1, 1, 3),
            ];
            push(
                &mut events,
                slots[12 + i as usize],
                1200 + i * 150,
                EventParams::Flooding {
                    sources,
                    victim: local(3, i as u8, 7),
                    port: 7000 + i as u16,
                },
            );
        }
        for i in 0..5u64 {
            push(
                &mut events,
                slots[17 + i as usize],
                600 + i * 100,
                EventParams::Backscatter {
                    port: 9022 + (i as u16) * 100,
                },
            );
        }
        for i in 0..4u64 {
            push(
                &mut events,
                slots[22 + i as usize],
                1000 + i * 200,
                EventParams::DDoS {
                    victim: local(5, i as u8, 80),
                    port: if i % 2 == 0 { 80 } else { 53 },
                    attackers: 800 + (i as u32) * 300,
                },
            );
        }
        for i in 0..4u64 {
            push(
                &mut events,
                slots[26 + i as usize],
                800 + i * 100,
                EventParams::Spam {
                    servers: vec![local(8, 0, 25), local(8, 1, 25)],
                    senders: 60 + (i as u32) * 20,
                },
            );
        }
        // Slots 0–29 are used above; the three experiments double up on
        // slots 0–2 and two unknowns on slots 3–4 (five intervals with two
        // events each), while the last unknown takes slot 30 alone:
        // 36 events over 31 distinct intervals, like the paper.
        for i in 0..3u64 {
            push(
                &mut events,
                slots[i as usize],
                600 + i * 100,
                EventParams::NetworkExperiment {
                    node: local(12, 0, 42 + i as u8),
                    src_port: 33434,
                    dst_port: 33435 + i as u16,
                },
            );
        }
        for i in 0..2u64 {
            push(
                &mut events,
                slots[3 + i as usize],
                800,
                EventParams::Unknown {
                    a: local(13, i as u8, 1),
                    b: Ipv4Addr::new(185, 44, i as u8, 9),
                },
            );
        }
        push(
            &mut events,
            slots[30],
            800,
            EventParams::Unknown {
                a: local(13, 9, 1),
                b: Ipv4Addr::new(185, 44, 9, 9),
            },
        );

        Scenario::new(config, events)
    }

    /// A small, fast scenario for tests: `intervals` intervals of 1-minute
    /// windows with a reduced background and a handful of events.
    #[must_use]
    pub fn small(seed: u64) -> Self {
        let background = BackgroundConfig {
            flows_per_interval: 4000,
            diurnal: false,
            noise: 0.03,
            // Mild composition drift: short training windows (tests use
            // ~10 intervals) cannot calibrate σ̂ against full drift.
            mix_drift: 0.05,
            mix_seed: seed ^ 0xD1F7,
            ..BackgroundConfig::default()
        };
        let config = ScenarioConfig {
            seed,
            intervals: 40,
            interval_ms: 60_000,
            background,
        };
        let events = vec![
            EventSpec {
                id: EventId(0),
                start_interval: 20,
                duration: 1,
                flows_per_interval: 3000,
                params: EventParams::Flooding {
                    sources: vec![Ipv4Addr::new(91, 1, 1, 1), Ipv4Addr::new(91, 1, 1, 2)],
                    victim: Ipv4Addr::new(10, 3, 0, 7),
                    port: 7000,
                },
            },
            EventSpec {
                id: EventId(1),
                start_interval: 28,
                duration: 1,
                flows_per_interval: 2500,
                params: EventParams::Scanning {
                    scanner: Ipv4Addr::new(66, 6, 6, 6),
                    port: 445,
                },
            },
            EventSpec {
                id: EventId(2),
                start_interval: 34,
                duration: 1,
                flows_per_interval: 2000,
                params: EventParams::Backscatter { port: 9022 },
            },
        ];
        Scenario::new(config, events)
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// The planted events.
    #[must_use]
    pub fn events(&self) -> &[EventSpec] {
        &self.events
    }

    /// Number of intervals.
    #[must_use]
    pub fn interval_count(&self) -> u64 {
        self.config.intervals
    }

    /// Interval length in ms.
    #[must_use]
    pub fn interval_ms(&self) -> u64 {
        self.config.interval_ms
    }

    /// The set of intervals containing at least one active event.
    #[must_use]
    pub fn anomalous_intervals(&self) -> BTreeSet<u64> {
        self.events
            .iter()
            .flat_map(EventSpec::active_intervals)
            .collect()
    }

    /// Events active in a given interval.
    #[must_use]
    pub fn events_in(&self, interval: u64) -> Vec<&EventSpec> {
        self.events
            .iter()
            .filter(|e| e.active_in(interval))
            .collect()
    }

    /// Generate one interval (background + active events), time-sorted and
    /// labeled. Deterministic in `(seed, interval)`.
    ///
    /// # Panics
    ///
    /// Panics if `interval >= interval_count()`.
    #[must_use]
    pub fn generate(&self, interval: u64) -> LabeledInterval {
        assert!(interval < self.config.intervals, "interval out of range");
        let begin_ms = interval * self.config.interval_ms;
        let end_ms = begin_ms + self.config.interval_ms;

        let mut rng = StdRng::seed_from_u64(mix(self.config.seed, interval));
        let mut pairs: Vec<(FlowRecord, Option<EventId>)> = self
            .model
            .generate(interval, begin_ms, self.config.interval_ms, &mut rng)
            .into_iter()
            .map(|f| (f, None))
            .collect();

        for event in &self.events {
            if event.active_in(interval) {
                let mut ev_rng = StdRng::seed_from_u64(mix(
                    self.config.seed,
                    mix(u64::from(event.id.0) + 1, interval),
                ));
                for flow in inject::inject(
                    event,
                    interval,
                    begin_ms,
                    self.config.interval_ms,
                    &mut ev_rng,
                ) {
                    pairs.push((flow, Some(event.id)));
                }
            }
        }

        pairs.sort_by_key(|(f, _)| f.start_ms);
        let (flows, labels) = pairs.into_iter().unzip();
        LabeledInterval {
            index: interval,
            begin_ms,
            end_ms,
            flows,
            labels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anomaly::AnomalyClass;

    #[test]
    fn two_weeks_has_the_papers_event_structure() {
        let sc = Scenario::two_weeks(42, 0.1);
        assert_eq!(sc.interval_count(), TWO_WEEKS_INTERVALS);
        assert_eq!(sc.events().len(), 36, "36 events like the paper");
        assert_eq!(sc.anomalous_intervals().len(), 31, "31 anomalous intervals");
        // First day is clean for training.
        assert!(sc
            .anomalous_intervals()
            .iter()
            .all(|&i| i >= INTERVALS_PER_DAY));
        // All seven classes are represented.
        let classes: BTreeSet<AnomalyClass> = sc.events().iter().map(EventSpec::class).collect();
        assert_eq!(classes.len(), 7);
    }

    #[test]
    fn class_counts_match_layout() {
        let sc = Scenario::two_weeks(1, 0.1);
        let count = |class: AnomalyClass| sc.events().iter().filter(|e| e.class() == class).count();
        assert_eq!(count(AnomalyClass::Scanning), 12);
        assert_eq!(count(AnomalyClass::Flooding), 5);
        assert_eq!(count(AnomalyClass::Backscatter), 5);
        assert_eq!(count(AnomalyClass::DDoS), 4);
        assert_eq!(count(AnomalyClass::Spam), 4);
        assert_eq!(count(AnomalyClass::NetworkExperiment), 3);
        assert_eq!(count(AnomalyClass::Unknown), 3);
    }

    #[test]
    fn generation_is_deterministic() {
        let sc = Scenario::small(7);
        let a = sc.generate(20);
        let b = sc.generate(20);
        assert_eq!(a.flows, b.flows);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn event_interval_carries_labeled_flows() {
        let sc = Scenario::small(7);
        let iv = sc.generate(20);
        assert!(iv.is_anomalous());
        assert_eq!(iv.event_flow_count(EventId(0)), 3000);
        // Background is present too.
        assert!(iv.flows.len() > 3000);
    }

    #[test]
    fn clean_interval_has_no_labels() {
        let sc = Scenario::small(7);
        let iv = sc.generate(5);
        assert!(!iv.is_anomalous());
        assert_eq!(iv.anomalous_flow_count(), 0);
    }

    #[test]
    fn flows_are_time_sorted_within_window() {
        let sc = Scenario::small(7);
        let iv = sc.generate(20);
        assert!(iv.flows.windows(2).all(|w| w[0].start_ms <= w[1].start_ms));
        assert!(iv
            .flows
            .iter()
            .all(|f| f.start_ms >= iv.begin_ms && f.start_ms < iv.end_ms));
    }

    #[test]
    fn scale_multiplies_volumes() {
        let small = Scenario::two_weeks(1, 0.05);
        let big = Scenario::two_weeks(1, 0.1);
        assert_eq!(
            big.config().background.flows_per_interval,
            2 * small.config().background.flows_per_interval
        );
        assert_eq!(
            big.events()[0].flows_per_interval,
            2 * small.events()[0].flows_per_interval
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = Scenario::small(1).generate(3);
        let b = Scenario::small(2).generate(3);
        assert_ne!(a.flows, b.flows);
    }

    #[test]
    #[should_panic(expected = "extends beyond the scenario")]
    fn event_past_end_panics() {
        let mut sc = Scenario::small(1);
        let cfg = sc.config().clone();
        let mut events = sc.events().to_vec();
        events[0].start_interval = 39;
        events[0].duration = 5;
        sc = Scenario::new(cfg, events);
        let _ = sc;
    }

    #[test]
    #[should_panic(expected = "interval out of range")]
    fn generate_out_of_range_panics() {
        let _ = Scenario::small(1).generate(40);
    }
}
