//! The anomaly-extraction pipeline (paper Fig. 3).
//!
//! Detector bank → alarm meta-data (union over features) → pre-filter →
//! frequent item-set mining → maximal item-sets as the anomaly summary.
//! [`AnomalyExtractor`] runs the whole loop online, interval by interval;
//! [`extract_with_metadata`] is the offline entry point when the meta-data
//! comes from elsewhere (another detector type from Table I, or an
//! administrator's manual hints).

use std::num::NonZeroUsize;

use anomex_detector::{BankObservation, DetectorBank, MetaData};
use anomex_mining::apriori::{apriori_exec, AprioriConfig};
use anomex_mining::par::Exec;
use anomex_mining::{
    merge_rule_sets, ItemSet, LevelStats, MineTask, MinerKind, RuleConfig, RuleSet, TransactionSet,
};
use anomex_netflow::{FlowColumns, FlowRecord};
use serde::{Deserialize, Serialize};

use crate::config::{ConfigError, ExtractionConfig};
use crate::cost::cost_reduction;
use crate::prefilter::PrefilterMode;
use crate::sharded::ShardedExtractor;

/// How flows are mapped to mining transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TransactionMode {
    /// The paper's canonical width-7 transactions (§II-B).
    #[default]
    Canonical,
    /// Width-9 transactions with source/destination /16 prefixes — the
    /// §III-D multilevel extension that captures anomalies spread across
    /// network ranges (outages, routing shifts, subnet-targeted scans).
    WithPrefixes,
}

impl TransactionMode {
    /// Build the transaction set for a batch of flows under this mode.
    #[must_use]
    pub fn transactions(self, flows: &[FlowRecord]) -> TransactionSet {
        match self {
            TransactionMode::Canonical => TransactionSet::from_flows(flows),
            TransactionMode::WithPrefixes => TransactionSet::from_flows_extended(flows),
        }
    }

    /// Build the transaction set for the flows selected by `indices` —
    /// the zero-copy path from a pre-filter index slice straight to
    /// mining input, with no intermediate `Vec<FlowRecord>`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds for `flows`.
    #[must_use]
    pub fn transactions_at(self, flows: &[FlowRecord], indices: &[usize]) -> TransactionSet {
        match self {
            TransactionMode::Canonical => TransactionSet::from_flows_at(flows, indices),
            TransactionMode::WithPrefixes => TransactionSet::from_flows_extended_at(flows, indices),
        }
    }

    /// Build the transaction set for the columnar rows selected by
    /// `indices` — the struct-of-arrays counterpart of
    /// [`transactions_at`](Self::transactions_at), gathering one feature
    /// column at a time. Bit-identical to converting the rows to
    /// [`FlowRecord`]s first.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds for `cols`.
    #[must_use]
    pub fn transactions_at_columns(self, cols: &FlowColumns, indices: &[usize]) -> TransactionSet {
        match self {
            TransactionMode::Canonical => TransactionSet::from_columns_at(cols, indices),
            TransactionMode::WithPrefixes => {
                TransactionSet::from_columns_extended_at(cols, indices)
            }
        }
    }
}

/// The product of one extraction: the paper's "summary report of frequent
/// item-sets in the set of suspicious flows".
#[derive(Debug, Clone)]
pub struct Extraction {
    /// Interval index the extraction belongs to.
    pub interval: u64,
    /// The consolidated meta-data that drove pre-filtering.
    pub metadata: MetaData,
    /// Flows observed in the interval.
    pub total_flows: usize,
    /// Flows surviving the pre-filter (the mining input).
    pub suspicious_flows: usize,
    /// The extracted maximal frequent item-sets, canonically ordered.
    pub itemsets: Vec<ItemSet>,
    /// Apriori per-level audit trail (empty for other miners).
    pub levels: Vec<LevelStats>,
    /// Classification-cost reduction `R = F / I` for this interval.
    pub cost_reduction: f64,
    /// The ranked association rules, present iff the configuration
    /// enables the rule layer ([`ExtractionConfig::rules`]).
    pub rules: Option<RuleSet>,
}

/// Offline extraction: pre-filter `flows` with the given meta-data and
/// mine maximal frequent item-sets (canonical width-7 transactions).
///
/// # Panics
///
/// Panics if `min_support` is zero.
#[doc(hidden)]
#[deprecated(note = "use Engine::extract with an ExtractRequest")]
#[must_use]
pub fn extract_with_metadata(
    interval: u64,
    flows: &[FlowRecord],
    metadata: &MetaData,
    mode: PrefilterMode,
    miner: MinerKind,
    min_support: u64,
) -> Extraction {
    crate::sharded::extract_sharded_impl(
        interval,
        flows,
        metadata,
        mode,
        TransactionMode::Canonical,
        miner,
        min_support,
        None,
        NonZeroUsize::MIN,
    )
}

/// Offline extraction with an explicit [`TransactionMode`] (canonical or
/// prefix-extended transactions).
///
/// # Panics
///
/// Panics if `min_support` is zero.
#[doc(hidden)]
#[deprecated(note = "use Engine::extract with an ExtractRequest (set .transactions(...))")]
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn extract_with_mode(
    interval: u64,
    flows: &[FlowRecord],
    metadata: &MetaData,
    mode: PrefilterMode,
    tx_mode: TransactionMode,
    miner: MinerKind,
    min_support: u64,
) -> Extraction {
    crate::sharded::extract_sharded_impl(
        interval,
        flows,
        metadata,
        mode,
        tx_mode,
        miner,
        min_support,
        None,
        NonZeroUsize::MIN,
    )
}

/// Offline extraction with the association-rule layer enabled: the
/// item-set report of [`extract_with_mode`] plus the generated,
/// filtered, z-score-ranked rules in [`Extraction::rules`].
///
/// # Panics
///
/// Panics if `min_support` is zero.
#[doc(hidden)]
#[deprecated(note = "use Engine::extract with an ExtractRequest (set .rules(...))")]
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn extract_with_rules(
    interval: u64,
    flows: &[FlowRecord],
    metadata: &MetaData,
    mode: PrefilterMode,
    tx_mode: TransactionMode,
    miner: MinerKind,
    min_support: u64,
    rules: &RuleConfig,
) -> Extraction {
    crate::sharded::extract_sharded_impl(
        interval,
        flows,
        metadata,
        mode,
        tx_mode,
        miner,
        min_support,
        Some(rules),
        NonZeroUsize::MIN,
    )
}

/// The shared mining tail of every extraction path: gather transactions
/// for the pre-filtered `indices` from a [`FlowColumns`] store (one
/// feature column at a time, zero-copy — straight from index slice to
/// transactions), mine maximal item-sets in the given execution context
/// (inline, scoped threads, or the engine's persistent worker pool),
/// optionally layer the association rules on top
/// ([`MineTask::run_with_rules`] — one mining pass serves both outputs),
/// and assemble the [`Extraction`]. Bit-identical to mining the
/// equivalent `FlowRecord` slice, by construction — the gathered
/// transaction sets are equal and everything downstream consumes only
/// transactions.
#[allow(clippy::too_many_arguments)]
pub(crate) fn mine_at_indices_columns(
    interval: u64,
    cols: &FlowColumns,
    indices: &[usize],
    metadata: &MetaData,
    tx_mode: TransactionMode,
    miner: MinerKind,
    min_support: u64,
    rule_config: Option<&RuleConfig>,
    exec: Exec<'_>,
) -> Extraction {
    let transactions = tx_mode.transactions_at_columns(cols, indices);
    mine_transactions(
        interval,
        cols.len(),
        &transactions,
        indices.len(),
        metadata,
        miner,
        min_support,
        rule_config,
        exec,
    )
}

/// The storage-agnostic mining tail shared by the record and columnar
/// extraction paths: mine maximal item-sets over the pre-built
/// transactions, optionally layer the association rules, and assemble
/// the [`Extraction`].
#[allow(clippy::too_many_arguments)]
fn mine_transactions(
    interval: u64,
    total_flows: usize,
    transactions: &TransactionSet,
    suspicious_flows: usize,
    metadata: &MetaData,
    miner: MinerKind,
    min_support: u64,
    rule_config: Option<&RuleConfig>,
    exec: Exec<'_>,
) -> Extraction {
    let (itemsets, levels, rules) = match rule_config {
        Some(rc) => {
            let out = MineTask::maximal(miner, transactions, min_support).run_with_rules(rc, exec);
            (out.itemsets, out.levels, Some(out.rules))
        }
        None => match miner {
            MinerKind::Apriori => {
                let out = apriori_exec(transactions, &AprioriConfig::maximal(min_support), exec);
                (out.itemsets, out.levels, None)
            }
            other => (
                other.mine_maximal_exec(transactions, min_support, exec),
                Vec::new(),
                None,
            ),
        },
    };
    let cost = cost_reduction(total_flows as u64, itemsets.len());
    Extraction {
        interval,
        metadata: metadata.clone(),
        total_flows,
        suspicious_flows,
        itemsets,
        levels,
        cost_reduction: cost,
        rules,
    }
}

/// Per-source rule extraction and merge — the weighted-support answer to
/// multi-link operation: mine rules **per source segment** with the
/// support floor scaled to the segment's share of the interval
/// (`max(1, s·|segment|/|interval|)`, exact integer arithmetic), then
/// merge and re-score the per-source populations at the rule layer
/// ([`merge_rule_sets`]), so a rule that is anomalous on a low-rate link
/// ranks against the union population instead of disappearing under an
/// absolute floor sized for the aggregate.
///
/// `flows` is the merged interval with the sources' flows concatenated
/// in registration order and `source_flows` their segment lengths (as
/// both the batch fan-in and the streaming watermark merge produce);
/// `metadata` is the consolidated meta-data that drove the interval's
/// extraction. Returns `None` when the configuration has no rule layer
/// or the segment lengths do not partition `flows`.
#[must_use]
pub fn merge_source_rules(
    flows: &[FlowRecord],
    source_flows: &[usize],
    metadata: &MetaData,
    config: &ExtractionConfig,
) -> Option<RuleSet> {
    let rule_config = config.rules.as_ref()?;
    if source_flows.iter().sum::<usize>() != flows.len() {
        return None;
    }
    let total = flows.len() as u64;
    let mut per_source = Vec::with_capacity(source_flows.len());
    let mut start = 0;
    for &len in source_flows {
        let segment = &flows[start..start + len];
        start += len;
        if segment.is_empty() || total == 0 {
            continue;
        }
        let support = (config.min_support * len as u64 / total).max(1);
        let extraction = crate::sharded::extract_sharded_impl(
            0,
            segment,
            metadata,
            config.prefilter,
            config.transactions,
            config.miner,
            support,
            Some(rule_config),
            NonZeroUsize::MIN,
        );
        if let Some(rules) = extraction.rules {
            per_source.push(rules);
        }
    }
    Some(merge_rule_sets(&per_source))
}

/// Outcome of feeding one interval to the online pipeline.
#[derive(Debug, Clone)]
pub struct IntervalOutcome {
    /// What the detector bank saw (KL values, alarms, meta-data).
    pub observation: BankObservation,
    /// The extraction, present iff the bank alarmed with non-empty
    /// meta-data.
    pub extraction: Option<Extraction>,
}

/// The online anomaly-extraction pipeline.
#[derive(Debug)]
pub struct AnomalyExtractor {
    inner: ShardedExtractor,
}

impl AnomalyExtractor {
    /// Build the pipeline from a configuration, rejecting invalid
    /// parameters with an error instead of a panic — the entry point for
    /// library users who propagate configuration problems.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint (see
    /// [`ExtractionConfig::validate`]).
    pub fn try_new(config: ExtractionConfig) -> Result<Self, ConfigError> {
        // One shard ⇒ the engine runs every stage inline, with no worker
        // threads — the sequential pipeline is the sharded pipeline at
        // K = 1, so there is exactly one implementation to keep correct.
        let inner = ShardedExtractor::try_new(config, NonZeroUsize::MIN)?;
        Ok(AnomalyExtractor { inner })
    }

    /// Build the pipeline from a configuration.
    ///
    /// A thin wrapper over [`try_new`](Self::try_new) for callers who
    /// treat a bad configuration as a programming error.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[deprecated(note = "use try_new and handle the ConfigError")]
    #[must_use]
    pub fn new(config: ExtractionConfig) -> Self {
        Self::try_new(config).unwrap_or_else(|e| panic!("invalid extraction configuration: {e}"))
    }

    /// The pipeline configuration.
    #[must_use]
    pub fn config(&self) -> &ExtractionConfig {
        self.inner.config()
    }

    /// The underlying detector bank (KL series, memory accounting, …).
    #[must_use]
    pub fn bank(&self) -> &DetectorBank {
        self.inner.bank()
    }

    /// Whether all detectors have finished training.
    #[must_use]
    pub fn is_trained(&self) -> bool {
        self.inner.is_trained()
    }

    /// Feed one interval's flows through detection and, on alarm,
    /// extraction.
    pub fn process_interval(&mut self, flows: &[FlowRecord]) -> IntervalOutcome {
        self.inner.process_interval(flows)
    }

    /// Representation-agnostic interval entry point — see
    /// [`IntervalInput`](crate::IntervalInput).
    pub fn process<'a>(
        &mut self,
        input: impl Into<crate::engine::IntervalInput<'a>>,
    ) -> IntervalOutcome {
        self.inner.process(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, ExtractRequest};
    use anomex_detector::DetectorConfig;
    use anomex_netflow::{FlowFeature, Protocol};
    use anomex_traffic::Scenario;
    use std::net::Ipv4Addr;

    fn test_config(min_support: u64) -> ExtractionConfig {
        ExtractionConfig {
            interval_ms: 60_000,
            detector: DetectorConfig {
                training_intervals: 10,
                ..DetectorConfig::default()
            },
            min_support,
            ..ExtractionConfig::default()
        }
    }

    #[test]
    fn offline_extraction_finds_planted_pattern() {
        // 500 identical-port flows + diffuse noise; metadata points at the
        // port.
        let mut flows = Vec::new();
        for i in 0..500u32 {
            flows.push(
                FlowRecord::new(
                    u64::from(i),
                    Ipv4Addr::from(0x0900_0000 + i),
                    Ipv4Addr::new(10, 0, 0, 7),
                    (1024 + i % 50_000) as u16,
                    7000,
                    Protocol::Tcp,
                )
                .with_volume(1, 48),
            );
        }
        for i in 0..500u32 {
            flows.push(FlowRecord::new(
                u64::from(i),
                Ipv4Addr::from(0x0800_0000 + i),
                Ipv4Addr::from(0x0700_0000 + i),
                (2000 + i) as u16,
                (3000 + i) as u16,
                Protocol::Udp,
            ));
        }
        let mut md = MetaData::new();
        md.insert(FlowFeature::DstPort, 7000);
        let ex = Engine::extract(&ExtractRequest::new(&flows, &md, 400));
        assert_eq!(ex.total_flows, 1000);
        assert_eq!(ex.suspicious_flows, 500);
        assert!(!ex.itemsets.is_empty());
        // The top itemset pins the victim and port.
        let top = &ex.itemsets[ex.itemsets.len() - 1];
        let rendered = top.to_string();
        assert!(rendered.contains("dstPort=7000"), "{rendered}");
        assert!(rendered.contains("dstIP=10.0.0.7"), "{rendered}");
        assert!(ex.cost_reduction >= 1000.0 / ex.itemsets.len() as f64 - 1e-9);
        assert!(!ex.levels.is_empty(), "apriori records level stats");
    }

    #[test]
    fn miners_give_identical_extractions() {
        let w = anomex_traffic::table2_workload(5, 0.02);
        let mut md = MetaData::new();
        md.insert(FlowFeature::DstPort, 7000);
        md.insert(FlowFeature::DstPort, 80);
        let a = Engine::extract(&ExtractRequest::new(&w.flows, &md, w.min_support));
        let f = Engine::extract(
            &ExtractRequest::new(&w.flows, &md, w.min_support).miner(MinerKind::FpGrowth),
        );
        let e = Engine::extract(
            &ExtractRequest::new(&w.flows, &md, w.min_support).miner(MinerKind::Eclat),
        );
        assert_eq!(a.itemsets, f.itemsets);
        assert_eq!(f.itemsets, e.itemsets);
        assert_eq!(a.suspicious_flows, f.suspicious_flows);
    }

    #[test]
    fn online_pipeline_extracts_planted_flood() {
        let scenario = Scenario::small(11);
        let mut pipeline = AnomalyExtractor::try_new(test_config(800)).unwrap();
        let mut extractions = Vec::new();
        for i in 0..scenario.interval_count() {
            let interval = scenario.generate(i);
            let outcome = pipeline.process_interval(&interval.flows);
            if let Some(ex) = outcome.extraction {
                extractions.push(ex);
            }
        }
        // The flood at interval 20 must be extracted.
        let flood = extractions.iter().find(|e| e.interval == 20);
        let flood = flood.expect("flood interval extracted");
        let all = flood
            .itemsets
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n");
        assert!(all.contains("dstPort=7000"), "flood port extracted:\n{all}");
        // Pre-filtering reduces the mining input. (The reduction can be
        // modest when the meta-data contains a common packet count — the
        // paper's §III-D caveat about common feature values.)
        assert!(flood.suspicious_flows < flood.total_flows);
        assert!(flood.suspicious_flows > 0);
    }

    #[test]
    fn quiet_intervals_produce_almost_no_extractions() {
        let scenario = Scenario::small(11);
        let mut pipeline = AnomalyExtractor::try_new(test_config(800)).unwrap();
        let mut alarms_in_quiet = 0;
        for i in 0..18 {
            let interval = scenario.generate(i);
            let outcome = pipeline.process_interval(&interval.flows);
            if outcome.extraction.is_some() {
                alarms_in_quiet += 1;
            }
        }
        // A 3σ̂ one-sided threshold admits the occasional stray alarm on
        // clean traffic (that is the point of the ROC analysis); what must
        // not happen is routine alarming.
        assert!(
            alarms_in_quiet <= 1,
            "got {alarms_in_quiet} alarms on quiet traffic"
        );
    }

    #[test]
    #[should_panic(expected = "invalid extraction configuration")]
    fn invalid_config_panics() {
        let mut c = test_config(100);
        c.min_support = 0;
        #[allow(deprecated)]
        let _ = AnomalyExtractor::new(c);
    }

    #[test]
    fn try_new_reports_the_violation_without_panicking() {
        let mut c = test_config(100);
        c.min_support = 0;
        let err = AnomalyExtractor::try_new(c).unwrap_err();
        assert!(err.to_string().contains("support"), "{err}");
        assert!(AnomalyExtractor::try_new(test_config(100)).is_ok());
    }
}
