//! The unified engine API: one front door for every way the pipeline
//! runs.
//!
//! Earlier revisions of this crate grew one entry point per capability —
//! `extract_with_metadata`, `extract_with_mode`, `extract_with_rules`,
//! `extract_sharded`, `extract_sharded_with_rules` for offline work, and
//! `process_interval` / `process_shared` / `process_columns` for the
//! online engine. [`Engine`] collapses them:
//!
//! - **Offline:** build an [`ExtractRequest`] (flows + meta-data + every
//!   knob, each defaulting to the paper's setting) and call
//!   [`Engine::extract`]. One request type replaces five positional
//!   signatures.
//! - **Online:** construct with [`Engine::new`] (`Result`-first; no
//!   panicking path) and feed intervals through [`Engine::process`],
//!   which accepts any interval representation via [`IntervalInput`] —
//!   a record slice, an `Arc`-shared record vector, or an `Arc`-shared
//!   columnar store.
//! - **Durability:** [`Engine::snapshot`] serializes the complete
//!   mutable state (configuration + detector bank) into a checkpoint
//!   payload and [`Engine::restore`] rebuilds an engine that scores
//!   bit-identically from the next interval on.
//! - **Live reconfiguration:** [`Engine::reconfigure`] applies a
//!   [`ReconfigRequest`] — validated as a whole, applied atomically,
//!   rejected without side effects.
//!
//! The old free functions and panicking constructors remain as thin
//! deprecated shims so downstream code migrates at its own pace.

use std::num::NonZeroUsize;
use std::sync::Arc;

use anomex_detector::{DetectorBank, MetaData};
use anomex_mining::{MinerKind, RuleConfig};
use anomex_netflow::snapshot::{RestoreError, SnapshotReader, SnapshotWriter};
use anomex_netflow::{FlowColumns, FlowRecord};

use crate::config::{ConfigError, ExtractionConfig};
use crate::pipeline::{Extraction, IntervalOutcome, TransactionMode};
use crate::prefilter::PrefilterMode;
use crate::sharded::{extract_sharded_impl, PoolStats, ShardedExtractor};

/// One interval's flows, in whichever representation the caller already
/// holds. [`Engine::process`] accepts `impl Into<IntervalInput>`, so
/// plain slices, `Arc`-shared vectors, and columnar stores all feed the
/// same entry point — the engine picks the zero-copy path when the
/// representation allows it.
#[derive(Debug)]
pub enum IntervalInput<'a> {
    /// A borrowed record slice (transposed once into the engine's
    /// recycled columnar scratch).
    Records(&'a [FlowRecord]),
    /// An `Arc`-owned record vector — the streaming engine's currency.
    Shared(&'a Arc<Vec<FlowRecord>>),
    /// An `Arc`-owned columnar store — the transpose-free path.
    Columns(&'a Arc<FlowColumns>),
}

impl<'a> From<&'a [FlowRecord]> for IntervalInput<'a> {
    fn from(flows: &'a [FlowRecord]) -> Self {
        IntervalInput::Records(flows)
    }
}

impl<'a> From<&'a Vec<FlowRecord>> for IntervalInput<'a> {
    fn from(flows: &'a Vec<FlowRecord>) -> Self {
        IntervalInput::Records(flows)
    }
}

impl<'a> From<&'a Arc<Vec<FlowRecord>>> for IntervalInput<'a> {
    fn from(flows: &'a Arc<Vec<FlowRecord>>) -> Self {
        IntervalInput::Shared(flows)
    }
}

impl<'a> From<&'a Arc<FlowColumns>> for IntervalInput<'a> {
    fn from(cols: &'a Arc<FlowColumns>) -> Self {
        IntervalInput::Columns(cols)
    }
}

/// A complete offline extraction request: the flows, the meta-data that
/// drives pre-filtering, and every pipeline knob — built fluently, with
/// each knob defaulting to the paper's setting (union pre-filter,
/// canonical transactions, Apriori, no rule layer, one shard).
///
/// ```
/// use anomex_core::{Engine, ExtractRequest};
/// use anomex_detector::MetaData;
/// use anomex_netflow::FlowFeature;
///
/// let mut md = MetaData::new();
/// md.insert(FlowFeature::DstPort, 7000);
/// let flows = Vec::new();
/// let extraction = Engine::extract(&ExtractRequest::new(&flows, &md, 500));
/// assert_eq!(extraction.total_flows, 0);
/// ```
#[derive(Debug, Clone)]
pub struct ExtractRequest<'a> {
    interval: u64,
    flows: &'a [FlowRecord],
    metadata: &'a MetaData,
    prefilter: PrefilterMode,
    transactions: TransactionMode,
    miner: MinerKind,
    min_support: u64,
    rules: Option<&'a RuleConfig>,
    shards: NonZeroUsize,
}

impl<'a> ExtractRequest<'a> {
    /// A request over `flows` with the given pre-filter `metadata` and
    /// absolute minimum support, everything else at the paper's
    /// defaults.
    #[must_use]
    pub fn new(flows: &'a [FlowRecord], metadata: &'a MetaData, min_support: u64) -> Self {
        ExtractRequest {
            interval: 0,
            flows,
            metadata,
            prefilter: PrefilterMode::Union,
            transactions: TransactionMode::Canonical,
            miner: MinerKind::Apriori,
            min_support,
            rules: None,
            shards: NonZeroUsize::MIN,
        }
    }

    /// Tag the extraction with an interval index (default 0).
    #[must_use]
    pub fn interval(mut self, interval: u64) -> Self {
        self.interval = interval;
        self
    }

    /// Pre-filter semantics (default: union, per the paper).
    #[must_use]
    pub fn prefilter(mut self, mode: PrefilterMode) -> Self {
        self.prefilter = mode;
        self
    }

    /// Transaction shape (default: canonical width-7).
    #[must_use]
    pub fn transactions(mut self, mode: TransactionMode) -> Self {
        self.transactions = mode;
        self
    }

    /// Mining algorithm (default: Apriori; all miners are
    /// bit-identical).
    #[must_use]
    pub fn miner(mut self, miner: MinerKind) -> Self {
        self.miner = miner;
        self
    }

    /// Enable the association-rule layer (default: item-sets only).
    #[must_use]
    pub fn rules(mut self, rules: &'a RuleConfig) -> Self {
        self.rules = Some(rules);
        self
    }

    /// Fan the extraction out over `shards` pool workers (default: 1 =
    /// inline; output is bit-identical for every count).
    #[must_use]
    pub fn shards(mut self, shards: NonZeroUsize) -> Self {
        self.shards = shards;
        self
    }
}

/// A request to change pipeline parameters on a live engine. Every field
/// is optional — `None` leaves the current setting untouched — and the
/// resulting configuration is validated as a whole before anything is
/// applied, so a rejected request has no effect at all.
///
/// In streaming operation
/// ([`StreamingExtractor::reconfigure`](crate::StreamingExtractor::reconfigure))
/// the request travels through the pipeline's work channel and lands
/// **between intervals**: every interval submitted before the request is
/// processed under the old parameters, everything after under the new —
/// no flows are dropped or reprocessed.
#[derive(Debug, Clone, Default)]
pub struct ReconfigRequest {
    /// New absolute minimum support `s` for the miner.
    pub min_support: Option<u64>,
    /// New detector threshold multiplier α. Applies to already-fitted
    /// thresholds too (σ̂ estimates are kept; only the multiplier
    /// moves).
    pub alpha: Option<f64>,
    /// Replace the association-rule layer: `Some(Some(config))` installs
    /// or retunes it, `Some(None)` removes it, `None` leaves it alone.
    pub rules: Option<Option<RuleConfig>>,
    /// New shard count: the persistent worker pool is rebuilt (and its
    /// dispatch overhead recalibrated) at the boundary. Output is
    /// unaffected — the pipeline is bit-identical for every shard count.
    pub shards: Option<NonZeroUsize>,
}

impl ReconfigRequest {
    /// Whether the request changes anything at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.min_support.is_none()
            && self.alpha.is_none()
            && self.rules.is_none()
            && self.shards.is_none()
    }
}

/// The unified anomaly-extraction engine: the sharded online pipeline
/// plus checkpointing and live reconfiguration, behind one API.
///
/// See the [module docs](self) for the entry-point map. `Engine` is a
/// thin facade over [`ShardedExtractor`] — same state, same
/// bit-identical determinism guarantees — that exposes the
/// `Result`-first constructors, the representation-agnostic
/// [`process`](Self::process), and the durability surface.
#[derive(Debug)]
pub struct Engine {
    inner: ShardedExtractor,
}

impl Engine {
    /// Build the engine, rejecting an invalid configuration with an
    /// error. With more than one shard this spawns the persistent worker
    /// pool.
    ///
    /// # Errors
    ///
    /// Returns the first violated configuration constraint.
    pub fn new(config: ExtractionConfig, shards: NonZeroUsize) -> Result<Self, ConfigError> {
        Ok(Engine {
            inner: ShardedExtractor::try_new(config, shards)?,
        })
    }

    /// Build a sequential (single-shard, inline) engine.
    ///
    /// # Errors
    ///
    /// Returns the first violated configuration constraint.
    pub fn sequential(config: ExtractionConfig) -> Result<Self, ConfigError> {
        Self::new(config, NonZeroUsize::MIN)
    }

    /// Build with one shard per available hardware thread.
    ///
    /// # Errors
    ///
    /// Returns the first violated configuration constraint.
    pub fn with_available_parallelism(config: ExtractionConfig) -> Result<Self, ConfigError> {
        Ok(Engine {
            inner: ShardedExtractor::with_available_parallelism(config)?,
        })
    }

    /// One-shot offline extraction: pre-filter the request's flows with
    /// its meta-data and mine maximal frequent item-sets, honouring every
    /// knob on the request. Replaces the former `extract_with_metadata` /
    /// `extract_with_mode` / `extract_with_rules` / `extract_sharded` /
    /// `extract_sharded_with_rules` free functions; output is
    /// bit-identical to all of them for matching parameters.
    ///
    /// # Panics
    ///
    /// Panics if `min_support` is zero or a pool worker panics.
    #[must_use]
    pub fn extract(req: &ExtractRequest<'_>) -> Extraction {
        extract_sharded_impl(
            req.interval,
            req.flows,
            req.metadata,
            req.prefilter,
            req.transactions,
            req.miner,
            req.min_support,
            req.rules,
            req.shards,
        )
    }

    /// The pipeline configuration.
    #[must_use]
    pub fn config(&self) -> &ExtractionConfig {
        self.inner.config()
    }

    /// The underlying detector bank (KL series, memory accounting, …).
    #[must_use]
    pub fn bank(&self) -> &DetectorBank {
        self.inner.bank()
    }

    /// Whether all detectors have finished training.
    #[must_use]
    pub fn is_trained(&self) -> bool {
        self.inner.is_trained()
    }

    /// The number of shards each interval is split into.
    #[must_use]
    pub fn shards(&self) -> NonZeroUsize {
        self.inner.shards()
    }

    /// Scheduler counters from the persistent worker pool.
    #[must_use]
    pub fn pool_stats(&self) -> PoolStats {
        self.inner.pool_stats()
    }

    /// Feed one interval through detection and, on alarm, extraction —
    /// accepting the interval in whichever representation the caller
    /// holds (see [`IntervalInput`]). Replaces the former
    /// `process_interval` / `process_shared` / `process_columns` trio;
    /// bit-identical to each of them on the same flows.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics.
    pub fn process<'a>(&mut self, input: impl Into<IntervalInput<'a>>) -> IntervalOutcome {
        self.inner.process(input)
    }

    /// Apply a validated parameter change at this interval boundary. On
    /// error nothing changes.
    ///
    /// # Errors
    ///
    /// Returns the first constraint the requested configuration would
    /// violate.
    pub fn reconfigure(&mut self, req: &ReconfigRequest) -> Result<(), ConfigError> {
        self.inner.apply_reconfig(req)
    }

    /// Serialize the engine's complete mutable state — configuration and
    /// detector bank — into a checkpoint payload.
    /// [`restore`](Self::restore) rebuilds an engine that scores every
    /// subsequent interval bit-identically to this one.
    #[must_use]
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        self.inner.encode_snapshot(&mut w);
        w.into_bytes()
    }

    /// Rebuild an engine from a [`snapshot`](Self::snapshot) payload.
    /// `shards` overrides the saved shard count (output is unaffected —
    /// determinism is shard-invariant); `None` restores the saved count.
    ///
    /// # Errors
    ///
    /// Any [`RestoreError`] from a truncated, corrupt, or
    /// constraint-violating payload.
    pub fn restore(payload: &[u8], shards: Option<NonZeroUsize>) -> Result<Self, RestoreError> {
        let mut r = SnapshotReader::new(payload);
        let inner = ShardedExtractor::decode_snapshot(&mut r, shards)?;
        r.finish()?;
        Ok(Engine { inner })
    }

    /// Consume the facade, yielding the inner sharded extractor (for
    /// callers wiring the engine into a custom pipeline thread).
    #[must_use]
    pub fn into_inner(self) -> ShardedExtractor {
        self.inner
    }
}

impl From<ShardedExtractor> for Engine {
    fn from(inner: ShardedExtractor) -> Self {
        Engine { inner }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomex_detector::DetectorConfig;
    use anomex_netflow::FlowFeature;
    use anomex_traffic::{table2_workload, Scenario};

    fn nz(n: usize) -> NonZeroUsize {
        NonZeroUsize::new(n).unwrap()
    }

    fn test_config(min_support: u64) -> ExtractionConfig {
        ExtractionConfig {
            interval_ms: 60_000,
            detector: DetectorConfig {
                training_intervals: 10,
                ..DetectorConfig::default()
            },
            min_support,
            ..ExtractionConfig::default()
        }
    }

    #[test]
    fn extract_matches_the_deprecated_free_functions() {
        let w = table2_workload(7, 0.05);
        let mut md = MetaData::new();
        md.insert(FlowFeature::DstPort, 7000);
        md.insert(FlowFeature::DstPort, 80);
        #[allow(deprecated)]
        let old = crate::pipeline::extract_with_metadata(
            0,
            &w.flows,
            &md,
            PrefilterMode::Union,
            MinerKind::Apriori,
            w.min_support,
        );
        let new = Engine::extract(&ExtractRequest::new(&w.flows, &md, w.min_support));
        assert_eq!(new.itemsets, old.itemsets);
        assert_eq!(new.suspicious_flows, old.suspicious_flows);
        assert_eq!(new.cost_reduction.to_bits(), old.cost_reduction.to_bits());
        // And the sharded path through the same request type.
        let sharded = Engine::extract(
            &ExtractRequest::new(&w.flows, &md, w.min_support)
                .miner(MinerKind::Eclat)
                .shards(nz(3)),
        );
        assert_eq!(sharded.itemsets, old.itemsets, "miners and shards agree");
    }

    #[test]
    fn process_accepts_every_interval_representation() {
        let scenario = Scenario::small(11);
        let mut by_slice = Engine::sequential(test_config(800)).unwrap();
        let mut by_arc = Engine::sequential(test_config(800)).unwrap();
        let mut by_columns = Engine::sequential(test_config(800)).unwrap();
        for i in 0..scenario.interval_count().min(14) {
            let interval = scenario.generate(i);
            let a = by_slice.process(interval.flows.as_slice());
            let shared = Arc::new(interval.flows.clone());
            let b = by_arc.process(&shared);
            let mut cols = FlowColumns::new();
            for flow in &interval.flows {
                cols.push(flow);
            }
            let cols = Arc::new(cols);
            let c = by_columns.process(&cols);
            assert_eq!(a.observation.alarm, b.observation.alarm, "interval {i}");
            assert_eq!(b.observation.alarm, c.observation.alarm, "interval {i}");
            assert_eq!(a.observation.metadata, b.observation.metadata);
            assert_eq!(b.observation.metadata, c.observation.metadata);
        }
    }

    #[test]
    fn snapshot_restore_round_trips_bit_identically() {
        let scenario = Scenario::small(11);
        let mut live = Engine::new(test_config(800), nz(2)).unwrap();
        for i in 0..13 {
            let _ = live.process(scenario.generate(i).flows.as_slice());
        }
        let payload = live.snapshot();
        let mut restored = Engine::restore(&payload, Some(nz(1))).unwrap();
        assert_eq!(restored.is_trained(), live.is_trained());
        assert_eq!(restored.config().min_support, live.config().min_support);
        for i in 13..scenario.interval_count().min(22) {
            let flows = scenario.generate(i).flows;
            let a = live.process(flows.as_slice());
            let b = restored.process(flows.as_slice());
            assert_eq!(a.observation.alarm, b.observation.alarm, "interval {i}");
            assert_eq!(a.observation.metadata, b.observation.metadata);
            for (x, y) in a.observation.features.iter().zip(&b.observation.features) {
                for (cx, cy) in x.clones.iter().zip(&y.clones) {
                    assert_eq!(cx.kl.map(f64::to_bits), cy.kl.map(f64::to_bits));
                }
            }
        }
    }

    #[test]
    fn restore_rejects_garbage() {
        assert!(Engine::restore(&[1, 2, 3], None).is_err());
        let mut live = Engine::sequential(test_config(500)).unwrap();
        let _ = live.process([].as_slice());
        let mut payload = live.snapshot();
        payload.truncate(payload.len() / 2);
        assert!(Engine::restore(&payload, None).is_err());
    }

    #[test]
    fn reconfigure_is_atomic() {
        let mut engine = Engine::sequential(test_config(800)).unwrap();
        // Invalid support: rejected, nothing changes.
        let bad = ReconfigRequest {
            min_support: Some(0),
            alpha: Some(5.0),
            ..ReconfigRequest::default()
        };
        assert!(engine.reconfigure(&bad).is_err());
        assert_eq!(engine.config().min_support, 800);
        assert_eq!(engine.config().detector.alpha.to_bits(), 3.0f64.to_bits());
        // Valid request: everything lands, including a pool rebuild.
        let good = ReconfigRequest {
            min_support: Some(400),
            alpha: Some(4.5),
            rules: Some(Some(RuleConfig::default())),
            shards: Some(nz(2)),
        };
        engine.reconfigure(&good).unwrap();
        assert_eq!(engine.config().min_support, 400);
        assert_eq!(engine.config().detector.alpha.to_bits(), 4.5f64.to_bits());
        assert!(engine.config().rules.is_some());
        assert_eq!(engine.shards().get(), 2);
        // Clearing the rule layer via the nested option.
        let clear = ReconfigRequest {
            rules: Some(None),
            ..ReconfigRequest::default()
        };
        engine.reconfigure(&clear).unwrap();
        assert!(engine.config().rules.is_none());
        assert!(ReconfigRequest::default().is_empty());
    }
}
