//! The sharded parallel extraction engine.
//!
//! Every per-interval structure the pipeline builds is a sum over flows:
//! detector histograms (integer bin counts), pre-filter verdicts
//! (per-flow predicates), and miner support counts. [`ShardedExtractor`]
//! exploits that by splitting each interval into balanced contiguous
//! shards ([`anomex_netflow::shard`]) and fanning the work across scoped
//! worker threads (`crossbeam::scope`):
//!
//! ```text
//!            interval flows  ────────┬──────────┬──────────┐
//!                                 shard 0    shard 1    shard K
//!  detect:                       partial₀   partial₁   partialₖ     (threads)
//!                                    └──── merge in order ────┘
//!                                   DetectorBank::observe_partial    (scored once)
//!  pre-filter:                    indices₀   indices₁   indicesₖ     (threads)
//!                                    └─ concat in shard order ─┘
//!  mine:                      transactions built from index slices;
//!                             support counting over chunks, merged     (threads)
//! ```
//!
//! **Determinism is the load-bearing design constraint**: every merge is
//! either an exact integer sum (histogram bins, support counts), a set
//! union (bin value maps), or an in-order concatenation (pre-filter
//! indices, Eclat tid-lists). All are independent of thread scheduling,
//! so the sharded output is **bit-identical** to the sequential path for
//! every shard count and all three miners — asserted by the cross-shard
//! determinism property suite.

use std::num::NonZeroUsize;

use anomex_detector::{BankObservation, DetectorBank, MetaData};
use anomex_mining::par::map_chunks;
use anomex_mining::MinerKind;
use anomex_netflow::shard::default_shards;
use anomex_netflow::FlowRecord;

use crate::config::{ConfigError, ExtractionConfig};
use crate::pipeline::{mine_at_indices, Extraction, IntervalOutcome, TransactionMode};
use crate::prefilter::PrefilterMode;

/// Observe one interval with a detector bank, histogramming `shards`
/// flow shards on worker threads and scoring the merged result — the
/// build-partials → merge → score decomposition of
/// [`DetectorBank::observe`]. Bit-identical KL values to a sequential
/// `observe` call, by construction. Runs inline (no threads) for one
/// shard or intervals too small to amortize spawning.
///
/// # Panics
///
/// Panics if a worker thread panics.
pub fn observe_sharded(
    bank: &mut DetectorBank,
    flows: &[FlowRecord],
    shards: NonZeroUsize,
) -> BankObservation {
    let bank_ref: &DetectorBank = bank;
    let partials = map_chunks(flows, shards, |_, chunk| bank_ref.partial(chunk));
    match partials.into_iter().reduce(|mut acc, p| {
        acc.merge(p);
        acc
    }) {
        Some(merged) => bank.observe_partial(merged),
        // Empty interval: nothing to shard, observe it directly.
        None => bank.observe(flows),
    }
}

/// Pre-filter `flows` into suspicious indices, evaluating shards on
/// worker threads and concatenating the per-shard indices in shard
/// order — identical to [`prefilter_indices`](crate::prefilter_indices)
/// for every shard count.
///
/// # Panics
///
/// Panics if a worker thread panics.
#[must_use]
pub fn prefilter_indices_sharded(
    flows: &[FlowRecord],
    metadata: &MetaData,
    mode: PrefilterMode,
    shards: NonZeroUsize,
) -> Vec<usize> {
    map_chunks(flows, shards, |start, chunk| {
        chunk
            .iter()
            .enumerate()
            .filter(|(_, f)| mode.matches(metadata, f))
            .map(|(i, _)| start + i)
            .collect::<Vec<usize>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Offline sharded extraction: the parallel counterpart of
/// [`extract_with_mode`](crate::extract_with_mode). Pre-filtering runs
/// over flow shards, transactions are built zero-copy from the index
/// slices, and the miner's support counting runs over transaction
/// chunks — all on up to `shards` worker threads, with output
/// bit-identical to the sequential call.
///
/// # Panics
///
/// Panics if `min_support` is zero or a worker thread panics.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn extract_sharded(
    interval: u64,
    flows: &[FlowRecord],
    metadata: &MetaData,
    mode: PrefilterMode,
    tx_mode: TransactionMode,
    miner: MinerKind,
    min_support: u64,
    shards: NonZeroUsize,
) -> Extraction {
    let indices = prefilter_indices_sharded(flows, metadata, mode, shards);
    mine_at_indices(
        interval,
        flows,
        &indices,
        metadata,
        tx_mode,
        miner,
        min_support,
        shards,
    )
}

/// The online anomaly-extraction pipeline, sharded: the drop-in parallel
/// counterpart of [`AnomalyExtractor`](crate::AnomalyExtractor). Each
/// interval is split into `shards` contiguous flow shards; detection,
/// pre-filtering, and mining all fan out over scoped worker threads and
/// merge deterministically, so for any fixed input the outcome stream is
/// bit-identical to the sequential pipeline's regardless of shard count.
#[derive(Debug)]
pub struct ShardedExtractor {
    config: ExtractionConfig,
    shards: NonZeroUsize,
    bank: DetectorBank,
}

impl ShardedExtractor {
    /// Build the sharded pipeline, rejecting an invalid configuration
    /// with an error.
    ///
    /// # Errors
    ///
    /// Returns the first violated configuration constraint.
    pub fn try_new(config: ExtractionConfig, shards: NonZeroUsize) -> Result<Self, ConfigError> {
        config.validate()?;
        let bank = DetectorBank::new(&config.detector);
        Ok(ShardedExtractor {
            config,
            shards,
            bank,
        })
    }

    /// Build the sharded pipeline.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[must_use]
    pub fn new(config: ExtractionConfig, shards: NonZeroUsize) -> Self {
        Self::try_new(config, shards)
            .unwrap_or_else(|e| panic!("invalid extraction configuration: {e}"))
    }

    /// Build the sharded pipeline with one shard per available hardware
    /// thread — the "as fast as the hardware allows" default.
    ///
    /// # Errors
    ///
    /// Returns the first violated configuration constraint.
    pub fn with_available_parallelism(config: ExtractionConfig) -> Result<Self, ConfigError> {
        Self::try_new(config, default_shards())
    }

    /// The pipeline configuration.
    #[must_use]
    pub fn config(&self) -> &ExtractionConfig {
        &self.config
    }

    /// The number of shards each interval is split into.
    #[must_use]
    pub fn shards(&self) -> NonZeroUsize {
        self.shards
    }

    /// The underlying detector bank (KL series, memory accounting, …).
    #[must_use]
    pub fn bank(&self) -> &DetectorBank {
        &self.bank
    }

    /// Whether all detectors have finished training.
    #[must_use]
    pub fn is_trained(&self) -> bool {
        self.bank.is_trained()
    }

    /// Feed one interval's flows through sharded detection and, on
    /// alarm, sharded extraction.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics.
    pub fn process_interval(&mut self, flows: &[FlowRecord]) -> IntervalOutcome {
        let observation = observe_sharded(&mut self.bank, flows, self.shards);
        let extraction = if observation.alarm && !observation.metadata.is_empty() {
            Some(extract_sharded(
                observation.interval,
                flows,
                &observation.metadata,
                self.config.prefilter,
                self.config.transactions,
                self.config.miner,
                self.config.min_support,
                self.shards,
            ))
        } else {
            None
        };
        IntervalOutcome {
            observation,
            extraction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{extract_with_mode, AnomalyExtractor};
    use crate::prefilter::prefilter_indices;
    use anomex_detector::DetectorConfig;
    use anomex_netflow::FlowFeature;
    use anomex_traffic::{table2_workload, Scenario};

    fn nz(n: usize) -> NonZeroUsize {
        NonZeroUsize::new(n).unwrap()
    }

    fn test_config(min_support: u64) -> ExtractionConfig {
        ExtractionConfig {
            interval_ms: 60_000,
            detector: DetectorConfig {
                training_intervals: 10,
                ..DetectorConfig::default()
            },
            min_support,
            ..ExtractionConfig::default()
        }
    }

    #[test]
    fn offline_sharded_extraction_matches_sequential() {
        let w = table2_workload(7, 0.05);
        let mut md = MetaData::new();
        md.insert(FlowFeature::DstPort, 7000);
        md.insert(FlowFeature::DstPort, 80);
        let reference = extract_with_mode(
            0,
            &w.flows,
            &md,
            PrefilterMode::Union,
            TransactionMode::Canonical,
            MinerKind::Apriori,
            w.min_support,
        );
        for shards in 1..=6 {
            let sharded = extract_sharded(
                0,
                &w.flows,
                &md,
                PrefilterMode::Union,
                TransactionMode::Canonical,
                MinerKind::Apriori,
                w.min_support,
                nz(shards),
            );
            assert_eq!(sharded.itemsets, reference.itemsets, "shards={shards}");
            assert_eq!(sharded.levels, reference.levels, "shards={shards}");
            assert_eq!(sharded.suspicious_flows, reference.suspicious_flows);
            assert_eq!(
                sharded.cost_reduction.to_bits(),
                reference.cost_reduction.to_bits()
            );
        }
    }

    #[test]
    fn sharded_prefilter_preserves_index_order() {
        let w = table2_workload(3, 0.02);
        let mut md = MetaData::new();
        md.insert(FlowFeature::DstPort, 7000);
        let reference = prefilter_indices(&w.flows, &md, PrefilterMode::Union);
        for shards in 1..=5 {
            assert_eq!(
                prefilter_indices_sharded(&w.flows, &md, PrefilterMode::Union, nz(shards)),
                reference,
                "shards={shards}"
            );
        }
    }

    #[test]
    fn online_sharded_pipeline_matches_sequential_bit_for_bit() {
        let scenario = Scenario::small(11);
        let mut sequential = AnomalyExtractor::new(test_config(800));
        let mut sharded = ShardedExtractor::new(test_config(800), nz(4));
        for i in 0..scenario.interval_count().min(24) {
            let interval = scenario.generate(i);
            let a = sequential.process_interval(&interval.flows);
            let b = sharded.process_interval(&interval.flows);
            assert_eq!(a.observation.alarm, b.observation.alarm, "interval {i}");
            assert_eq!(a.observation.metadata, b.observation.metadata);
            for (x, y) in a.observation.features.iter().zip(&b.observation.features) {
                for (cx, cy) in x.clones.iter().zip(&y.clones) {
                    assert_eq!(cx.kl.map(f64::to_bits), cy.kl.map(f64::to_bits));
                }
            }
            match (&a.extraction, &b.extraction) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    assert_eq!(x.itemsets, y.itemsets, "interval {i}");
                    assert_eq!(x.levels, y.levels);
                    assert_eq!(x.suspicious_flows, y.suspicious_flows);
                    assert_eq!(x.cost_reduction.to_bits(), y.cost_reduction.to_bits());
                }
                _ => panic!("extraction presence diverged at interval {i}"),
            }
        }
    }

    #[test]
    fn available_parallelism_constructor_works() {
        let e = ShardedExtractor::with_available_parallelism(test_config(500)).unwrap();
        assert!(e.shards().get() >= 1);
        assert!(!e.is_trained());
    }

    #[test]
    fn invalid_config_is_an_error_not_a_panic() {
        let mut c = test_config(100);
        c.min_support = 0;
        assert!(ShardedExtractor::try_new(c, nz(4)).is_err());
    }
}
