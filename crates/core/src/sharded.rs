//! The sharded parallel extraction engine.
//!
//! Every per-interval structure the pipeline builds is a sum over flows:
//! detector histograms (integer bin counts), pre-filter verdicts
//! (per-flow predicates), and miner support counts. [`ShardedExtractor`]
//! exploits that by splitting each interval into balanced contiguous
//! shards ([`anomex_netflow::shard`]) and fanning the work across scoped
//! worker threads (`crossbeam::scope`):
//!
//! ```text
//!            interval flows  ────────┬──────────┬──────────┐
//!                                 shard 0    shard 1    shard K
//!  detect:                       partial₀   partial₁   partialₖ     (threads)
//!                                    └──── merge in order ────┘
//!                                   DetectorBank::observe_partial    (scored once)
//!  pre-filter:                    indices₀   indices₁   indicesₖ     (threads)
//!                                    └─ concat in shard order ─┘
//!  mine:                      transactions built from index slices;
//!                             support counting over chunks, merged     (threads)
//! ```
//!
//! **Determinism is the load-bearing design constraint**: every merge is
//! either an exact integer sum (histogram bins, support counts), a set
//! union (bin value maps), or an in-order concatenation (pre-filter
//! indices, Eclat tid-lists). All are independent of thread scheduling,
//! so the sharded output is **bit-identical** to the sequential path for
//! every shard count and all three miners — asserted by the cross-shard
//! determinism property suite.
//!
//! **Execution model.** A [`ShardedExtractor`] with more than one shard
//! owns a persistent [`crossbeam::WorkerPool`]: its worker threads are
//! spawned once at construction and every interval's shard work —
//! histogram partials, pre-filter verdicts, miner support counts, *and*
//! the miners' recursive search phases (Apriori's join+prune blocks,
//! FP-growth's conditional trees, Eclat's prefix branches, all
//! submitted as fork/join tree tasks via `run_tree`) — is fed to the
//! **same pool**, so shard scatter-gather and in-miner tasks share one
//! set of workers and nothing oversubscribes the machine; splitting is
//! width-aware on both layers (chunk counts and fork decisions both
//! read the pool width). [`extract_sharded`] — the one-shot batch entry
//! point — spawns one pool for the duration of the call and drives
//! pre-filtering and mining through it the same way (one thread-spawn
//! set per call, instead of one per pass as the scoped-thread engine
//! did). The flat `observe_sharded`/`prefilter_indices_sharded` helpers
//! keep scoped threads: they are single-pass calls with nothing to
//! amortize. Pool jobs are `'static`, so per-interval state is shared
//! by `Arc`: the interval's columnar store, the detector's immutable
//! hash specification ([`BankHasher`]), and the alarm meta-data.
//!
//! **Columnar storage.** The engine holds each interval as a
//! [`FlowColumns`] struct-of-arrays store rather than a
//! `Vec<FlowRecord>`: every hot pass — histogram partials, pre-filter
//! verdicts, transaction gathering — walks only the contiguous
//! column(s) it actually reads, and the shards are *index ranges* over
//! the columns (the same [`anomex_netflow::shard::chunk_ranges`]
//! geometry as record chunking), so batch, streaming, and multi-source
//! operation all ride one store. Record-slice entry points remain and
//! convert once per interval into a recycled columnar scratch buffer.

use std::num::NonZeroUsize;
use std::sync::{Arc, Mutex};

use anomex_detector::{BankHasher, BankObservation, DetectorBank, MetaData};
use anomex_mining::par::{map_chunks, map_ranges_arc, Exec};
use anomex_mining::{MinerKind, RuleConfig};
use anomex_netflow::shard::default_shards;
use anomex_netflow::snapshot::{RestoreError, SnapshotReader, SnapshotWriter};
use anomex_netflow::{FlowColumns, FlowRecord};
pub use crossbeam::PoolStats;
use crossbeam::WorkerPool;

use crate::config::{ConfigError, ExtractionConfig};
use crate::engine::{IntervalInput, ReconfigRequest};
use crate::pipeline::{mine_at_indices_columns, Extraction, IntervalOutcome, TransactionMode};
use crate::prefilter::{PrefilterMode, PrefilterScratch};

/// A pool of recycled [`PrefilterScratch`] buffers shared with `'static`
/// worker-pool closures: each shard pops one (or starts fresh), filters
/// with it, and pushes it back for the next interval's shards.
type ScratchPool = Arc<Mutex<Vec<PrefilterScratch>>>;

/// Lock a scratch pool, shrugging off poisoning: scratch contents never
/// affect outputs (buffers are re-zeroed on use), so a panicked worker
/// cannot leave the pool in a state worth dying over.
fn lock_scratch(pool: &ScratchPool) -> std::sync::MutexGuard<'_, Vec<PrefilterScratch>> {
    pool.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Observe one interval with a detector bank, histogramming `shards`
/// flow shards on worker threads and scoring the merged result — the
/// build-partials → merge → score decomposition of
/// [`DetectorBank::observe`]. Bit-identical KL values to a sequential
/// `observe` call, by construction. Runs inline (no threads) for one
/// shard or intervals too small to amortize spawning.
///
/// # Panics
///
/// Panics if a worker thread panics.
pub fn observe_sharded(
    bank: &mut DetectorBank,
    flows: &[FlowRecord],
    shards: NonZeroUsize,
) -> BankObservation {
    let bank_ref: &DetectorBank = bank;
    let partials = map_chunks(flows, shards, |_, chunk| bank_ref.partial(chunk));
    match partials.into_iter().reduce(|mut acc, p| {
        acc.merge(p);
        acc
    }) {
        Some(merged) => bank.observe_partial(merged),
        // Empty interval: nothing to shard, observe it directly.
        None => bank.observe(flows),
    }
}

/// Pre-filter `flows` into suspicious indices, evaluating shards on
/// worker threads and concatenating the per-shard indices in shard
/// order — identical to [`prefilter_indices`](crate::prefilter_indices)
/// for every shard count.
///
/// # Panics
///
/// Panics if a worker thread panics.
#[must_use]
pub fn prefilter_indices_sharded(
    flows: &[FlowRecord],
    metadata: &MetaData,
    mode: PrefilterMode,
    shards: NonZeroUsize,
) -> Vec<usize> {
    map_chunks(flows, shards, |start, chunk| {
        chunk
            .iter()
            .enumerate()
            .filter(|(_, f)| mode.matches(metadata, f))
            .map(|(i, _)| start + i)
            .collect::<Vec<usize>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Offline sharded extraction: the parallel counterpart of
/// [`extract_with_mode`](crate::extract_with_mode). One
/// [`WorkerPool`] of `shards` workers is spawned for the duration of
/// the call and drives everything: pre-filtering fans out over flow
/// shards, transactions are built zero-copy from the index slices, and
/// the miner runs its counting passes *and* its recursive search (tree
/// tasks) on the same pool — with output bit-identical to the
/// sequential call for every shard count. At one shard the whole
/// extraction runs inline, pool-free.
///
/// # Panics
///
/// Panics if `min_support` is zero or a pool worker panics.
#[doc(hidden)]
#[deprecated(note = "use Engine::extract with an ExtractRequest (set .shards(...))")]
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn extract_sharded(
    interval: u64,
    flows: &[FlowRecord],
    metadata: &MetaData,
    mode: PrefilterMode,
    tx_mode: TransactionMode,
    miner: MinerKind,
    min_support: u64,
    shards: NonZeroUsize,
) -> Extraction {
    extract_sharded_impl(
        interval,
        flows,
        metadata,
        mode,
        tx_mode,
        miner,
        min_support,
        None,
        shards,
    )
}

/// [`extract_sharded`] with the association-rule layer enabled: the rule
/// generation fans out on the same per-call [`WorkerPool`] as the miner
/// (tree tasks merged in spawn order), so [`Extraction::rules`] is
/// bit-identical to the sequential
/// [`extract_with_rules`](crate::extract_with_rules) for every shard
/// count.
///
/// # Panics
///
/// Panics if `min_support` is zero or a pool worker panics.
#[doc(hidden)]
#[deprecated(note = "use Engine::extract with an ExtractRequest (set .rules(...).shards(...))")]
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn extract_sharded_with_rules(
    interval: u64,
    flows: &[FlowRecord],
    metadata: &MetaData,
    mode: PrefilterMode,
    tx_mode: TransactionMode,
    miner: MinerKind,
    min_support: u64,
    rules: &RuleConfig,
    shards: NonZeroUsize,
) -> Extraction {
    extract_sharded_impl(
        interval,
        flows,
        metadata,
        mode,
        tx_mode,
        miner,
        min_support,
        Some(rules),
        shards,
    )
}

/// The one offline extraction implementation, shared by
/// [`Engine::extract`](crate::Engine::extract) and the deprecated free
/// functions above.
#[allow(clippy::too_many_arguments)]
pub(crate) fn extract_sharded_impl(
    interval: u64,
    flows: &[FlowRecord],
    metadata: &MetaData,
    mode: PrefilterMode,
    tx_mode: TransactionMode,
    miner: MinerKind,
    min_support: u64,
    rules: Option<&RuleConfig>,
    shards: NonZeroUsize,
) -> Extraction {
    // One conversion into the columnar store up front; every pass below
    // (pre-filter, transaction gather) walks contiguous columns.
    let cols = FlowColumns::from_flows(flows);
    if shards.get() == 1 {
        let indices = crate::prefilter::prefilter_indices_columns(&cols, metadata, mode);
        return mine_at_indices_columns(
            interval,
            &cols,
            &indices,
            metadata,
            tx_mode,
            miner,
            min_support,
            rules,
            Exec::inline(),
        );
    }
    let pool = WorkerPool::new(shards);
    let exec = Exec::Pool(&pool);
    // Pool jobs are `'static`: move the freshly built columns behind an
    // `Arc` (the same cost the online engine pays per interval).
    let shared = Arc::new(cols);
    let metadata_arc = Arc::new(metadata.clone());
    let indices =
        prefilter_indices_exec_columns(&shared, &metadata_arc, mode, exec, &ScratchPool::default());
    mine_at_indices_columns(
        interval,
        &shared,
        &indices,
        metadata,
        tx_mode,
        miner,
        min_support,
        rules,
        exec,
    )
}

/// Observe one columnar interval in the given execution context: workers
/// build [`BankHasher`] partials over *index ranges* of the store (each
/// feature's histogram fed by a single-column scan), the partials merge
/// in range order, and the bank scores the result once — bit-identical
/// KL values to a sequential record-based `observe`, for every context.
fn observe_exec_columns(
    bank: &mut DetectorBank,
    hasher: &Arc<BankHasher>,
    cols: &Arc<FlowColumns>,
    exec: Exec<'_>,
) -> BankObservation {
    let hasher = Arc::clone(hasher);
    let partials = map_ranges_arc(exec, cols, cols.len(), move |cols, range| {
        hasher.partial_columns(cols, range)
    });
    match partials.into_iter().reduce(|mut acc, p| {
        acc.merge(p);
        acc
    }) {
        Some(merged) => bank.observe_partial(merged),
        // Empty interval: nothing to shard, observe it directly.
        None => bank.observe(&[]),
    }
}

/// Pre-filter an `Arc`-shared columnar interval into suspicious indices
/// in the given execution context, concatenating per-range indices in
/// range order — identical to
/// [`prefilter_indices`](crate::prefilter_indices) over the equivalent
/// record slice, for every context.
fn prefilter_indices_exec_columns(
    cols: &Arc<FlowColumns>,
    metadata: &Arc<MetaData>,
    mode: PrefilterMode,
    exec: Exec<'_>,
    scratch: &ScratchPool,
) -> Vec<usize> {
    let metadata = Arc::clone(metadata);
    let scratch = Arc::clone(scratch);
    map_ranges_arc(exec, cols, cols.len(), move |cols, range| {
        let mut s = lock_scratch(&scratch).pop().unwrap_or_default();
        let out = crate::prefilter::prefilter_indices_columns_range_with(
            cols, range, &metadata, mode, &mut s,
        );
        lock_scratch(&scratch).push(s);
        out
    })
    .into_iter()
    .flatten()
    .collect()
}

/// The online anomaly-extraction pipeline, sharded: the drop-in parallel
/// counterpart of [`AnomalyExtractor`](crate::AnomalyExtractor). Each
/// interval is split into `shards` contiguous flow shards; detection,
/// pre-filtering, and mining all fan out over a **persistent worker
/// pool** (spawned once at construction, fed jobs every interval) and
/// merge deterministically, so for any fixed input the outcome stream is
/// bit-identical to the sequential pipeline's regardless of shard count.
///
/// At one shard the pipeline runs inline — no pool, no threads, no
/// copies — and *is* the sequential pipeline; there is exactly one
/// implementation to keep correct.
#[derive(Debug)]
pub struct ShardedExtractor {
    config: ExtractionConfig,
    shards: NonZeroUsize,
    bank: DetectorBank,
    /// Immutable histogramming spec shared with pool workers each
    /// interval; the mutable scoring state stays in `bank`.
    hasher: Arc<BankHasher>,
    /// The long-lived worker pool; `None` at one shard (inline).
    pool: Option<WorkerPool>,
    /// Recycled columnar store backing the per-interval `Arc`: record
    /// input transposes into these columns, and after the interval's
    /// jobs finish the `Arc` is unique again and the allocations are
    /// reclaimed — one column-build pass per interval, no per-interval
    /// allocation churn.
    scratch: FlowColumns,
    /// Recycled pre-filter hit buffers, one per in-flight shard —
    /// popped/pushed by the `'static` pool closures each alarmed
    /// interval, so steady-state pre-filtering allocates nothing.
    prefilter_scratch: ScratchPool,
}

impl ShardedExtractor {
    /// Build the sharded pipeline, rejecting an invalid configuration
    /// with an error. With more than one shard this spawns the
    /// persistent worker pool — `shards` long-lived threads that serve
    /// every subsequent interval.
    ///
    /// # Errors
    ///
    /// Returns the first violated configuration constraint.
    pub fn try_new(config: ExtractionConfig, shards: NonZeroUsize) -> Result<Self, ConfigError> {
        config.validate()?;
        let bank = DetectorBank::new(&config.detector);
        let hasher = Arc::new(bank.hasher());
        let pool = (shards.get() > 1).then(|| WorkerPool::new(shards));
        if let Some(pool) = &pool {
            // Persistent pool: measure the real per-task dispatch cost
            // once at startup so every interval's fork decisions use the
            // machine's own overhead instead of the recorded constant.
            let _ = pool.calibrate_dispatch_overhead();
        }
        Ok(ShardedExtractor {
            config,
            shards,
            bank,
            hasher,
            pool,
            scratch: FlowColumns::new(),
            prefilter_scratch: ScratchPool::default(),
        })
    }

    /// Build the sharded pipeline.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[deprecated(note = "use try_new and handle the ConfigError")]
    #[must_use]
    pub fn new(config: ExtractionConfig, shards: NonZeroUsize) -> Self {
        Self::try_new(config, shards)
            .unwrap_or_else(|e| panic!("invalid extraction configuration: {e}"))
    }

    /// Build the sharded pipeline with one shard per available hardware
    /// thread — the "as fast as the hardware allows" default.
    ///
    /// # Errors
    ///
    /// Returns the first violated configuration constraint.
    pub fn with_available_parallelism(config: ExtractionConfig) -> Result<Self, ConfigError> {
        Self::try_new(config, default_shards())
    }

    /// The pipeline configuration.
    #[must_use]
    pub fn config(&self) -> &ExtractionConfig {
        &self.config
    }

    /// The number of shards each interval is split into.
    #[must_use]
    pub fn shards(&self) -> NonZeroUsize {
        self.shards
    }

    /// The underlying detector bank (KL series, memory accounting, …).
    #[must_use]
    pub fn bank(&self) -> &DetectorBank {
        &self.bank
    }

    /// Whether all detectors have finished training.
    #[must_use]
    pub fn is_trained(&self) -> bool {
        self.bank.is_trained()
    }

    /// Scheduler counters from the persistent worker pool — tree tasks
    /// dispatched, successful steals, the tree-queue depth high-water
    /// mark, and the calibrated dispatch overhead. All zeros at one
    /// shard (the pipeline runs inline; there is no pool).
    #[must_use]
    pub fn pool_stats(&self) -> PoolStats {
        self.pool
            .as_ref()
            .map(WorkerPool::stats)
            .unwrap_or_default()
    }

    /// Feed one interval through the pipeline, in whichever
    /// representation the caller holds — the unified entry point behind
    /// [`process_interval`](Self::process_interval),
    /// [`process_shared`](Self::process_shared), and
    /// [`process_columns`](Self::process_columns), all of which it
    /// dispatches to. Bit-identical across representations of the same
    /// flows.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics.
    pub fn process<'a>(&mut self, input: impl Into<IntervalInput<'a>>) -> IntervalOutcome {
        match input.into() {
            IntervalInput::Records(flows) => self.process_interval(flows),
            IntervalInput::Shared(flows) => self.process_shared(flows),
            IntervalInput::Columns(cols) => self.process_columns(cols),
        }
    }

    /// Serialize the engine's complete mutable state: the full
    /// configuration (so a restore is self-contained) followed by the
    /// shard count and the detector bank's temporal state. Structural
    /// state — hashers, bins, clone wiring — is *not* serialized; it is
    /// rebuilt deterministically from the configuration's seeds.
    pub fn encode_snapshot(&self, w: &mut SnapshotWriter) {
        self.config.encode_snapshot(w);
        w.usize(self.shards.get());
        self.bank.encode_snapshot(w);
    }

    /// Rebuild an engine from a snapshot written by
    /// [`encode_snapshot`](Self::encode_snapshot). `shards` overrides
    /// the saved shard count (the output stream is shard-invariant, so
    /// a checkpoint taken at 8 shards restores correctly onto a 2-core
    /// box); `None` keeps the saved count.
    ///
    /// # Errors
    ///
    /// Any [`RestoreError`] from a truncated or corrupt payload, or one
    /// whose configuration fails validation.
    pub fn decode_snapshot(
        r: &mut SnapshotReader<'_>,
        shards: Option<NonZeroUsize>,
    ) -> Result<Self, RestoreError> {
        let config = ExtractionConfig::decode_snapshot(r)?;
        let saved_shards = r.usize()?;
        let shards = match shards {
            Some(s) => s,
            None => NonZeroUsize::new(saved_shards)
                .ok_or_else(|| RestoreError::Corrupt("zero shard count".into()))?,
        };
        let mut engine = Self::try_new(config, shards)
            .map_err(|e| RestoreError::Corrupt(format!("invalid restored engine: {e}")))?;
        engine.bank.restore_snapshot(r)?;
        Ok(engine)
    }

    /// Apply a validated parameter change: the requested overrides are
    /// merged into a candidate configuration, the candidate is validated
    /// as a whole, and only then does anything land — a rejected request
    /// leaves the engine untouched. A new α propagates into
    /// already-fitted thresholds (σ̂ estimates are kept); a new shard
    /// count rebuilds the persistent worker pool and recalibrates its
    /// dispatch overhead.
    ///
    /// # Errors
    ///
    /// Returns the first constraint the requested configuration would
    /// violate.
    pub fn apply_reconfig(&mut self, req: &ReconfigRequest) -> Result<(), ConfigError> {
        let mut candidate = self.config.clone();
        if let Some(s) = req.min_support {
            candidate.min_support = s;
        }
        if let Some(alpha) = req.alpha {
            candidate.detector.alpha = alpha;
        }
        if let Some(rules) = &req.rules {
            candidate.rules = *rules;
        }
        candidate.validate()?;
        self.config = candidate;
        if let Some(alpha) = req.alpha {
            self.bank.set_alpha(alpha);
        }
        if let Some(shards) = req.shards {
            if shards != self.shards {
                self.shards = shards;
                self.pool = (shards.get() > 1).then(|| WorkerPool::new(shards));
                if let Some(pool) = &self.pool {
                    let _ = pool.calibrate_dispatch_overhead();
                }
            }
        }
        Ok(())
    }

    /// Feed one interval's flows through sharded detection and, on
    /// alarm, sharded extraction.
    ///
    /// The borrowed records transpose once into the engine's recycled
    /// columnar scratch store; every subsequent pass walks contiguous
    /// columns (shared with pool jobs behind an `Arc` when the pool is
    /// active, inline at one shard). Callers that already hold a
    /// columnar interval use [`process_columns`](Self::process_columns)
    /// and skip the transpose.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics.
    pub fn process_interval(&mut self, flows: &[FlowRecord]) -> IntervalOutcome {
        let mut cols = std::mem::take(&mut self.scratch);
        cols.clear();
        for flow in flows {
            cols.push(flow);
        }
        let shared = Arc::new(cols);
        let outcome = self.process_columns(&shared);
        if let Ok(cols) = Arc::try_unwrap(shared) {
            self.scratch = cols;
        }
        outcome
    }

    /// Feed one `Arc`-owned record interval through the pipeline — the
    /// entry point of the streaming engine, which owns each assembled
    /// interval outright (and keeps the record layout visible to event
    /// consumers). The records transpose into the recycled columnar
    /// scratch exactly as [`process_interval`](Self::process_interval)
    /// does, so the outcome is bit-identical to it on the same flows.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics.
    pub fn process_shared(&mut self, flows: &Arc<Vec<FlowRecord>>) -> IntervalOutcome {
        self.process_interval(flows)
    }

    /// Feed one `Arc`-owned columnar interval through the pipeline — the
    /// transpose-free entry point for callers that already hold the
    /// interval as a [`FlowColumns`] store (e.g. built straight from
    /// datagrams via
    /// [`decode_into_columns`](anomex_netflow::v5::decode_into_columns)).
    /// Bit-identical to [`process_interval`](Self::process_interval)
    /// over `cols.to_flows()`.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics.
    pub fn process_columns(&mut self, cols: &Arc<FlowColumns>) -> IntervalOutcome {
        let exec = match &self.pool {
            Some(pool) => Exec::Pool(pool),
            None => Exec::Threads(NonZeroUsize::MIN),
        };
        let observation = observe_exec_columns(&mut self.bank, &self.hasher, cols, exec);
        let extraction = if observation.alarm && !observation.metadata.is_empty() {
            let metadata = Arc::new(observation.metadata.clone());
            let indices = prefilter_indices_exec_columns(
                cols,
                &metadata,
                self.config.prefilter,
                exec,
                &self.prefilter_scratch,
            );
            Some(mine_at_indices_columns(
                observation.interval,
                cols,
                &indices,
                &metadata,
                self.config.transactions,
                self.config.miner,
                self.config.min_support,
                self.config.rules.as_ref(),
                exec,
            ))
        } else {
            None
        };
        IntervalOutcome {
            observation,
            extraction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, ExtractRequest};
    use crate::pipeline::AnomalyExtractor;
    use crate::prefilter::prefilter_indices;
    use anomex_detector::DetectorConfig;
    use anomex_netflow::FlowFeature;
    use anomex_traffic::{table2_workload, Scenario};

    fn nz(n: usize) -> NonZeroUsize {
        NonZeroUsize::new(n).unwrap()
    }

    fn test_config(min_support: u64) -> ExtractionConfig {
        ExtractionConfig {
            interval_ms: 60_000,
            detector: DetectorConfig {
                training_intervals: 10,
                ..DetectorConfig::default()
            },
            min_support,
            ..ExtractionConfig::default()
        }
    }

    #[test]
    fn offline_sharded_extraction_matches_sequential() {
        let w = table2_workload(7, 0.05);
        let mut md = MetaData::new();
        md.insert(FlowFeature::DstPort, 7000);
        md.insert(FlowFeature::DstPort, 80);
        let reference = Engine::extract(&ExtractRequest::new(&w.flows, &md, w.min_support));
        for shards in 1..=6 {
            let sharded = Engine::extract(
                &ExtractRequest::new(&w.flows, &md, w.min_support).shards(nz(shards)),
            );
            assert_eq!(sharded.itemsets, reference.itemsets, "shards={shards}");
            assert_eq!(sharded.levels, reference.levels, "shards={shards}");
            assert_eq!(sharded.suspicious_flows, reference.suspicious_flows);
            assert_eq!(
                sharded.cost_reduction.to_bits(),
                reference.cost_reduction.to_bits()
            );
        }
    }

    #[test]
    fn sharded_prefilter_preserves_index_order() {
        let w = table2_workload(3, 0.02);
        let mut md = MetaData::new();
        md.insert(FlowFeature::DstPort, 7000);
        let reference = prefilter_indices(&w.flows, &md, PrefilterMode::Union);
        for shards in 1..=5 {
            assert_eq!(
                prefilter_indices_sharded(&w.flows, &md, PrefilterMode::Union, nz(shards)),
                reference,
                "shards={shards}"
            );
        }
    }

    #[test]
    fn online_sharded_pipeline_matches_sequential_bit_for_bit() {
        let scenario = Scenario::small(11);
        let mut sequential = AnomalyExtractor::try_new(test_config(800)).unwrap();
        let mut sharded = ShardedExtractor::try_new(test_config(800), nz(4)).unwrap();
        for i in 0..scenario.interval_count().min(24) {
            let interval = scenario.generate(i);
            let a = sequential.process_interval(&interval.flows);
            let b = sharded.process_interval(&interval.flows);
            assert_eq!(a.observation.alarm, b.observation.alarm, "interval {i}");
            assert_eq!(a.observation.metadata, b.observation.metadata);
            for (x, y) in a.observation.features.iter().zip(&b.observation.features) {
                for (cx, cy) in x.clones.iter().zip(&y.clones) {
                    assert_eq!(cx.kl.map(f64::to_bits), cy.kl.map(f64::to_bits));
                }
            }
            match (&a.extraction, &b.extraction) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    assert_eq!(x.itemsets, y.itemsets, "interval {i}");
                    assert_eq!(x.levels, y.levels);
                    assert_eq!(x.suspicious_flows, y.suspicious_flows);
                    assert_eq!(x.cost_reduction.to_bits(), y.cost_reduction.to_bits());
                }
                _ => panic!("extraction presence diverged at interval {i}"),
            }
        }
    }

    #[test]
    fn available_parallelism_constructor_works() {
        let e = ShardedExtractor::with_available_parallelism(test_config(500)).unwrap();
        assert!(e.shards().get() >= 1);
        assert!(!e.is_trained());
    }

    #[test]
    fn invalid_config_is_an_error_not_a_panic() {
        let mut c = test_config(100);
        c.min_support = 0;
        assert!(ShardedExtractor::try_new(c, nz(4)).is_err());
    }
}
