//! Human-readable extraction reports (paper Table II style).

use std::fmt::Write as _;

use anomex_traffic::AnomalyClass;

use crate::classify::classify_itemset;
use crate::pipeline::Extraction;

/// Render an extraction as a Table II-style text report: one row per
/// maximal item-set (largest support first), the Apriori per-level audit
/// trail, and the classification-cost summary.
#[must_use]
pub fn render_report(extraction: &Extraction) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Anomaly extraction report — interval {} ({} flows, {} suspicious after pre-filtering)",
        extraction.interval, extraction.total_flows, extraction.suspicious_flows
    );
    let _ = writeln!(out, "meta-data:");
    for line in extraction.metadata.to_string().lines() {
        let _ = writeln!(out, "  {line}");
    }

    let mut ranked: Vec<_> = extraction.itemsets.iter().collect();
    ranked.sort_by_key(|s| std::cmp::Reverse(s.support));

    let _ = writeln!(
        out,
        "{:>3}  {:>9}  {:>18}  item-set",
        "#", "support", "class hint"
    );
    for (i, set) in ranked.iter().enumerate() {
        let hint =
            classify_itemset(set).map_or_else(|| "-".to_string(), |c: AnomalyClass| c.to_string());
        let items = set
            .items()
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            out,
            "{:>3}  {:>9}  {:>18}  {{{items}}}",
            i + 1,
            set.support,
            hint
        );
    }

    if !extraction.levels.is_empty() {
        let _ = writeln!(out, "apriori rounds:");
        for lv in &extraction.levels {
            let _ = writeln!(
                out,
                "  round {}: {} candidates, {} frequent, {} kept as maximal",
                lv.level, lv.candidates, lv.frequent, lv.maximal
            );
        }
    }
    let _ = writeln!(
        out,
        "classification cost reduction: {:.0} (flows per item-set to classify)",
        extraction.cost_reduction
    );
    out
}

/// Render the extraction's item-sets as CSV (`support,items`), for piping
/// into plotting tools.
#[must_use]
pub fn render_csv(extraction: &Extraction) -> String {
    let mut out = String::from("support,itemset\n");
    for set in &extraction.itemsets {
        let items = set
            .items()
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(out, "{},\"{items}\"", set.support);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomex_detector::MetaData;
    use anomex_mining::{Item, ItemSet};
    use anomex_netflow::FlowFeature;

    fn extraction() -> Extraction {
        let mut md = MetaData::new();
        md.insert(FlowFeature::DstPort, 7000);
        Extraction {
            interval: 42,
            metadata: md,
            total_flows: 350_862,
            suspicious_flows: 53_467,
            itemsets: vec![
                ItemSet::new(
                    vec![
                        Item::new(FlowFeature::SrcIp, 7),
                        Item::new(FlowFeature::DstIp, 5),
                        Item::new(FlowFeature::DstPort, 7000),
                    ],
                    17_822,
                ),
                ItemSet::new(vec![Item::new(FlowFeature::DstPort, 80)], 252_069),
            ],
            levels: vec![anomex_mining::LevelStats {
                level: 1,
                candidates: 0,
                frequent: 60,
                maximal: 2,
            }],
            cost_reduction: 175_431.0,
        }
    }

    #[test]
    fn report_contains_the_essentials() {
        let r = render_report(&extraction());
        assert!(r.contains("interval 42"));
        assert!(r.contains("350862 flows"));
        assert!(r.contains("dstPort=7000"));
        assert!(r.contains("Flooding"), "class hint column present:\n{r}");
        assert!(r.contains("round 1: 0 candidates, 60 frequent"));
        assert!(r.contains("cost reduction: 175431"));
    }

    #[test]
    fn report_ranks_by_support() {
        let r = render_report(&extraction());
        let web = r.find("dstPort=80").unwrap();
        let flood = r.find("dstIP").unwrap();
        assert!(web < flood, "largest support listed first:\n{r}");
    }

    #[test]
    fn csv_is_parseable() {
        let csv = render_csv(&extraction());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "support,itemset");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("17822,") || lines[2].starts_with("17822,"));
    }
}
