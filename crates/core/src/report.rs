//! Human-readable extraction reports (paper Table II style).

use std::fmt::Write as _;

use anomex_mining::RuleSet;
use anomex_traffic::AnomalyClass;

use crate::classify::classify_itemset;
use crate::pipeline::Extraction;

/// Rules shown per report section; the rest is summarized in one line.
const RULE_REPORT_LIMIT: usize = 20;

/// Render an extraction as a Table II-style text report: one row per
/// maximal item-set (largest support first), the Apriori per-level audit
/// trail, and the classification-cost summary.
#[must_use]
pub fn render_report(extraction: &Extraction) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Anomaly extraction report — interval {} ({} flows, {} suspicious after pre-filtering)",
        extraction.interval, extraction.total_flows, extraction.suspicious_flows
    );
    let _ = writeln!(out, "meta-data:");
    for line in extraction.metadata.to_string().lines() {
        let _ = writeln!(out, "  {line}");
    }

    let mut ranked: Vec<_> = extraction.itemsets.iter().collect();
    ranked.sort_by_key(|s| std::cmp::Reverse(s.support));

    let _ = writeln!(
        out,
        "{:>3}  {:>9}  {:>18}  item-set",
        "#", "support", "class hint"
    );
    for (i, set) in ranked.iter().enumerate() {
        let hint =
            classify_itemset(set).map_or_else(|| "-".to_string(), |c: AnomalyClass| c.to_string());
        let items = set
            .items()
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            out,
            "{:>3}  {:>9}  {:>18}  {{{items}}}",
            i + 1,
            set.support,
            hint
        );
    }

    if !extraction.levels.is_empty() {
        let _ = writeln!(out, "apriori rounds:");
        for lv in &extraction.levels {
            let _ = writeln!(
                out,
                "  round {}: {} candidates, {} frequent, {} kept as maximal",
                lv.level, lv.candidates, lv.frequent, lv.maximal
            );
        }
    }
    if let Some(rules) = &extraction.rules {
        render_rule_section(&mut out, rules);
    }
    let _ = writeln!(
        out,
        "classification cost reduction: {:.0} (flows per item-set to classify)",
        extraction.cost_reduction
    );
    out
}

/// Append the ranked-rule table of one rule population.
fn render_rule_section(out: &mut String, rules: &RuleSet) {
    if rules.is_empty() {
        let _ = writeln!(
            out,
            "association rules: none passed the confidence/lift filters"
        );
        return;
    }
    let _ = writeln!(
        out,
        "association rules ({} over {} transactions, ranked by anomaly score):",
        rules.len(),
        rules.transactions
    );
    let _ = writeln!(
        out,
        "{:>3}  {:>7}  {:>6}  {:>9}  {:>8}  {:>10}  rule",
        "#", "score", "conf", "lift", "leverage", "conviction"
    );
    for (i, scored) in rules.rules.iter().take(RULE_REPORT_LIMIT).enumerate() {
        let r = &scored.rule;
        let conviction = match r.conviction {
            Some(v) => format!("{v:.2}"),
            None => "inf".to_string(),
        };
        let _ = writeln!(
            out,
            "{:>3}  {:>7.3}  {:>6.3}  {:>9.2}  {:>8.4}  {conviction:>10}  {r}",
            i + 1,
            scored.score,
            r.confidence,
            r.lift,
            r.leverage,
        );
    }
    if rules.len() > RULE_REPORT_LIMIT {
        let _ = writeln!(
            out,
            "  … and {} lower-ranked rule(s)",
            rules.len() - RULE_REPORT_LIMIT
        );
    }
}

/// Render a merged multi-source rule population — the output of
/// [`merge_source_rules`](crate::merge_source_rules): per-source rules
/// mined at weighted support floors, merged by rule key, metrics
/// recomputed from the summed counts, and re-scored against the union
/// population.
#[must_use]
pub fn render_rule_merge(rules: &RuleSet, sources: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Per-source rule merge — {sources} source(s), weighted support floors, re-scored"
    );
    render_rule_section(&mut out, rules);
    out
}

/// Render the extraction's item-sets as CSV (`support,items`), for piping
/// into plotting tools.
#[must_use]
pub fn render_csv(extraction: &Extraction) -> String {
    let mut out = String::from("support,itemset\n");
    for set in &extraction.itemsets {
        let items = set
            .items()
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(out, "{},\"{items}\"", set.support);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomex_detector::MetaData;
    use anomex_mining::{Item, ItemSet};
    use anomex_netflow::FlowFeature;

    fn extraction() -> Extraction {
        let mut md = MetaData::new();
        md.insert(FlowFeature::DstPort, 7000);
        Extraction {
            interval: 42,
            metadata: md,
            total_flows: 350_862,
            suspicious_flows: 53_467,
            itemsets: vec![
                ItemSet::new(
                    vec![
                        Item::new(FlowFeature::SrcIp, 7),
                        Item::new(FlowFeature::DstIp, 5),
                        Item::new(FlowFeature::DstPort, 7000),
                    ],
                    17_822,
                ),
                ItemSet::new(vec![Item::new(FlowFeature::DstPort, 80)], 252_069),
            ],
            levels: vec![anomex_mining::LevelStats {
                level: 1,
                candidates: 0,
                frequent: 60,
                maximal: 2,
            }],
            cost_reduction: 175_431.0,
            rules: None,
        }
    }

    fn ruleset() -> anomex_mining::RuleSet {
        use anomex_mining::rules::score_rules;
        use anomex_mining::Rule;
        let rules = vec![
            Rule::from_supports(
                vec![Item::new(FlowFeature::DstIp, 5)],
                vec![Item::new(FlowFeature::DstPort, 7000)],
                17_822,
                17_822,
                17_900,
                53_467,
            ),
            Rule::from_supports(
                vec![Item::new(FlowFeature::DstPort, 80)],
                vec![Item::new(FlowFeature::Proto, 6)],
                20_000,
                25_000,
                30_000,
                53_467,
            ),
        ];
        anomex_mining::RuleSet {
            rules: score_rules(rules, 53_467),
            transactions: 53_467,
        }
    }

    #[test]
    fn report_contains_the_essentials() {
        let r = render_report(&extraction());
        assert!(r.contains("interval 42"));
        assert!(r.contains("350862 flows"));
        assert!(r.contains("dstPort=7000"));
        assert!(r.contains("Flooding"), "class hint column present:\n{r}");
        assert!(r.contains("round 1: 0 candidates, 60 frequent"));
        assert!(r.contains("cost reduction: 175431"));
    }

    #[test]
    fn report_ranks_by_support() {
        let r = render_report(&extraction());
        let web = r.find("dstPort=80").unwrap();
        let flood = r.find("dstIP").unwrap();
        assert!(web < flood, "largest support listed first:\n{r}");
    }

    #[test]
    fn rule_section_renders_when_enabled() {
        let mut e = extraction();
        let r = render_report(&e);
        assert!(!r.contains("association rules"), "absent by default:\n{r}");
        e.rules = Some(ruleset());
        let r = render_report(&e);
        assert!(
            r.contains("association rules (2 over 53467 transactions"),
            "header present:\n{r}"
        );
        assert!(r.contains("inf"), "conviction ∞ rendered as inf:\n{r}");
        assert!(
            r.contains("{dstIP=0.0.0.5} => {dstPort=7000} x17822"),
            "rule display form present:\n{r}"
        );
        e.rules = Some(anomex_mining::RuleSet::empty());
        let r = render_report(&e);
        assert!(
            r.contains("none passed the confidence/lift filters"),
            "empty population still announced:\n{r}"
        );
    }

    #[test]
    fn rule_merge_render_names_the_sources() {
        let r = render_rule_merge(&ruleset(), 2);
        assert!(r.starts_with("Per-source rule merge — 2 source(s)"));
        assert!(r.contains("ranked by anomaly score"));
    }

    #[test]
    fn csv_is_parseable() {
        let csv = render_csv(&extraction());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "support,itemset");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("17822,") || lines[2].starts_with("17822,"));
    }
}
