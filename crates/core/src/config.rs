//! Pipeline configuration — the paper's Table III parameters in one
//! struct.
//!
//! | Parameter | Paper symbol | Field | Paper value |
//! |-----------|--------------|-------|-------------|
//! | number of detectors | m | `detector.features` | 5 features |
//! | interval length | Δ | `interval_ms` | 15 min (5–15) |
//! | hash/bin count | k = 2^h | `detector.bins` | 1024 (512–2048) |
//! | histogram clones | n | `detector.clones` | 3 (1–25 analytic) |
//! | vote quorum | l | `detector.votes` | 3 (1–n) |
//! | threshold multiplier | — | `detector.alpha` | 3 |
//! | minimum support | s | `min_support` | 10 000 (3 000–10 000) |

use std::fmt;

use anomex_detector::DetectorConfig;
use anomex_mining::{MinerKind, RuleConfig};
use anomex_netflow::snapshot::{RestoreError, SnapshotReader, SnapshotWriter};
use anomex_netflow::MINUTE_MS;
use serde::{Deserialize, Serialize};

use crate::pipeline::TransactionMode;
use crate::prefilter::PrefilterMode;

/// An invalid [`ExtractionConfig`]: which constraint was violated, in
/// human-readable form. Returned by [`ExtractionConfig::validate`] and
/// [`AnomalyExtractor::try_new`](crate::AnomalyExtractor::try_new) so
/// library users get a `Result` instead of a panic path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(String);

impl ConfigError {
    /// Wrap a constraint-violation description.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        ConfigError(message.into())
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ConfigError {}

impl From<ConfigError> for String {
    fn from(e: ConfigError) -> Self {
        e.0
    }
}

/// Complete configuration of the anomaly-extraction pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtractionConfig {
    /// Measurement interval length Δ in milliseconds.
    pub interval_ms: u64,
    /// Histogram detector bank parameters (k, n, l, α, features, seed).
    pub detector: DetectorConfig,
    /// Pre-filter semantics (union per the paper; intersection as
    /// baseline).
    pub prefilter: PrefilterMode,
    /// Absolute minimum support `s` for frequent item-set mining.
    pub min_support: u64,
    /// Which mining algorithm to run (identical outputs, different cost).
    pub miner: MinerKind,
    /// Transaction shape: canonical width-7 or prefix-extended width-9
    /// (the §III-D multilevel mode).
    pub transactions: TransactionMode,
    /// Association-rule layer on top of the item-set summary: `Some` to
    /// generate, filter and rank rules per extraction (metric filters
    /// plus the rare-itemset mode), `None` (the default) for the paper's
    /// item-set-only output.
    #[serde(default)]
    pub rules: Option<RuleConfig>,
}

impl Default for ExtractionConfig {
    /// The paper's evaluation configuration: Δ = 15 min, k = 1024,
    /// n = l = 3, α = 3, union pre-filter, Apriori with s = 10 000.
    fn default() -> Self {
        ExtractionConfig {
            interval_ms: 15 * MINUTE_MS,
            detector: DetectorConfig::default(),
            prefilter: PrefilterMode::Union,
            min_support: 10_000,
            miner: MinerKind::Apriori,
            transactions: TransactionMode::Canonical,
            rules: None,
        }
    }
}

impl ExtractionConfig {
    /// Validate all parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.interval_ms == 0 {
            return Err(ConfigError::new("interval length must be positive"));
        }
        if self.min_support == 0 {
            return Err(ConfigError::new("minimum support must be at least 1"));
        }
        if let Some(rules) = &self.rules {
            rules.validate().map_err(ConfigError::new)?;
        }
        self.detector.validate().map_err(ConfigError::new)
    }

    /// Serialize the full configuration into a checkpoint payload. The
    /// configuration travels with every engine snapshot so a restore is
    /// self-contained: structural detector state (hashers, bins, clone
    /// counts) is rebuilt from this record rather than serialized.
    pub fn encode_snapshot(&self, w: &mut SnapshotWriter) {
        w.u64(self.interval_ms);
        self.detector.encode_snapshot(w);
        w.u8(match self.prefilter {
            PrefilterMode::Union => 0,
            PrefilterMode::Intersection => 1,
        });
        w.u64(self.min_support);
        w.u8(match self.miner {
            MinerKind::Apriori => 0,
            MinerKind::FpGrowth => 1,
            MinerKind::Eclat => 2,
        });
        w.u8(match self.transactions {
            TransactionMode::Canonical => 0,
            TransactionMode::WithPrefixes => 1,
        });
        match &self.rules {
            None => w.bool(false),
            Some(rc) => {
                w.bool(true);
                w.f64(rc.min_confidence);
                w.f64(rc.min_lift);
                w.bool(rc.rare);
            }
        }
    }

    /// Decode a configuration written by
    /// [`encode_snapshot`](Self::encode_snapshot), re-validating every
    /// constraint so a tampered checkpoint cannot smuggle in parameters
    /// a live constructor would reject.
    ///
    /// # Errors
    ///
    /// Returns [`RestoreError::Corrupt`] on an unknown mode tag or a
    /// configuration that fails [`validate`](Self::validate), and any
    /// reader error on truncated input.
    pub fn decode_snapshot(r: &mut SnapshotReader<'_>) -> Result<Self, RestoreError> {
        let interval_ms = r.u64()?;
        let detector = DetectorConfig::decode_snapshot(r)?;
        let prefilter = match r.u8()? {
            0 => PrefilterMode::Union,
            1 => PrefilterMode::Intersection,
            tag => {
                return Err(RestoreError::Corrupt(format!(
                    "unknown prefilter tag {tag}"
                )))
            }
        };
        let min_support = r.u64()?;
        let miner = match r.u8()? {
            0 => MinerKind::Apriori,
            1 => MinerKind::FpGrowth,
            2 => MinerKind::Eclat,
            tag => return Err(RestoreError::Corrupt(format!("unknown miner tag {tag}"))),
        };
        let transactions = match r.u8()? {
            0 => TransactionMode::Canonical,
            1 => TransactionMode::WithPrefixes,
            tag => {
                return Err(RestoreError::Corrupt(format!(
                    "unknown transaction-mode tag {tag}"
                )))
            }
        };
        let rules = if r.bool()? {
            Some(RuleConfig {
                min_confidence: r.f64()?,
                min_lift: r.f64()?,
                rare: r.bool()?,
            })
        } else {
            None
        };
        let config = ExtractionConfig {
            interval_ms,
            detector,
            prefilter,
            min_support,
            miner,
            transactions,
            rules,
        };
        config
            .validate()
            .map_err(|e| RestoreError::Corrupt(format!("invalid restored configuration: {e}")))?;
        Ok(config)
    }

    /// Scale the minimum support relative to an expected interval volume —
    /// the paper's guidance that "a suitable s is typically in the range
    /// between 1% and 10% of the total number of input flows" (§II-E).
    #[must_use]
    pub fn with_relative_support(mut self, interval_flows: u64, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be within [0, 1]"
        );
        self.min_support = ((interval_flows as f64 * fraction) as u64).max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = ExtractionConfig::default();
        assert_eq!(c.interval_ms, 900_000);
        assert_eq!(c.min_support, 10_000);
        assert_eq!(c.prefilter, PrefilterMode::Union);
        assert_eq!(c.miner, MinerKind::Apriori);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_cascades_to_detector() {
        let mut c = ExtractionConfig::default();
        c.detector.votes = 99;
        assert!(c.validate().is_err());
        c = ExtractionConfig::default();
        c.min_support = 0;
        assert!(c.validate().is_err());
        c = ExtractionConfig::default();
        c.interval_ms = 0;
        assert!(c.validate().is_err());
        c = ExtractionConfig::default();
        c.rules = Some(RuleConfig {
            min_confidence: 2.0,
            ..RuleConfig::default()
        });
        assert!(c.validate().is_err(), "rule filters are validated too");
    }

    #[test]
    fn relative_support_rule_of_thumb() {
        // 1% of one million flows → s = 10 000, the paper's setting.
        let c = ExtractionConfig::default().with_relative_support(1_000_000, 0.01);
        assert_eq!(c.min_support, 10_000);
        let c = ExtractionConfig::default().with_relative_support(50, 0.01);
        assert_eq!(c.min_support, 1, "floored at 1");
    }

    #[test]
    #[should_panic(expected = "fraction must be within")]
    fn bad_fraction_panics() {
        let _ = ExtractionConfig::default().with_relative_support(100, 2.0);
    }

    #[test]
    fn snapshot_round_trips_every_knob() {
        let config = ExtractionConfig {
            interval_ms: 60_000,
            prefilter: PrefilterMode::Intersection,
            min_support: 1234,
            miner: MinerKind::Eclat,
            transactions: crate::pipeline::TransactionMode::WithPrefixes,
            rules: Some(RuleConfig {
                min_confidence: 0.75,
                min_lift: 1.5,
                rare: true,
            }),
            ..ExtractionConfig::default()
        };
        let mut w = SnapshotWriter::new();
        config.encode_snapshot(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        let back = ExtractionConfig::decode_snapshot(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.interval_ms, config.interval_ms);
        assert_eq!(back.prefilter, config.prefilter);
        assert_eq!(back.min_support, config.min_support);
        assert_eq!(back.miner, config.miner);
        assert_eq!(back.transactions, config.transactions);
        let rules = back.rules.unwrap();
        assert_eq!(rules.min_confidence.to_bits(), 0.75f64.to_bits());
        assert_eq!(rules.min_lift.to_bits(), 1.5f64.to_bits());
        assert!(rules.rare);
        assert_eq!(back.detector.seed, config.detector.seed);
    }

    #[test]
    fn snapshot_decode_rejects_truncation_and_bad_tags() {
        let mut w = SnapshotWriter::new();
        ExtractionConfig::default().encode_snapshot(&mut w);
        let bytes = w.into_bytes();
        // Truncated mid-payload: typed error, no panic.
        let mut r = SnapshotReader::new(&bytes[..8]);
        assert!(ExtractionConfig::decode_snapshot(&mut r).is_err());
        // Corrupt the trailing rules-presence flag into an out-of-range
        // bool: typed error, no panic.
        let mut evil = bytes.clone();
        *evil.last_mut().unwrap() = 7;
        let mut r = SnapshotReader::new(&evil);
        assert!(ExtractionConfig::decode_snapshot(&mut r).is_err());
    }
}
