//! # anomex-core — the anomaly-extraction pipeline
//!
//! The primary contribution of Brauckhoff, Dimitropoulos, Wagner &
//! Salamatian, *Anomaly Extraction in Backbone Networks Using Association
//! Rules* (ACM IMC 2009; extended in IEEE/ACM ToN 20(6), 2012), as a Rust
//! library.
//!
//! **Problem.** During an interval with an anomaly alarm, find — and
//! summarize — the flows associated with the event that caused it.
//!
//! **Method** (Fig. 3 of the paper):
//! 1. histogram-based detectors with cloning + voting produce *meta-data*:
//!    suspicious feature values ([`anomex_detector`]);
//! 2. the **union** of the meta-data pre-filters the interval's flows into
//!    a suspicious subset ([`mod@prefilter`]);
//! 3. **maximal frequent item-set mining** over the suspicious flows
//!    yields a handful of item-sets that pinpoint the anomaly
//!    ([`anomex_mining`]).
//!
//! Entry points:
//! - [`Engine`] — the unified API: offline extraction via
//!   [`Engine::extract`] with an [`ExtractRequest`] (every knob in one
//!   builder), online operation via [`Engine::process`] over any
//!   [`IntervalInput`] representation, plus checkpointing
//!   ([`Engine::snapshot`] / [`Engine::restore`]) and live
//!   reconfiguration ([`Engine::reconfigure`] with a
//!   [`ReconfigRequest`]);
//! - [`AnomalyExtractor`] — the online pipeline (feed intervals, get
//!   [`Extraction`]s);
//! - [`ShardedExtractor`] — the same pipeline fanned out over a
//!   persistent worker pool per interval shard, with output
//!   bit-identical to the sequential path for every shard count;
//! - [`StreamingExtractor`] — the continuous engine: feed flows, get a
//!   [`StreamEvent`] per closed Δ-interval, with interval `t+1`
//!   assembling while interval `t` extracts (double buffering), plus
//!   durable operation ([`StreamingExtractor::checkpoint`] /
//!   [`StreamingExtractor::restore`] resume the stream bit-identically
//!   after a crash) and boundary-aligned live reconfiguration;
//! - [`MultiSourceExtractor`] — the same continuous engine fed by N
//!   exporters at once: per-source assemblers with independent clock
//!   origins merge onto one watermark-closed interval grid (the paper's
//!   multi-router SWITCH setting), bit-identical to extracting the
//!   per-interval concatenation of all sources' flows;
//! - [`evaluate`] — the full §III evaluation harness over labeled
//!   scenarios;
//! - [`models`] — the analytic voting models, eqs. (1)–(3);
//! - [`report`] — Table II-style rendering;
//! - [`merge_source_rules`] — the association-rule layer merged across
//!   sources: rules generated from the mined supports, filtered by
//!   confidence/lift, and ranked by a meta-detection z-score pass (see
//!   [`anomex_mining::rules`]).
//!
//! The former per-capability free functions (`extract_with_metadata`,
//! `extract_with_mode`, `extract_with_rules`, `extract_sharded`,
//! `extract_sharded_with_rules`) remain as deprecated shims over
//! [`Engine::extract`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod classify;
pub mod config;
pub mod cost;
pub mod engine;
pub mod evaluate;
pub mod models;
pub mod pipeline;
pub mod prefilter;
pub mod report;
pub mod sharded;
pub mod streaming;

pub use classify::classify_itemset;
pub use config::{ConfigError, ExtractionConfig};
pub use cost::{average_cost_reduction, cost_reduction};
pub use engine::{Engine, ExtractRequest, IntervalInput, ReconfigRequest};
pub use evaluate::{
    evaluate_itemsets, run_scenario, EvaluatedItemSet, IntervalRecord, ScenarioRun,
    SupportSweepPoint, Table4Row,
};
pub use models::{
    beta_hit_lower, beta_miss_upper, binomial_coefficient, binomial_tail,
    expected_normal_survivors, gamma_normal_survives,
};
#[allow(deprecated)]
pub use pipeline::{extract_with_metadata, extract_with_mode, extract_with_rules};
pub use pipeline::{
    merge_source_rules, AnomalyExtractor, Extraction, IntervalOutcome, TransactionMode,
};
pub use prefilter::{
    prefilter, prefilter_indices, prefilter_indices_columns, prefilter_indices_columns_range,
    prefilter_indices_columns_range_with, PrefilterMode, PrefilterScratch,
};
pub use report::{render_csv, render_report, render_rule_merge};
#[allow(deprecated)]
pub use sharded::{extract_sharded, extract_sharded_with_rules};
pub use sharded::{observe_sharded, prefilter_indices_sharded, PoolStats, ShardedExtractor};
pub use streaming::{
    latency_percentile, MultiSourceExtractor, MultiStreamEvent, MultiStreamSummary, StreamEvent,
    StreamSummary, StreamingExtractor,
};
