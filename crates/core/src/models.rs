//! Analytic voting models — the paper's equations (1)–(3), behind Figs. 7
//! and 8.
//!
//! Each histogram clone includes a *truly anomalous* feature value in its
//! candidate set with probability `p` (detection + bin attribution), and a
//! *normal* value only if that value collides with one of the `b` anomalous
//! bins out of `k`, i.e. with probability `q = b/k`. Voting keeps a value
//! proposed by at least `l` of `n` clones. Treating clones as independent:
//!
//! - eq. (1): `P[anomalous value kept] ≥ Σ_{i=l}^{n} C(n,i) pⁱ(1-p)^{n-i}`
//!   (a lower bound — clone detections are positively correlated);
//! - eq. (2): `β = Σ_{i=0}^{l-1} C(n,i) pⁱ(1-p)^{n-i}` upper-bounds the
//!   probability of *missing* an anomalous value;
//! - eq. (3): `γ = Σ_{i=l}^{n} C(n,i) qⁱ(1-q)^{n-i}` is the probability a
//!   normal value survives voting (collisions are independent across
//!   clones, so this one is exact).

/// Binomial coefficient as `f64` (exact for the n ≤ 64 used here).
///
/// # Panics
///
/// Panics if `n > 64` (beyond the model's intended range).
#[must_use]
pub fn binomial_coefficient(n: u64, k: u64) -> f64 {
    assert!(
        n <= 64,
        "voting models are defined for small n (≤ 64 clones)"
    );
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

/// Upper tail of the Binomial(n, p): `P[X ≥ l]`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or `l > n`.
#[must_use]
pub fn binomial_tail(n: u64, l: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    assert!(l <= n, "quorum cannot exceed clone count");
    let mut acc = 0.0;
    for i in l..=n {
        acc += binomial_coefficient(n, i) * p.powi(i as i32) * (1.0 - p).powi((n - i) as i32);
    }
    acc.clamp(0.0, 1.0)
}

/// Equation (1): lower bound on the probability an **anomalous** feature
/// value is kept by l-of-n voting, given per-clone inclusion probability
/// `p`.
#[must_use]
pub fn beta_hit_lower(p: f64, n: u64, l: u64) -> f64 {
    binomial_tail(n, l, p)
}

/// Equation (2): upper bound on the probability an **anomalous** feature
/// value is *missed* by l-of-n voting (Fig. 7).
#[must_use]
pub fn beta_miss_upper(p: f64, n: u64, l: u64) -> f64 {
    1.0 - beta_hit_lower(p, n, l)
}

/// Equation (3): probability a **normal** feature value survives l-of-n
/// voting when `b` of `k` bins are anomalous (Fig. 8). Exact under
/// independent hash functions.
///
/// # Panics
///
/// Panics if `b > k` or `k == 0`.
#[must_use]
pub fn gamma_normal_survives(b: u64, k: u64, n: u64, l: u64) -> f64 {
    assert!(k > 0, "bin count must be positive");
    assert!(b <= k, "anomalous bins cannot exceed total bins");
    let q = b as f64 / k as f64;
    binomial_tail(n, l, q)
}

/// Expected number of normal feature values surviving voting, given the
/// number of distinct values observed in the interval (paper §III-C:
/// "the average number of false-positive feature values can be determined
/// by multiplication of γ with the average number of feature values
/// observed within one interval").
#[must_use]
pub fn expected_normal_survivors(distinct_values: u64, b: u64, k: u64, n: u64, l: u64) -> f64 {
    distinct_values as f64 * gamma_normal_survives(b, k, n, l)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_coefficients() {
        assert_eq!(binomial_coefficient(5, 0), 1.0);
        assert_eq!(binomial_coefficient(5, 5), 1.0);
        assert_eq!(binomial_coefficient(5, 2), 10.0);
        assert_eq!(binomial_coefficient(25, 12), 5_200_300.0);
        assert_eq!(binomial_coefficient(3, 7), 0.0);
    }

    #[test]
    fn tail_edge_cases() {
        assert!(
            (binomial_tail(5, 0, 0.3) - 1.0).abs() < 1e-12,
            "P[X >= 0] = 1"
        );
        assert!((binomial_tail(5, 5, 1.0) - 1.0).abs() < 1e-12);
        assert_eq!(binomial_tail(5, 1, 0.0), 0.0);
    }

    #[test]
    fn paper_fig7_values() {
        // §III-C: p = 0.99. "For l = n and n = 5, we obtain β ≈ 0.049,
        // while for l = n and n = 25 the probability increases to ≈ 0.22."
        let b5 = beta_miss_upper(0.99, 5, 5);
        assert!((b5 - (1.0 - 0.99f64.powi(5))).abs() < 1e-12);
        assert!((0.04..0.06).contains(&b5), "β(5,5) = {b5}");
        let b25 = beta_miss_upper(0.99, 25, 25);
        assert!((0.20..0.25).contains(&b25), "β(25,25) = {b25}");
    }

    #[test]
    fn beta_minimum_at_l_one() {
        // Fig. 7: for fixed n, β has its minimum at l = 1 and maximum at
        // l = n.
        for n in [3u64, 5, 10, 25] {
            let betas: Vec<f64> = (1..=n).map(|l| beta_miss_upper(0.99, n, l)).collect();
            for w in betas.windows(2) {
                assert!(w[1] >= w[0] - 1e-15, "β must grow with l: {betas:?}");
            }
        }
    }

    #[test]
    fn paper_fig8_values() {
        // §III-B/Fig 8: k = 1024. For l = 1, n = 5, b = 1:
        // γ = 1 - (1 - 1/1024)^5 ≈ 4.9e-3. For l = n = 5:
        // γ = (1/1024)^5 ≈ 8.9e-16.
        let g_union = gamma_normal_survives(1, 1024, 5, 1);
        assert!((g_union - (1.0 - (1.0 - 1.0 / 1024.0f64).powi(5))).abs() < 1e-12);
        assert!((4.0e-3..6.0e-3).contains(&g_union), "γ(l=1) = {g_union}");
        let g_inter = gamma_normal_survives(1, 1024, 5, 5);
        assert!(g_inter < 1e-14, "γ(l=n) = {g_inter}");
    }

    #[test]
    fn gamma_grows_with_anomalous_bins() {
        // Fig. 8(a) vs 8(b): γ increases dramatically with b.
        let g1 = gamma_normal_survives(1, 1024, 3, 2);
        let g5 = gamma_normal_survives(5, 1024, 3, 2);
        assert!(g5 > 20.0 * g1, "γ(b=5) = {g5} vs γ(b=1) = {g1}");
    }

    #[test]
    fn gamma_decreases_with_quorum() {
        for b in [1u64, 5, 20] {
            let gammas: Vec<f64> = (1..=5)
                .map(|l| gamma_normal_survives(b, 1024, 5, l))
                .collect();
            for w in gammas.windows(2) {
                assert!(w[1] <= w[0] + 1e-15, "γ must fall with l: {gammas:?}");
            }
        }
    }

    #[test]
    fn hit_plus_miss_is_one() {
        for n in 1..=25u64 {
            for l in 1..=n {
                let sum = beta_hit_lower(0.97, n, l) + beta_miss_upper(0.97, n, l);
                assert!((sum - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn expected_survivors_scales_with_population() {
        // Port space: 65 536 values, b = 3, k = 1024, l = n = 3.
        let e = expected_normal_survivors(65_536, 3, 1024, 3, 3);
        let manual = 65_536.0 * (3.0 / 1024.0f64).powi(3);
        assert!((e - manual).abs() < 1e-9);
        assert!(
            e < 2.0,
            "unanimous voting keeps almost no normal ports: {e}"
        );
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn bad_probability_panics() {
        let _ = binomial_tail(5, 1, 1.5);
    }

    #[test]
    #[should_panic(expected = "cannot exceed total bins")]
    fn bad_bins_panic() {
        let _ = gamma_normal_survives(2000, 1024, 3, 1);
    }
}
