//! Scenario evaluation harness — reproduces the paper's §III analyses.
//!
//! Runs a labeled [`Scenario`] through the pipeline and scores the results
//! with the exact per-flow ground truth the synthetic workload provides:
//!
//! - interval-level detection (Fig. 6 ROC inputs: per-clone scores +
//!   truth);
//! - item-set-level true/false positives (Fig. 9), scored by the dominant
//!   label of the flows each item-set matches;
//! - classification-cost reduction (Fig. 10);
//! - per-class detection and extraction summary (Table IV).

use std::collections::BTreeMap;

use anomex_mining::{ItemSet, MinerKind, Transaction, TransactionSet};
use anomex_netflow::FlowRecord;
use anomex_traffic::{AnomalyClass, EventId, Scenario};
use serde::{Deserialize, Serialize};

use crate::classify::classify_itemset;
use crate::config::ExtractionConfig;
use crate::cost::average_cost_reduction;
use crate::pipeline::{AnomalyExtractor, Extraction};
use crate::prefilter::prefilter_indices;

/// An extracted item-set judged against ground truth.
#[derive(Debug, Clone)]
pub struct EvaluatedItemSet {
    /// The item-set.
    pub itemset: ItemSet,
    /// Suspicious flows matching every item of the set.
    pub matching_flows: u64,
    /// Fraction of those flows carrying an event label.
    pub event_flow_fraction: f64,
    /// The most common event among matching flows, if any.
    pub dominant_event: Option<EventId>,
    /// True positive: the majority of matching flows belong to an event.
    pub is_tp: bool,
    /// The rule-based class hint (for Table IV-style summaries).
    pub class_hint: Option<AnomalyClass>,
}

/// Judge item-sets against labeled suspicious flows. An item-set is a true
/// positive when the majority of the flows it matches are event flows —
/// the automated equivalent of the paper's manual "matched the identified
/// events" judgement.
#[must_use]
pub fn evaluate_itemsets(
    itemsets: &[ItemSet],
    flows: &[FlowRecord],
    labels: &[Option<EventId>],
) -> Vec<EvaluatedItemSet> {
    assert_eq!(flows.len(), labels.len(), "flows and labels must align");
    let transactions: Vec<Transaction> = flows.iter().map(Transaction::from_flow).collect();
    itemsets
        .iter()
        .map(|set| {
            let mut matching = 0u64;
            let mut per_event: BTreeMap<EventId, u64> = BTreeMap::new();
            let mut labeled = 0u64;
            for (t, label) in transactions.iter().zip(labels) {
                if t.contains_all(set.items()) {
                    matching += 1;
                    if let Some(id) = label {
                        labeled += 1;
                        *per_event.entry(*id).or_insert(0) += 1;
                    }
                }
            }
            let fraction = if matching == 0 {
                0.0
            } else {
                labeled as f64 / matching as f64
            };
            let dominant = per_event.iter().max_by_key(|&(_, n)| *n).map(|(&id, _)| id);
            EvaluatedItemSet {
                itemset: set.clone(),
                matching_flows: matching,
                event_flow_fraction: fraction,
                dominant_event: if fraction >= 0.5 { dominant } else { None },
                is_tp: fraction >= 0.5,
                class_hint: classify_itemset(set),
            }
        })
        .collect()
}

/// One interval's record in a scenario run.
#[derive(Debug, Clone)]
pub struct IntervalRecord {
    /// Interval index.
    pub interval: u64,
    /// Ground truth: does the interval contain event flows?
    pub truth_anomalous: bool,
    /// Did the detector bank alarm?
    pub alarm: bool,
    /// Total flows in the interval.
    pub total_flows: usize,
    /// The extraction at the configured support (when alarmed).
    pub extraction: Option<Extraction>,
    /// Judged item-sets of that extraction.
    pub evaluated: Vec<EvaluatedItemSet>,
    /// The labeled suspicious flows (stored only when alarmed, for
    /// support sweeps).
    pub suspicious: Vec<FlowRecord>,
    /// Labels parallel to `suspicious`.
    pub suspicious_labels: Vec<Option<EventId>>,
}

impl IntervalRecord {
    /// Number of false-positive item-sets at the configured support.
    #[must_use]
    pub fn fp_itemsets(&self) -> usize {
        self.evaluated.iter().filter(|e| !e.is_tp).count()
    }

    /// Number of true-positive item-sets at the configured support.
    #[must_use]
    pub fn tp_itemsets(&self) -> usize {
        self.evaluated.iter().filter(|e| e.is_tp).count()
    }
}

/// A full scenario run: per-interval records plus ROC inputs.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// Per-interval records, in order.
    pub records: Vec<IntervalRecord>,
    /// Per-clone interval scores (max over features of `d/σ̂`), for Fig. 6
    /// ROC curves. Indexed `[clone][interval]`.
    pub clone_scores: Vec<Vec<f64>>,
    /// Ground-truth labels per interval (anomalous or not).
    pub truth: Vec<bool>,
}

/// One point of the Fig. 9 support sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SupportSweepPoint {
    /// The minimum support.
    pub min_support: u64,
    /// FP item-set count per alarmed anomalous interval.
    pub fp_per_interval: Vec<usize>,
    /// Mean FP item-sets over those intervals.
    pub avg_fp: f64,
    /// Fraction of alarmed anomalous intervals with zero FP item-sets.
    pub zero_fp_fraction: f64,
    /// Fraction of alarmed anomalous intervals where the event was still
    /// extracted (≥ 1 TP item-set) — guards against support set too high.
    pub extracted_fraction: f64,
}

/// One row of the Table IV summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4Row {
    /// The anomaly class.
    pub class: String,
    /// Number of planted events of this class.
    pub occurrences: usize,
    /// Average injected flows per event-interval (ground truth).
    pub avg_flows: f64,
    /// Events of this class whose interval raised an alarm.
    pub detected: usize,
    /// Events of this class extracted (≥ 1 item-set matching the event).
    pub extracted: usize,
}

/// Run a scenario through the pipeline and record everything needed for
/// the paper's evaluation figures.
///
/// # Panics
///
/// Panics if the configuration is invalid.
#[must_use]
pub fn run_scenario(scenario: &Scenario, config: &ExtractionConfig) -> ScenarioRun {
    let mut pipeline = AnomalyExtractor::try_new(config.clone())
        .unwrap_or_else(|e| panic!("invalid extraction configuration: {e}"));
    let n_clones = config.detector.clones;
    let mut clone_scores: Vec<Vec<f64>> = vec![Vec::new(); n_clones];
    let mut truth = Vec::new();
    let mut records = Vec::new();

    for i in 0..scenario.interval_count() {
        let labeled = scenario.generate(i);
        let outcome = pipeline.process_interval(&labeled.flows);

        // Per-clone normalized scores for ROC analysis.
        for (c, scores) in clone_scores.iter_mut().enumerate() {
            let mut best = 0.0f64;
            for (f, feat_obs) in outcome.observation.features.iter().enumerate() {
                if let (Some(diff), Some(threshold)) = (
                    feat_obs.clones[c].first_diff,
                    pipeline.bank().detectors()[f].clones()[c].threshold(),
                ) {
                    best = best.max(diff / threshold.sigma());
                }
            }
            scores.push(best);
        }
        truth.push(labeled.is_anomalous());

        let (suspicious, suspicious_labels, evaluated) = match &outcome.extraction {
            Some(ex) => {
                let idx = prefilter_indices(&labeled.flows, &ex.metadata, config.prefilter);
                let s: Vec<FlowRecord> = idx.iter().map(|&j| labeled.flows[j]).collect();
                let l: Vec<Option<EventId>> = idx.iter().map(|&j| labeled.labels[j]).collect();
                let ev = evaluate_itemsets(&ex.itemsets, &s, &l);
                (s, l, ev)
            }
            None => (Vec::new(), Vec::new(), Vec::new()),
        };

        records.push(IntervalRecord {
            interval: i,
            truth_anomalous: labeled.is_anomalous(),
            alarm: outcome.observation.alarm,
            total_flows: labeled.flows.len(),
            extraction: outcome.extraction,
            evaluated,
            suspicious,
            suspicious_labels,
        });
    }

    ScenarioRun {
        records,
        clone_scores,
        truth,
    }
}

impl ScenarioRun {
    /// Interval-level detection counts after training:
    /// `(true_positives, false_positives, false_negatives, true_negatives)`.
    #[must_use]
    pub fn detection_counts(&self, skip_training: usize) -> (usize, usize, usize, usize) {
        let (mut tp, mut fp, mut fns, mut tn) = (0, 0, 0, 0);
        for r in self.records.iter().skip(skip_training) {
            match (r.alarm, r.truth_anomalous) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fns += 1,
                (false, false) => tn += 1,
            }
        }
        (tp, fp, fns, tn)
    }

    /// The alarmed, truly-anomalous intervals (the paper's "anomalous
    /// intervals" whose item-sets get analyzed).
    #[must_use]
    pub fn alarmed_anomalous(&self) -> Vec<&IntervalRecord> {
        self.records
            .iter()
            .filter(|r| r.alarm && r.truth_anomalous)
            .collect()
    }

    /// Fig. 9: re-mine every alarmed anomalous interval at each support
    /// and count FP item-sets.
    #[must_use]
    pub fn fp_sweep(&self, supports: &[u64], miner: MinerKind) -> Vec<SupportSweepPoint> {
        supports
            .iter()
            .map(|&s| {
                let mut fp_per_interval = Vec::new();
                let mut zero_fp = 0usize;
                let mut extracted = 0usize;
                for r in self.alarmed_anomalous() {
                    let transactions = TransactionSet::from_flows(&r.suspicious);
                    let itemsets = miner.mine_maximal(&transactions, s);
                    let judged = evaluate_itemsets(&itemsets, &r.suspicious, &r.suspicious_labels);
                    let fps = judged.iter().filter(|e| !e.is_tp).count();
                    if fps == 0 {
                        zero_fp += 1;
                    }
                    if judged.iter().any(|e| e.is_tp) {
                        extracted += 1;
                    }
                    fp_per_interval.push(fps);
                }
                let n = fp_per_interval.len().max(1) as f64;
                SupportSweepPoint {
                    min_support: s,
                    avg_fp: fp_per_interval.iter().sum::<usize>() as f64 / n,
                    zero_fp_fraction: zero_fp as f64 / n,
                    extracted_fraction: extracted as f64 / n,
                    fp_per_interval,
                }
            })
            .collect()
    }

    /// Fig. 10: average classification-cost reduction at each support.
    #[must_use]
    pub fn cost_sweep(&self, supports: &[u64], miner: MinerKind) -> Vec<(u64, f64)> {
        supports
            .iter()
            .map(|&s| {
                let per_interval: Vec<(u64, usize)> = self
                    .alarmed_anomalous()
                    .iter()
                    .map(|r| {
                        let transactions = TransactionSet::from_flows(&r.suspicious);
                        let itemsets = miner.mine_maximal(&transactions, s);
                        (r.total_flows as u64, itemsets.len())
                    })
                    .collect();
                (s, average_cost_reduction(&per_interval))
            })
            .collect()
    }

    /// Table IV: per-class occurrences, average event flows, detection and
    /// extraction counts.
    #[must_use]
    pub fn table4(&self, scenario: &Scenario) -> Vec<Table4Row> {
        let mut rows = Vec::new();
        for class in AnomalyClass::ALL {
            let events: Vec<_> = scenario
                .events()
                .iter()
                .filter(|e| e.class() == class)
                .collect();
            if events.is_empty() {
                continue;
            }
            let occurrences = events.len();
            let avg_flows = events
                .iter()
                .map(|e| e.flows_per_interval as f64)
                .sum::<f64>()
                / occurrences as f64;
            let mut detected = 0usize;
            let mut extracted = 0usize;
            for event in &events {
                let intervals: Vec<u64> = event.active_intervals().collect();
                let was_detected = intervals
                    .iter()
                    .any(|&i| self.records.get(i as usize).is_some_and(|r| r.alarm));
                let was_extracted = intervals.iter().any(|&i| {
                    self.records.get(i as usize).is_some_and(|r| {
                        r.evaluated
                            .iter()
                            .any(|e| e.dominant_event == Some(event.id))
                    })
                });
                if was_detected {
                    detected += 1;
                }
                if was_extracted {
                    extracted += 1;
                }
            }
            rows.push(Table4Row {
                class: class.to_string(),
                occurrences,
                avg_flows,
                detected,
                extracted,
            });
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomex_detector::DetectorConfig;
    use anomex_mining::Item;
    use anomex_netflow::{FlowFeature, Protocol};
    use std::net::Ipv4Addr;

    fn scan_flow(i: u32) -> FlowRecord {
        FlowRecord::new(
            u64::from(i),
            Ipv4Addr::new(66, 6, 6, 6),
            Ipv4Addr::from(0x0a00_0000 + i),
            40_000,
            445,
            Protocol::Tcp,
        )
        .with_volume(1, 40)
    }

    fn web_flow(i: u32) -> FlowRecord {
        FlowRecord::new(
            u64::from(i),
            Ipv4Addr::from(0x0900_0000 + i),
            Ipv4Addr::from(0x0800_0000 + (i % 64)),
            (1024 + i) as u16,
            80,
            Protocol::Tcp,
        )
        .with_volume(3, 120)
    }

    #[test]
    fn itemset_judged_tp_when_event_flows_dominate() {
        let mut flows: Vec<FlowRecord> = (0..100).map(scan_flow).collect();
        let mut labels: Vec<Option<EventId>> = vec![Some(EventId(1)); 100];
        flows.extend((0..40).map(web_flow));
        labels.extend(vec![None; 40]);

        let scan_set = ItemSet::new(
            vec![
                Item::new(
                    FlowFeature::SrcIp,
                    u64::from(u32::from(Ipv4Addr::new(66, 6, 6, 6))),
                ),
                Item::new(FlowFeature::DstPort, 445),
            ],
            100,
        );
        let web_set = ItemSet::new(vec![Item::new(FlowFeature::DstPort, 80)], 40);
        let judged = evaluate_itemsets(&[scan_set, web_set], &flows, &labels);
        assert!(judged[0].is_tp);
        assert_eq!(judged[0].dominant_event, Some(EventId(1)));
        assert_eq!(judged[0].matching_flows, 100);
        assert!(!judged[1].is_tp, "benign web item-set is a FP");
        assert_eq!(judged[1].dominant_event, None);
    }

    #[test]
    fn class_hint_travels_with_judgement() {
        let flows: Vec<FlowRecord> = (0..10).map(scan_flow).collect();
        let labels = vec![Some(EventId(0)); 10];
        let set = ItemSet::new(
            vec![
                Item::new(
                    FlowFeature::SrcIp,
                    u64::from(u32::from(Ipv4Addr::new(66, 6, 6, 6))),
                ),
                Item::new(FlowFeature::DstPort, 445),
            ],
            10,
        );
        let judged = evaluate_itemsets(&[set], &flows, &labels);
        assert_eq!(judged[0].class_hint, Some(AnomalyClass::Scanning));
    }

    #[test]
    fn small_scenario_end_to_end() {
        let scenario = Scenario::small(23);
        let config = ExtractionConfig {
            interval_ms: 60_000,
            detector: DetectorConfig {
                training_intervals: 10,
                ..DetectorConfig::default()
            },
            min_support: 700,
            ..ExtractionConfig::default()
        };
        let run = run_scenario(&scenario, &config);
        assert_eq!(run.records.len(), 40);
        assert_eq!(run.truth.iter().filter(|&&t| t).count(), 3);

        // All three events detected, no false alarms after training.
        let (tp, fp, fns, tn) = run.detection_counts(12);
        assert_eq!(tp, 3, "all events detected (fp={fp}, fn={fns}, tn={tn})");
        assert_eq!(fns, 0);
        assert!(fp <= 2, "at most a stray false alarm, got {fp}");

        // Every alarmed anomalous interval extracted its event.
        for r in run.alarmed_anomalous() {
            assert!(
                r.evaluated.iter().any(|e| e.is_tp),
                "interval {} extracted nothing true",
                r.interval
            );
        }

        // Sweep machinery runs and behaves monotonically-ish.
        let sweep = run.fp_sweep(&[300, 700, 1500], MinerKind::FpGrowth);
        assert_eq!(sweep.len(), 3);
        assert!(
            sweep[0].avg_fp >= sweep[2].avg_fp,
            "FPs shrink with support"
        );
        let costs = run.cost_sweep(&[300, 1500], MinerKind::FpGrowth);
        assert!(
            costs[1].1 >= costs[0].1,
            "cost reduction grows with support"
        );

        // Table IV summary covers the three planted classes.
        let table = run.table4(&scenario);
        assert_eq!(table.len(), 3);
        for row in &table {
            assert_eq!(row.detected, row.occurrences, "{} missed", row.class);
            assert_eq!(
                row.extracted, row.occurrences,
                "{} not extracted",
                row.class
            );
        }

        // Clone scores align with intervals.
        assert_eq!(run.clone_scores.len(), config.detector.clones);
        assert!(run.clone_scores.iter().all(|s| s.len() == 40));
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn label_mismatch_panics() {
        let flows = vec![scan_flow(0)];
        let _ = evaluate_itemsets(&[], &flows, &[]);
    }
}
