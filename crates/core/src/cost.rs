//! Classification-cost accounting (paper §III-F, Fig. 10).
//!
//! The end benefit of anomaly extraction is that an administrator
//! classifies a handful of item-sets instead of hundreds of thousands of
//! flows. With classification cost linear in the number of items to
//! classify, the reduction for an interval is `R = F / I` where `F` is the
//! interval's flow count and `I` the number of extracted item-sets.

/// Classification-cost reduction `R = F / I`.
///
/// When mining returns no item-sets, `I` is floored at 1: the
/// administrator still "classifies" the single empty report.
#[must_use]
pub fn cost_reduction(interval_flows: u64, itemsets: usize) -> f64 {
    interval_flows as f64 / (itemsets.max(1) as f64)
}

/// Average cost reduction across intervals: mean of per-interval `R`.
///
/// Returns 0 for an empty input.
#[must_use]
pub fn average_cost_reduction(per_interval: &[(u64, usize)]) -> f64 {
    if per_interval.is_empty() {
        return 0.0;
    }
    per_interval
        .iter()
        .map(|&(f, i)| cost_reduction(f, i))
        .sum::<f64>()
        / per_interval.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_magnitude() {
        // §III-F: 0.7–2.6 M flows per interval, a handful of item-sets,
        // reductions of 600 000–800 000.
        let r = cost_reduction(2_600_000, 4);
        assert!((r - 650_000.0).abs() < 1.0);
        let r = cost_reduction(700_000, 1);
        assert_eq!(r, 700_000.0);
    }

    #[test]
    fn zero_itemsets_floor() {
        assert_eq!(cost_reduction(1000, 0), 1000.0);
    }

    #[test]
    fn more_itemsets_less_reduction() {
        assert!(cost_reduction(10_000, 2) > cost_reduction(10_000, 10));
    }

    #[test]
    fn average_over_intervals() {
        let data = [(1000u64, 1usize), (2000, 2), (3000, 3)];
        let avg = average_cost_reduction(&data);
        assert!((avg - 1000.0).abs() < 1e-9);
        assert_eq!(average_cost_reduction(&[]), 0.0);
    }

    /// Fig. 10's shape: the reduction grows with the minimum support
    /// (fewer item-sets) and saturates once the minimum is reached.
    #[test]
    fn saturation_shape() {
        let flows = 1_000_000u64;
        // Item-set counts as support rises: 20, 10, 5, 2, 2, 2 (saturated).
        let counts = [20usize, 10, 5, 2, 2, 2];
        let rs: Vec<f64> = counts.iter().map(|&c| cost_reduction(flows, c)).collect();
        for w in rs.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert_eq!(
            rs[3], rs[5],
            "saturates once the item-set count bottoms out"
        );
    }
}
