//! Heuristic item-set classification.
//!
//! The paper classifies extracted anomalies manually, "combining hints
//! extracted from visual inspection, like targeted ports or IP addresses,
//! with the expertise of the analyst" (§III-A). This module encodes those
//! published hints as rules over the item-set's *shape* — which features
//! are pinned and to what — so evaluations can score classification
//! automatically. It is a heuristic aid, not a claim of the paper.

use anomex_mining::ItemSet;
use anomex_netflow::FlowFeature;
use anomex_traffic::AnomalyClass;

/// Well-known mail port.
const SMTP: u64 = 25;

/// Guess the anomaly class of an extracted item-set from its shape.
///
/// The rules mirror the paper's published reasoning:
/// - port 25 with many senders → Spam;
/// - fixed source + fixed destination port, no destination IP, minimal
///   flows → Scanning (one host probing many);
/// - fixed destination port + 1-packet flows, no pinned endpoints →
///   Backscatter ("each flow has a different source IP address");
/// - fixed source *and* both ports pinned → Network Experiment
///   (measurement tools use fixed port pairs);
/// - source + victim + port pinned → Flooding (few sources ⇒ the source
///   survives mining);
/// - victim pinned without a source → DDoS (many sources ⇒ no single
///   source is frequent);
/// - two endpoints pinned with no service port → Unknown.
#[must_use]
pub fn classify_itemset(itemset: &ItemSet) -> Option<AnomalyClass> {
    let has = |f: FlowFeature| itemset.items().iter().any(|i| i.feature() == f);
    let value_of = |f: FlowFeature| -> Option<u64> {
        itemset
            .items()
            .iter()
            .find(|i| i.feature() == f)
            .map(|i| i.value())
    };

    let src_ip = has(FlowFeature::SrcIp);
    let dst_ip = has(FlowFeature::DstIp);
    let src_port = has(FlowFeature::SrcPort);
    let dst_port = value_of(FlowFeature::DstPort);
    let packets = value_of(FlowFeature::Packets);

    if dst_port == Some(SMTP) {
        return Some(AnomalyClass::Spam);
    }
    if src_ip && src_port && dst_port.is_some() && !dst_ip {
        return Some(AnomalyClass::NetworkExperiment);
    }
    if src_ip && dst_ip && dst_port.is_some() {
        return Some(AnomalyClass::Flooding);
    }
    if src_ip && !dst_ip && dst_port.is_some() {
        return Some(AnomalyClass::Scanning);
    }
    if !src_ip && !dst_ip && dst_port.is_some() && packets == Some(1) {
        return Some(AnomalyClass::Backscatter);
    }
    if !src_ip && dst_ip && dst_port.is_some() {
        return Some(AnomalyClass::DDoS);
    }
    if src_ip && dst_ip && dst_port.is_none() {
        return Some(AnomalyClass::Unknown);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomex_mining::Item;

    fn set(items: &[(FlowFeature, u64)]) -> ItemSet {
        ItemSet::new(
            items.iter().map(|&(f, v)| Item::new(f, v)).collect(),
            10_000,
        )
    }

    #[test]
    fn spam_by_port_25() {
        let s = set(&[(FlowFeature::DstIp, 42), (FlowFeature::DstPort, 25)]);
        assert_eq!(classify_itemset(&s), Some(AnomalyClass::Spam));
    }

    #[test]
    fn scan_is_source_plus_port_without_victim() {
        let s = set(&[(FlowFeature::SrcIp, 7), (FlowFeature::DstPort, 445)]);
        assert_eq!(classify_itemset(&s), Some(AnomalyClass::Scanning));
    }

    #[test]
    fn flooding_pins_source_victim_port() {
        let s = set(&[
            (FlowFeature::SrcIp, 9),
            (FlowFeature::DstIp, 5),
            (FlowFeature::DstPort, 7000),
        ]);
        assert_eq!(classify_itemset(&s), Some(AnomalyClass::Flooding));
    }

    #[test]
    fn ddos_pins_victim_without_source() {
        let s = set(&[(FlowFeature::DstIp, 5), (FlowFeature::DstPort, 80)]);
        assert_eq!(classify_itemset(&s), Some(AnomalyClass::DDoS));
    }

    #[test]
    fn backscatter_is_port_plus_single_packet() {
        let s = set(&[
            (FlowFeature::DstPort, 9022),
            (FlowFeature::Proto, 6),
            (FlowFeature::Packets, 1),
            (FlowFeature::Bytes, 40),
        ]);
        assert_eq!(classify_itemset(&s), Some(AnomalyClass::Backscatter));
    }

    #[test]
    fn experiment_pins_both_ports_and_source() {
        let s = set(&[
            (FlowFeature::SrcIp, 12),
            (FlowFeature::SrcPort, 33434),
            (FlowFeature::DstPort, 33435),
        ]);
        assert_eq!(classify_itemset(&s), Some(AnomalyClass::NetworkExperiment));
    }

    #[test]
    fn unknown_is_endpoint_pair_without_port() {
        let s = set(&[(FlowFeature::SrcIp, 1), (FlowFeature::DstIp, 2)]);
        assert_eq!(classify_itemset(&s), Some(AnomalyClass::Unknown));
    }

    #[test]
    fn benign_shapes_are_unclassified() {
        // A bare popular port with a flow size — the classic benign
        // frequent item-set — matches no rule (packets != 1).
        let s = set(&[(FlowFeature::DstPort, 80), (FlowFeature::Packets, 3)]);
        assert_eq!(classify_itemset(&s), None);
        let s = set(&[(FlowFeature::Packets, 2), (FlowFeature::Bytes, 96)]);
        assert_eq!(classify_itemset(&s), None);
    }
}
