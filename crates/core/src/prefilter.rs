//! Flow pre-filtering (paper §II-A).
//!
//! Pre-filtering selects the *suspicious* flows an alarm's meta-data points
//! at, before item-set mining. The paper's key design decision is to keep
//! flows matching **any** of the meta-data (union) rather than **all** of
//! it (intersection): multi-stage anomalies like the Sasser worm leave
//! flow-disjoint meta-data (SYN-scan flows, backdoor-port flows, payload
//! download flows), whose intersection is *empty* while their union covers
//! the event. DoWitcher-style intersection filtering is provided as the
//! comparison baseline.

use std::ops::Range;

use anomex_detector::kernels::{self, SmallValueSet};
use anomex_detector::MetaData;
use anomex_netflow::{FlowColumns, FlowRecord, LANES};
use serde::{Deserialize, Serialize};

/// Which matching semantics the pre-filter applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PrefilterMode {
    /// Keep flows matching *any* meta-data value (the paper's choice).
    #[default]
    Union,
    /// Keep flows matching a value in *every* feature present in the
    /// meta-data (the DoWitcher baseline the paper argues against).
    Intersection,
}

impl PrefilterMode {
    /// Whether one flow passes the filter under this mode.
    #[must_use]
    pub fn matches(self, metadata: &MetaData, flow: &FlowRecord) -> bool {
        match self {
            PrefilterMode::Union => metadata.matches_any(flow),
            PrefilterMode::Intersection => metadata.matches_all(flow),
        }
    }
}

/// Filter flows by meta-data, returning the suspicious subset.
#[must_use]
pub fn prefilter(
    flows: &[FlowRecord],
    metadata: &MetaData,
    mode: PrefilterMode,
) -> Vec<FlowRecord> {
    flows
        .iter()
        .filter(|f| mode.matches(metadata, f))
        .copied()
        .collect()
}

/// Filter flows by meta-data, returning the *indices* of suspicious flows
/// (used by the evaluation harness to join with ground-truth labels).
#[must_use]
pub fn prefilter_indices(
    flows: &[FlowRecord],
    metadata: &MetaData,
    mode: PrefilterMode,
) -> Vec<usize> {
    flows
        .iter()
        .enumerate()
        .filter(|(_, f)| mode.matches(metadata, f))
        .map(|(i, _)| i)
        .collect()
}

/// Filter a columnar interval by meta-data, returning the indices of
/// suspicious flows — the struct-of-arrays counterpart of
/// [`prefilter_indices`], evaluated one *column* at a time instead of
/// one flow at a time: each meta-data feature scans only its own
/// contiguous column, so the other nine columns never enter the cache.
/// Identical output to running [`prefilter_indices`] over
/// `cols.to_flows()`.
#[must_use]
pub fn prefilter_indices_columns(
    cols: &FlowColumns,
    metadata: &MetaData,
    mode: PrefilterMode,
) -> Vec<usize> {
    prefilter_indices_columns_range(cols, 0..cols.len(), metadata, mode)
}

/// [`prefilter_indices_columns`] restricted to `range` — the shard-local
/// unit of the sharded engine's columnar pre-filter pass. Returned
/// indices are *global* (into `cols`), ascending, so concatenating the
/// results of consecutive ranges reproduces the full-interval answer.
///
/// # Panics
///
/// Panics if `range` is out of bounds for `cols`.
#[must_use]
pub fn prefilter_indices_columns_range(
    cols: &FlowColumns,
    range: Range<usize>,
    metadata: &MetaData,
    mode: PrefilterMode,
) -> Vec<usize> {
    prefilter_indices_columns_range_with(
        cols,
        range,
        metadata,
        mode,
        &mut PrefilterScratch::default(),
    )
}

/// Reusable working memory for the columnar pre-filter — the per-row hit
/// counters. The sharded engine keeps a pool of these and threads one
/// through every shard's [`prefilter_indices_columns_range_with`] call,
/// so steady-state intervals stop re-allocating `range.len()` bytes per
/// shard. Contents never leak between calls (the buffer is re-zeroed on
/// entry), so recycling cannot change any output.
#[derive(Debug, Default)]
pub struct PrefilterScratch {
    hits: Vec<u8>,
}

/// [`prefilter_indices_columns_range`] with caller-provided scratch —
/// the allocation-recycling form the sharded engine uses.
///
/// Per-feature membership runs branch-free where it can: meta-data value
/// sets of at most [`SmallValueSet::MAX`] members (the common case —
/// voted value sets are small) are probed as fixed arrays with a
/// byte-lane add per [`LANES`]-wide chunk through the kernel layer;
/// larger sets fall back to the ordinary `BTreeSet` lookup. Both paths
/// count the same hits, so output is identical to the scalar reference
/// regardless of set size or backend.
///
/// # Panics
///
/// Panics if `range` is out of bounds for `cols`.
#[must_use]
pub fn prefilter_indices_columns_range_with(
    cols: &FlowColumns,
    range: Range<usize>,
    metadata: &MetaData,
    mode: PrefilterMode,
    scratch: &mut PrefilterScratch,
) -> Vec<usize> {
    // Only features that actually carry values participate — exactly the
    // sets `matches_any`/`matches_all` consult.
    let features: Vec<_> = metadata
        .features()
        .map(|f| {
            (
                f,
                metadata
                    .values_for(f)
                    .expect("listed features are non-empty"),
            )
        })
        .collect();
    if features.is_empty() {
        // Empty meta-data matches nothing under either mode.
        return Vec::new();
    }
    // One pass per participating feature over that feature's column,
    // counting per-row feature hits; a row passes under Union with ≥1
    // hit and under Intersection with a hit in every feature (≤ 9
    // features, so a u8 cannot overflow).
    let hits = &mut scratch.hits;
    hits.clear();
    hits.resize(range.len(), 0);
    let backend = kernels::active_backend();
    for &(feature, values) in &features {
        if let Some(set) = SmallValueSet::new(values.iter().copied()) {
            // Branch-free fast path: probe the fixed array per lane and
            // add the 0/1 outcome into the row's hit counter.
            let chunks = cols.raw_chunks(feature, range.clone());
            let mut lanes = [0u64; LANES];
            for (c, slot) in hits.chunks_exact_mut(LANES).enumerate() {
                chunks.load(c, &mut lanes);
                let slot: &mut [u8; LANES] = slot.try_into().expect("exact chunk");
                kernels::member_chunk(backend, &set, &lanes, slot);
            }
            let tail_start = range.len() - chunks.tail().len();
            for (h, &value) in hits[tail_start..].iter_mut().zip(chunks.tail()) {
                *h += u8::from(set.contains(value));
            }
        } else {
            let mut row = 0;
            cols.for_each_raw(feature, range.clone(), |value| {
                hits[row] += u8::from(values.contains(&value));
                row += 1;
            });
        }
    }
    let needed = match mode {
        PrefilterMode::Union => 1,
        PrefilterMode::Intersection => features.len() as u8,
    };
    // Exact-count pass first so the output vector is built with its
    // final capacity reserved — no growth re-allocations on the fill.
    let kept = hits.iter().filter(|&&h| h >= needed).count();
    let mut out = Vec::with_capacity(kept);
    out.extend(
        hits.iter()
            .enumerate()
            .filter(|&(_, &h)| h >= needed)
            .map(|(i, _)| range.start + i),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomex_netflow::{FlowFeature, Protocol};
    use std::net::Ipv4Addr;

    fn flow(dst_port: u16, packets: u32) -> FlowRecord {
        FlowRecord::new(
            0,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            4000,
            dst_port,
            Protocol::Tcp,
        )
        .with_volume(packets, packets * 40)
    }

    /// The Sasser-style multistage situation from §II-A: meta-data carries
    /// a port from stage 2 and a flow size from stage 3, appearing in
    /// *different* flows.
    fn sasser_metadata() -> MetaData {
        let mut md = MetaData::new();
        md.insert(FlowFeature::DstPort, 9996); // backdoor stage
        md.insert(FlowFeature::Packets, 12); // 16-kB download stage
        md
    }

    #[test]
    fn union_catches_flow_disjoint_stages() {
        let md = sasser_metadata();
        let flows = vec![
            flow(9996, 1),
            flow(445, 12),
            flow(80, 3), /* unrelated */
        ];
        let union = prefilter(&flows, &md, PrefilterMode::Union);
        assert_eq!(union.len(), 2, "both stages kept");
        let inter = prefilter(&flows, &md, PrefilterMode::Intersection);
        assert!(inter.is_empty(), "intersection misses the anomaly entirely");
    }

    #[test]
    fn intersection_keeps_flows_matching_all_features() {
        let md = sasser_metadata();
        let both = flow(9996, 12); // matches port AND packet count
        let flows = vec![both, flow(9996, 1)];
        let inter = prefilter(&flows, &md, PrefilterMode::Intersection);
        assert_eq!(inter, vec![both]);
    }

    #[test]
    fn union_is_superset_of_intersection() {
        let md = sasser_metadata();
        let flows: Vec<FlowRecord> = (0..100)
            .map(|i| flow(9990 + (i % 10) as u16, (i % 15) as u32 + 1))
            .collect();
        let union = prefilter_indices(&flows, &md, PrefilterMode::Union);
        let inter = prefilter_indices(&flows, &md, PrefilterMode::Intersection);
        for idx in &inter {
            assert!(union.contains(idx));
        }
    }

    #[test]
    fn empty_metadata_filters_everything_out() {
        let md = MetaData::new();
        let flows = vec![flow(80, 1)];
        assert!(prefilter(&flows, &md, PrefilterMode::Union).is_empty());
        assert!(prefilter(&flows, &md, PrefilterMode::Intersection).is_empty());
    }

    #[test]
    fn indices_align_with_flows() {
        let md = sasser_metadata();
        let flows = vec![flow(80, 1), flow(9996, 2), flow(443, 12)];
        let idx = prefilter_indices(&flows, &md, PrefilterMode::Union);
        assert_eq!(idx, vec![1, 2]);
    }

    #[test]
    fn columnar_prefilter_matches_record_prefilter() {
        let md = sasser_metadata();
        let flows: Vec<FlowRecord> = (0..3000)
            .map(|i| flow(9990 + (i % 10) as u16, (i % 15) as u32 + 1))
            .collect();
        let cols = FlowColumns::from_flows(&flows);
        for mode in [PrefilterMode::Union, PrefilterMode::Intersection] {
            assert_eq!(
                prefilter_indices_columns(&cols, &md, mode),
                prefilter_indices(&flows, &md, mode),
                "{mode:?}"
            );
        }
    }

    #[test]
    fn columnar_prefilter_ranges_concatenate_to_the_whole() {
        let md = sasser_metadata();
        let flows: Vec<FlowRecord> = (0..997)
            .map(|i| flow(9990 + (i % 12) as u16, (i % 20) as u32 + 1))
            .collect();
        let cols = FlowColumns::from_flows(&flows);
        for mode in [PrefilterMode::Union, PrefilterMode::Intersection] {
            let whole = prefilter_indices_columns(&cols, &md, mode);
            for split in [0usize, 1, 400, 996, 997] {
                let mut parts = prefilter_indices_columns_range(&cols, 0..split, &md, mode);
                parts.extend(prefilter_indices_columns_range(
                    &cols,
                    split..997,
                    &md,
                    mode,
                ));
                assert_eq!(parts, whole, "{mode:?} split {split}");
            }
        }
    }

    #[test]
    fn columnar_prefilter_rejects_everything_on_empty_metadata() {
        let md = MetaData::new();
        let cols = FlowColumns::from_flows(&[flow(80, 1), flow(9996, 12)]);
        assert!(prefilter_indices_columns(&cols, &md, PrefilterMode::Union).is_empty());
        assert!(prefilter_indices_columns(&cols, &md, PrefilterMode::Intersection).is_empty());
    }
}
