//! The streaming extraction engine: continuous, pipelined online
//! operation — from one exporter or from many.
//!
//! The paper's deployment is online — NetFlow collectors export flows
//! continuously and the extractor must keep up with each Δ-minute
//! interval in real time. [`StreamingExtractor`] implements that by
//! wrapping the two halves the crate already has into one double-buffered
//! pipeline:
//!
//! ```text
//!  caller thread                     │  pipeline thread (spawned once)
//!  ─────────────                     │  ──────────────────────────────
//!  push(flow) ──► IntervalAssembler  │   ShardedExtractor (persistent
//!                   assembles t+1    │   worker pool): detect → prefilter
//!                        │           │   → mine interval t
//!                        ▼           │            │
//!                 bounded(1) channel ─────────────┘
//!                 (the double buffer: one interval in flight,
//!                  one queued; assembly of t+1 overlaps
//!                  extraction of t)
//!                        ▲           │
//!  push()/finish() ◄─────┴─ StreamEvent per closed interval
//!                            (outcome + timing + drop counters)
//! ```
//!
//! [`MultiSourceExtractor`] generalizes the ingestion side to the
//! paper's multi-link SWITCH setting — **N border routers feeding one
//! analysis pipeline**. One [`anomex_netflow::IntervalAssembler`] per
//! exporter (each with its own clock origin) feeds a shared
//! [`MergeAssembler`] grid that closes an interval only when every live
//! source has advanced past it (watermark semantics, with a configurable
//! lateness bound and per-source drop accounting); each merged interval
//! then runs through exactly the same pipeline thread.
//!
//! The detector bank lives inside the pipeline thread's
//! [`ShardedExtractor`] for the whole life of the stream, so baseline
//! state — reference histograms, KL series, fitted σ̂ thresholds —
//! carries forward from interval to interval instead of being re-derived
//! per call; an extractor that has finished training stays trained for
//! every subsequent interval of the stream.
//!
//! **Determinism:** the assembler emits exactly the intervals batch
//! slicing would produce (empty windows included, so the KL time series
//! stays aligned), and the pipeline thread feeds them, in order, through
//! the same pool-backed engine the batch path uses — so the streaming
//! event stream is **bit-identical** to batch extraction over the same
//! flows, for every shard count and miner. In multi-source operation the
//! same holds against batch extraction of the *concatenation* of all
//! sources' flows per interval (in source registration order), no matter
//! how the sources' pushes interleave. The streaming and multi-source
//! determinism property suites assert both.

use std::collections::BTreeMap;
use std::num::NonZeroUsize;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use anomex_netflow::snapshot::{RestoreError, SnapshotReader, SnapshotWriter};
use anomex_netflow::{
    ClosedInterval, FlowRecord, IntervalAssembler, MergeAssembler, MergeConfig, MergedInterval,
    SourceId, SourceSpec, SourceStats, SourcedFlow,
};
use crossbeam::channel::{bounded, Receiver, Sender};

use crate::config::{ConfigError, ExtractionConfig};
use crate::engine::ReconfigRequest;
use crate::pipeline::IntervalOutcome;
use crate::sharded::{PoolStats, ShardedExtractor};

/// One closed interval's worth of streaming output: what the pipeline
/// saw, what it extracted, and how long extraction took.
#[derive(Debug, Clone)]
pub struct StreamEvent {
    /// Zero-based interval index since the stream origin.
    pub index: u64,
    /// Inclusive window start, ms.
    pub begin_ms: u64,
    /// Exclusive window end, ms.
    pub end_ms: u64,
    /// Flows assembled into this interval.
    pub flows: usize,
    /// Cumulative assembler drops (late + pre-origin flows) at the
    /// moment this interval closed.
    pub dropped_flows: u64,
    /// Wall-clock the pipeline spent on this interval (detection,
    /// pre-filtering, mining), in microseconds.
    pub process_micros: u64,
    /// What the detector bank saw and, on alarm, what was extracted.
    pub outcome: IntervalOutcome,
}

impl StreamEvent {
    /// Whether the detector bank alarmed on this interval.
    #[must_use]
    pub fn alarmed(&self) -> bool {
        self.outcome.observation.alarm
    }
}

/// End-of-stream accounting returned by [`StreamingExtractor::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSummary {
    /// Intervals closed (and processed) over the stream's lifetime.
    pub intervals: u64,
    /// Intervals on which the detector bank alarmed.
    pub alarms: u64,
    /// Intervals that produced an extraction (alarm + non-empty
    /// meta-data).
    pub extractions: u64,
    /// Flows fed to the stream.
    pub total_flows: u64,
    /// Flows dropped because they arrived after their window closed.
    pub late_flows: u64,
    /// Flows dropped because they were dated before the stream origin.
    pub pre_origin_flows: u64,
    /// Whether every detector had finished training by end of stream.
    pub trained: bool,
    /// Scheduler counters from the engine's worker pool (tree tasks,
    /// steals, queue-depth high-water, calibrated dispatch overhead);
    /// all zeros at one shard, where the pipeline runs inline.
    pub pool: PoolStats,
    /// Live reconfiguration requests applied at interval boundaries over
    /// the stream's lifetime (the audit trail survives checkpoints).
    pub reconfigs_applied: u64,
    /// Reconfiguration requests rejected by validation — the engine kept
    /// its previous parameters.
    pub reconfigs_rejected: u64,
}

/// The `p`-th percentile (nearest rank) of a latency sample, sorting the
/// slice in place; zero for an empty sample. The one definition shared
/// by the CLI's end-of-stream summary and the benchmark emitters, so
/// operator-observed and trajectory-tracked numbers stay comparable.
#[must_use]
pub fn latency_percentile(latencies: &mut [u64], p: f64) -> u64 {
    if latencies.is_empty() {
        return 0;
    }
    latencies.sort_unstable();
    let rank = ((p / 100.0) * latencies.len() as f64).ceil() as usize;
    latencies[rank.clamp(1, latencies.len()) - 1]
}

/// A closed interval plus the assembler's cumulative drop count at the
/// moment it closed — what the caller thread hands the pipeline thread.
/// The flows travel behind an [`Arc`] so a submitter can keep a handle
/// to the interval's data (the multi-source engine re-mines it per
/// source for the rule-merge layer) without copying the `Vec`.
#[derive(Debug)]
struct Work {
    index: u64,
    begin_ms: u64,
    end_ms: u64,
    flows: Arc<Vec<FlowRecord>>,
    dropped_flows: u64,
}

impl Work {
    /// Wrap a freshly closed interval, Arc-ing its flows.
    fn from_closed(interval: ClosedInterval, dropped_flows: u64) -> Self {
        let ClosedInterval {
            index,
            begin_ms,
            end_ms,
            flows,
        } = interval;
        Work {
            index,
            begin_ms,
            end_ms,
            flows: Arc::new(flows),
            dropped_flows,
        }
    }
}

/// What travels down the pipeline thread's command channel. Snapshot and
/// reconfig requests share the channel with interval work, so they land
/// **between intervals** by FIFO order: every interval submitted before
/// the command is fully processed (and its event already sent) when the
/// command executes — no interval is ever split across a parameter
/// change or a checkpoint.
#[derive(Debug)]
enum Command {
    /// Extract one closed interval.
    Work(Work),
    /// Serialize the engine's state and reply with the payload.
    Snapshot(Sender<Vec<u8>>),
    /// Apply a parameter change at this interval boundary; reply with
    /// the validation verdict.
    Reconfig(Box<ReconfigRequest>, Sender<Result<(), ConfigError>>),
}

fn pipeline_loop(
    mut engine: ShardedExtractor,
    work_rx: &Receiver<Command>,
    events_tx: &Sender<StreamEvent>,
) -> ShardedExtractor {
    while let Ok(command) = work_rx.recv() {
        match command {
            Command::Work(work) => {
                let Work {
                    index,
                    begin_ms,
                    end_ms,
                    flows,
                    dropped_flows,
                } = work;
                let started = Instant::now();
                let outcome = engine.process_shared(&flows);
                let process_micros = started.elapsed().as_micros() as u64;
                let event = StreamEvent {
                    index,
                    begin_ms,
                    end_ms,
                    flows: flows.len(),
                    dropped_flows,
                    process_micros,
                    outcome,
                };
                if events_tx.send(event).is_err() {
                    break; // receiver gone: the stream was abandoned
                }
            }
            Command::Snapshot(reply) => {
                let mut w = SnapshotWriter::new();
                engine.encode_snapshot(&mut w);
                if reply.send(w.into_bytes()).is_err() {
                    break; // requester gone: the stream was abandoned
                }
            }
            Command::Reconfig(request, reply) => {
                let verdict = engine.apply_reconfig(&request);
                if reply.send(verdict).is_err() {
                    break; // requester gone: the stream was abandoned
                }
            }
        }
    }
    engine
}

/// The shared back half of every streaming engine: the pipeline thread,
/// its work/event channels, and the running interval counters. Both
/// [`StreamingExtractor`] (one exporter) and [`MultiSourceExtractor`]
/// (N exporters) assemble intervals their own way and hand them here.
#[derive(Debug)]
struct PipelineHandle {
    /// `Some` until `finish`/drop closes the stream.
    work_tx: Option<Sender<Command>>,
    events_rx: Receiver<StreamEvent>,
    /// The pipeline thread; returns its engine so `finish` can read
    /// final detector state.
    worker: Option<JoinHandle<ShardedExtractor>>,
    intervals: u64,
    alarms: u64,
    extractions: u64,
    reconfigs_applied: u64,
    reconfigs_rejected: u64,
}

impl PipelineHandle {
    /// Capacity of the interval (work) channel. One slot is the double
    /// buffer: while the pipeline thread extracts interval `t`, interval
    /// `t+1` can sit queued and interval `t+2` assembles on the caller's
    /// thread; only a third pending interval applies back-pressure.
    const WORK_BUFFER: usize = 1;
    /// Capacity of the event channel. Events are drained on every
    /// `push`, so this only needs slack for bursts of empty intervals.
    const EVENT_BUFFER: usize = 64;

    /// Spawn the pipeline thread around an already-validated engine.
    fn spawn(engine: ShardedExtractor) -> Result<Self, ConfigError> {
        let (work_tx, work_rx) = bounded::<Command>(Self::WORK_BUFFER);
        let (events_tx, events_rx) = bounded::<StreamEvent>(Self::EVENT_BUFFER);
        let worker = std::thread::Builder::new()
            .name("anomex-stream-pipeline".into())
            .spawn(move || pipeline_loop(engine, &work_rx, &events_tx))
            .map_err(|e| ConfigError::new(format!("cannot spawn pipeline thread: {e}")))?;
        Ok(PipelineHandle {
            work_tx: Some(work_tx),
            events_rx,
            worker: Some(worker),
            intervals: 0,
            alarms: 0,
            extractions: 0,
            reconfigs_applied: 0,
            reconfigs_rejected: 0,
        })
    }

    /// Queue one assembled interval for extraction, first draining every
    /// event the pipeline thread has finished (so it can never stall on
    /// a full event channel while we wait for the double buffer).
    ///
    /// # Panics
    ///
    /// Re-raises a panic from the pipeline thread.
    fn submit(&mut self, work: Work, into: &mut Vec<StreamEvent>) {
        self.drain_ready(into);
        let sent = self
            .work_tx
            .as_ref()
            .expect("stream already finished")
            .send(Command::Work(work));
        if sent.is_err() {
            // The pipeline thread is gone mid-stream: it panicked.
            self.join_and_propagate();
        }
    }

    /// Ask the pipeline thread for an engine snapshot. The request rides
    /// the FIFO command channel, so every previously submitted interval
    /// is fully processed — and its event already in the event channel —
    /// before the snapshot is taken; the trailing drain therefore leaves
    /// the counters exactly consistent with the serialized engine state.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from the pipeline thread.
    fn snapshot(&mut self, into: &mut Vec<StreamEvent>) -> Vec<u8> {
        self.drain_ready(into);
        let (reply_tx, reply_rx) = bounded(1);
        let sent = self
            .work_tx
            .as_ref()
            .expect("stream already finished")
            .send(Command::Snapshot(reply_tx));
        if sent.is_err() {
            self.join_and_propagate();
        }
        let Ok(payload) = reply_rx.recv() else {
            self.join_and_propagate();
        };
        self.drain_ready(into);
        payload
    }

    /// Forward a reconfiguration request to the pipeline thread and wait
    /// for its verdict, updating the audit counters.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from the pipeline thread.
    fn reconfigure(
        &mut self,
        request: ReconfigRequest,
        into: &mut Vec<StreamEvent>,
    ) -> Result<(), ConfigError> {
        self.drain_ready(into);
        let (reply_tx, reply_rx) = bounded(1);
        let sent = self
            .work_tx
            .as_ref()
            .expect("stream already finished")
            .send(Command::Reconfig(Box::new(request), reply_tx));
        if sent.is_err() {
            self.join_and_propagate();
        }
        let Ok(verdict) = reply_rx.recv() else {
            self.join_and_propagate();
        };
        match &verdict {
            Ok(()) => self.reconfigs_applied += 1,
            Err(_) => self.reconfigs_rejected += 1,
        }
        self.drain_ready(into);
        verdict
    }

    /// Serialize the stream counters into a checkpoint payload.
    fn encode_counters(&self, w: &mut SnapshotWriter) {
        w.u64(self.intervals);
        w.u64(self.alarms);
        w.u64(self.extractions);
        w.u64(self.reconfigs_applied);
        w.u64(self.reconfigs_rejected);
    }

    /// Restore the stream counters serialized by
    /// [`encode_counters`](Self::encode_counters).
    fn restore_counters(&mut self, counters: [u64; 5]) {
        self.intervals = counters[0];
        self.alarms = counters[1];
        self.extractions = counters[2];
        self.reconfigs_applied = counters[3];
        self.reconfigs_rejected = counters[4];
    }

    /// Non-blockingly collect every event the pipeline thread has
    /// finished, updating the stream counters.
    fn drain_ready(&mut self, into: &mut Vec<StreamEvent>) {
        while let Ok(event) = self.events_rx.try_recv() {
            self.record(&event);
            into.push(event);
        }
    }

    /// Hang up the work channel, drain the pipeline thread to
    /// completion, and join it, returning the trailing events and the
    /// engine (for final detector state).
    ///
    /// # Panics
    ///
    /// Re-raises a panic from the pipeline thread.
    fn finish(&mut self) -> (Vec<StreamEvent>, ShardedExtractor) {
        drop(self.work_tx.take());
        let mut events = Vec::new();
        while let Ok(event) = self.events_rx.recv() {
            self.record(&event);
            events.push(event);
        }
        let engine = match self.worker.take().expect("finish called once").join() {
            Ok(engine) => engine,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (events, engine)
    }

    fn record(&mut self, event: &StreamEvent) {
        self.intervals += 1;
        if event.alarmed() {
            self.alarms += 1;
        }
        if event.outcome.extraction.is_some() {
            self.extractions += 1;
        }
    }

    /// Join a pipeline thread that died mid-stream and re-raise its
    /// panic on the caller.
    fn join_and_propagate(&mut self) -> ! {
        drop(self.work_tx.take());
        let panic = self
            .worker
            .take()
            .expect("pipeline thread handle present")
            .join()
            .expect_err("a live pipeline thread cannot refuse work");
        std::panic::resume_unwind(panic)
    }
}

impl Drop for PipelineHandle {
    /// Abandon the stream: hang up the work channel, drain whatever the
    /// pipeline thread still emits, and join it — no detached threads,
    /// no deadlock (the drain keeps the event channel from filling while
    /// the thread winds down).
    fn drop(&mut self) {
        drop(self.work_tx.take());
        while self.events_rx.recv().is_ok() {}
        if let Some(worker) = self.worker.take() {
            // A panic here already surfaced through push/finish if the
            // caller was listening; swallow it during unwinding.
            let _ = worker.join();
        }
    }
}

/// The continuous streaming pipeline: feed flows, receive a
/// [`StreamEvent`] per closed Δ-interval.
///
/// See the [module docs](self) for the execution model. Constructed once
/// per stream; [`push`](Self::push) flows in rough arrival order and
/// [`finish`](Self::finish) at end of stream (or drop the extractor to
/// abandon it — the pipeline thread is joined either way).
#[derive(Debug)]
pub struct StreamingExtractor {
    assembler: IntervalAssembler,
    pipe: PipelineHandle,
    total_flows: u64,
}

impl StreamingExtractor {
    /// Build a streaming pipeline with windows
    /// `[origin_ms + i*Δ, origin_ms + (i+1)*Δ)` and `shards` persistent
    /// pool workers (1 = inline), spawning the pipeline thread.
    ///
    /// # Errors
    ///
    /// Returns the first violated configuration constraint.
    pub fn try_new(
        config: ExtractionConfig,
        shards: NonZeroUsize,
        origin_ms: u64,
    ) -> Result<Self, ConfigError> {
        let interval_ms = config.interval_ms;
        let engine = ShardedExtractor::try_new(config, shards)?;
        // `validate` already rejected a zero interval; map defensively
        // rather than panic so the error path stays a `Result`.
        let assembler =
            IntervalAssembler::try_new(origin_ms, interval_ms).map_err(ConfigError::new)?;
        Ok(StreamingExtractor {
            assembler,
            pipe: PipelineHandle::spawn(engine)?,
            total_flows: 0,
        })
    }

    /// The streaming interval assembler (drop counters, window
    /// geometry).
    #[must_use]
    pub fn assembler(&self) -> &IntervalAssembler {
        &self.assembler
    }

    /// Serialize the stream's complete state into a checkpoint payload:
    /// the assembler (including the in-progress window's flows and drop
    /// counters), the stream counters, and the engine's configuration
    /// and detector bank. Returns any events that became ready while the
    /// pipeline drained, plus the payload — frame it with
    /// [`anomex_netflow::snapshot::write_checkpoint`] to persist it
    /// atomically.
    ///
    /// The snapshot request rides the pipeline's FIFO work channel, so
    /// it lands between intervals: the payload reflects every interval
    /// submitted before the call, and nothing after.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from the pipeline thread.
    pub fn checkpoint(&mut self) -> (Vec<StreamEvent>, Vec<u8>) {
        let mut events = Vec::new();
        let engine = self.pipe.snapshot(&mut events);
        let mut w = SnapshotWriter::new();
        self.assembler.encode_snapshot(&mut w);
        w.u64(self.total_flows);
        self.pipe.encode_counters(&mut w);
        w.bytes(&engine);
        (events, w.into_bytes())
    }

    /// Rebuild a streaming pipeline from a [`checkpoint`](Self::checkpoint)
    /// payload, resuming the stream bit-identically: the restored
    /// assembler continues the same window grid (partial window
    /// included) and the restored engine scores every subsequent
    /// interval exactly as the checkpointed one would have. `shards`
    /// overrides the saved shard count (`None` keeps it).
    ///
    /// # Errors
    ///
    /// Any [`RestoreError`] from a truncated, corrupt, or inconsistent
    /// payload.
    pub fn restore(payload: &[u8], shards: Option<NonZeroUsize>) -> Result<Self, RestoreError> {
        let mut r = SnapshotReader::new(payload);
        let assembler = IntervalAssembler::decode_snapshot(&mut r)?;
        let total_flows = r.u64()?;
        let mut counters = [0u64; 5];
        for c in &mut counters {
            *c = r.u64()?;
        }
        let engine_bytes = r.bytes()?;
        r.finish()?;
        let mut er = SnapshotReader::new(engine_bytes);
        let engine = ShardedExtractor::decode_snapshot(&mut er, shards)?;
        er.finish()?;
        if engine.config().interval_ms != assembler.interval_ms() {
            return Err(RestoreError::Corrupt(format!(
                "assembler interval {} ms disagrees with engine interval {} ms",
                assembler.interval_ms(),
                engine.config().interval_ms
            )));
        }
        let mut pipe = PipelineHandle::spawn(engine)
            .map_err(|e| RestoreError::Corrupt(format!("cannot respawn pipeline: {e}")))?;
        pipe.restore_counters(counters);
        Ok(StreamingExtractor {
            assembler,
            pipe,
            total_flows,
        })
    }

    /// Apply a live parameter change at the next interval boundary (see
    /// [`ReconfigRequest`]): intervals already submitted run under the
    /// old parameters, everything after under the new — no flows are
    /// dropped either way. Returns any events that became ready, plus
    /// the validation verdict; a rejected request leaves the engine
    /// untouched. Both outcomes are tallied in the
    /// [`StreamSummary`] audit counters.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from the pipeline thread.
    pub fn reconfigure(
        &mut self,
        request: ReconfigRequest,
    ) -> (Vec<StreamEvent>, Result<(), ConfigError>) {
        let mut events = Vec::new();
        let verdict = self.pipe.reconfigure(request, &mut events);
        (events, verdict)
    }

    /// Feed one flow. Returns every [`StreamEvent`] that became ready —
    /// usually empty, one event when the flow closed an interval, and
    /// several after a gap in the stream (empty windows are processed
    /// too, keeping the KL series aligned).
    ///
    /// # Panics
    ///
    /// Re-raises a panic from the pipeline thread (a worker-pool job or
    /// detector panicking on a poisoned interval).
    pub fn push(&mut self, flow: FlowRecord) -> Vec<StreamEvent> {
        self.total_flows += 1;
        let closed = self.assembler.push(flow);
        let mut events = Vec::new();
        for interval in closed {
            let dropped = self.assembler.dropped_flows();
            self.pipe
                .submit(Work::from_closed(interval, dropped), &mut events);
        }
        self.pipe.drain_ready(&mut events);
        events
    }

    /// Close the stream: flush the in-progress interval, wait for the
    /// pipeline thread to drain, and return the remaining events plus
    /// the end-of-stream summary.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from the pipeline thread.
    #[must_use]
    pub fn finish(mut self) -> (Vec<StreamEvent>, StreamSummary) {
        let mut events = Vec::new();
        if let Some(interval) = self.assembler.flush() {
            let dropped = self.assembler.dropped_flows();
            self.pipe
                .submit(Work::from_closed(interval, dropped), &mut events);
        }
        let (tail, engine) = self.pipe.finish();
        events.extend(tail);
        let summary = StreamSummary {
            intervals: self.pipe.intervals,
            alarms: self.pipe.alarms,
            extractions: self.pipe.extractions,
            total_flows: self.total_flows,
            late_flows: self.assembler.late_flows(),
            pre_origin_flows: self.assembler.pre_origin_flows(),
            trained: engine.is_trained(),
            pool: engine.pool_stats(),
            reconfigs_applied: self.pipe.reconfigs_applied,
            reconfigs_rejected: self.pipe.reconfigs_rejected,
        };
        (events, summary)
    }
}

/// One merged interval's worth of multi-source streaming output: the
/// ordinary [`StreamEvent`] plus the per-source flow weights of the
/// union that produced it.
#[derive(Debug, Clone)]
pub struct MultiStreamEvent {
    /// The pipeline outcome for the merged interval (grid-time window).
    pub event: StreamEvent,
    /// How many flows each registered source contributed, in source
    /// registration order.
    pub source_flows: Vec<usize>,
    /// The merged interval's flows (per-source segments concatenated in
    /// registration order, as `source_flows` partitions them) — shared
    /// with the pipeline thread, so keeping the event keeps no copy.
    /// Lets callers re-mine the interval per source, e.g. for the
    /// weighted per-source rule merge
    /// ([`merge_source_rules`](crate::merge_source_rules)).
    pub flow_data: Arc<Vec<FlowRecord>>,
}

impl MultiStreamEvent {
    /// Whether the detector bank alarmed on this merged interval.
    #[must_use]
    pub fn alarmed(&self) -> bool {
        self.event.alarmed()
    }
}

/// End-of-stream accounting returned by [`MultiSourceExtractor::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiStreamSummary {
    /// Merged grid intervals closed (and processed).
    pub intervals: u64,
    /// Intervals on which the detector bank alarmed.
    pub alarms: u64,
    /// Intervals that produced an extraction.
    pub extractions: u64,
    /// Flows fed to the stream across all sources.
    pub total_flows: u64,
    /// Flows dropped across all sources and layers (late, pre-origin,
    /// and stale-after-force-close).
    pub dropped_flows: u64,
    /// Whether every detector had finished training by end of stream.
    pub trained: bool,
    /// Scheduler counters from the engine's worker pool (tree tasks,
    /// steals, queue-depth high-water, calibrated dispatch overhead);
    /// all zeros at one shard, where the pipeline runs inline.
    pub pool: PoolStats,
    /// Per-source ingestion and drop accounting, in registration order.
    pub sources: Vec<SourceStats>,
    /// Live reconfiguration requests applied at interval boundaries.
    pub reconfigs_applied: u64,
    /// Reconfiguration requests rejected by validation.
    pub reconfigs_rejected: u64,
}

/// The multi-source streaming pipeline: N exporters fanned in onto one
/// interval grid, extracted by one engine.
///
/// Feed flows tagged with their [`SourceId`] in per-source arrival
/// order (cross-source interleaving is arbitrary); receive a
/// [`MultiStreamEvent`] per closed grid interval. The grid closes an
/// interval when every live source has advanced past it — see
/// [`MergeAssembler`] for the watermark and lateness-bound semantics —
/// and each merged interval runs through the same double-buffered
/// pipeline thread as [`StreamingExtractor`], so the outcome stream is
/// bit-identical to batch extraction of the per-interval concatenation
/// of all sources' flows.
#[derive(Debug)]
pub struct MultiSourceExtractor {
    assembler: MergeAssembler,
    pipe: PipelineHandle,
    /// Per-source weights and shared flow data of intervals submitted to
    /// the pipeline thread but not yet returned, keyed by grid index.
    pending_weights: BTreeMap<u64, (Vec<usize>, Arc<Vec<FlowRecord>>)>,
    total_flows: u64,
}

impl MultiSourceExtractor {
    /// Build a multi-source pipeline over the given exporters with
    /// `shards` persistent pool workers (1 = inline), spawning the
    /// pipeline thread. `max_lag_intervals` bounds how far the fastest
    /// source may run ahead before the grid force-closes laggards
    /// (`None` = pure watermark, wait forever).
    ///
    /// # Errors
    ///
    /// Returns the first violated configuration constraint (invalid
    /// pipeline config, no sources, or duplicate source ids).
    pub fn try_new(
        config: ExtractionConfig,
        shards: NonZeroUsize,
        sources: &[SourceSpec],
        max_lag_intervals: Option<u64>,
    ) -> Result<Self, ConfigError> {
        let merge_config = MergeConfig {
            interval_ms: config.interval_ms,
            max_lag_intervals,
        };
        let engine = ShardedExtractor::try_new(config, shards)?;
        let assembler = MergeAssembler::try_new(merge_config, sources).map_err(ConfigError::new)?;
        Ok(MultiSourceExtractor {
            assembler,
            pipe: PipelineHandle::spawn(engine)?,
            pending_weights: BTreeMap::new(),
            total_flows: 0,
        })
    }

    /// The merge assembler (per-source drop counters, grid state).
    #[must_use]
    pub fn assembler(&self) -> &MergeAssembler {
        &self.assembler
    }

    /// Serialize the multi-source stream's complete state — the merge
    /// grid (every lane's assembler, pending windows, watermarks, and
    /// per-source drop counters), the stream counters, and the engine —
    /// into a checkpoint payload. Returns events that became ready while
    /// the pipeline drained, plus the payload. The pipeline is fully
    /// drained by the snapshot request's FIFO position, so no in-flight
    /// interval state needs to travel.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from the pipeline thread.
    pub fn checkpoint(&mut self) -> (Vec<MultiStreamEvent>, Vec<u8>) {
        let mut events = Vec::new();
        let engine = self.pipe.snapshot(&mut events);
        let events = self.tag(events);
        debug_assert!(
            self.pending_weights.is_empty(),
            "snapshot drains every submitted interval"
        );
        let mut w = SnapshotWriter::new();
        self.assembler.encode_snapshot(&mut w);
        w.u64(self.total_flows);
        self.pipe.encode_counters(&mut w);
        w.bytes(&engine);
        (events, w.into_bytes())
    }

    /// Rebuild a multi-source pipeline from a
    /// [`checkpoint`](Self::checkpoint) payload, resuming the merged
    /// stream bit-identically. `shards` overrides the saved shard count
    /// (`None` keeps it).
    ///
    /// # Errors
    ///
    /// Any [`RestoreError`] from a truncated, corrupt, or inconsistent
    /// payload.
    pub fn restore(payload: &[u8], shards: Option<NonZeroUsize>) -> Result<Self, RestoreError> {
        let mut r = SnapshotReader::new(payload);
        let assembler = MergeAssembler::decode_snapshot(&mut r)?;
        let total_flows = r.u64()?;
        let mut counters = [0u64; 5];
        for c in &mut counters {
            *c = r.u64()?;
        }
        let engine_bytes = r.bytes()?;
        r.finish()?;
        let mut er = SnapshotReader::new(engine_bytes);
        let engine = ShardedExtractor::decode_snapshot(&mut er, shards)?;
        er.finish()?;
        if engine.config().interval_ms != assembler.config().interval_ms {
            return Err(RestoreError::Corrupt(format!(
                "grid interval {} ms disagrees with engine interval {} ms",
                assembler.config().interval_ms,
                engine.config().interval_ms
            )));
        }
        let mut pipe = PipelineHandle::spawn(engine)
            .map_err(|e| RestoreError::Corrupt(format!("cannot respawn pipeline: {e}")))?;
        pipe.restore_counters(counters);
        Ok(MultiSourceExtractor {
            assembler,
            pipe,
            pending_weights: BTreeMap::new(),
            total_flows,
        })
    }

    /// Apply a live parameter change at the next merged-interval
    /// boundary — the multi-source counterpart of
    /// [`StreamingExtractor::reconfigure`]. Outcomes are tallied in the
    /// [`MultiStreamSummary`] audit counters.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from the pipeline thread.
    pub fn reconfigure(
        &mut self,
        request: ReconfigRequest,
    ) -> (Vec<MultiStreamEvent>, Result<(), ConfigError>) {
        let mut events = Vec::new();
        let verdict = self.pipe.reconfigure(request, &mut events);
        (self.tag(events), verdict)
    }

    /// Feed one flow from `source`. Returns every merged interval the
    /// watermark released, extracted.
    ///
    /// # Panics
    ///
    /// Panics when `source` is unknown or already finished; re-raises a
    /// panic from the pipeline thread.
    pub fn push(&mut self, source: SourceId, flow: FlowRecord) -> Vec<MultiStreamEvent> {
        self.total_flows += 1;
        let merged = self.assembler.push(source, flow);
        self.submit_merged(merged)
    }

    /// Tag-based variant of [`push`](Self::push).
    ///
    /// # Panics
    ///
    /// As [`push`](Self::push).
    pub fn push_sourced(&mut self, flow: SourcedFlow) -> Vec<MultiStreamEvent> {
        self.push(flow.source, flow.flow)
    }

    /// Event-time heartbeat from `source`: advance its watermark to
    /// `now_ms` (source-local clock) without flows, so a live-but-idle
    /// exporter's collector punctuation (options templates, keepalives)
    /// releases the grid instead of holding it until `max_lag` fires.
    /// Returns every merged interval that released, extracted.
    ///
    /// # Panics
    ///
    /// Panics when `source` is unknown or already finished; re-raises a
    /// panic from the pipeline thread.
    pub fn heartbeat(&mut self, source: SourceId, now_ms: u64) -> Vec<MultiStreamEvent> {
        let merged = self.assembler.heartbeat(source, now_ms);
        self.submit_merged(merged)
    }

    /// Declare `source` cleanly ended (it stops holding the watermark);
    /// returns whatever merged intervals that released. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics when `source` is unknown; re-raises a panic from the
    /// pipeline thread.
    pub fn finish_source(&mut self, source: SourceId) -> Vec<MultiStreamEvent> {
        let merged = self.assembler.finish_source(source);
        self.submit_merged(merged)
    }

    /// Close the stream: finish every source, flush the grid, wait for
    /// the pipeline thread to drain, and return the remaining events
    /// plus the end-of-stream summary.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from the pipeline thread.
    #[must_use]
    pub fn finish(mut self) -> (Vec<MultiStreamEvent>, MultiStreamSummary) {
        let merged = self.assembler.flush();
        let mut events = self.submit_merged(merged);
        let (tail, engine) = self.pipe.finish();
        events.extend(self.tag(tail));
        let summary = MultiStreamSummary {
            intervals: self.pipe.intervals,
            alarms: self.pipe.alarms,
            extractions: self.pipe.extractions,
            total_flows: self.total_flows,
            dropped_flows: self.assembler.dropped_flows(),
            trained: engine.is_trained(),
            pool: engine.pool_stats(),
            sources: self.assembler.source_stats(),
            reconfigs_applied: self.pipe.reconfigs_applied,
            reconfigs_rejected: self.pipe.reconfigs_rejected,
        };
        (events, summary)
    }

    /// Submit freshly merged intervals to the pipeline thread and return
    /// every event that came back, tagged with its source weights.
    fn submit_merged(&mut self, merged: Vec<MergedInterval>) -> Vec<MultiStreamEvent> {
        let mut events = Vec::new();
        for interval in merged {
            let MergedInterval {
                index,
                begin_ms,
                end_ms,
                flows,
                source_flows,
            } = interval;
            let flows = Arc::new(flows);
            self.pending_weights
                .insert(index, (source_flows, Arc::clone(&flows)));
            let dropped = self.assembler.dropped_flows();
            self.pipe.submit(
                Work {
                    index,
                    begin_ms,
                    end_ms,
                    flows,
                    dropped_flows: dropped,
                },
                &mut events,
            );
        }
        self.pipe.drain_ready(&mut events);
        self.tag(events)
    }

    /// Attach the stashed per-source weights to events returning from
    /// the pipeline thread (intervals return in submission order, so
    /// each index is present exactly once).
    fn tag(&mut self, events: Vec<StreamEvent>) -> Vec<MultiStreamEvent> {
        events
            .into_iter()
            .map(|event| {
                let (source_flows, flow_data) = self
                    .pending_weights
                    .remove(&event.index)
                    .unwrap_or_default();
                MultiStreamEvent {
                    event,
                    source_flows,
                    flow_data,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::AnomalyExtractor;
    use anomex_detector::DetectorConfig;
    use anomex_netflow::Protocol;
    use anomex_traffic::Scenario;
    use std::net::Ipv4Addr;

    fn nz(n: usize) -> NonZeroUsize {
        NonZeroUsize::new(n).unwrap()
    }

    fn test_config(interval_ms: u64) -> ExtractionConfig {
        ExtractionConfig {
            interval_ms,
            detector: DetectorConfig {
                training_intervals: 10,
                ..DetectorConfig::default()
            },
            min_support: 800,
            ..ExtractionConfig::default()
        }
    }

    fn flow_at(ms: u64) -> FlowRecord {
        FlowRecord::new(
            ms,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1,
            2,
            Protocol::Udp,
        )
    }

    #[test]
    fn streaming_matches_batch_bit_for_bit() {
        let scenario = Scenario::small(11);
        let intervals = scenario.interval_count().min(23);
        let mut batch = AnomalyExtractor::try_new(test_config(scenario.interval_ms())).unwrap();
        let mut stream =
            StreamingExtractor::try_new(test_config(scenario.interval_ms()), nz(2), 0).unwrap();
        let mut events = Vec::new();
        let mut batch_outcomes = Vec::new();
        for i in 0..intervals {
            let interval = scenario.generate(i);
            batch_outcomes.push(batch.process_interval(&interval.flows));
            for flow in interval.flows {
                events.extend(stream.push(flow));
            }
        }
        let (tail, summary) = stream.finish();
        events.extend(tail);
        assert_eq!(events.len() as u64, intervals);
        assert_eq!(summary.intervals, intervals);
        assert_eq!(summary.late_flows + summary.pre_origin_flows, 0);
        for (i, (event, b)) in events.iter().zip(&batch_outcomes).enumerate() {
            assert_eq!(event.index, i as u64);
            let a = &event.outcome;
            assert_eq!(a.observation.alarm, b.observation.alarm, "interval {i}");
            assert_eq!(a.observation.metadata, b.observation.metadata);
            for (x, y) in a.observation.features.iter().zip(&b.observation.features) {
                for (cx, cy) in x.clones.iter().zip(&y.clones) {
                    assert_eq!(cx.kl.map(f64::to_bits), cy.kl.map(f64::to_bits));
                }
            }
            match (&a.extraction, &b.extraction) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    assert_eq!(x.itemsets, y.itemsets, "interval {i}");
                    assert_eq!(x.levels, y.levels);
                    assert_eq!(x.suspicious_flows, y.suspicious_flows);
                    assert_eq!(x.cost_reduction.to_bits(), y.cost_reduction.to_bits());
                }
                _ => panic!("extraction presence diverged at interval {i}"),
            }
        }
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let mut lat = vec![50u64, 10, 40, 20, 30];
        assert_eq!(latency_percentile(&mut lat, 50.0), 30);
        assert_eq!(latency_percentile(&mut lat, 95.0), 50);
        assert_eq!(latency_percentile(&mut [], 50.0), 0);
        assert_eq!(latency_percentile(&mut [7], 95.0), 7);
    }

    #[test]
    fn empty_stream_finishes_cleanly() {
        let stream = StreamingExtractor::try_new(test_config(60_000), nz(1), 0).unwrap();
        let (events, summary) = stream.finish();
        assert!(events.is_empty());
        assert_eq!(summary.intervals, 0);
        assert_eq!(summary.total_flows, 0);
        assert!(!summary.trained);
    }

    #[test]
    fn gaps_emit_empty_intervals_in_order() {
        let mut stream = StreamingExtractor::try_new(test_config(1_000), nz(1), 0).unwrap();
        let mut events = stream.push(flow_at(100));
        events.extend(stream.push(flow_at(4_500))); // skips windows 1–3
        let (tail, summary) = stream.finish();
        events.extend(tail);
        let indices: Vec<u64> = events.iter().map(|e| e.index).collect();
        assert_eq!(indices, vec![0, 1, 2, 3, 4]);
        assert_eq!(events[0].flows, 1);
        assert!(events[1..4].iter().all(|e| e.flows == 0));
        assert_eq!(summary.intervals, 5);
    }

    #[test]
    fn dropped_flows_surface_in_events_and_summary() {
        let mut stream = StreamingExtractor::try_new(test_config(1_000), nz(1), 10_000).unwrap();
        assert!(stream.push(flow_at(5)).is_empty(), "pre-origin, dropped");
        stream.push(flow_at(10_100));
        stream.push(flow_at(11_500)); // closes window 0
        stream.push(flow_at(10_200)); // late: window 0 already closed
        let (events, summary) = stream.finish();
        assert_eq!(summary.pre_origin_flows, 1);
        assert_eq!(summary.late_flows, 1);
        assert_eq!(summary.total_flows, 4);
        let last = events.last().expect("final interval flushed");
        assert_eq!(last.dropped_flows, 2, "cumulative drops at close");
    }

    #[test]
    fn invalid_config_is_an_error() {
        let mut config = test_config(60_000);
        config.min_support = 0;
        assert!(StreamingExtractor::try_new(config, nz(2), 0).is_err());
    }

    #[test]
    fn checkpoint_and_restore_resume_the_stream_bit_identically() {
        let scenario = Scenario::small(11);
        let intervals = scenario.interval_count().min(23);
        let cut = 13; // inside the detecting phase, past training
        let config = || test_config(scenario.interval_ms());
        // Uninterrupted reference run.
        let mut reference = StreamingExtractor::try_new(config(), nz(2), 0).unwrap();
        let mut ref_events = Vec::new();
        // Interrupted run: checkpoint mid-stream, drop the extractor
        // (the "kill"), restore, and continue.
        let mut first_half = StreamingExtractor::try_new(config(), nz(2), 0).unwrap();
        let mut resumed_events = Vec::new();
        for i in 0..intervals {
            for flow in scenario.generate(i).flows {
                ref_events.extend(reference.push(flow));
                if i < cut {
                    resumed_events.extend(first_half.push(flow));
                }
            }
        }
        let (tail, payload) = first_half.checkpoint();
        resumed_events.extend(tail);
        drop(first_half); // simulated crash after the checkpoint landed
        let mut resumed = StreamingExtractor::restore(&payload, Some(nz(1))).unwrap();
        for i in cut..intervals {
            for flow in scenario.generate(i).flows {
                resumed_events.extend(resumed.push(flow));
            }
        }
        let (tail, ref_summary) = reference.finish();
        ref_events.extend(tail);
        let (tail, resumed_summary) = resumed.finish();
        resumed_events.extend(tail);
        assert_eq!(ref_summary.intervals, resumed_summary.intervals);
        assert_eq!(ref_summary.alarms, resumed_summary.alarms);
        assert_eq!(ref_summary.extractions, resumed_summary.extractions);
        assert_eq!(ref_summary.total_flows, resumed_summary.total_flows);
        assert_eq!(ref_events.len(), resumed_events.len());
        for (a, b) in ref_events.iter().zip(&resumed_events) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.flows, b.flows);
            assert_eq!(a.alarmed(), b.alarmed(), "interval {}", a.index);
            assert_eq!(
                a.outcome.observation.metadata,
                b.outcome.observation.metadata
            );
            for (x, y) in a
                .outcome
                .observation
                .features
                .iter()
                .zip(&b.outcome.observation.features)
            {
                for (cx, cy) in x.clones.iter().zip(&y.clones) {
                    assert_eq!(cx.kl.map(f64::to_bits), cy.kl.map(f64::to_bits));
                }
            }
        }
    }

    #[test]
    fn restore_rejects_corrupt_payloads() {
        let mut stream = StreamingExtractor::try_new(test_config(1_000), nz(1), 0).unwrap();
        let _ = stream.push(flow_at(100));
        let (_, payload) = stream.checkpoint();
        assert!(StreamingExtractor::restore(&payload, None).is_ok());
        assert!(StreamingExtractor::restore(&payload[..payload.len() / 2], None).is_err());
        assert!(StreamingExtractor::restore(&[], None).is_err());
        let mut evil = payload.clone();
        evil[0] ^= 0xff; // assembler origin garbled
        assert!(
            StreamingExtractor::restore(&evil, None).is_err()
                || StreamingExtractor::restore(&evil, None).is_ok(),
            "must not panic either way"
        );
    }

    #[test]
    fn reconfigure_applies_at_a_boundary_without_dropping_flows() {
        let mut stream = StreamingExtractor::try_new(test_config(1_000), nz(1), 0).unwrap();
        let mut events = stream.push(flow_at(100));
        events.extend(stream.push(flow_at(1_200))); // closes window 0
        let (more, verdict) = stream.reconfigure(ReconfigRequest {
            min_support: Some(42),
            alpha: Some(4.0),
            ..ReconfigRequest::default()
        });
        events.extend(more);
        verdict.unwrap();
        // A rejected request is audited but changes nothing.
        let (more, verdict) = stream.reconfigure(ReconfigRequest {
            min_support: Some(0),
            ..ReconfigRequest::default()
        });
        events.extend(more);
        assert!(verdict.is_err());
        events.extend(stream.push(flow_at(2_500)));
        let (tail, summary) = stream.finish();
        events.extend(tail);
        assert_eq!(summary.reconfigs_applied, 1);
        assert_eq!(summary.reconfigs_rejected, 1);
        assert_eq!(summary.total_flows, 3);
        assert_eq!(summary.late_flows + summary.pre_origin_flows, 0);
        assert_eq!(summary.intervals, 3, "every window processed");
        assert_eq!(events.len(), 3);
    }

    #[test]
    fn reconfig_audit_trail_survives_a_checkpoint() {
        let mut stream = StreamingExtractor::try_new(test_config(1_000), nz(1), 0).unwrap();
        let _ = stream.push(flow_at(100));
        let (_, verdict) = stream.reconfigure(ReconfigRequest {
            min_support: Some(77),
            ..ReconfigRequest::default()
        });
        verdict.unwrap();
        let (_, payload) = stream.checkpoint();
        let resumed = StreamingExtractor::restore(&payload, None).unwrap();
        let (_, summary) = resumed.finish();
        assert_eq!(summary.reconfigs_applied, 1);
        assert_eq!(summary.total_flows, 1);
    }

    #[test]
    fn abandoning_a_stream_joins_the_pipeline_thread() {
        let mut stream = StreamingExtractor::try_new(test_config(1_000), nz(2), 0).unwrap();
        for i in 0..50 {
            let _ = stream.push(flow_at(i * 100));
        }
        drop(stream); // must not hang or leak the pipeline thread
    }

    fn two_specs() -> Vec<SourceSpec> {
        vec![SourceSpec::new(0u32, 0), SourceSpec::new(1u32, 0)]
    }

    #[test]
    fn multi_source_single_lane_matches_single_source_engine() {
        let scenario = Scenario::small(5);
        let intervals = scenario.interval_count().min(22);
        let specs = [SourceSpec::new(0u32, 0)];
        let mut single =
            StreamingExtractor::try_new(test_config(scenario.interval_ms()), nz(2), 0).unwrap();
        let mut multi =
            MultiSourceExtractor::try_new(test_config(scenario.interval_ms()), nz(2), &specs, None)
                .unwrap();
        let mut single_events = Vec::new();
        let mut multi_events = Vec::new();
        for i in 0..intervals {
            for flow in scenario.generate(i).flows {
                single_events.extend(single.push(flow));
                multi_events.extend(multi.push(SourceId(0), flow));
            }
        }
        let (tail, s_sum) = single.finish();
        single_events.extend(tail);
        let (tail, m_sum) = multi.finish();
        multi_events.extend(tail);
        assert_eq!(single_events.len(), multi_events.len());
        assert_eq!(s_sum.intervals, m_sum.intervals);
        assert_eq!(s_sum.alarms, m_sum.alarms);
        assert_eq!(s_sum.extractions, m_sum.extractions);
        for (a, b) in single_events.iter().zip(&multi_events) {
            assert_eq!(a.index, b.event.index);
            assert_eq!(a.flows, b.event.flows);
            assert_eq!(b.source_flows, vec![a.flows]);
            assert_eq!(
                a.outcome.observation.alarm,
                b.event.outcome.observation.alarm
            );
            assert_eq!(
                a.outcome.observation.metadata,
                b.event.outcome.observation.metadata
            );
        }
    }

    #[test]
    fn multi_source_event_carries_per_source_weights() {
        let mut multi =
            MultiSourceExtractor::try_new(test_config(1_000), nz(1), &two_specs(), None).unwrap();
        multi.push(SourceId(0), flow_at(100));
        multi.push(SourceId(0), flow_at(200));
        multi.push(SourceId(1), flow_at(300));
        let (events, summary) = multi.finish();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].source_flows, vec![2, 1]);
        assert_eq!(events[0].event.flows, 3);
        assert_eq!(summary.total_flows, 3);
        assert_eq!(summary.sources.len(), 2);
        assert_eq!(summary.sources[0].flows, 2);
        assert_eq!(summary.sources[1].flows, 1);
        assert_eq!(summary.dropped_flows, 0);
    }

    #[test]
    fn multi_source_watermark_waits_then_finish_source_releases() {
        let mut multi =
            MultiSourceExtractor::try_new(test_config(1_000), nz(1), &two_specs(), None).unwrap();
        // Source 0 races ahead; nothing closes while source 1 is live
        // and silent.
        assert!(multi.push(SourceId(0), flow_at(100)).is_empty());
        assert!(multi.push(SourceId(0), flow_at(2_500)).is_empty());
        let mut events = multi.finish_source(SourceId(1));
        let (tail, summary) = multi.finish();
        events.extend(tail);
        assert_eq!(events.len(), 3, "windows 0–2 close once src1 is done");
        assert_eq!(events[0].source_flows, vec![1, 0]);
        assert_eq!(summary.intervals, 3);
    }

    #[test]
    fn idle_source_heartbeat_releases_intervals_without_max_lag() {
        // Pure watermark (no lateness bound): only punctuation from the
        // idle source can release the grid.
        let mut multi =
            MultiSourceExtractor::try_new(test_config(1_000), nz(1), &two_specs(), None).unwrap();
        assert!(multi.push(SourceId(0), flow_at(100)).is_empty());
        assert!(multi.push(SourceId(0), flow_at(2_500)).is_empty());
        // Source 1 is live but idle; its heartbeat at 2.1s closes
        // windows 0 and 1 without waiting for finish/flush. (Events
        // surface asynchronously as the pipeline thread finishes them.)
        let mut events = multi.heartbeat(SourceId(1), 2_100);
        let (tail, summary) = multi.finish();
        events.extend(tail);
        assert_eq!(events.len(), 3, "windows 0-1 via heartbeat, 2 at flush");
        assert_eq!(events[0].source_flows, vec![1, 0]);
        assert_eq!(events[1].source_flows, vec![0, 0]);
        assert_eq!(events[2].source_flows, vec![1, 0]);
        assert_eq!(summary.intervals, 3);
        assert_eq!(summary.dropped_flows, 0, "heartbeats drop nothing");
    }

    #[test]
    fn multi_source_invalid_configs_are_errors() {
        assert!(
            MultiSourceExtractor::try_new(test_config(1_000), nz(1), &[], None).is_err(),
            "no sources"
        );
        let dup = [SourceSpec::new(0u32, 0), SourceSpec::new(0u32, 5)];
        assert!(
            MultiSourceExtractor::try_new(test_config(1_000), nz(1), &dup, None).is_err(),
            "duplicate ids"
        );
        let mut config = test_config(1_000);
        config.min_support = 0;
        assert!(MultiSourceExtractor::try_new(config, nz(1), &two_specs(), None).is_err());
    }

    #[test]
    fn abandoning_a_multi_source_stream_joins_the_pipeline_thread() {
        let mut multi =
            MultiSourceExtractor::try_new(test_config(1_000), nz(2), &two_specs(), None).unwrap();
        for i in 0u32..40 {
            let _ = multi.push(SourceId(i % 2), flow_at(u64::from(i) * 100));
        }
        drop(multi); // must not hang or leak the pipeline thread
    }
}
