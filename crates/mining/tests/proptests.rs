//! Property-based tests: the three miners are interchangeable, and the
//! mining output satisfies the textbook invariants.

use anomex_mining::{
    filter_maximal, filter_maximal_general, Item, MinerKind, Transaction, TransactionSet,
};
use anomex_netflow::FlowFeature;
use proptest::prelude::*;

/// A random transaction: 1–7 items, at most one per feature, values from a
/// small alphabet so that itemsets actually repeat.
fn arb_transaction() -> impl Strategy<Value = Transaction> {
    proptest::collection::btree_map(0usize..7, 0u64..4, 1..=7).prop_map(|m| {
        let items: Vec<Item> = m
            .into_iter()
            .map(|(f, v)| Item::new(FlowFeature::from_index(f), v))
            .collect();
        Transaction::from_items(&items).expect("btree_map keys are distinct features")
    })
}

fn arb_set(max: usize) -> impl Strategy<Value = TransactionSet> {
    proptest::collection::vec(arb_transaction(), 0..max).prop_map(TransactionSet::from_transactions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Apriori, FP-growth, and Eclat produce identical item-sets *and*
    /// identical supports on arbitrary inputs.
    #[test]
    fn miners_agree(set in arb_set(60), min_support in 1u64..8) {
        let a = MinerKind::Apriori.mine_all(&set, min_support);
        let f = MinerKind::FpGrowth.mine_all(&set, min_support);
        let e = MinerKind::Eclat.mine_all(&set, min_support);
        prop_assert_eq!(&a, &f);
        prop_assert_eq!(&f, &e);
        for (x, y) in a.iter().zip(&f) {
            prop_assert_eq!(x.support, y.support);
        }
        for (x, y) in f.iter().zip(&e) {
            prop_assert_eq!(x.support, y.support);
        }
    }

    /// Every reported support equals the reference (brute-force) support,
    /// and every reported item-set meets the threshold.
    #[test]
    fn supports_are_exact(set in arb_set(40), min_support in 1u64..6) {
        for s in MinerKind::FpGrowth.mine_all(&set, min_support) {
            prop_assert!(s.support >= min_support);
            prop_assert_eq!(s.support, set.support_of(s.items()));
        }
    }

    /// Downward closure: every non-empty subset of a frequent item-set is
    /// itself in the output.
    #[test]
    fn downward_closure(set in arb_set(40), min_support in 1u64..6) {
        let all = MinerKind::Eclat.mine_all(&set, min_support);
        for s in &all {
            if s.len() < 2 { continue; }
            for skip in 0..s.len() {
                let mut sub: Vec<Item> = s.items().to_vec();
                sub.remove(skip);
                prop_assert!(
                    all.iter().any(|t| t.items() == sub.as_slice()),
                    "subset of {} missing from output", s
                );
            }
        }
    }

    /// Completeness: the miners find *every* frequent item-set. Verified by
    /// brute force over the item alphabet on small inputs.
    #[test]
    fn completeness_small(set in arb_set(12), min_support in 1u64..4) {
        let mined = MinerKind::Apriori.mine_all(&set, min_support);
        // Brute force: every subset of every transaction is a candidate.
        use std::collections::HashSet;
        let mut candidates: HashSet<Vec<Item>> = HashSet::new();
        for t in set.transactions() {
            let items = t.items();
            for mask in 1u32..(1 << items.len()) {
                let subset: Vec<Item> = items
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| mask & (1 << i) != 0)
                    .map(|(_, &it)| it)
                    .collect();
                candidates.insert(subset);
            }
        }
        let expected: HashSet<Vec<Item>> = candidates
            .into_iter()
            .filter(|c| set.support_of(c) >= min_support)
            .collect();
        let got: HashSet<Vec<Item>> = mined.iter().map(|s| s.items().to_vec()).collect();
        prop_assert_eq!(got, expected);
    }

    /// Maximality: no maximal item-set is a subset of another, and the fast
    /// one-level filter agrees with the general quadratic oracle.
    #[test]
    fn maximal_invariants(set in arb_set(40), min_support in 1u64..6) {
        let all = MinerKind::FpGrowth.mine_all(&set, min_support);
        let maximal = filter_maximal(all.clone());
        for (i, a) in maximal.iter().enumerate() {
            for (j, b) in maximal.iter().enumerate() {
                if i != j {
                    prop_assert!(!(a.len() < b.len() && a.is_subset_of(b)),
                        "{} is a subset of {}", a, b);
                }
            }
        }
        prop_assert_eq!(maximal, filter_maximal_general(&all));
    }

    /// Monotonicity in the support threshold: raising s never adds
    /// item-sets.
    #[test]
    fn support_monotonicity(set in arb_set(40), s_lo in 1u64..4) {
        let s_hi = s_lo + 2;
        let lo = MinerKind::Eclat.mine_all(&set, s_lo);
        let hi = MinerKind::Eclat.mine_all(&set, s_hi);
        for s in &hi {
            prop_assert!(lo.contains(s), "{} found at high support but not low", s);
        }
    }
}
