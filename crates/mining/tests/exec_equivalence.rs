//! Execution-context equivalence at low support: the engine's
//! load-bearing guarantee that `mine_all_exec` / `mine_maximal_exec`
//! are **bit-identical** across [`Exec::inline`], [`Exec::Threads`],
//! and [`Exec::Pool`] for every miner — at supports low enough to force
//! multi-level candidate generation and deep conditional recursion,
//! which is exactly the regime the task-parallel search phases
//! (join+prune blocks, conditional trees, prefix branches) kick in.
//!
//! Also covers pool-panic containment: a tree task that panics must
//! surface on the caller without poisoning the pool for later mining.

use std::num::NonZeroUsize;

use anomex_mining::par::{run_tree_exec, Exec, TreeJob, TreeScope};
use anomex_mining::{Item, MineTask, MinerKind, RuleConfig, Transaction, TransactionSet};
use anomex_netflow::FlowFeature;
use crossbeam::WorkerPool;
use proptest::prelude::*;

/// A random transaction: 1–7 items, at most one per feature, values from
/// a small alphabet so that item-sets repeat and recursion goes deep.
fn arb_transaction() -> impl Strategy<Value = Transaction> {
    proptest::collection::btree_map(0usize..7, 0u64..4, 1..=7).prop_map(|m| {
        let items: Vec<Item> = m
            .into_iter()
            .map(|(f, v)| Item::new(FlowFeature::from_index(f), v))
            .collect();
        Transaction::from_items(&items).expect("btree_map keys are distinct features")
    })
}

fn arb_set(max: usize) -> impl Strategy<Value = TransactionSet> {
    proptest::collection::vec(arb_transaction(), 1..max).prop_map(TransactionSet::from_transactions)
}

fn nz(n: usize) -> NonZeroUsize {
    NonZeroUsize::new(n).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every miner, both output modes, across all three execution
    /// contexts: identical item-sets AND identical supports. Support
    /// 1–3 over a 4-value alphabet forces multi-level Apriori passes
    /// and non-trivial conditional trees on almost every case.
    #[test]
    fn all_contexts_are_bit_identical_at_low_support(
        set in arb_set(120),
        min_support in 1u64..4,
        pool_width in 2usize..5,
    ) {
        let pool = WorkerPool::new(nz(pool_width));
        for kind in MinerKind::ALL {
            let all_ref = kind.mine_all_exec(&set, min_support, Exec::inline());
            let max_ref = kind.mine_maximal_exec(&set, min_support, Exec::inline());
            for (label, exec) in [
                ("threads", Exec::Threads(nz(3))),
                ("pool", Exec::Pool(&pool)),
            ] {
                let all = kind.mine_all_exec(&set, min_support, exec);
                prop_assert_eq!(&all, &all_ref, "{} all via {}", kind, label);
                for (a, b) in all.iter().zip(&all_ref) {
                    prop_assert_eq!(a.support, b.support, "{} {} support", kind, label);
                }
                let max = kind.mine_maximal_exec(&set, min_support, exec);
                prop_assert_eq!(&max, &max_ref, "{} maximal via {}", kind, label);
                for (a, b) in max.iter().zip(&max_ref) {
                    prop_assert_eq!(a.support, b.support, "{} {} support", kind, label);
                }
            }
        }
    }

    /// The rule layer inherits the guarantee: `run_with_rules` — the
    /// all-frequent mining pass, the rule fan-out over base item-sets,
    /// and the z-score ranking — is bit-identical across all three
    /// execution contexts for every miner, rare mode included. Floats
    /// are compared by bit pattern.
    #[test]
    fn rule_generation_is_bit_identical_across_contexts(
        set in arb_set(120),
        min_support in 1u64..4,
        pool_width in 2usize..5,
        rare_bit in 0u8..2,
    ) {
        let pool = WorkerPool::new(nz(pool_width));
        // Permissive filters so plenty of rules survive to be compared.
        let rc = RuleConfig { min_confidence: 0.2, min_lift: 0.0, rare: rare_bit == 1 };
        for kind in MinerKind::ALL {
            let task = MineTask::maximal(kind, &set, min_support);
            let reference = task.run_with_rules(&rc, Exec::inline());
            for (label, exec) in [
                ("threads", Exec::Threads(nz(3))),
                ("pool", Exec::Pool(&pool)),
            ] {
                let got = task.run_with_rules(&rc, exec);
                prop_assert_eq!(&got.itemsets, &reference.itemsets, "{} {} itemsets", kind, label);
                prop_assert_eq!(&got.levels, &reference.levels, "{} {} levels", kind, label);
                prop_assert_eq!(got.rules.transactions, reference.rules.transactions);
                prop_assert_eq!(got.rules.len(), reference.rules.len(), "{} {} rule count", kind, label);
                for (a, b) in got.rules.rules.iter().zip(&reference.rules.rules) {
                    prop_assert_eq!(a.rule.antecedent(), b.rule.antecedent(), "{} {}", kind, label);
                    prop_assert_eq!(a.rule.consequent(), b.rule.consequent(), "{} {}", kind, label);
                    prop_assert_eq!(a.rule.support, b.rule.support);
                    prop_assert_eq!(a.score.to_bits(), b.score.to_bits(), "{} {} score", kind, label);
                    prop_assert_eq!(a.rule.confidence.to_bits(), b.rule.confidence.to_bits());
                    prop_assert_eq!(a.rule.lift.to_bits(), b.rule.lift.to_bits());
                    prop_assert_eq!(a.rule.leverage.to_bits(), b.rule.leverage.to_bits());
                    prop_assert_eq!(
                        a.rule.conviction.map(f64::to_bits),
                        b.rule.conviction.map(f64::to_bits)
                    );
                }
            }
        }
    }

    /// The same pool instance stays bit-identical across repeated mining
    /// rounds (no cross-round state leaks through the task machinery).
    #[test]
    fn pool_reuse_across_rounds_is_stable(set in arb_set(60), min_support in 1u64..3) {
        let pool = WorkerPool::new(nz(3));
        for kind in MinerKind::ALL {
            let reference = kind.mine_all_exec(&set, min_support, Exec::inline());
            for round in 0..3 {
                let got = kind.mine_all_exec(&set, min_support, Exec::Pool(&pool));
                prop_assert_eq!(&got, &reference, "{} round {}", kind, round);
            }
        }
    }
}

/// Low support over a large, structured set must drive Apriori through
/// several candidate-generation levels, with the join running as more
/// than one pool task — the acceptance gate that candidate generation
/// demonstrably executes on the pool.
#[test]
fn low_support_forces_multi_level_pool_candidate_generation() {
    let mut set = TransactionSet::new();
    for i in 0..5000u64 {
        let t = Transaction::from_items(&[
            Item::new(FlowFeature::SrcIp, i % 13),
            Item::new(FlowFeature::DstIp, i % 9),
            Item::new(FlowFeature::DstPort, i % 6),
            Item::new(FlowFeature::Proto, i % 2),
            Item::new(FlowFeature::Packets, i % 4),
        ])
        .unwrap();
        set.push(t);
    }
    let pool = WorkerPool::new(nz(4));
    let out = anomex_mining::apriori_exec(
        &set,
        &anomex_mining::AprioriConfig::all_frequent(2),
        Exec::Pool(&pool),
    );
    assert!(
        out.passes >= 3,
        "support 2 must force multi-level candidate generation (got {} passes)",
        out.passes
    );
    assert!(
        pool.tree_tasks() > 1,
        "the level-k join must have dispatched >1 pool task (got {})",
        pool.tree_tasks()
    );
    let reference = anomex_mining::apriori_exec(
        &set,
        &anomex_mining::AprioriConfig::all_frequent(2),
        Exec::inline(),
    );
    assert_eq!(out.itemsets, reference.itemsets);
    assert_eq!(out.levels, reference.levels);
    assert_eq!(out.passes, reference.passes);
}

/// Fork one tree task from a busy root and spin until a peer runs it:
/// the owner never pops its deque while spinning, so the child can only
/// execute via a steal. Returns once the child has run (10 s deadline).
fn force_one_steal(pool: &WorkerPool) {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let ran = Arc::new(AtomicBool::new(false));
    let observed = Arc::clone(&ran);
    let roots: Vec<TreeJob<u32>> = vec![Box::new(move |scope: &TreeScope<'_, u32>| {
        let ran = Arc::clone(&observed);
        scope.fork(move |_: &TreeScope<'_, u32>| {
            ran.store(true, Ordering::SeqCst);
            0
        });
        let deadline = Instant::now() + Duration::from_secs(10);
        while !observed.load(Ordering::SeqCst) {
            assert!(Instant::now() < deadline, "no peer stole the forked task");
            std::thread::yield_now();
        }
        1
    })];
    let out = run_tree_exec(Exec::Pool(pool), roots);
    assert_eq!(out.into_iter().sum::<u32>(), 1);
}

/// Forced work-stealing leaves mining bit-identical: a structured set at
/// low support floods the scheduler with tiny tree tasks across 1, 2, 4,
/// and 8 workers, with at least one guaranteed steal per multi-worker
/// pool — and every miner's output matches the inline reference exactly.
#[test]
fn forced_steals_leave_mining_bit_identical() {
    let mut set = TransactionSet::new();
    for i in 0..3000u64 {
        let t = Transaction::from_items(&[
            Item::new(FlowFeature::SrcIp, i % 11),
            Item::new(FlowFeature::DstIp, i % 7),
            Item::new(FlowFeature::DstPort, i % 5),
            Item::new(FlowFeature::Proto, i % 2),
            Item::new(FlowFeature::Packets, i % 3),
        ])
        .unwrap();
        set.push(t);
    }
    for kind in MinerKind::ALL {
        let reference = kind.mine_all_exec(&set, 2, Exec::inline());
        for workers in [1usize, 2, 4, 8] {
            let pool = WorkerPool::new(nz(workers));
            if workers >= 2 {
                force_one_steal(&pool);
                assert!(
                    pool.steals() > 0,
                    "{workers}-worker pool recorded no steal (got {})",
                    pool.steals()
                );
            }
            let got = kind.mine_all_exec(&set, 2, Exec::Pool(&pool));
            assert_eq!(got, reference, "{kind} diverged at {workers} workers");
            for (a, b) in got.iter().zip(&reference) {
                assert_eq!(a.support, b.support, "{kind} support at {workers} workers");
            }
            // A solo pool never forks (width 1 fails the cost model),
            // so task dispatch is only asserted with real parallelism.
            if workers >= 2 {
                assert!(
                    pool.tree_tasks() > 1,
                    "{kind} at {workers} workers never dispatched tree tasks"
                );
            }
        }
    }
}

/// A task that panics *after being stolen* surfaces on the caller and
/// leaves the pool mining correctly — panic containment must hold on
/// the steal path, not just for locally popped tasks.
#[test]
fn panic_in_a_stolen_task_is_contained() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let pool = WorkerPool::new(nz(2));
    let ran = Arc::new(AtomicBool::new(false));
    let observed = Arc::clone(&ran);
    let roots: Vec<TreeJob<u32>> = vec![Box::new(move |scope: &TreeScope<'_, u32>| {
        let ran = Arc::clone(&observed);
        scope.fork(move |_: &TreeScope<'_, u32>| -> u32 {
            ran.store(true, Ordering::SeqCst);
            panic!("panic on the steal path");
        });
        let deadline = Instant::now() + Duration::from_secs(10);
        while !observed.load(Ordering::SeqCst) {
            assert!(Instant::now() < deadline, "no peer stole the forked task");
            std::thread::yield_now();
        }
        3
    })];
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_tree_exec(Exec::Pool(&pool), roots)
    }))
    .expect_err("the stolen task's panic must reach the caller");
    let message = err.downcast_ref::<&str>().copied().unwrap_or("non-str");
    assert!(message.contains("panic on the steal path"), "{message}");
    assert!(
        pool.steals() > 0,
        "the panicking task must have been stolen (got {} steals)",
        pool.steals()
    );

    // Both workers survive: the same pool still mines bit-identically.
    let mut set = TransactionSet::new();
    for i in 0..60u64 {
        let t = Transaction::from_items(&[
            Item::new(FlowFeature::DstPort, 80 + i % 2),
            Item::new(FlowFeature::Packets, i % 3),
        ])
        .unwrap();
        set.push(t);
    }
    for kind in MinerKind::ALL {
        assert_eq!(
            kind.mine_all_exec(&set, 5, Exec::Pool(&pool)),
            kind.mine_all_exec(&set, 5, Exec::inline()),
            "{kind} after a panic under stealing"
        );
    }
}

/// A panicking tree task propagates to the caller, and the pool survives
/// to mine correctly afterwards — the containment contract of the shared
/// worker pool.
#[test]
fn pool_panic_is_contained_and_mining_continues() {
    let pool = WorkerPool::new(nz(2));
    let roots: Vec<TreeJob<u32>> = vec![
        Box::new(|_: &TreeScope<'_, u32>| 1),
        Box::new(|scope: &TreeScope<'_, u32>| {
            scope.fork(|_: &TreeScope<'_, u32>| panic!("poisoned mining task"));
            2
        }),
    ];
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_tree_exec(Exec::Pool(&pool), roots)
    }))
    .expect_err("the tree panic must reach the caller");
    let message = err.downcast_ref::<&str>().copied().unwrap_or("non-str");
    assert!(message.contains("poisoned mining task"), "{message}");

    // The same pool still mines, bit-identically.
    let mut set = TransactionSet::new();
    for i in 0..50u64 {
        let t = Transaction::from_items(&[
            Item::new(FlowFeature::DstPort, 80 + i % 2),
            Item::new(FlowFeature::Packets, i % 3),
        ])
        .unwrap();
        set.push(t);
    }
    for kind in MinerKind::ALL {
        assert_eq!(
            kind.mine_maximal_exec(&set, 5, Exec::Pool(&pool)),
            kind.mine_maximal_exec(&set, 5, Exec::inline()),
            "{kind} after a contained panic"
        );
    }
}
