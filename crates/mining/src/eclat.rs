//! Eclat: vertical (tid-list) frequent item-set mining.
//!
//! Zaki's Eclat (ref. 35 in the paper) represents each item by the sorted list
//! of transaction ids containing it and computes supports by intersecting
//! tid-lists during a depth-first search of the item-set lattice. The
//! paper's related work (ref. 21, Li & Deng) applies an Eclat variant to flow
//! mining; we include it as the third interchangeable miner.

use std::collections::HashMap;
use std::sync::Arc;

use crate::item::Item;
use crate::itemset::ItemSet;
use crate::par::{map_chunks_arc, run_tree_exec, Exec, ForkPolicy, TreeJob, TreeScope, WorkKind};
use crate::transaction::{Transaction, TransactionSet};

/// Mine all frequent item-sets with Eclat.
///
/// Output contract matches [`crate::apriori::apriori`] with
/// `maximal_only = false`.
///
/// # Panics
///
/// Panics if `min_support` is zero.
#[must_use]
pub fn eclat(set: &TransactionSet, min_support: u64) -> Vec<ItemSet> {
    eclat_exec(set, min_support, Exec::inline())
}

/// Build the vertical representation: item → sorted list of the ids of
/// the transactions containing it. Chunks of the transaction slice are
/// scanned in the given execution context, each worker recording
/// *global* transaction ids (chunk start + offset); concatenating the
/// per-chunk lists in chunk order reproduces the sequential construction
/// exactly.
fn tidlists(set: &TransactionSet, exec: Exec<'_>) -> HashMap<Item, Vec<u32>> {
    let parts = map_chunks_arc(exec, set.shared(), |start, chunk: &[Transaction]| {
        let mut lists: HashMap<Item, Vec<u32>> = HashMap::new();
        for (offset, t) in chunk.iter().enumerate() {
            let tid = (start + offset) as u32;
            for &item in t.items() {
                lists.entry(item).or_default().push(tid);
            }
        }
        lists
    });
    let mut merged: HashMap<Item, Vec<u32>> = HashMap::new();
    // Chunk order + ascending tids within each chunk ⇒ merged lists are
    // sorted without any post-hoc sort.
    for part in parts {
        for (item, mut tids) in part {
            merged.entry(item).or_default().append(&mut tids);
        }
    }
    merged
}

/// Eclat parallelized in the given execution context.
///
/// Tid-list construction runs over transaction chunks, the per-chunk
/// lists concatenating in chunk order into exactly the sequential
/// tid-lists. The lattice search is task-parallel under [`Exec::Pool`]:
/// **every prefix branch whose tid-list carries enough intersection work
/// to amortize a task dispatch (the [`ForkPolicy`] cost model, coarsened
/// by live queue depth) forks as an independent tree task** — at level 1
/// and at every depth below ([`run_tree_exec`]); shorter branches mine
/// inline in the task that reached them. Supports are tid-list lengths
/// either way, so the canonically sorted output is **bit-identical** to
/// [`eclat`] for every context and thread count.
///
/// # Panics
///
/// Panics if `min_support` is zero.
#[must_use]
pub fn eclat_exec(set: &TransactionSet, min_support: u64, exec: Exec<'_>) -> Vec<ItemSet> {
    assert!(min_support >= 1, "minimum support must be at least 1");

    let tidlists = tidlists(set, exec);
    let mut roots: Vec<(Item, Vec<u32>)> = tidlists
        .into_iter()
        .filter(|(_, tids)| tids.len() as u64 >= min_support)
        .collect();
    roots.sort_unstable_by_key(|&(item, _)| item);

    // Depth-first extension: prefix ∪ {roots[i]} can only be extended by
    // roots[j] with j > i, keeping item-sets sorted and visited once.
    // One root job walks the level-1 branches, forking exactly those
    // whose tid-list clears the cost model — the same work-vs-overhead
    // gate every deeper level uses, so short branches never pay a queue
    // operation.
    let policy = ForkPolicy::for_exec(&exec);
    let roots = Arc::new(roots);
    let root: TreeJob<Vec<ItemSet>> = {
        let roots = Arc::clone(&roots);
        Box::new(move |scope: &TreeScope<'_, Vec<ItemSet>>| {
            let mut out = Vec::new();
            for i in 0..roots.len() {
                if policy.should_fork(scope, roots[i].1.len(), WorkKind::TidEntries) {
                    let roots = Arc::clone(&roots);
                    scope.fork(move |scope: &TreeScope<'_, Vec<ItemSet>>| {
                        let mut sub = Vec::new();
                        mine_branch(&roots, i, Vec::new(), min_support, policy, scope, &mut sub);
                        sub
                    });
                } else {
                    mine_branch(&roots, i, Vec::new(), min_support, policy, scope, &mut out);
                }
            }
            out
        })
    };
    let mut out: Vec<ItemSet> = run_tree_exec(exec, vec![root])
        .into_iter()
        .flatten()
        .collect();
    out.sort_unstable();
    out
}

/// Mine the branch `prefix ∪ {siblings[i]}`: emit it, intersect its
/// tid-list with every later sibling, and descend into the surviving
/// extensions — forking an extension as a tree task when the cost model
/// judges its tid-list worth a dispatch, recursing inline otherwise.
/// Forking only moves work; the emitted sets are identical either way.
fn mine_branch(
    siblings: &Arc<Vec<(Item, Vec<u32>)>>,
    i: usize,
    prefix: Vec<Item>,
    min_support: u64,
    policy: ForkPolicy,
    scope: &TreeScope<'_, Vec<ItemSet>>,
    out: &mut Vec<ItemSet>,
) {
    let (item, tids) = &siblings[i];
    let mut prefix = prefix;
    prefix.push(*item);
    out.push(ItemSet::new(prefix.clone(), tids.len() as u64));

    // Conditional siblings: intersect with every later sibling.
    let mut next: Vec<(Item, Vec<u32>)> = Vec::new();
    for (other, other_tids) in &siblings[i + 1..] {
        if other.feature() == item.feature() {
            continue; // same-feature items never co-occur
        }
        let inter = intersect(tids, other_tids);
        if inter.len() as u64 >= min_support {
            next.push((*other, inter));
        }
    }
    if next.is_empty() {
        return;
    }
    let next = Arc::new(next);
    for j in 0..next.len() {
        if policy.should_fork(scope, next[j].1.len(), WorkKind::TidEntries) {
            let next = Arc::clone(&next);
            let prefix = prefix.clone();
            scope.fork(move |scope: &TreeScope<'_, Vec<ItemSet>>| {
                let mut sub = Vec::new();
                mine_branch(&next, j, prefix, min_support, policy, scope, &mut sub);
                sub
            });
        } else {
            mine_branch(&next, j, prefix.clone(), min_support, policy, scope, out);
        }
    }
}

/// Intersection of two sorted tid-lists (merge scan).
fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::{apriori, AprioriConfig};
    use crate::fpgrowth::fpgrowth;
    use crate::transaction::Transaction;
    use anomex_netflow::FlowFeature;

    fn tx(items: &[(FlowFeature, u64)]) -> Transaction {
        let items: Vec<_> = items.iter().map(|&(f, v)| Item::new(f, v)).collect();
        Transaction::from_items(&items).unwrap()
    }

    fn sample() -> TransactionSet {
        let mut set = TransactionSet::new();
        for i in 0..6u64 {
            set.push(tx(&[
                (FlowFeature::DstPort, 80 + (i % 2) * 363),
                (FlowFeature::Proto, 6),
                (FlowFeature::Packets, i % 3),
            ]));
        }
        set
    }

    #[test]
    fn intersect_merge() {
        assert_eq!(intersect(&[1, 3, 5, 7], &[2, 3, 5, 8]), vec![3, 5]);
        assert_eq!(intersect(&[], &[1]), Vec::<u32>::new());
        assert_eq!(intersect(&[1, 2], &[1, 2]), vec![1, 2]);
    }

    #[test]
    fn agrees_with_other_miners() {
        let set = sample();
        for support in 1..=4 {
            let a = apriori(&set, &AprioriConfig::all_frequent(support));
            let e = eclat(&set, support);
            let f = fpgrowth(&set, support);
            assert_eq!(a.itemsets, e, "apriori vs eclat at {support}");
            assert_eq!(e, f, "eclat vs fpgrowth at {support}");
            for (x, y) in a.itemsets.iter().zip(&e) {
                assert_eq!(x.support, y.support, "{x}");
            }
        }
    }

    #[test]
    fn exact_supports() {
        let set = sample();
        for s in eclat(&set, 1) {
            assert_eq!(s.support, set.support_of(s.items()), "{s}");
        }
    }

    #[test]
    fn empty_set_yields_nothing() {
        assert!(eclat(&TransactionSet::new(), 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "minimum support must be at least 1")]
    fn zero_support_panics() {
        let _ = eclat(&TransactionSet::new(), 0);
    }

    #[test]
    fn parallel_tidlists_are_identical_for_every_thread_count() {
        use std::num::NonZeroUsize;
        let mut set = TransactionSet::new();
        for i in 0..5000u64 {
            set.push(tx(&[
                (FlowFeature::DstPort, 80 + i % 4),
                (FlowFeature::Proto, 6),
                (FlowFeature::Packets, i % 7),
            ]));
        }
        let reference = eclat(&set, 300);
        for threads in 2..=8 {
            let par = eclat_exec(
                &set,
                300,
                Exec::Threads(NonZeroUsize::new(threads).unwrap()),
            );
            assert_eq!(par, reference, "threads={threads}");
            for (a, b) in par.iter().zip(&reference) {
                assert_eq!(a.support, b.support, "threads={threads} {a}");
            }
        }
    }

    #[test]
    fn pool_branches_fork_as_tree_tasks() {
        use crossbeam::WorkerPool;
        use std::num::NonZeroUsize;
        // Long tid-lists at support 2 ⇒ branch extensions cross the
        // fork threshold.
        let mut set = TransactionSet::new();
        for i in 0..4000u64 {
            set.push(tx(&[
                (FlowFeature::DstPort, 80 + i % 2),
                (FlowFeature::Proto, 6),
                (FlowFeature::Packets, i % 3),
            ]));
        }
        let reference = eclat(&set, 2);
        let pool = WorkerPool::new(NonZeroUsize::new(4).unwrap());
        let pooled = eclat_exec(&set, 2, Exec::Pool(&pool));
        assert_eq!(pooled, reference);
        assert!(
            pool.tree_tasks() > 1,
            "branch mining must have dispatched pool tasks (got {})",
            pool.tree_tasks()
        );
    }
}
