//! Eclat: vertical (tid-list) frequent item-set mining.
//!
//! Zaki's Eclat (ref. 35 in the paper) represents each item by the sorted list
//! of transaction ids containing it and computes supports by intersecting
//! tid-lists during a depth-first search of the item-set lattice. The
//! paper's related work (ref. 21, Li & Deng) applies an Eclat variant to flow
//! mining; we include it as the third interchangeable miner.

use std::collections::HashMap;
use std::num::NonZeroUsize;

use crate::item::Item;
use crate::itemset::ItemSet;
use crate::par::{map_chunks_arc, Exec};
use crate::transaction::{Transaction, TransactionSet};

/// Mine all frequent item-sets with Eclat.
///
/// Output contract matches [`crate::apriori::apriori`] with
/// `maximal_only = false`.
///
/// # Panics
///
/// Panics if `min_support` is zero.
#[must_use]
pub fn eclat(set: &TransactionSet, min_support: u64) -> Vec<ItemSet> {
    eclat_par(set, min_support, NonZeroUsize::MIN)
}

/// Build the vertical representation: item → sorted list of the ids of
/// the transactions containing it. Chunks of the transaction slice are
/// scanned in the given execution context, each worker recording
/// *global* transaction ids (chunk start + offset); concatenating the
/// per-chunk lists in chunk order reproduces the sequential construction
/// exactly.
fn tidlists(set: &TransactionSet, exec: Exec<'_>) -> HashMap<Item, Vec<u32>> {
    let parts = map_chunks_arc(exec, set.shared(), |start, chunk: &[Transaction]| {
        let mut lists: HashMap<Item, Vec<u32>> = HashMap::new();
        for (offset, t) in chunk.iter().enumerate() {
            let tid = (start + offset) as u32;
            for &item in t.items() {
                lists.entry(item).or_default().push(tid);
            }
        }
        lists
    });
    let mut merged: HashMap<Item, Vec<u32>> = HashMap::new();
    // Chunk order + ascending tids within each chunk ⇒ merged lists are
    // sorted without any post-hoc sort.
    for part in parts {
        for (item, mut tids) in part {
            merged.entry(item).or_default().append(&mut tids);
        }
    }
    merged
}

/// Eclat with tid-list construction parallelized over transaction chunks
/// on up to `threads` scoped worker threads.
///
/// # Panics
///
/// Panics if `min_support` is zero.
#[must_use]
pub fn eclat_par(set: &TransactionSet, min_support: u64, threads: NonZeroUsize) -> Vec<ItemSet> {
    eclat_exec(set, min_support, Exec::Threads(threads))
}

/// Eclat with tid-list construction parallelized over transaction chunks
/// in the given execution context. The per-chunk lists concatenate in
/// chunk order into exactly the sequential tid-lists, so the output is
/// **bit-identical** to [`eclat`] for every context and thread count.
///
/// # Panics
///
/// Panics if `min_support` is zero.
#[must_use]
pub fn eclat_exec(set: &TransactionSet, min_support: u64, exec: Exec<'_>) -> Vec<ItemSet> {
    assert!(min_support >= 1, "minimum support must be at least 1");

    let tidlists = tidlists(set, exec);
    let mut roots: Vec<(Item, Vec<u32>)> = tidlists
        .into_iter()
        .filter(|(_, tids)| tids.len() as u64 >= min_support)
        .collect();
    roots.sort_unstable_by_key(|&(item, _)| item);

    let mut out = Vec::new();
    // Depth-first extension: prefix ∪ {roots[i]} can only be extended by
    // roots[j] with j > i, keeping item-sets sorted and visited once.
    dfs(&roots, min_support, &mut Vec::new(), &mut out);
    out.sort_unstable();
    out
}

fn dfs(
    siblings: &[(Item, Vec<u32>)],
    min_support: u64,
    prefix: &mut Vec<Item>,
    out: &mut Vec<ItemSet>,
) {
    for (i, (item, tids)) in siblings.iter().enumerate() {
        prefix.push(*item);
        out.push(ItemSet::new(prefix.clone(), tids.len() as u64));

        // Conditional siblings: intersect with every later sibling.
        let mut next: Vec<(Item, Vec<u32>)> = Vec::new();
        for (other, other_tids) in &siblings[i + 1..] {
            if other.feature() == item.feature() {
                continue; // same-feature items never co-occur
            }
            let inter = intersect(tids, other_tids);
            if inter.len() as u64 >= min_support {
                next.push((*other, inter));
            }
        }
        if !next.is_empty() {
            dfs(&next, min_support, prefix, out);
        }
        prefix.pop();
    }
}

/// Intersection of two sorted tid-lists (merge scan).
fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::{apriori, AprioriConfig};
    use crate::fpgrowth::fpgrowth;
    use crate::transaction::Transaction;
    use anomex_netflow::FlowFeature;

    fn tx(items: &[(FlowFeature, u64)]) -> Transaction {
        let items: Vec<_> = items.iter().map(|&(f, v)| Item::new(f, v)).collect();
        Transaction::from_items(&items).unwrap()
    }

    fn sample() -> TransactionSet {
        let mut set = TransactionSet::new();
        for i in 0..6u64 {
            set.push(tx(&[
                (FlowFeature::DstPort, 80 + (i % 2) * 363),
                (FlowFeature::Proto, 6),
                (FlowFeature::Packets, i % 3),
            ]));
        }
        set
    }

    #[test]
    fn intersect_merge() {
        assert_eq!(intersect(&[1, 3, 5, 7], &[2, 3, 5, 8]), vec![3, 5]);
        assert_eq!(intersect(&[], &[1]), Vec::<u32>::new());
        assert_eq!(intersect(&[1, 2], &[1, 2]), vec![1, 2]);
    }

    #[test]
    fn agrees_with_other_miners() {
        let set = sample();
        for support in 1..=4 {
            let a = apriori(&set, &AprioriConfig::all_frequent(support));
            let e = eclat(&set, support);
            let f = fpgrowth(&set, support);
            assert_eq!(a.itemsets, e, "apriori vs eclat at {support}");
            assert_eq!(e, f, "eclat vs fpgrowth at {support}");
            for (x, y) in a.itemsets.iter().zip(&e) {
                assert_eq!(x.support, y.support, "{x}");
            }
        }
    }

    #[test]
    fn exact_supports() {
        let set = sample();
        for s in eclat(&set, 1) {
            assert_eq!(s.support, set.support_of(s.items()), "{s}");
        }
    }

    #[test]
    fn empty_set_yields_nothing() {
        assert!(eclat(&TransactionSet::new(), 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "minimum support must be at least 1")]
    fn zero_support_panics() {
        let _ = eclat(&TransactionSet::new(), 0);
    }

    #[test]
    fn parallel_tidlists_are_identical_for_every_thread_count() {
        let mut set = TransactionSet::new();
        for i in 0..5000u64 {
            set.push(tx(&[
                (FlowFeature::DstPort, 80 + i % 4),
                (FlowFeature::Proto, 6),
                (FlowFeature::Packets, i % 7),
            ]));
        }
        let reference = eclat(&set, 300);
        for threads in 2..=8 {
            let par = eclat_par(&set, 300, NonZeroUsize::new(threads).unwrap());
            assert_eq!(par, reference, "threads={threads}");
            for (a, b) in par.iter().zip(&reference) {
                assert_eq!(a.support, b.support, "threads={threads} {a}");
            }
        }
    }
}
