//! Unified miner interface: the three algorithms are interchangeable.

use std::fmt;
use std::num::NonZeroUsize;

use serde::{Deserialize, Serialize};

use crate::apriori::{apriori_par, AprioriConfig};
use crate::eclat::eclat_par;
use crate::fpgrowth::fpgrowth_par;
use crate::itemset::ItemSet;
use crate::maximal::filter_maximal;
use crate::transaction::TransactionSet;

/// Which frequent item-set algorithm to run.
///
/// All three produce identical item-sets and supports; they differ only in
/// time and memory. The paper used Apriori (§II-B) and cites FP-tree and
/// vertical methods as the faster alternatives (§III-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MinerKind {
    /// Level-wise Apriori (the paper's algorithm).
    #[default]
    Apriori,
    /// FP-growth (pattern-growth, no candidate generation).
    FpGrowth,
    /// Eclat (vertical tid-list intersection).
    Eclat,
}

impl MinerKind {
    /// All miners, for cross-checking and benches.
    pub const ALL: [MinerKind; 3] = [MinerKind::Apriori, MinerKind::FpGrowth, MinerKind::Eclat];

    /// Mine **all** frequent item-sets (support ≥ `min_support`),
    /// canonically ordered.
    ///
    /// # Panics
    ///
    /// Panics if `min_support` is zero.
    #[must_use]
    pub fn mine_all(self, set: &TransactionSet, min_support: u64) -> Vec<ItemSet> {
        self.mine_all_par(set, min_support, NonZeroUsize::MIN)
    }

    /// Mine only **maximal** frequent item-sets — the paper's modified
    /// output (§II-B).
    ///
    /// # Panics
    ///
    /// Panics if `min_support` is zero.
    #[must_use]
    pub fn mine_maximal(self, set: &TransactionSet, min_support: u64) -> Vec<ItemSet> {
        self.mine_maximal_par(set, min_support, NonZeroUsize::MIN)
    }

    /// [`mine_all`](Self::mine_all) with support counting parallelized
    /// over transaction chunks on up to `threads` worker threads. Output
    /// is bit-identical to the single-threaded call for every miner and
    /// thread count.
    ///
    /// # Panics
    ///
    /// Panics if `min_support` is zero.
    #[must_use]
    pub fn mine_all_par(
        self,
        set: &TransactionSet,
        min_support: u64,
        threads: NonZeroUsize,
    ) -> Vec<ItemSet> {
        match self {
            MinerKind::Apriori => {
                apriori_par(set, &AprioriConfig::all_frequent(min_support), threads).itemsets
            }
            MinerKind::FpGrowth => fpgrowth_par(set, min_support, threads),
            MinerKind::Eclat => eclat_par(set, min_support, threads),
        }
    }

    /// [`mine_maximal`](Self::mine_maximal) with support counting
    /// parallelized over transaction chunks on up to `threads` worker
    /// threads. Output is bit-identical to the single-threaded call for
    /// every miner and thread count.
    ///
    /// # Panics
    ///
    /// Panics if `min_support` is zero.
    #[must_use]
    pub fn mine_maximal_par(
        self,
        set: &TransactionSet,
        min_support: u64,
        threads: NonZeroUsize,
    ) -> Vec<ItemSet> {
        match self {
            MinerKind::Apriori => {
                apriori_par(set, &AprioriConfig::maximal(min_support), threads).itemsets
            }
            MinerKind::FpGrowth => filter_maximal(fpgrowth_par(set, min_support, threads)),
            MinerKind::Eclat => filter_maximal(eclat_par(set, min_support, threads)),
        }
    }
}

impl fmt::Display for MinerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MinerKind::Apriori => f.write_str("apriori"),
            MinerKind::FpGrowth => f.write_str("fp-growth"),
            MinerKind::Eclat => f.write_str("eclat"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Item;
    use crate::transaction::Transaction;
    use anomex_netflow::FlowFeature;

    fn sample() -> TransactionSet {
        let mut set = TransactionSet::new();
        for i in 0..10u64 {
            let t = Transaction::from_items(&[
                Item::new(FlowFeature::DstPort, 80),
                Item::new(FlowFeature::Packets, i % 2),
            ])
            .unwrap();
            set.push(t);
        }
        set
    }

    #[test]
    fn all_miners_agree_on_both_modes() {
        let set = sample();
        let reference_all = MinerKind::Apriori.mine_all(&set, 3);
        let reference_max = MinerKind::Apriori.mine_maximal(&set, 3);
        for kind in MinerKind::ALL {
            assert_eq!(kind.mine_all(&set, 3), reference_all, "{kind} all");
            assert_eq!(kind.mine_maximal(&set, 3), reference_max, "{kind} maximal");
        }
    }

    #[test]
    fn maximal_is_subset_of_all() {
        let set = sample();
        let all = MinerKind::FpGrowth.mine_all(&set, 2);
        let maximal = MinerKind::FpGrowth.mine_maximal(&set, 2);
        for m in &maximal {
            assert!(all.contains(m));
        }
        assert!(maximal.len() <= all.len());
    }

    #[test]
    fn display_names() {
        assert_eq!(MinerKind::Apriori.to_string(), "apriori");
        assert_eq!(MinerKind::FpGrowth.to_string(), "fp-growth");
        assert_eq!(MinerKind::Eclat.to_string(), "eclat");
    }
}
