//! Unified miner interface: the three algorithms are interchangeable.

use std::fmt;
use std::num::NonZeroUsize;

use serde::{Deserialize, Serialize};

use crate::itemset::ItemSet;
use crate::par::Exec;
use crate::task::MineTask;
use crate::transaction::TransactionSet;

/// Which frequent item-set algorithm to run.
///
/// All three produce identical item-sets and supports; they differ only in
/// time and memory. The paper used Apriori (§II-B) and cites FP-tree and
/// vertical methods as the faster alternatives (§III-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MinerKind {
    /// Level-wise Apriori (the paper's algorithm).
    #[default]
    Apriori,
    /// FP-growth (pattern-growth, no candidate generation).
    FpGrowth,
    /// Eclat (vertical tid-list intersection).
    Eclat,
}

impl MinerKind {
    /// All miners, for cross-checking and benches.
    pub const ALL: [MinerKind; 3] = [MinerKind::Apriori, MinerKind::FpGrowth, MinerKind::Eclat];

    /// Mine **all** frequent item-sets (support ≥ `min_support`),
    /// canonically ordered.
    ///
    /// # Panics
    ///
    /// Panics if `min_support` is zero.
    #[must_use]
    pub fn mine_all(self, set: &TransactionSet, min_support: u64) -> Vec<ItemSet> {
        self.mine_all_par(set, min_support, NonZeroUsize::MIN)
    }

    /// Mine only **maximal** frequent item-sets — the paper's modified
    /// output (§II-B).
    ///
    /// # Panics
    ///
    /// Panics if `min_support` is zero.
    #[must_use]
    pub fn mine_maximal(self, set: &TransactionSet, min_support: u64) -> Vec<ItemSet> {
        self.mine_maximal_par(set, min_support, NonZeroUsize::MIN)
    }

    /// [`mine_all`](Self::mine_all) on up to `threads` scoped worker
    /// threads — a compatibility shim for
    /// [`mine_all_exec`](Self::mine_all_exec) with [`Exec::Threads`].
    ///
    /// # Panics
    ///
    /// Panics if `min_support` is zero.
    #[must_use]
    pub fn mine_all_par(
        self,
        set: &TransactionSet,
        min_support: u64,
        threads: NonZeroUsize,
    ) -> Vec<ItemSet> {
        self.mine_all_exec(set, min_support, Exec::Threads(threads))
    }

    /// [`mine_maximal`](Self::mine_maximal) on up to `threads` scoped
    /// worker threads — a compatibility shim for
    /// [`mine_maximal_exec`](Self::mine_maximal_exec) with
    /// [`Exec::Threads`].
    ///
    /// # Panics
    ///
    /// Panics if `min_support` is zero.
    #[must_use]
    pub fn mine_maximal_par(
        self,
        set: &TransactionSet,
        min_support: u64,
        threads: NonZeroUsize,
    ) -> Vec<ItemSet> {
        self.mine_maximal_exec(set, min_support, Exec::Threads(threads))
    }

    /// [`mine_all`](Self::mine_all) parallelized in the given execution
    /// context ([`Exec::Pool`] runs counting passes *and* the recursive
    /// search as tasks on the engine's persistent pool). Output is
    /// bit-identical to the single-threaded call for every miner and
    /// context. Dispatches through [`MineTask`].
    ///
    /// # Panics
    ///
    /// Panics if `min_support` is zero.
    #[must_use]
    pub fn mine_all_exec(
        self,
        set: &TransactionSet,
        min_support: u64,
        exec: Exec<'_>,
    ) -> Vec<ItemSet> {
        MineTask::all(self, set, min_support).run(exec)
    }

    /// [`mine_maximal`](Self::mine_maximal) parallelized in the given
    /// execution context. Output is bit-identical to the
    /// single-threaded call for every miner and context. Dispatches
    /// through [`MineTask`].
    ///
    /// # Panics
    ///
    /// Panics if `min_support` is zero.
    #[must_use]
    pub fn mine_maximal_exec(
        self,
        set: &TransactionSet,
        min_support: u64,
        exec: Exec<'_>,
    ) -> Vec<ItemSet> {
        MineTask::maximal(self, set, min_support).run(exec)
    }
}

impl fmt::Display for MinerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MinerKind::Apriori => f.write_str("apriori"),
            MinerKind::FpGrowth => f.write_str("fp-growth"),
            MinerKind::Eclat => f.write_str("eclat"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Item;
    use crate::transaction::Transaction;
    use anomex_netflow::FlowFeature;

    fn sample() -> TransactionSet {
        let mut set = TransactionSet::new();
        for i in 0..10u64 {
            let t = Transaction::from_items(&[
                Item::new(FlowFeature::DstPort, 80),
                Item::new(FlowFeature::Packets, i % 2),
            ])
            .unwrap();
            set.push(t);
        }
        set
    }

    #[test]
    fn all_miners_agree_on_both_modes() {
        let set = sample();
        let reference_all = MinerKind::Apriori.mine_all(&set, 3);
        let reference_max = MinerKind::Apriori.mine_maximal(&set, 3);
        for kind in MinerKind::ALL {
            assert_eq!(kind.mine_all(&set, 3), reference_all, "{kind} all");
            assert_eq!(kind.mine_maximal(&set, 3), reference_max, "{kind} maximal");
        }
    }

    #[test]
    fn maximal_is_subset_of_all() {
        let set = sample();
        let all = MinerKind::FpGrowth.mine_all(&set, 2);
        let maximal = MinerKind::FpGrowth.mine_maximal(&set, 2);
        for m in &maximal {
            assert!(all.contains(m));
        }
        assert!(maximal.len() <= all.len());
    }

    #[test]
    fn pool_execution_is_bit_identical_to_scoped_threads() {
        use crossbeam::WorkerPool;
        // Large enough that the parallel passes actually split chunks.
        let mut set = TransactionSet::new();
        for i in 0..6000u64 {
            let t = Transaction::from_items(&[
                Item::new(FlowFeature::DstPort, 80 + i % 3),
                Item::new(FlowFeature::Proto, 6 + (i % 2) * 11),
                Item::new(FlowFeature::Packets, i % 5),
            ])
            .unwrap();
            set.push(t);
        }
        let pool = WorkerPool::new(NonZeroUsize::new(4).unwrap());
        for kind in MinerKind::ALL {
            let reference = kind.mine_maximal(&set, 400);
            let pooled = kind.mine_maximal_exec(&set, 400, Exec::Pool(&pool));
            assert_eq!(pooled, reference, "{kind}");
            for (a, b) in pooled.iter().zip(&reference) {
                assert_eq!(a.support, b.support, "{kind} {a}");
            }
            assert_eq!(
                kind.mine_all_exec(&set, 400, Exec::Pool(&pool)),
                kind.mine_all(&set, 400),
                "{kind} all-frequent"
            );
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(MinerKind::Apriori.to_string(), "apriori");
        assert_eq!(MinerKind::FpGrowth.to_string(), "fp-growth");
        assert_eq!(MinerKind::Eclat.to_string(), "eclat");
    }
}
