//! Allocation-free k-combination enumeration over small slices.
//!
//! Apriori support counting enumerates every k-subset of each width-≤7
//! transaction; this helper does so into a caller-provided scratch buffer,
//! so the hot loop performs no heap allocation.

use crate::item::Item;
use crate::transaction::MAX_WIDTH;

/// Call `f` with every k-combination of `items` (in lexicographic order),
/// written into the first `k` slots of a scratch buffer.
///
/// # Panics
///
/// Panics if `items.len() > MAX_WIDTH`.
pub fn for_each_combination(items: &[Item], k: usize, mut f: impl FnMut(&[Item])) {
    assert!(
        items.len() <= MAX_WIDTH,
        "combination source wider than a transaction"
    );
    if k == 0 || k > items.len() {
        return;
    }
    let mut scratch = [items[0]; MAX_WIDTH];
    let mut idx = [0usize; MAX_WIDTH];
    // Standard iterative combination enumeration over index vectors.
    for (slot, i) in idx.iter_mut().take(k).enumerate() {
        *i = slot;
    }
    loop {
        for (slot, &i) in idx.iter().take(k).enumerate() {
            scratch[slot] = items[i];
        }
        f(&scratch[..k]);
        // Advance the rightmost index that can still move.
        let mut pos = k;
        loop {
            if pos == 0 {
                return;
            }
            pos -= 1;
            if idx[pos] != pos + items.len() - k {
                break;
            }
        }
        idx[pos] += 1;
        for j in pos + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// Number of k-combinations of n elements (small n only; used by tests
/// and level-statistics reporting).
#[must_use]
pub fn binomial(n: usize, k: usize) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut num = 1u64;
    let mut den = 1u64;
    for i in 0..k {
        num *= (n - i) as u64;
        den *= (i + 1) as u64;
    }
    num / den
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomex_netflow::FlowFeature;

    fn items(n: usize) -> Vec<Item> {
        (0..n as u64)
            .map(|v| Item::new(FlowFeature::Bytes, v))
            .collect()
    }

    #[test]
    fn enumerates_all_combinations() {
        for n in 0..=7usize {
            let src = items(n);
            for k in 0..=n {
                let mut seen = Vec::new();
                for_each_combination(&src, k, |combo| seen.push(combo.to_vec()));
                if k == 0 {
                    assert!(seen.is_empty(), "k = 0 yields nothing by convention");
                } else {
                    assert_eq!(seen.len() as u64, binomial(n, k), "n={n} k={k}");
                    // All distinct, all sorted, all subsets.
                    let mut dedup = seen.clone();
                    dedup.sort();
                    dedup.dedup();
                    assert_eq!(dedup.len(), seen.len());
                    for combo in &seen {
                        assert!(combo.windows(2).all(|w| w[0] < w[1]));
                    }
                }
            }
        }
    }

    #[test]
    fn k_larger_than_n_yields_nothing() {
        let src = items(3);
        let mut count = 0;
        for_each_combination(&src, 5, |_| count += 1);
        assert_eq!(count, 0);
    }

    #[test]
    fn lexicographic_order() {
        let src = items(4);
        let mut seen = Vec::new();
        for_each_combination(&src, 2, |c| seen.push((c[0].value(), c[1].value())));
        assert_eq!(seen, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn binomial_table() {
        assert_eq!(binomial(7, 0), 1);
        assert_eq!(binomial(7, 3), 35);
        assert_eq!(binomial(7, 7), 1);
        assert_eq!(binomial(3, 5), 0);
    }
}
