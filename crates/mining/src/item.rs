//! Items: (feature, value) pairs with a compact total ordering.
//!
//! The paper maps every flow to a transaction of seven items — one per
//! traffic feature. An [`Item`] packs the feature index into the top byte
//! of a `u64` and the feature value into the low 56 bits, so items sort
//! first by feature and then by value, and fit in a register.
//!
//! All seven feature values of a [`anomex_netflow::FlowRecord`] are at most
//! 32 bits wide, so the 56-bit value field is never exceeded for real flows;
//! the constructor enforces the bound for synthetic items too.

use std::fmt;

use anomex_netflow::{FeatureValue, FlowFeature};
use serde::{Deserialize, Serialize};

/// Bits reserved for the value part of an item.
const VALUE_BITS: u32 = 56;
/// Mask for the value part.
const VALUE_MASK: u64 = (1 << VALUE_BITS) - 1;

/// A single market-basket item: one feature carrying one value.
///
/// `Item` is `Copy`, 8 bytes, and totally ordered (feature-major), which the
/// mining algorithms rely on for candidate generation and tid-list keys.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Item(u64);

impl Item {
    /// Create an item from a feature and raw value.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in 56 bits (cannot happen for values
    /// extracted from flow records, whose features are all ≤ 32 bits).
    #[must_use]
    pub fn new(feature: FlowFeature, value: u64) -> Self {
        assert!(value <= VALUE_MASK, "item value {value} exceeds 56 bits");
        Item(((feature.index() as u64) << VALUE_BITS) | value)
    }

    /// The item's feature.
    #[must_use]
    pub fn feature(self) -> FlowFeature {
        FlowFeature::from_index((self.0 >> VALUE_BITS) as usize)
    }

    /// The item's raw value.
    #[must_use]
    pub fn value(self) -> u64 {
        self.0 & VALUE_MASK
    }

    /// View as a [`FeatureValue`] (for pre-filtering and display).
    #[must_use]
    pub fn feature_value(self) -> FeatureValue {
        FeatureValue::new(self.feature(), self.value())
    }

    /// The packed encoding (stable; used as a dense map key).
    #[must_use]
    pub fn encoding(self) -> u64 {
        self.0
    }
}

impl From<FeatureValue> for Item {
    fn from(v: FeatureValue) -> Self {
        Item::new(v.feature, v.raw)
    }
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.feature_value())
    }
}

impl fmt::Debug for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Item({})", self.feature_value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_feature_and_value() {
        for feat in FlowFeature::ALL {
            let item = Item::new(feat, 0xDEAD_BEEF);
            assert_eq!(item.feature(), feat);
            assert_eq!(item.value(), 0xDEAD_BEEF);
        }
    }

    #[test]
    fn orders_feature_major() {
        let a = Item::new(FlowFeature::SrcIp, u64::from(u32::MAX));
        let b = Item::new(FlowFeature::DstIp, 0);
        assert!(
            a < b,
            "srcIP items sort before dstIP items regardless of value"
        );
        let c = Item::new(FlowFeature::DstIp, 1);
        assert!(b < c);
    }

    #[test]
    #[should_panic(expected = "exceeds 56 bits")]
    fn oversized_value_panics() {
        let _ = Item::new(FlowFeature::Bytes, 1 << 56);
    }

    #[test]
    fn display_matches_feature_value() {
        let item = Item::new(FlowFeature::DstPort, 80);
        assert_eq!(item.to_string(), "dstPort=80");
        assert_eq!(format!("{item:?}"), "Item(dstPort=80)");
    }

    #[test]
    fn from_feature_value() {
        let fv = FeatureValue::new(FlowFeature::Packets, 3);
        let item: Item = fv.into();
        assert_eq!(item.feature_value(), fv);
    }
}
