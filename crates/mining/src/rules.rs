//! Association rules `X ⇒ Y` over mined frequent item-sets, with a
//! meta-detection pass that ranks the rules themselves by how anomalous
//! they are.
//!
//! The paper stops at maximal frequent item-sets (§II-B argues plain
//! directional rules add nothing for anomaly *extraction*), but the rule
//! layer earns its keep twice over:
//!
//! - **Rule metrics as evidence.** Confidence, lift, leverage and
//!   conviction quantify *how tightly* the items of an extracted
//!   item-set co-occur — `{dstIP=10.3.0.7} ⇒ {dstPort=7000}` at
//!   confidence 1.0 and lift ≫ 1 is a much stronger root-cause statement
//!   than the bare frequent set.
//! - **Meta-detection.** Following PARs (arXiv 2312.10968), each rule's
//!   metric vector is z-scored against the interval's whole rule
//!   population; rules whose metrics sit far from the population mean
//!   are ranked first. The anomaly *among the rules* is what the
//!   operator reads first.
//!
//! All metrics are computed **from the already-counted item-set
//!   supports** — generation never rescans the transactions:
//!
//! ```text
//! confidence(X ⇒ Y) = supp(X ∪ Y) / supp(X)
//! lift(X ⇒ Y)       = confidence / (supp(Y) / N)
//! leverage(X ⇒ Y)   = supp(X∪Y)/N − (supp(X)/N)·(supp(Y)/N)
//! conviction(X ⇒ Y) = (1 − supp(Y)/N) / (1 − confidence)   (∞ at confidence 1)
//! ```
//!
//! A **rare-itemset mode** (after "Rare Association Rule Mining for
//! Network Intrusion Detection", arXiv 1610.04306) lowers the support
//! floor per level — halving it for every item beyond the first, see
//! [`RuleConfig::level_floor`] — so long, specific attack signatures
//! survive an absolute min-support floor that would hide them.
//!
//! Generation fans out over the frequent-set blocks through
//! [`run_tree_exec`], honoring the same merge-by-spawn-path contract as
//! the miners: output is **bit-identical** across
//! [`Exec::inline`]/[`Exec::Threads`]/[`Exec::Pool`].

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::combinations::for_each_combination;
use crate::item::Item;
use crate::itemset::ItemSet;
use crate::par::{run_tree_exec, Exec, TreeJob};

/// Default minimum confidence for emitted rules.
pub const DEFAULT_MIN_CONFIDENCE: f64 = 0.6;

/// Default minimum lift for emitted rules (1.0 = keep only rules whose
/// antecedent and consequent are positively associated).
pub const DEFAULT_MIN_LIFT: f64 = 1.0;

/// Cap substituted for an infinite conviction when a rule's metric
/// vector is z-scored: a confidence-1.0 rule scores as if its conviction
/// were this value, keeping the meta-detection arithmetic finite while
/// still ranking perfect implications as extreme.
pub const CONVICTION_SCORE_CAP: f64 = 100.0;

/// Smallest number of base item-sets a fork/join generation task is
/// worth; below this the spawn bookkeeping outweighs the enumeration.
const MIN_BASES_PER_RULE_TASK: usize = 32;

/// Smallest `min_support` at which rare mode's halving floor is safe on
/// large intervals; below it
/// [`RuleConfig::rare_floor_explosive`] reports the config as a
/// candidate-explosion risk (the per-level floor reaches 1 within the
/// transaction width and Apriori degenerates to full enumeration).
pub const RARE_SUPPORT_GUARD: u64 = 128;

/// Configuration of the rule layer: metric filters plus the rare-itemset
/// mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuleConfig {
    /// Keep only rules with confidence ≥ this (in `[0, 1]`).
    pub min_confidence: f64,
    /// Keep only rules with lift ≥ this (≥ 0).
    pub min_lift: f64,
    /// Rare-itemset mode: per-level relative support floor (halving per
    /// additional item) instead of one absolute floor, so low-support
    /// attack signatures are not hidden. See [`level_floor`](Self::level_floor).
    pub rare: bool,
}

impl Default for RuleConfig {
    fn default() -> Self {
        RuleConfig {
            min_confidence: DEFAULT_MIN_CONFIDENCE,
            min_lift: DEFAULT_MIN_LIFT,
            rare: false,
        }
    }
}

impl RuleConfig {
    /// Check the metric filters are in range.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.min_confidence) {
            return Err(format!(
                "min_confidence must be within [0, 1], got {}",
                self.min_confidence
            ));
        }
        if !self.min_lift.is_finite() || self.min_lift < 0.0 {
            return Err(format!(
                "min_lift must be finite and non-negative, got {}",
                self.min_lift
            ));
        }
        Ok(())
    }

    /// The support floor a `len`-item-set must meet to seed rules.
    ///
    /// Normal mode: the absolute `min_support` at every level. Rare
    /// mode: `max(1, min_support >> (len − 1))` — the floor halves for
    /// every item beyond the first, so a width-4 attack signature only
    /// needs an eighth of the level-1 support. Relative (anchored at the
    /// configured floor) and parameter-free.
    #[must_use]
    pub fn level_floor(&self, min_support: u64, len: usize) -> u64 {
        if !self.rare || len <= 1 {
            return min_support;
        }
        let shift = u32::try_from(len - 1).unwrap_or(u32::MAX);
        min_support.checked_shr(shift).unwrap_or(0).max(1)
    }

    /// The single support floor to *mine* at so that every level's rare
    /// floor is covered: the [`level_floor`](Self::level_floor) at the
    /// widest transaction (floors decrease with length, so the deepest
    /// level's floor bounds them all).
    #[must_use]
    pub fn mining_floor(&self, min_support: u64, max_width: usize) -> u64 {
        self.level_floor(min_support, max_width.max(1))
    }

    /// Whether this rule config's effective mining floor can explode the
    /// candidate space on a large interval: in rare mode the per-level
    /// halving drives the floor toward support 1 when `min_support` is
    /// below [`RARE_SUPPORT_GUARD`], and Apriori at support ≈ 1 over a
    /// backbone-sized interval enumerates nearly every distinct flow
    /// combination (a 29 GB candidate blow-up was observed at
    /// `min_support < 128`). Front-ends should reject such configs — or
    /// demand an explicit override — before mining starts.
    #[must_use]
    pub fn rare_floor_explosive(&self, min_support: u64) -> bool {
        self.rare && min_support < RARE_SUPPORT_GUARD
    }
}

/// One association rule `X ⇒ Y` with its metrics, all derived from the
/// item-set supports counted during mining.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    antecedent: Vec<Item>,
    consequent: Vec<Item>,
    /// Transactions containing `X ∪ Y`.
    pub support: u64,
    /// Transactions containing the antecedent `X`.
    pub antecedent_support: u64,
    /// Transactions containing the consequent `Y`.
    pub consequent_support: u64,
    /// `supp(X ∪ Y) / supp(X)` ∈ `[0, 1]`.
    pub confidence: f64,
    /// `confidence / (supp(Y) / N)`; > 1 means positive association.
    pub lift: f64,
    /// `supp(X∪Y)/N − (supp(X)/N)·(supp(Y)/N)` ∈ `[−0.25, 0.25]`.
    pub leverage: f64,
    /// `(1 − supp(Y)/N) / (1 − confidence)`; `None` encodes ∞ — the
    /// rule never fails (confidence exactly 1).
    pub conviction: Option<f64>,
}

impl Rule {
    /// Build a rule from its already-counted supports over `transactions`
    /// transactions, computing every metric.
    ///
    /// # Panics
    ///
    /// Panics if `antecedent_support`, `consequent_support` or
    /// `transactions` is zero (a frequent item-set always has support
    /// ≥ 1 over a non-empty set).
    #[must_use]
    pub fn from_supports(
        antecedent: Vec<Item>,
        consequent: Vec<Item>,
        support: u64,
        antecedent_support: u64,
        consequent_support: u64,
        transactions: u64,
    ) -> Self {
        assert!(
            antecedent_support > 0 && consequent_support > 0 && transactions > 0,
            "rule supports must be positive"
        );
        let n = transactions as f64;
        let confidence = support as f64 / antecedent_support as f64;
        let consequent_rel = consequent_support as f64 / n;
        let lift = confidence / consequent_rel;
        let leverage = support as f64 / n - (antecedent_support as f64 / n) * consequent_rel;
        let conviction = if confidence < 1.0 {
            Some((1.0 - consequent_rel) / (1.0 - confidence))
        } else {
            None
        };
        Rule {
            antecedent,
            consequent,
            support,
            antecedent_support,
            consequent_support,
            confidence,
            lift,
            leverage,
            conviction,
        }
    }

    /// The antecedent `X`, sorted ascending.
    #[must_use]
    pub fn antecedent(&self) -> &[Item] {
        &self.antecedent
    }

    /// The consequent `Y`, sorted ascending.
    #[must_use]
    pub fn consequent(&self) -> &[Item] {
        &self.consequent
    }

    /// The conviction value used for scoring and display ordering:
    /// infinite conviction mapped to [`CONVICTION_SCORE_CAP`].
    #[must_use]
    pub fn conviction_capped(&self) -> f64 {
        match self.conviction {
            Some(v) => v.min(CONVICTION_SCORE_CAP),
            None => CONVICTION_SCORE_CAP,
        }
    }
}

fn fmt_items(f: &mut fmt::Formatter<'_>, items: &[Item]) -> fmt::Result {
    write!(f, "{{")?;
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{item}")?;
    }
    write!(f, "}}")
}

impl fmt::Display for Rule {
    /// `{dstIP=10.3.0.7} => {dstPort=7000} x2941`
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_items(f, &self.antecedent)?;
        write!(f, " => ")?;
        fmt_items(f, &self.consequent)?;
        write!(f, " x{}", self.support)
    }
}

/// A rule plus its meta-detection anomaly score (mean positive z-score
/// of the metric vector against the rule population it was ranked in).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoredRule {
    /// The rule.
    pub rule: Rule,
    /// Mean `max(z, 0)` of `[supp/N, confidence, lift, leverage,
    /// conviction]` against the population; higher = more anomalous.
    /// Only upward deviation counts: an anomalous rule is one that is
    /// unusually *strong* for the interval — unusually weak rules are
    /// background, not signal.
    pub score: f64,
}

/// The ranked rule population of one interval (or one merged
/// multi-source interval): rules sorted by anomaly score, descending.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RuleSet {
    /// Rules ranked most-anomalous first (score descending, canonical
    /// antecedent/consequent order on ties).
    pub rules: Vec<ScoredRule>,
    /// Transactions the supports were counted over (`N`).
    pub transactions: u64,
}

impl RuleSet {
    /// An empty rule population over zero transactions.
    #[must_use]
    pub fn empty() -> Self {
        RuleSet::default()
    }

    /// Number of ranked rules.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether no rule survived generation and filtering.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

/// The metric vector a rule is z-scored on, in fixed dimension order.
fn metric_vector(rule: &Rule, transactions: u64) -> [f64; 5] {
    [
        rule.support as f64 / transactions as f64,
        rule.confidence,
        rule.lift,
        rule.leverage,
        rule.conviction_capped(),
    ]
}

/// Meta-detection pass: z-score each rule's metric vector against the
/// population and rank by mean positive z, descending (canonical rule
/// order on ties). Only upward deviation scores — the rules of interest
/// stand *above* the interval's population (higher support, stronger
/// association), while downward outliers are ordinary background.
/// Deterministic: sequential sums in input order.
#[must_use]
pub fn score_rules(rules: Vec<Rule>, transactions: u64) -> Vec<ScoredRule> {
    if rules.is_empty() || transactions == 0 {
        return Vec::new();
    }
    let vectors: Vec<[f64; 5]> = rules
        .iter()
        .map(|r| metric_vector(r, transactions))
        .collect();
    let count = vectors.len() as f64;
    let mut means = [0.0f64; 5];
    for v in &vectors {
        for (m, x) in means.iter_mut().zip(v) {
            *m += x;
        }
    }
    for m in &mut means {
        *m /= count;
    }
    let mut stds = [0.0f64; 5];
    for v in &vectors {
        for ((s, x), m) in stds.iter_mut().zip(v).zip(&means) {
            *s += (x - m) * (x - m);
        }
    }
    for s in &mut stds {
        *s = (*s / count).sqrt();
    }
    let mut scored: Vec<ScoredRule> = rules
        .into_iter()
        .zip(vectors)
        .map(|(rule, v)| {
            let mut total = 0.0;
            for ((x, m), s) in v.iter().zip(&means).zip(&stds) {
                if *s > 0.0 {
                    total += ((x - m) / s).max(0.0);
                }
            }
            ScoredRule {
                rule,
                score: total / 5.0,
            }
        })
        .collect();
    scored.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.rule.antecedent.cmp(&b.rule.antecedent))
            .then_with(|| a.rule.consequent.cmp(&b.rule.consequent))
    });
    scored
}

/// Enumerate the rules of one block of base item-sets — the sequential
/// kernel both the inline path and every fork/join task run.
fn rules_for_block(
    bases: &[ItemSet],
    supports: &BTreeMap<Vec<Item>, u64>,
    transactions: u64,
    config: &RuleConfig,
    out: &mut Vec<Rule>,
) {
    let lookup = |items: &[Item]| -> u64 {
        supports.get(items).copied().unwrap_or_else(|| {
            panic!("rule generation requires downward-closed input: no support for a subset")
        })
    };
    for base in bases {
        let items = base.items();
        let mut consequent = Vec::with_capacity(items.len());
        for antecedent_len in 1..items.len() {
            for_each_combination(items, antecedent_len, |antecedent| {
                consequent.clear();
                let mut i = 0;
                for &item in items {
                    if i < antecedent.len() && antecedent[i] == item {
                        i += 1;
                    } else {
                        consequent.push(item);
                    }
                }
                let antecedent_support = lookup(antecedent);
                let consequent_support = lookup(&consequent);
                let rule = Rule::from_supports(
                    antecedent.to_vec(),
                    consequent.clone(),
                    base.support,
                    antecedent_support,
                    consequent_support,
                    transactions,
                );
                if rule.confidence >= config.min_confidence && rule.lift >= config.min_lift {
                    out.push(rule);
                }
            });
        }
    }
}

/// Generate, filter, and rank association rules from the **all-frequent**
/// item-sets of one interval.
///
/// `frequent` must be *downward closed*: for every item-set it contains,
/// it also contains every non-empty subset with its exact support — the
/// shape every miner's all-frequent output has. Supports are looked up
/// in that collection; the transactions are never rescanned.
/// `transactions` is `N`, the number of transactions mined.
///
/// Rules are seeded from every item-set of length ≥ 2 whose support
/// meets [`RuleConfig::level_floor`] for its length (the absolute floor
/// normally; the halving per-level floor in rare mode). Generation fans
/// out over contiguous blocks of those seeds through [`run_tree_exec`];
/// the per-block outputs are concatenated in spawn order, so the result
/// is bit-identical in every [`Exec`] context.
///
/// # Panics
///
/// Panics if `frequent` is not downward closed.
///
/// # Examples
///
/// Metrics follow from the supports — here `{dstPort=80} ⇒ {proto=6}`
/// holds in 3 of the 4 transactions that contain `dstPort=80`:
///
/// ```
/// use anomex_mining::rules::{generate_rules, RuleConfig};
/// use anomex_mining::{Exec, Item, MineTask, MinerKind, Transaction, TransactionSet};
/// use anomex_netflow::FlowFeature;
///
/// let mut set = TransactionSet::new();
/// let item = |f, v| Item::new(f, v);
/// for proto in [6u64, 6, 6, 17, 6] {
///     set.push(
///         Transaction::from_items(&[
///             item(FlowFeature::DstPort, if proto == 6 && set.len() == 4 { 443 } else { 80 }),
///             item(FlowFeature::Proto, proto),
///         ])
///         .unwrap(),
///     );
/// }
/// let frequent = MineTask::all(MinerKind::Apriori, &set, 1).run(Exec::inline());
/// let config = RuleConfig { min_confidence: 0.5, min_lift: 0.0, rare: false };
/// let ranked = generate_rules(&frequent, set.len() as u64, 1, &config, Exec::inline());
/// let rule = ranked
///     .rules
///     .iter()
///     .find(|s| s.rule.to_string().starts_with("{dstPort=80} => {protocol=6}"))
///     .expect("rule emitted");
/// assert_eq!(rule.rule.confidence, 3.0 / 4.0);
/// ```
///
/// Single-item item-sets seed no rules (a rule needs a non-empty
/// antecedent *and* consequent), and an empty interval yields an empty
/// population — both panic-free:
///
/// ```
/// use anomex_mining::rules::{generate_rules, RuleConfig};
/// use anomex_mining::{Exec, Item, ItemSet};
/// use anomex_netflow::FlowFeature;
///
/// let config = RuleConfig::default();
/// let singles = vec![ItemSet::new(vec![Item::new(FlowFeature::DstPort, 80)], 5)];
/// assert!(generate_rules(&singles, 5, 1, &config, Exec::inline()).is_empty());
/// assert!(generate_rules(&[], 0, 1, &config, Exec::inline()).is_empty());
/// ```
///
/// A 100%-support antecedent with confidence 1 has **infinite
/// conviction**, encoded as `None`, and `min_confidence = 1.0` keeps
/// exactly the never-failing rules:
///
/// ```
/// use anomex_mining::rules::{generate_rules, RuleConfig};
/// use anomex_mining::{Exec, Item, ItemSet};
/// use anomex_netflow::FlowFeature;
///
/// let a = Item::new(FlowFeature::DstPort, 7000);
/// let b = Item::new(FlowFeature::Proto, 17);
/// // Both items in all 10 transactions: downward-closed by hand.
/// let frequent = vec![
///     ItemSet::new(vec![a], 10),
///     ItemSet::new(vec![b], 10),
///     ItemSet::new(vec![a, b], 10),
/// ];
/// let config = RuleConfig { min_confidence: 1.0, min_lift: 0.0, rare: false };
/// let ranked = generate_rules(&frequent, 10, 1, &config, Exec::inline());
/// assert_eq!(ranked.len(), 2, "both directions are certain");
/// assert!(ranked.rules.iter().all(|s| s.rule.conviction.is_none()));
/// ```
#[must_use]
pub fn generate_rules(
    frequent: &[ItemSet],
    transactions: u64,
    min_support: u64,
    config: &RuleConfig,
    exec: Exec<'_>,
) -> RuleSet {
    if transactions == 0 || frequent.is_empty() {
        return RuleSet {
            rules: Vec::new(),
            transactions,
        };
    }
    let supports: BTreeMap<Vec<Item>, u64> = frequent
        .iter()
        .map(|s| (s.items().to_vec(), s.support))
        .collect();
    let bases: Vec<ItemSet> = frequent
        .iter()
        .filter(|s| s.len() >= 2 && s.support >= config.level_floor(min_support, s.len()))
        .cloned()
        .collect();
    if bases.is_empty() {
        return RuleSet {
            rules: Vec::new(),
            transactions,
        };
    }
    let rules = if bases.len() < 2 * MIN_BASES_PER_RULE_TASK {
        let mut out = Vec::new();
        rules_for_block(&bases, &supports, transactions, config, &mut out);
        out
    } else {
        // Fork one task per contiguous block of seeds; run_tree_exec
        // returns per-task outputs in spawn order, so the concatenation
        // equals the sequential enumeration bit for bit.
        let block = bases
            .len()
            .div_ceil(exec.width().max(1) * 4)
            .max(MIN_BASES_PER_RULE_TASK);
        let bases = Arc::new(bases);
        let supports = Arc::new(supports);
        let config = *config;
        let mut roots: Vec<TreeJob<Vec<Rule>>> = Vec::new();
        let mut start = 0;
        while start < bases.len() {
            let end = (start + block).min(bases.len());
            let bases = Arc::clone(&bases);
            let supports = Arc::clone(&supports);
            roots.push(Box::new(move |_scope| {
                let mut out = Vec::new();
                rules_for_block(
                    &bases[start..end],
                    &supports,
                    transactions,
                    &config,
                    &mut out,
                );
                out
            }));
            start = end;
        }
        run_tree_exec(exec, roots).into_iter().flatten().collect()
    };
    RuleSet {
        rules: score_rules(rules, transactions),
        transactions,
    }
}

/// Merge per-source rule populations and **re-score at the rule layer**:
/// rules are keyed by `(antecedent, consequent)`, their supports and
/// transaction counts summed exactly, every metric recomputed from the
/// merged counts, and the merged population z-scored afresh — so a rule
/// that is anomalous on a low-rate link is ranked against the union
/// population rather than drowned in any single source's ranking.
///
/// The merge is over the rules that *survived* each source's filters;
/// no re-filtering is applied to the merged metrics.
#[must_use]
pub fn merge_rule_sets(sets: &[RuleSet]) -> RuleSet {
    /// Summed `(support, antecedent_support, consequent_support)` counts.
    type MergedCounts = (u64, u64, u64);
    let transactions: u64 = sets.iter().map(|s| s.transactions).sum();
    let mut merged: BTreeMap<(Vec<Item>, Vec<Item>), MergedCounts> = BTreeMap::new();
    for set in sets {
        for scored in &set.rules {
            let key = (
                scored.rule.antecedent().to_vec(),
                scored.rule.consequent().to_vec(),
            );
            let entry = merged.entry(key).or_insert((0, 0, 0));
            entry.0 += scored.rule.support;
            entry.1 += scored.rule.antecedent_support;
            entry.2 += scored.rule.consequent_support;
        }
    }
    if transactions == 0 || merged.is_empty() {
        return RuleSet {
            rules: Vec::new(),
            transactions,
        };
    }
    let rules: Vec<Rule> = merged
        .into_iter()
        .map(|((antecedent, consequent), (support, ant, cons))| {
            Rule::from_supports(antecedent, consequent, support, ant, cons, transactions)
        })
        .collect();
    RuleSet {
        rules: score_rules(rules, transactions),
        transactions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::MinerKind;
    use crate::task::MineTask;
    use crate::transaction::{Transaction, TransactionSet};
    use anomex_netflow::FlowFeature;

    fn item(feature: FlowFeature, value: u64) -> Item {
        Item::new(feature, value)
    }

    /// 10 transactions: 8 carry {dstPort=7000, proto=17}, 2 carry
    /// {dstPort=80, proto=6}; every transaction carries packets=1.
    fn flood_like_set() -> TransactionSet {
        let mut set = TransactionSet::new();
        for i in 0..10u64 {
            let (port, proto) = if i < 8 { (7000, 17) } else { (80, 6) };
            set.push(
                Transaction::from_items(&[
                    item(FlowFeature::DstPort, port),
                    item(FlowFeature::Proto, proto),
                    item(FlowFeature::Packets, 1),
                ])
                .unwrap(),
            );
        }
        set
    }

    fn all_frequent(set: &TransactionSet, support: u64) -> Vec<ItemSet> {
        MineTask::all(MinerKind::Apriori, set, support).run(Exec::inline())
    }

    fn loose() -> RuleConfig {
        RuleConfig {
            min_confidence: 0.0,
            min_lift: 0.0,
            rare: false,
        }
    }

    #[test]
    fn metrics_match_definitions_exactly() {
        let set = flood_like_set();
        let frequent = all_frequent(&set, 1);
        let ranked = generate_rules(&frequent, 10, 1, &loose(), Exec::inline());
        assert!(!ranked.is_empty());
        for scored in &ranked.rules {
            let r = &scored.rule;
            let union: Vec<Item> = {
                let mut u: Vec<Item> = r
                    .antecedent()
                    .iter()
                    .chain(r.consequent())
                    .copied()
                    .collect();
                u.sort_unstable();
                u
            };
            assert_eq!(r.support, set.support_of(&union), "{r}");
            assert_eq!(r.antecedent_support, set.support_of(r.antecedent()));
            assert_eq!(r.consequent_support, set.support_of(r.consequent()));
            let confidence = r.support as f64 / r.antecedent_support as f64;
            assert_eq!(r.confidence.to_bits(), confidence.to_bits());
            let lift = confidence / (r.consequent_support as f64 / 10.0);
            assert_eq!(r.lift.to_bits(), lift.to_bits());
        }
    }

    #[test]
    fn conviction_is_infinite_only_at_confidence_one() {
        let set = flood_like_set();
        let ranked = generate_rules(&all_frequent(&set, 1), 10, 1, &loose(), Exec::inline());
        for scored in &ranked.rules {
            let r = &scored.rule;
            assert_eq!(r.conviction.is_none(), r.confidence == 1.0, "{r}");
            if let Some(conviction) = r.conviction {
                assert!(conviction.is_finite() && conviction >= 0.0);
            }
        }
        // packets=1 is universal, so {dstPort=7000} => {#packets=1} is
        // certain: its conviction must be the ∞ encoding.
        let certain = ranked
            .rules
            .iter()
            .find(|s| {
                s.rule
                    .to_string()
                    .starts_with("{dstPort=7000} => {#packets=1}")
            })
            .expect("certain rule present");
        assert!(certain.rule.conviction.is_none());
        assert_eq!(certain.rule.conviction_capped(), CONVICTION_SCORE_CAP);
    }

    #[test]
    fn filters_drop_low_confidence_and_low_lift() {
        let set = flood_like_set();
        let frequent = all_frequent(&set, 1);
        let strict = RuleConfig {
            min_confidence: 0.9,
            min_lift: 1.0,
            rare: false,
        };
        let ranked = generate_rules(&frequent, 10, 1, &strict, Exec::inline());
        assert!(!ranked.is_empty());
        for scored in &ranked.rules {
            assert!(scored.rule.confidence >= 0.9);
            assert!(scored.rule.lift >= 1.0);
        }
        let all = generate_rules(&frequent, 10, 1, &loose(), Exec::inline());
        assert!(ranked.len() < all.len(), "the filters must bite");
    }

    #[test]
    fn min_confidence_one_keeps_only_certain_rules() {
        let set = flood_like_set();
        let config = RuleConfig {
            min_confidence: 1.0,
            min_lift: 0.0,
            rare: false,
        };
        let ranked = generate_rules(&all_frequent(&set, 1), 10, 1, &config, Exec::inline());
        assert!(!ranked.is_empty());
        assert!(ranked.rules.iter().all(|s| s.rule.confidence == 1.0));
        assert!(ranked.rules.iter().all(|s| s.rule.conviction.is_none()));
    }

    #[test]
    fn single_item_sets_and_empty_input_yield_no_rules() {
        let singles = vec![
            ItemSet::new(vec![item(FlowFeature::DstPort, 80)], 4),
            ItemSet::new(vec![item(FlowFeature::Proto, 6)], 4),
        ];
        assert!(generate_rules(&singles, 4, 1, &loose(), Exec::inline()).is_empty());
        assert!(generate_rules(&[], 0, 1, &loose(), Exec::inline()).is_empty());
        assert!(generate_rules(&[], 7, 1, &loose(), Exec::inline()).is_empty());
    }

    #[test]
    fn rare_floor_guard_flags_only_low_support_rare_configs() {
        let rare = RuleConfig {
            rare: true,
            ..RuleConfig::default()
        };
        assert!(rare.rare_floor_explosive(1));
        assert!(rare.rare_floor_explosive(RARE_SUPPORT_GUARD - 1));
        assert!(!rare.rare_floor_explosive(RARE_SUPPORT_GUARD));
        assert!(!rare.rare_floor_explosive(100_000));
        let absolute = RuleConfig::default();
        assert!(!absolute.rare_floor_explosive(1), "absolute mode is safe");
    }

    #[test]
    fn rare_mode_lowers_the_floor_per_level() {
        let config = RuleConfig {
            rare: true,
            ..loose()
        };
        assert_eq!(config.level_floor(1000, 1), 1000);
        assert_eq!(config.level_floor(1000, 2), 500);
        assert_eq!(config.level_floor(1000, 4), 125);
        assert_eq!(config.level_floor(2, 9), 1, "floor never reaches zero");
        assert_eq!(config.mining_floor(1000, 3), 250);
        let absolute = loose();
        assert_eq!(absolute.level_floor(1000, 4), 1000);
        assert_eq!(absolute.mining_floor(1000, 9), 1000);
    }

    #[test]
    fn rare_mode_emits_a_superset_of_normal_mode() {
        let set = flood_like_set();
        // Floor 4: the {dstPort=80, proto=6} pair (support 2) only
        // survives in rare mode (level-2 floor = 2).
        let frequent = all_frequent(&set, 1);
        let normal = generate_rules(&frequent, 10, 4, &loose(), Exec::inline());
        let rare = generate_rules(
            &frequent,
            10,
            4,
            &RuleConfig {
                rare: true,
                ..loose()
            },
            Exec::inline(),
        );
        assert!(rare.len() > normal.len());
        let keys =
            |rs: &RuleSet| -> Vec<String> { rs.rules.iter().map(|s| s.rule.to_string()).collect() };
        for key in keys(&normal) {
            assert!(keys(&rare).contains(&key), "rare must cover {key}");
        }
        assert!(keys(&rare)
            .iter()
            .any(|k| k.starts_with("{dstPort=80} => {protocol=6}")));
    }

    #[test]
    fn ranking_is_score_descending_with_canonical_ties() {
        let set = flood_like_set();
        let ranked = generate_rules(&all_frequent(&set, 1), 10, 1, &loose(), Exec::inline());
        for pair in ranked.rules.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn scoring_flags_the_metric_outlier() {
        // Two metrically identical rules and one outlier: the outlier
        // must rank first.
        let mk = |support, ant, cons| {
            Rule::from_supports(
                vec![item(FlowFeature::DstPort, ant)],
                vec![item(FlowFeature::Proto, cons)],
                support,
                support,
                support,
                100,
            )
        };
        let rules = vec![mk(5, 80, 6), mk(5, 81, 7), mk(90, 7000, 17)];
        let scored = score_rules(rules, 100);
        assert_eq!(scored[0].rule.support, 90, "outlier first");
        assert!(scored[0].score > scored[1].score);
        assert_eq!(
            scored[1].score.to_bits(),
            scored[2].score.to_bits(),
            "identical metric vectors tie"
        );
    }

    #[test]
    fn scoring_handles_degenerate_populations() {
        assert!(score_rules(Vec::new(), 10).is_empty());
        let one = vec![Rule::from_supports(
            vec![item(FlowFeature::DstPort, 80)],
            vec![item(FlowFeature::Proto, 6)],
            3,
            4,
            3,
            10,
        )];
        let scored = score_rules(one, 10);
        assert_eq!(scored.len(), 1);
        assert_eq!(scored[0].score, 0.0, "a population of one has no outlier");
    }

    #[test]
    fn merge_sums_counts_and_recomputes_metrics() {
        let set = flood_like_set();
        let one = generate_rules(&all_frequent(&set, 1), 10, 1, &loose(), Exec::inline());
        let doubled = merge_rule_sets(&[one.clone(), one.clone()]);
        assert_eq!(doubled.transactions, 20);
        assert_eq!(doubled.len(), one.len());
        for scored in &doubled.rules {
            let single = one
                .rules
                .iter()
                .find(|s| {
                    s.rule.antecedent() == scored.rule.antecedent()
                        && s.rule.consequent() == scored.rule.consequent()
                })
                .expect("same rule key");
            assert_eq!(scored.rule.support, 2 * single.rule.support);
            // Doubling every count and N leaves the relative metrics
            // unchanged.
            assert_eq!(
                scored.rule.confidence.to_bits(),
                single.rule.confidence.to_bits()
            );
            assert_eq!(scored.rule.lift.to_bits(), single.rule.lift.to_bits());
        }
        assert!(merge_rule_sets(&[]).is_empty());
        assert!(merge_rule_sets(&[RuleSet::empty()]).is_empty());
    }

    #[test]
    fn display_formats_both_sides() {
        let rule = Rule::from_supports(
            vec![item(FlowFeature::DstIp, 0x0A03_0007)],
            vec![item(FlowFeature::DstPort, 7000)],
            8,
            8,
            8,
            10,
        );
        assert_eq!(
            rule.to_string(),
            "{dstIP=10.3.0.7} => {dstPort=7000} x8",
            "display is antecedent => consequent x support"
        );
    }

    #[test]
    fn config_validation_rejects_out_of_range_filters() {
        assert!(RuleConfig::default().validate().is_ok());
        let bad_conf = RuleConfig {
            min_confidence: 1.5,
            ..RuleConfig::default()
        };
        assert!(bad_conf.validate().is_err());
        let bad_lift = RuleConfig {
            min_lift: -1.0,
            ..RuleConfig::default()
        };
        assert!(bad_lift.validate().is_err());
        let nan_lift = RuleConfig {
            min_lift: f64::NAN,
            ..RuleConfig::default()
        };
        assert!(nan_lift.validate().is_err());
    }
}
