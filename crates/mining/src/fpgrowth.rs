//! FP-growth: frequent-pattern mining without candidate generation.
//!
//! The paper notes (§III-E) that "progressive implementations that use
//! FP-trees … have been shown to outperform standard hash tree
//! implementations" of Apriori. This module provides that faster miner with
//! the exact same output contract as [`crate::apriori`], so the two are
//! interchangeable in the pipeline and comparable in the ablation bench.
//!
//! The tree is arena-allocated (`Vec<Node>` + indices) — no `Rc`/`RefCell`,
//! no unsafe.

use std::collections::HashMap;
use std::sync::Arc;

use crate::apriori::count_single_items;
use crate::item::Item;
use crate::itemset::ItemSet;
use crate::par::{run_tree_exec, Exec, ForkPolicy, TreeJob, TreeScope, WorkKind};
use crate::transaction::TransactionSet;

/// One FP-tree node.
#[derive(Debug, Clone)]
struct Node {
    item: Item,
    count: u64,
    parent: usize,
    /// Child lookup. Transactions are short (≤ 7 items), so a sorted small
    /// vec would also work; a HashMap keeps insertion O(1) for wide fans.
    children: HashMap<Item, usize>,
}

/// An FP-tree over (item, count) weighted transactions.
struct FpTree {
    arena: Vec<Node>,
    /// item → indices of all nodes carrying that item (the "node links").
    header: HashMap<Item, Vec<usize>>,
}

const ROOT: usize = 0;
/// Sentinel item stored in the root node (never matched: the root's entry
/// is excluded from the header table).
fn root_item() -> Item {
    Item::new(anomex_netflow::FlowFeature::SrcIp, 0)
}

impl FpTree {
    fn new() -> Self {
        FpTree {
            arena: vec![Node {
                item: root_item(),
                count: 0,
                parent: ROOT,
                children: HashMap::new(),
            }],
            header: HashMap::new(),
        }
    }

    /// Insert one (already rank-ordered) item path with a count.
    fn insert(&mut self, path: &[Item], count: u64) {
        let mut at = ROOT;
        for &item in path {
            if let Some(&child) = self.arena[at].children.get(&item) {
                self.arena[child].count += count;
                at = child;
            } else {
                let idx = self.arena.len();
                self.arena.push(Node {
                    item,
                    count,
                    parent: at,
                    children: HashMap::new(),
                });
                self.arena[at].children.insert(item, idx);
                self.header.entry(item).or_default().push(idx);
                at = idx;
            }
        }
    }

    /// Walk from a node to the root, collecting the prefix path
    /// (excluding the node itself), bottom-up.
    fn prefix_path(&self, mut at: usize) -> Vec<Item> {
        let mut path = Vec::new();
        at = self.arena[at].parent;
        while at != ROOT {
            path.push(self.arena[at].item);
            at = self.arena[at].parent;
        }
        path.reverse();
        path
    }
}

/// Rank items of one transaction by global frequency (descending), keeping
/// only frequent ones. Deterministic: ties break on the item encoding.
fn ranked_items(items: &[Item], rank: &HashMap<Item, usize>) -> Vec<Item> {
    let mut v: Vec<Item> = items
        .iter()
        .copied()
        .filter(|i| rank.contains_key(i))
        .collect();
    v.sort_unstable_by_key(|i| rank[i]);
    v
}

/// Mine all frequent item-sets with FP-growth.
///
/// Output contract matches [`crate::apriori::apriori`] with
/// `maximal_only = false`: every frequent item-set with its exact support,
/// canonically ordered.
///
/// # Panics
///
/// Panics if `min_support` is zero.
#[must_use]
pub fn fpgrowth(set: &TransactionSet, min_support: u64) -> Vec<ItemSet> {
    fpgrowth_exec(set, min_support, Exec::inline())
}

/// FP-growth parallelized in the given execution context.
///
/// The first (support-counting) scan runs over transaction chunks and
/// merges by exact integer sums, so the ranking — and therefore the
/// global tree — is identical for every context. The search itself is
/// task-parallel under [`Exec::Pool`]: whenever the enclosing tree's
/// arena carries enough node-walk work to amortize a task dispatch (the
/// [`ForkPolicy`] cost model, coarsened by live queue depth — the global
/// tree for level 1, the conditional pattern base below), **each of its
/// conditional trees mines as an independent forked task**
/// ([`run_tree_exec`]); smaller trees mine inline in the task that
/// found them. Every task returns its item-sets; the merged
/// output is canonically sorted, and each item-set's support is an exact
/// sum over node links, so the result is **bit-identical** to
/// [`fpgrowth`] for every context and thread count.
///
/// # Panics
///
/// Panics if `min_support` is zero.
#[must_use]
pub fn fpgrowth_exec(set: &TransactionSet, min_support: u64, exec: Exec<'_>) -> Vec<ItemSet> {
    assert!(min_support >= 1, "minimum support must be at least 1");

    // Pass 1: global item counts (parallel over chunks, merged by sum).
    let counts = count_single_items(set, exec);
    let mut frequent: Vec<(Item, u64)> = counts
        .into_iter()
        .filter(|&(_, c)| c >= min_support)
        .collect();
    // Rank: descending frequency, ties by encoding for determinism.
    frequent.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let rank: HashMap<Item, usize> = frequent
        .iter()
        .enumerate()
        .map(|(r, &(i, _))| (i, r))
        .collect();

    // Pass 2: build the tree.
    let mut tree = FpTree::new();
    for t in set.transactions() {
        let path = ranked_items(t.items(), &rank);
        if !path.is_empty() {
            tree.insert(&path, 1);
        }
    }

    // Search: one root job walks the frequent level-1 items; when the
    // global tree is worth splitting, each item's conditional tree
    // mines as an independent forked task (which forks its own large
    // sub-trees in turn) — the same work-vs-overhead gate every deeper
    // level uses, so a tiny tree never pays queue operations.
    let ctx = MineCtx {
        min_support,
        policy: ForkPolicy::for_exec(&exec),
    };
    let tree = Arc::new(tree);
    let root: TreeJob<Vec<ItemSet>> = Box::new(move |scope: &TreeScope<'_, Vec<ItemSet>>| {
        let mut out = Vec::new();
        let fork = ctx
            .policy
            .should_fork(scope, tree.arena.len(), WorkKind::TreeNodes);
        for (item, support) in item_supports(&tree) {
            if support < min_support {
                continue;
            }
            if fork {
                let tree = Arc::clone(&tree);
                scope.fork(move |scope: &TreeScope<'_, Vec<ItemSet>>| {
                    let mut sub = Vec::new();
                    mine_item(&tree, item, support, Vec::new(), ctx, scope, &mut sub);
                    sub
                });
            } else {
                mine_item(&tree, item, support, Vec::new(), ctx, scope, &mut out);
            }
        }
        out
    });
    let mut out: Vec<ItemSet> = run_tree_exec(exec, vec![root])
        .into_iter()
        .flatten()
        .collect();
    out.sort_unstable();
    out
}

/// Item supports within one (conditional) tree, in deterministic
/// (item-sorted) processing order. Each support is an exact sum over
/// the item's node links.
fn item_supports(tree: &FpTree) -> Vec<(Item, u64)> {
    let mut supports: Vec<(Item, u64)> = tree
        .header
        .iter()
        .map(|(&item, nodes)| (item, nodes.iter().map(|&n| tree.arena[n].count).sum()))
        .collect();
    supports.sort_unstable_by_key(|&(item, _)| item);
    supports
}

/// The conditional tree of `item`: its prefix paths, reweighted by the
/// item's node counts.
fn conditional_tree(tree: &FpTree, item: Item) -> FpTree {
    let mut cond = FpTree::new();
    for &node in &tree.header[&item] {
        let path = tree.prefix_path(node);
        if !path.is_empty() {
            cond.insert(&path, tree.arena[node].count);
        }
    }
    cond
}

/// The parameters that stay fixed across the whole conditional-tree
/// recursion: the support floor and the fork cost model.
#[derive(Clone, Copy)]
struct MineCtx {
    min_support: u64,
    policy: ForkPolicy,
}

/// Mine `suffix ∪ {item}` and everything below it: emit the item-set,
/// build the conditional tree, and descend into its frequent items —
/// forking each descent as a tree task when the cost model judges the
/// conditional pattern base worth a dispatch, recursing inline
/// otherwise. The emitted set is identical either way; forking only
/// moves work.
fn mine_item(
    tree: &FpTree,
    item: Item,
    support: u64,
    suffix: Vec<Item>,
    ctx: MineCtx,
    scope: &TreeScope<'_, Vec<ItemSet>>,
    out: &mut Vec<ItemSet>,
) {
    let mut items = suffix;
    items.push(item);
    out.push(ItemSet::new(items.clone(), support));

    let cond = conditional_tree(tree, item);
    if cond.header.is_empty() {
        return;
    }
    let fork = ctx
        .policy
        .should_fork(scope, cond.arena.len(), WorkKind::TreeNodes);
    let cond = Arc::new(cond);
    for (citem, csupport) in item_supports(&cond) {
        if csupport < ctx.min_support {
            continue;
        }
        if fork {
            let cond = Arc::clone(&cond);
            let items = items.clone();
            scope.fork(move |scope: &TreeScope<'_, Vec<ItemSet>>| {
                let mut sub = Vec::new();
                mine_item(&cond, citem, csupport, items, ctx, scope, &mut sub);
                sub
            });
        } else {
            mine_item(&cond, citem, csupport, items.clone(), ctx, scope, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::{apriori, AprioriConfig};
    use crate::transaction::Transaction;
    use anomex_netflow::FlowFeature;

    fn tx(items: &[(FlowFeature, u64)]) -> Transaction {
        let items: Vec<_> = items.iter().map(|&(f, v)| Item::new(f, v)).collect();
        Transaction::from_items(&items).unwrap()
    }

    fn sample() -> TransactionSet {
        let mut set = TransactionSet::new();
        for _ in 0..4 {
            set.push(tx(&[
                (FlowFeature::DstPort, 80),
                (FlowFeature::Proto, 6),
                (FlowFeature::Packets, 2),
            ]));
        }
        for _ in 0..3 {
            set.push(tx(&[(FlowFeature::DstPort, 80), (FlowFeature::Proto, 17)]));
        }
        set.push(tx(&[(FlowFeature::Packets, 2)]));
        set
    }

    #[test]
    fn agrees_with_apriori_on_sample() {
        let set = sample();
        for support in 1..=5 {
            let a = apriori(&set, &AprioriConfig::all_frequent(support));
            let f = fpgrowth(&set, support);
            assert_eq!(a.itemsets, f, "support {support}");
            // Supports too (Eq ignores support, so check explicitly).
            for (x, y) in a.itemsets.iter().zip(&f) {
                assert_eq!(x.support, y.support, "support mismatch on {x}");
            }
        }
    }

    #[test]
    fn exact_supports() {
        let set = sample();
        let out = fpgrowth(&set, 2);
        for s in &out {
            assert_eq!(s.support, set.support_of(s.items()), "{s}");
        }
    }

    #[test]
    fn empty_set_yields_nothing() {
        assert!(fpgrowth(&TransactionSet::new(), 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "minimum support must be at least 1")]
    fn zero_support_panics() {
        let _ = fpgrowth(&TransactionSet::new(), 0);
    }

    #[test]
    fn parallel_first_scan_is_identical_for_every_thread_count() {
        use std::num::NonZeroUsize;
        let mut set = TransactionSet::new();
        for i in 0..4000u64 {
            set.push(tx(&[
                (FlowFeature::DstPort, 80 + i % 3),
                (FlowFeature::Proto, 6 + (i % 2) * 11),
                (FlowFeature::Packets, i % 4),
            ]));
        }
        let reference = fpgrowth(&set, 250);
        for threads in 2..=8 {
            let par = fpgrowth_exec(
                &set,
                250,
                Exec::Threads(NonZeroUsize::new(threads).unwrap()),
            );
            assert_eq!(par, reference, "threads={threads}");
            for (a, b) in par.iter().zip(&reference) {
                assert_eq!(a.support, b.support, "threads={threads} {a}");
            }
        }
    }

    #[test]
    fn pool_conditional_mining_runs_as_tree_tasks() {
        use crossbeam::WorkerPool;
        use std::num::NonZeroUsize;
        // Wide co-occurrence structure at support 2 ⇒ deep conditional
        // trees with large pattern bases.
        let mut set = TransactionSet::new();
        for i in 0..3000u64 {
            set.push(tx(&[
                (FlowFeature::SrcIp, i % 11),
                (FlowFeature::DstIp, i % 7),
                (FlowFeature::DstPort, i % 5),
                (FlowFeature::Proto, i % 2),
                (FlowFeature::Packets, i % 3),
            ]));
        }
        let reference = fpgrowth(&set, 2);
        let pool = WorkerPool::new(NonZeroUsize::new(4).unwrap());
        let pooled = fpgrowth_exec(&set, 2, Exec::Pool(&pool));
        assert_eq!(pooled, reference);
        for (a, b) in pooled.iter().zip(&reference) {
            assert_eq!(a.support, b.support, "{a}");
        }
        assert!(
            pool.tree_tasks() > 1,
            "conditional mining must have dispatched pool tasks (got {})",
            pool.tree_tasks()
        );
    }

    #[test]
    fn single_path_tree_mines_all_subsets() {
        // 3 identical 3-item transactions → all 7 non-empty subsets frequent.
        let mut set = TransactionSet::new();
        for _ in 0..3 {
            set.push(tx(&[
                (FlowFeature::SrcIp, 1),
                (FlowFeature::DstIp, 2),
                (FlowFeature::DstPort, 3),
            ]));
        }
        let out = fpgrowth(&set, 3);
        assert_eq!(out.len(), 7);
        assert!(out.iter().all(|s| s.support == 3));
    }
}
