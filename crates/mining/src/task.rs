//! [`MineTask`] — one mining invocation, independent of where it runs.
//!
//! Every extraction path in the engine ends in the same shape of call:
//! *mine this transaction set at this support with this algorithm, all
//! or maximal-only, in this execution context*. Before this module each
//! algorithm carried its own `*_par` / `*_exec` wrapper pair and
//! [`MinerKind`] duplicated the whole matrix again; `MineTask` folds the
//! what (algorithm, mode, support, input) into one value whose
//! [`run`](MineTask::run) takes the where ([`Exec`]) — so there is
//! exactly one dispatch point from task description to algorithm, and
//! the engine's callers (pipeline, sharded extractor, streaming engine,
//! CLI) all describe work the same way.
//!
//! The historical `*_par` free functions survive as documented
//! compatibility shims at the bottom of this module — one place, thin
//! delegations to the `*_exec` entry points — so existing callers keep
//! compiling while the `*_exec` functions remain the single parallel
//! entry point per algorithm.

use std::num::NonZeroUsize;

use crate::apriori::{apriori_exec, AprioriConfig, AprioriOutput, LevelStats};
use crate::eclat::eclat_exec;
use crate::fpgrowth::fpgrowth_exec;
use crate::itemset::ItemSet;
use crate::maximal::filter_maximal;
use crate::miner::MinerKind;
use crate::par::Exec;
use crate::rules::{generate_rules, RuleConfig, RuleSet};
use crate::transaction::{Transaction, TransactionSet};

/// A fully described mining invocation: which algorithm, over which
/// transactions, at which support, producing all or only maximal
/// frequent item-sets. Execute with [`run`](MineTask::run) in any
/// [`Exec`] context — the output is **bit-identical** across contexts
/// for every task, which is what makes the engine free to move mining
/// between inline, scoped-thread, and pool execution per call site.
#[derive(Debug, Clone, Copy)]
pub struct MineTask<'a> {
    set: &'a TransactionSet,
    kind: MinerKind,
    min_support: u64,
    maximal: bool,
}

impl<'a> MineTask<'a> {
    /// Describe mining **all** frequent item-sets.
    #[must_use]
    pub fn all(kind: MinerKind, set: &'a TransactionSet, min_support: u64) -> Self {
        MineTask {
            set,
            kind,
            min_support,
            maximal: false,
        }
    }

    /// Describe mining only **maximal** frequent item-sets — the paper's
    /// modified output (§II-B).
    #[must_use]
    pub fn maximal(kind: MinerKind, set: &'a TransactionSet, min_support: u64) -> Self {
        MineTask {
            set,
            kind,
            min_support,
            maximal: true,
        }
    }

    /// The algorithm this task dispatches to.
    #[must_use]
    pub fn kind(&self) -> MinerKind {
        self.kind
    }

    /// The minimum-support threshold.
    #[must_use]
    pub fn min_support(&self) -> u64 {
        self.min_support
    }

    /// Whether the output is restricted to maximal item-sets.
    #[must_use]
    pub fn is_maximal(&self) -> bool {
        self.maximal
    }

    /// Run the task in the given execution context, returning the
    /// canonically ordered item-sets.
    ///
    /// # Panics
    ///
    /// Panics if the task's `min_support` is zero.
    #[must_use]
    pub fn run(&self, exec: Exec<'_>) -> Vec<ItemSet> {
        match self.kind {
            MinerKind::Apriori => self.run_apriori(exec).itemsets,
            MinerKind::FpGrowth => {
                let all = fpgrowth_exec(self.set, self.min_support, exec);
                if self.maximal {
                    filter_maximal(all)
                } else {
                    all
                }
            }
            MinerKind::Eclat => {
                let all = eclat_exec(self.set, self.min_support, exec);
                if self.maximal {
                    filter_maximal(all)
                } else {
                    all
                }
            }
        }
    }

    /// Run the task as Apriori regardless of [`kind`](Self::kind),
    /// returning the full [`AprioriOutput`] — the entry point for
    /// callers that need the per-level audit trail (§II-B Table II).
    ///
    /// # Panics
    ///
    /// Panics if the task's `min_support` is zero.
    #[must_use]
    pub fn run_apriori(&self, exec: Exec<'_>) -> AprioriOutput {
        let config = AprioriConfig {
            min_support: self.min_support,
            maximal_only: self.maximal,
        };
        apriori_exec(self.set, &config, exec)
    }

    /// Run the task with the association-rule layer on top: mine **all**
    /// frequent item-sets once at [`RuleConfig::mining_floor`] (the
    /// task's `min_support` normally; the rare per-level floor at the
    /// widest transaction in rare mode), derive the maximal item-sets at
    /// the task's `min_support` from that single run (exact by downward
    /// closure — no second mining pass), and generate, filter and rank
    /// rules from the counted supports via
    /// [`generate_rules`].
    ///
    /// The [`RuleMineOutput::itemsets`] equal what
    /// [`run`](Self::run) in maximal mode returns, and for Apriori the
    /// level audit trail is carried over (with maximal counters filled
    /// in), so enabling rules never changes the item-set report.
    ///
    /// # Panics
    ///
    /// Panics if the task's `min_support` is zero.
    #[must_use]
    pub fn run_with_rules(&self, rules: &RuleConfig, exec: Exec<'_>) -> RuleMineOutput {
        let width = self
            .set
            .transactions()
            .iter()
            .map(Transaction::width)
            .max()
            .unwrap_or(0);
        if width == 0 {
            return RuleMineOutput {
                itemsets: Vec::new(),
                levels: Vec::new(),
                rules: RuleSet::empty(),
            };
        }
        let floor = rules.mining_floor(self.min_support, width);
        let (all, mut levels) = match self.kind {
            MinerKind::Apriori => {
                let out = apriori_exec(self.set, &AprioriConfig::all_frequent(floor), exec);
                (out.itemsets, out.levels)
            }
            _ => (
                MineTask::all(self.kind, self.set, floor).run(exec),
                Vec::new(),
            ),
        };
        let at_support: Vec<ItemSet> = all
            .iter()
            .filter(|s| s.support >= self.min_support)
            .cloned()
            .collect();
        let itemsets = filter_maximal(at_support);
        for set in &itemsets {
            if let Some(stats) = levels.get_mut(set.len() - 1) {
                stats.maximal += 1;
            }
        }
        let ranked = generate_rules(&all, self.set.len() as u64, self.min_support, rules, exec);
        RuleMineOutput {
            itemsets,
            levels,
            rules: ranked,
        }
    }
}

/// What [`MineTask::run_with_rules`] produces: the maximal item-set
/// report at the task's support, the Apriori level audit trail (empty
/// for other miners), and the ranked rule population.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleMineOutput {
    /// Maximal frequent item-sets at the task's `min_support`, in
    /// canonical order — identical to the rule-free maximal run.
    pub itemsets: Vec<ItemSet>,
    /// Apriori per-level statistics of the mining pass actually run
    /// (at the rule mining floor, which equals `min_support` outside
    /// rare mode); empty for FP-growth and Eclat.
    pub levels: Vec<LevelStats>,
    /// The generated, filtered, z-score-ranked rules.
    pub rules: RuleSet,
}

// --- Compatibility shims -------------------------------------------------
//
// The pre-`MineTask` parallel entry points, kept in this one place as
// thin delegations so the `*_exec` functions are the single parallel
// entry point per algorithm. Prefer `*_exec` (or `MineTask::run`) in new
// code; these exist for source compatibility with earlier callers.

/// Run Apriori with support counting parallelized over transaction
/// chunks on up to `threads` scoped worker threads — a compatibility
/// shim for [`apriori_exec`] with [`Exec::Threads`].
///
/// # Panics
///
/// Panics if `config.min_support` is zero.
#[must_use]
pub fn apriori_par(
    set: &TransactionSet,
    config: &AprioriConfig,
    threads: NonZeroUsize,
) -> AprioriOutput {
    apriori_exec(set, config, Exec::Threads(threads))
}

/// FP-growth with the support-counting scan parallelized over
/// transaction chunks on up to `threads` scoped worker threads — a
/// compatibility shim for [`fpgrowth_exec`] with [`Exec::Threads`].
///
/// # Panics
///
/// Panics if `min_support` is zero.
#[must_use]
pub fn fpgrowth_par(set: &TransactionSet, min_support: u64, threads: NonZeroUsize) -> Vec<ItemSet> {
    fpgrowth_exec(set, min_support, Exec::Threads(threads))
}

/// Eclat with tid-list construction parallelized over transaction
/// chunks on up to `threads` scoped worker threads — a compatibility
/// shim for [`eclat_exec`] with [`Exec::Threads`].
///
/// # Panics
///
/// Panics if `min_support` is zero.
#[must_use]
pub fn eclat_par(set: &TransactionSet, min_support: u64, threads: NonZeroUsize) -> Vec<ItemSet> {
    eclat_exec(set, min_support, Exec::Threads(threads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Item;
    use crate::transaction::Transaction;
    use anomex_netflow::FlowFeature;

    fn sample() -> TransactionSet {
        let mut set = TransactionSet::new();
        for i in 0..12u64 {
            let t = Transaction::from_items(&[
                Item::new(FlowFeature::DstPort, 80 + i % 2),
                Item::new(FlowFeature::Proto, 6),
                Item::new(FlowFeature::Packets, i % 3),
            ])
            .unwrap();
            set.push(t);
        }
        set
    }

    #[test]
    fn task_matches_direct_calls_for_every_kind_and_mode() {
        let set = sample();
        for kind in MinerKind::ALL {
            let all = MineTask::all(kind, &set, 3).run(Exec::inline());
            assert_eq!(all, kind.mine_all(&set, 3), "{kind} all");
            let max = MineTask::maximal(kind, &set, 3).run(Exec::inline());
            assert_eq!(max, kind.mine_maximal(&set, 3), "{kind} maximal");
        }
    }

    #[test]
    fn apriori_audit_trail_is_reachable_through_the_task() {
        let set = sample();
        let out = MineTask::maximal(MinerKind::Apriori, &set, 3).run_apriori(Exec::inline());
        assert!(!out.levels.is_empty());
        assert!(out.passes >= 1);
    }

    #[test]
    fn shims_delegate_to_exec() {
        let set = sample();
        let threads = NonZeroUsize::new(3).unwrap();
        assert_eq!(
            apriori_par(&set, &AprioriConfig::all_frequent(3), threads).itemsets,
            MineTask::all(MinerKind::Apriori, &set, 3).run(Exec::inline()),
        );
        assert_eq!(
            fpgrowth_par(&set, 3, threads),
            crate::fpgrowth::fpgrowth(&set, 3)
        );
        assert_eq!(eclat_par(&set, 3, threads), crate::eclat::eclat(&set, 3));
    }

    #[test]
    fn rule_run_reproduces_the_maximal_report_and_ranks_rules() {
        let set = sample();
        let loose = RuleConfig {
            min_confidence: 0.0,
            min_lift: 0.0,
            rare: false,
        };
        for kind in MinerKind::ALL {
            let out = MineTask::maximal(kind, &set, 3).run_with_rules(&loose, Exec::inline());
            assert_eq!(
                out.itemsets,
                MineTask::maximal(kind, &set, 3).run(Exec::inline()),
                "{kind}: enabling rules must not change the item-set report"
            );
            assert!(!out.rules.is_empty(), "{kind}");
            assert_eq!(out.rules.transactions, set.len() as u64);
        }
        let legacy = MineTask::maximal(MinerKind::Apriori, &set, 3).run_apriori(Exec::inline());
        let with_rules =
            MineTask::maximal(MinerKind::Apriori, &set, 3).run_with_rules(&loose, Exec::inline());
        assert_eq!(with_rules.levels, legacy.levels, "audit trail carried over");
    }

    #[test]
    fn rule_run_on_an_empty_set_is_empty() {
        let set = TransactionSet::new();
        let out = MineTask::maximal(MinerKind::Apriori, &set, 1)
            .run_with_rules(&RuleConfig::default(), Exec::inline());
        assert!(out.itemsets.is_empty());
        assert!(out.levels.is_empty());
        assert!(out.rules.is_empty());
    }

    #[test]
    fn accessors_reflect_the_description() {
        let set = sample();
        let task = MineTask::maximal(MinerKind::Eclat, &set, 7);
        assert_eq!(task.kind(), MinerKind::Eclat);
        assert_eq!(task.min_support(), 7);
        assert!(task.is_maximal());
        assert!(!MineTask::all(MinerKind::Eclat, &set, 7).is_maximal());
    }
}
