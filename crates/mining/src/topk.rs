//! Top-k item-set mining (paper §V future work, §II-E practice).
//!
//! The paper's §II-E recommends: "select a very low s that will generate a
//! large number of item-sets … rank by frequency … keep only the top
//! item-sets according to the frequency ranking, e.g., the top 10 or top
//! 20". This module automates that loop: it searches for the largest
//! support threshold that still yields at least `k` maximal item-sets, so
//! the operator chooses a *report size* instead of a support value.

use crate::itemset::ItemSet;
use crate::miner::MinerKind;
use crate::transaction::TransactionSet;

/// Result of a top-k mining run.
#[derive(Debug, Clone)]
pub struct TopK {
    /// The top item-sets, ranked by descending support (ties: canonical
    /// order), truncated to `k`.
    pub itemsets: Vec<ItemSet>,
    /// The support threshold that produced the final mining round.
    pub effective_support: u64,
    /// Mining rounds executed (the §II-E "2–3 trials" loop, automated).
    pub rounds: usize,
}

/// Mine the `k` most frequent maximal item-sets.
///
/// Starts from `start_support` (e.g. 1–10 % of the input size, the
/// paper's rule of thumb) and halves it until at least `k` maximal
/// item-sets qualify or the support reaches 1. This mirrors the paper's
/// "start with a high s and progressively decrease it" guidance.
///
/// # Panics
///
/// Panics if `k` is zero or `start_support` is zero.
#[must_use]
pub fn mine_top_k(set: &TransactionSet, miner: MinerKind, k: usize, start_support: u64) -> TopK {
    assert!(k >= 1, "k must be at least 1");
    assert!(start_support >= 1, "starting support must be at least 1");
    let mut support = start_support;
    let mut rounds = 0;
    loop {
        rounds += 1;
        let mut itemsets = miner.mine_maximal(set, support);
        if itemsets.len() >= k || support == 1 {
            itemsets.sort_by(|a, b| b.support.cmp(&a.support).then_with(|| a.cmp(b)));
            itemsets.truncate(k);
            return TopK {
                itemsets,
                effective_support: support,
                rounds,
            };
        }
        support = (support / 2).max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Item;
    use crate::transaction::Transaction;
    use anomex_netflow::FlowFeature;

    fn tx(port: u64, n: usize, set: &mut TransactionSet) {
        for _ in 0..n {
            set.push(
                Transaction::from_items(&[
                    Item::new(FlowFeature::DstPort, port),
                    Item::new(FlowFeature::Proto, 6),
                ])
                .unwrap(),
            );
        }
    }

    fn sample() -> TransactionSet {
        let mut set = TransactionSet::new();
        tx(80, 100, &mut set);
        tx(443, 50, &mut set);
        tx(25, 20, &mut set);
        tx(22, 5, &mut set);
        set
    }

    #[test]
    fn finds_the_top_sets_ranked_by_support() {
        let top = mine_top_k(&sample(), MinerKind::FpGrowth, 2, 1000);
        assert_eq!(top.itemsets.len(), 2);
        // {proto=6} (support 175) is NOT maximal once the pairs qualify, so
        // the top sets are the two heaviest (port, proto) pairs.
        assert_eq!(top.itemsets[0].support, 100);
        assert!(top.itemsets[0].to_string().contains("dstPort=80"));
        assert_eq!(top.itemsets[1].support, 50);
        assert!(top.itemsets[1].to_string().contains("dstPort=443"));
    }

    #[test]
    fn halves_support_until_enough_itemsets() {
        let top = mine_top_k(&sample(), MinerKind::Apriori, 3, 1000);
        assert!(top.rounds > 1, "had to lower the support");
        assert_eq!(top.itemsets.len(), 3);
        // Ranked descending.
        for w in top.itemsets.windows(2) {
            assert!(w[0].support >= w[1].support);
        }
    }

    #[test]
    fn support_floor_returns_what_exists() {
        // Ask for more item-sets than the data can produce.
        let top = mine_top_k(&sample(), MinerKind::Eclat, 50, 8);
        assert_eq!(top.effective_support, 1);
        assert!(top.itemsets.len() < 50);
        assert!(!top.itemsets.is_empty());
    }

    #[test]
    fn k_one_returns_single_heaviest() {
        let top = mine_top_k(&sample(), MinerKind::FpGrowth, 1, 10);
        assert_eq!(top.itemsets.len(), 1);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_panics() {
        let _ = mine_top_k(&sample(), MinerKind::Apriori, 0, 10);
    }

    #[test]
    fn miners_agree_on_top_k() {
        let set = sample();
        let a = mine_top_k(&set, MinerKind::Apriori, 3, 64);
        let f = mine_top_k(&set, MinerKind::FpGrowth, 3, 64);
        let e = mine_top_k(&set, MinerKind::Eclat, 3, 64);
        assert_eq!(a.itemsets, f.itemsets);
        assert_eq!(f.itemsets, e.itemsets);
        assert_eq!(a.effective_support, f.effective_support);
    }
}
