//! Deterministic parallel map over transaction chunks.
//!
//! Every support-counting pass in this crate — Apriori's level-1 and
//! level-k counts, FP-growth's first scan, Eclat's tid-list construction
//! — is a sum over transactions, so it can run as: split the transaction
//! slice into balanced contiguous chunks
//! ([`anomex_netflow::shard::chunk_ranges`]), map each chunk on its own
//! worker thread, and reduce the per-chunk results **in chunk order** on
//! the calling thread. Integer-count reductions are order-independent and
//! exact, and ordered reductions (tid-list concatenation) see chunks in
//! slice order, so the parallel passes are bit-identical to the
//! sequential ones for every thread count — the engine's load-bearing
//! determinism guarantee.

use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::Arc;

use anomex_netflow::shard::{chunk_ranges, chunks_of};
use crossbeam::WorkerPool;

pub use crossbeam::{TreeJob, TreeScope};

/// Minimum number of items per worker before a parallel pass is worth its
/// thread spawns: below this, counting a chunk is faster than starting a
/// thread for it, so the pass runs inline.
pub const MIN_ITEMS_PER_THREAD: usize = 1024;

/// Map balanced contiguous chunks of `items` in parallel, returning the
/// per-chunk results **in chunk order**.
///
/// The mapper receives each chunk's starting index in `items` plus the
/// chunk itself, so chunk-relative positions can be rebased to global
/// ones (Eclat's transaction ids). Runs inline — no threads — when
/// `threads` is 1 or the input is too small to amortize spawning; the
/// result is identical either way, only the wall-clock differs.
///
/// # Panics
///
/// Propagates a panic from the mapper (on the calling thread).
pub fn map_chunks<T, R, F>(items: &[T], threads: NonZeroUsize, map: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    if threads.get() == 1 || items.len() < 2 * MIN_ITEMS_PER_THREAD {
        return vec![map(0, items)];
    }
    let workers = threads.get().min(items.len() / MIN_ITEMS_PER_THREAD).max(2);
    let chunks = chunks_of(items, NonZeroUsize::new(workers).expect("workers >= 2"));
    let map = &map;
    crossbeam::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|(start, chunk)| s.spawn(move |_| map(start, chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
    .expect("scoped worker threads failed to join")
}

/// Where a deterministic parallel pass runs its chunks.
///
/// The two variants produce **bit-identical results** — every merge in
/// the engine is an exact integer sum, a set union, or an in-order
/// concatenation — and differ only in execution cost:
///
/// - [`Exec::Threads`] spawns scoped threads per pass (and runs inline at
///   one thread) — right for one-shot batch calls;
/// - [`Exec::Pool`] submits the chunks as jobs to a persistent
///   [`WorkerPool`] — right for the streaming hot loop, where paying a
///   thread spawn per pass per interval would dominate small intervals.
#[derive(Debug, Clone, Copy)]
pub enum Exec<'p> {
    /// Scoped worker threads spawned for the duration of the pass
    /// (inline when 1).
    Threads(NonZeroUsize),
    /// Jobs on a long-lived worker pool.
    Pool(&'p WorkerPool),
}

impl Exec<'_> {
    /// Run everything inline on the calling thread.
    #[must_use]
    pub fn inline() -> Exec<'static> {
        Exec::Threads(NonZeroUsize::MIN)
    }

    /// The parallelism this context offers.
    #[must_use]
    pub fn width(&self) -> usize {
        match self {
            Exec::Threads(n) => n.get(),
            Exec::Pool(pool) => pool.threads(),
        }
    }
}

/// [`map_chunks`] over shared (`Arc`-owned) items: the execution-context
/// flavor used by every pass of the extraction engine.
///
/// The mapper must be `'static` because under [`Exec::Pool`] each chunk
/// becomes an owned job on threads that outlive the call — capture
/// `Arc` handles, not references. Per-chunk results are returned **in
/// chunk order** for every context, and small inputs run inline exactly
/// as in [`map_chunks`], so the output is bit-identical across all
/// execution contexts and thread counts.
///
/// # Panics
///
/// Propagates a panic from the mapper on the calling thread.
pub fn map_chunks_arc<T, R, F>(exec: Exec<'_>, items: &Arc<Vec<T>>, map: F) -> Vec<R>
where
    T: Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(usize, &[T]) -> R + Send + Sync + 'static,
{
    if items.is_empty() {
        return Vec::new();
    }
    let width = exec.width();
    if width == 1 || items.len() < 2 * MIN_ITEMS_PER_THREAD {
        return vec![map(0, items)];
    }
    let workers = width.min(items.len() / MIN_ITEMS_PER_THREAD).max(2);
    let workers = NonZeroUsize::new(workers).expect("workers >= 2");
    match exec {
        Exec::Threads(_) => map_chunks(items, workers, map),
        Exec::Pool(pool) => {
            let map = Arc::new(map);
            let jobs: Vec<Box<dyn FnOnce() -> R + Send>> = chunk_ranges(items.len(), workers)
                .into_iter()
                .map(|range| {
                    let items = Arc::clone(items);
                    let map = Arc::clone(&map);
                    Box::new(move || map(range.start, &items[range])) as Box<_>
                })
                .collect();
            pool.run_ordered(jobs)
        }
    }
}

/// [`map_chunks_arc`] for data that is not a slice: map balanced
/// contiguous **index ranges** of a shared container in parallel,
/// returning the per-range results **in range order**.
///
/// This is how columnar stores
/// ([`anomex_netflow::FlowColumns`](anomex_netflow::columns::FlowColumns))
/// ride the engine's parallel passes: the container is shared behind an
/// `Arc`, each worker receives `(&container, range)` and walks only the
/// columns it needs over its rows. The ranges are exactly
/// [`chunk_ranges`]`(len, workers)` — the same single source of truth
/// that splits record slices — so columnar and record passes shard an
/// interval at identical boundaries. Worker-count and inline rules are
/// those of [`map_chunks_arc`]: inline when the context width is 1 or
/// `len < 2 ×` [`MIN_ITEMS_PER_THREAD`], else
/// `width.min(len / MIN_ITEMS_PER_THREAD).max(2)` workers.
///
/// # Panics
///
/// Propagates a panic from the mapper on the calling thread.
pub fn map_ranges_arc<C, R, F>(exec: Exec<'_>, data: &Arc<C>, len: usize, map: F) -> Vec<R>
where
    C: Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(&C, Range<usize>) -> R + Send + Sync + 'static,
{
    if len == 0 {
        return Vec::new();
    }
    let width = exec.width();
    if width == 1 || len < 2 * MIN_ITEMS_PER_THREAD {
        return vec![map(data, 0..len)];
    }
    let workers = width.min(len / MIN_ITEMS_PER_THREAD).max(2);
    let workers = NonZeroUsize::new(workers).expect("workers >= 2");
    let ranges = chunk_ranges(len, workers);
    match exec {
        Exec::Threads(_) => {
            let map = &map;
            let data = &**data;
            crossbeam::scope(|s| {
                let handles: Vec<_> = ranges
                    .into_iter()
                    .map(|range| s.spawn(move |_| map(data, range)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(r) => r,
                        Err(payload) => std::panic::resume_unwind(payload),
                    })
                    .collect()
            })
            .expect("scoped worker threads failed to join")
        }
        Exec::Pool(pool) => {
            let map = Arc::new(map);
            let jobs: Vec<Box<dyn FnOnce() -> R + Send>> = ranges
                .into_iter()
                .map(|range| {
                    let data = Arc::clone(data);
                    let map = Arc::clone(&map);
                    Box::new(move || map(&data, range)) as Box<_>
                })
                .collect();
            pool.run_ordered(jobs)
        }
    }
}

/// Run a fork/join tree of mining tasks in the given execution context,
/// returning every task's result **in spawn order** (pre-order over the
/// task tree).
///
/// Under [`Exec::Pool`] with more than one worker the tree runs as pool
/// tasks ([`WorkerPool::run_tree`]): jobs fork children onto the shared
/// deque, forks never block, and results merge by spawn path — so the
/// recursive search phases (Apriori's level-k join+prune blocks,
/// FP-growth's conditional trees, Eclat's prefix branches) share the
/// engine's one pool with the flat counting passes, without
/// oversubscription. In every other context the tree executes
/// sequentially on the calling thread ([`crossbeam::run_tree_inline`])
/// with the same result contract, so the output is **bit-identical**
/// across all contexts; only the wall-clock differs. Jobs read
/// [`TreeScope::width`] to decide whether forking is worth a queue
/// operation (1 under sequential execution — don't fork).
///
/// # Panics
///
/// Propagates a panic from a tree job on the calling thread; pool
/// workers survive it.
#[must_use]
pub fn run_tree_exec<R: Send + 'static>(exec: Exec<'_>, roots: Vec<TreeJob<R>>) -> Vec<R> {
    match exec {
        Exec::Pool(pool) if pool.threads() > 1 => pool.run_tree(roots),
        _ => crossbeam::run_tree_inline(roots),
    }
}

/// Per-task dispatch overhead assumed when a pool has not measured its
/// own ([`WorkerPool::calibrate_dispatch_overhead`]): a queue push, a
/// wakeup, and the tree bookkeeping, as recorded on the development
/// container. Chosen so that on an idle executor the fork cut-offs
/// reproduce the fixed PR 5 thresholds (64 join sets, 64
/// conditional-tree nodes, 1024 tids) that the determinism suites were
/// tuned against.
pub const DEFAULT_DISPATCH_OVERHEAD_NS: u64 = 20_000;

/// What a prospective fork would spend its time on — the unit-cost table
/// of the fork cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkKind {
    /// Apriori level-k candidate join: units are frequent sets in the
    /// current level (each joined against its prefix group and pruned).
    JoinSets,
    /// FP-growth conditional mining: units are arena nodes of the
    /// (conditional) tree to walk.
    TreeNodes,
    /// Eclat lattice branch: units are transaction ids in the branch's
    /// tid-list (each intersected per extension).
    TidEntries,
}

impl WorkKind {
    /// Estimated nanoseconds of mining work per unit. Calibrated against
    /// the PR 5 thresholds: ~overhead/64 for set- and node-walk work,
    /// ~overhead/1024 for tid intersections.
    #[must_use]
    pub const fn unit_ns(self) -> u64 {
        match self {
            WorkKind::JoinSets | WorkKind::TreeNodes => 313,
            WorkKind::TidEntries => 20,
        }
    }
}

/// The shared fork cost model: fork only when the estimated work of the
/// subtask is worth at least K× the per-task dispatch overhead, with K
/// doubling for every task already sitting in the forking worker's own
/// deque (capped at 2⁶) — a saturated pool stops fine-graining, an idle
/// one forks eagerly.
///
/// The **decision** is adaptive (it reads live queue depth), but the
/// **result** is not: `run_tree` merges by spawn path, Apriori sorts
/// each level after counting, and FP-growth/Eclat sort their flattened
/// output — so any fork granularity yields bit-identical mining output.
/// That invariance is what makes a live-load-adaptive policy safe under
/// the exec-equivalence suites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForkPolicy {
    overhead_ns: u64,
}

impl Default for ForkPolicy {
    /// The recorded-constant policy ([`DEFAULT_DISPATCH_OVERHEAD_NS`]).
    fn default() -> Self {
        ForkPolicy {
            overhead_ns: DEFAULT_DISPATCH_OVERHEAD_NS,
        }
    }
}

impl ForkPolicy {
    /// A policy with an explicit per-task overhead (nanoseconds).
    #[must_use]
    pub const fn with_overhead_ns(overhead_ns: u64) -> Self {
        ForkPolicy { overhead_ns }
    }

    /// The policy for an execution context: a pool's own calibrated
    /// dispatch overhead when it has one, the recorded constant
    /// otherwise (uncalibrated pools, scoped threads, inline).
    #[must_use]
    pub fn for_exec(exec: &Exec<'_>) -> Self {
        match exec {
            Exec::Pool(pool) => {
                let measured = pool.dispatch_overhead_ns();
                if measured > 0 {
                    ForkPolicy {
                        overhead_ns: measured,
                    }
                } else {
                    ForkPolicy::default()
                }
            }
            Exec::Threads(_) => ForkPolicy::default(),
        }
    }

    /// The per-task dispatch overhead this policy amortizes against.
    #[must_use]
    pub const fn overhead_ns(&self) -> u64 {
        self.overhead_ns
    }

    /// The core decision at an explicit width and live queue depth:
    /// `units × unit_ns ≥ overhead × 2^min(depth, 6)`, and never fork at
    /// width 1.
    #[must_use]
    pub fn should_fork_at(
        &self,
        width: usize,
        queue_depth: usize,
        units: usize,
        kind: WorkKind,
    ) -> bool {
        if width <= 1 {
            return false;
        }
        let work = (units as u64).saturating_mul(kind.unit_ns());
        let k = 1u64 << queue_depth.min(6);
        work >= self.overhead_ns.saturating_mul(k)
    }

    /// The decision from inside a tree task, reading width and live
    /// local-deque depth from its scope.
    #[must_use]
    pub fn should_fork<R: Send + 'static>(
        &self,
        scope: &TreeScope<'_, R>,
        units: usize,
        kind: WorkKind,
    ) -> bool {
        scope.width() > 1 && self.should_fork_at(scope.width(), scope.queue_depth(), units, kind)
    }
}

/// Sum per-chunk `u64` count vectors element-wise into the first one —
/// the reduce step for index-aligned support counting. Returns an empty
/// vector if there are no parts.
#[must_use]
pub fn sum_count_vecs(parts: Vec<Vec<u64>>) -> Vec<u64> {
    let mut parts = parts.into_iter();
    let Some(mut total) = parts.next() else {
        return Vec::new();
    };
    for part in parts {
        debug_assert_eq!(total.len(), part.len());
        for (t, p) in total.iter_mut().zip(part) {
            *t += p;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nz(n: usize) -> NonZeroUsize {
        NonZeroUsize::new(n).unwrap()
    }

    #[test]
    fn chunk_results_arrive_in_order() {
        let data: Vec<u64> = (0..10_000).collect();
        for threads in [1usize, 2, 3, 8] {
            let parts = map_chunks(&data, nz(threads), |start, chunk| (start, chunk.len()));
            let mut next = 0;
            for (start, len) in parts {
                assert_eq!(start, next, "threads={threads}");
                next = start + len;
            }
            assert_eq!(next, data.len());
        }
    }

    #[test]
    fn parallel_sum_matches_sequential() {
        let data: Vec<u64> = (0..50_000).map(|i| i % 97).collect();
        let expected: u64 = data.iter().sum();
        for threads in 1..=8 {
            let total: u64 = map_chunks(&data, nz(threads), |_, chunk| chunk.iter().sum::<u64>())
                .into_iter()
                .sum();
            assert_eq!(total, expected, "threads={threads}");
        }
    }

    #[test]
    fn small_inputs_run_inline_as_one_chunk() {
        let data: Vec<u64> = (0..100).collect();
        let parts = map_chunks(&data, nz(8), |start, chunk| (start, chunk.len()));
        assert_eq!(parts, vec![(0, 100)]);
    }

    #[test]
    fn empty_input_yields_no_parts() {
        let parts = map_chunks(&[] as &[u64], nz(4), |_, _| 0u64);
        assert!(parts.is_empty());
    }

    #[test]
    fn arc_chunks_match_scoped_chunks_for_every_context() {
        let data: Arc<Vec<u64>> = Arc::new((0..30_000).map(|i| i % 89).collect());
        let reference: Vec<u64> = map_chunks(&data, nz(4), |_, chunk| chunk.iter().sum::<u64>());
        let reference_total: u64 = reference.into_iter().sum();
        let pool = WorkerPool::new(nz(4));
        for exec in [
            Exec::inline(),
            Exec::Threads(nz(4)),
            Exec::Threads(nz(7)),
            Exec::Pool(&pool),
        ] {
            let total: u64 = map_chunks_arc(exec, &data, |_, chunk| chunk.iter().sum::<u64>())
                .into_iter()
                .sum();
            assert_eq!(total, reference_total, "{exec:?}");
        }
    }

    #[test]
    fn arc_chunks_arrive_in_order_on_the_pool() {
        let data: Arc<Vec<u64>> = Arc::new((0..10_000).collect());
        let pool = WorkerPool::new(nz(3));
        let parts = map_chunks_arc(Exec::Pool(&pool), &data, |start, chunk| {
            (start, chunk.len())
        });
        let mut next = 0;
        for (start, len) in parts {
            assert_eq!(start, next);
            next = start + len;
        }
        assert_eq!(next, data.len());
    }

    #[test]
    fn arc_small_inputs_run_inline_without_touching_the_pool() {
        let data: Arc<Vec<u64>> = Arc::new((0..100).collect());
        let pool = WorkerPool::new(nz(4));
        let parts = map_chunks_arc(Exec::Pool(&pool), &data, |start, chunk| {
            (start, chunk.len())
        });
        assert_eq!(parts, vec![(0, 100)]);
        assert_eq!(Arc::strong_count(&data), 1, "no job kept a handle");
    }

    #[test]
    fn range_walks_split_exactly_at_chunk_range_boundaries() {
        // The dedup-chunking contract: a columnar range walk and a record
        // chunk walk of the same length shard at identical boundaries,
        // because both delegate to `chunk_ranges`.
        let len = 10_000usize;
        let data: Arc<Vec<u64>> = Arc::new((0..len as u64).collect());
        let pool = WorkerPool::new(nz(3));
        for exec in [Exec::Threads(nz(3)), Exec::Pool(&pool)] {
            let seen: Vec<Range<usize>> = map_ranges_arc(exec, &data, len, |_, range| range);
            let workers = exec.width().min(len / MIN_ITEMS_PER_THREAD).max(2);
            let expected = chunk_ranges(len, nz(workers));
            assert_eq!(seen, expected, "{exec:?}");
            let chunks = map_chunks_arc(exec, &data, |start, chunk| start..start + chunk.len());
            assert_eq!(seen, chunks, "record chunks split identically ({exec:?})");
        }
    }

    #[test]
    fn range_walk_sums_match_chunk_sums_for_every_context() {
        let data: Arc<Vec<u64>> = Arc::new((0..30_000).map(|i| i % 89).collect());
        let expected: u64 = data.iter().sum();
        let pool = WorkerPool::new(nz(4));
        for exec in [
            Exec::inline(),
            Exec::Threads(nz(4)),
            Exec::Threads(nz(7)),
            Exec::Pool(&pool),
        ] {
            let total: u64 = map_ranges_arc(exec, &data, data.len(), |d, range| {
                d[range].iter().sum::<u64>()
            })
            .into_iter()
            .sum();
            assert_eq!(total, expected, "{exec:?}");
        }
    }

    #[test]
    fn range_walk_small_inputs_run_inline() {
        let data: Arc<Vec<u64>> = Arc::new((0..100).collect());
        let pool = WorkerPool::new(nz(4));
        let parts = map_ranges_arc(Exec::Pool(&pool), &data, data.len(), |_, range| range);
        assert_eq!(parts, vec![0..100]);
        assert_eq!(Arc::strong_count(&data), 1, "no job kept a handle");
        assert!(map_ranges_arc(Exec::inline(), &data, 0, |_, r| r).is_empty());
    }

    #[test]
    fn sum_count_vecs_adds_elementwise() {
        let parts = vec![vec![1u64, 2, 3], vec![10, 20, 30], vec![100, 200, 300]];
        assert_eq!(sum_count_vecs(parts), vec![111, 222, 333]);
        assert!(sum_count_vecs(Vec::new()).is_empty());
    }

    #[test]
    fn default_policy_reproduces_the_recorded_thresholds_when_idle() {
        let policy = ForkPolicy::default();
        // The PR 5 fixed cut-offs, on an idle (depth-0) multi-worker
        // executor: 64 sets / 64 nodes / ~1024 tids.
        assert!(policy.should_fork_at(4, 0, 64, WorkKind::JoinSets));
        assert!(!policy.should_fork_at(4, 0, 63, WorkKind::JoinSets));
        assert!(policy.should_fork_at(4, 0, 64, WorkKind::TreeNodes));
        assert!(policy.should_fork_at(4, 0, 1024, WorkKind::TidEntries));
        assert!(!policy.should_fork_at(4, 0, 512, WorkKind::TidEntries));
    }

    #[test]
    fn policy_never_forks_at_width_one() {
        let policy = ForkPolicy::default();
        assert!(!policy.should_fork_at(1, 0, usize::MAX, WorkKind::JoinSets));
    }

    #[test]
    fn queue_depth_doubles_the_required_work() {
        let policy = ForkPolicy::default();
        assert!(policy.should_fork_at(4, 0, 64, WorkKind::JoinSets));
        assert!(!policy.should_fork_at(4, 1, 64, WorkKind::JoinSets));
        assert!(policy.should_fork_at(4, 1, 128, WorkKind::JoinSets));
        // The exponent saturates at 2^6, so huge depths still fork huge
        // work instead of overflowing the comparison.
        assert!(policy.should_fork_at(4, 10_000, 1 << 20, WorkKind::JoinSets));
    }

    #[test]
    fn for_exec_prefers_the_pools_calibrated_overhead() {
        let pool = WorkerPool::new(nz(2));
        assert_eq!(
            ForkPolicy::for_exec(&Exec::Pool(&pool)).overhead_ns(),
            DEFAULT_DISPATCH_OVERHEAD_NS,
            "uncalibrated pool falls back to the recorded constant"
        );
        let measured = pool.calibrate_dispatch_overhead();
        assert_eq!(
            ForkPolicy::for_exec(&Exec::Pool(&pool)).overhead_ns(),
            measured
        );
        assert_eq!(
            ForkPolicy::for_exec(&Exec::Threads(nz(4))).overhead_ns(),
            DEFAULT_DISPATCH_OVERHEAD_NS
        );
    }
}
