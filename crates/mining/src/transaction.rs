//! Transactions and transaction sets.
//!
//! Each flow record maps to one transaction of width seven — one item per
//! traffic feature (paper §II-B). By construction a transaction never
//! carries two items of the same feature; [`Transaction::from_items`]
//! enforces this for hand-built transactions too.

use std::fmt;
use std::sync::Arc;

use anomex_netflow::{FlowColumns, FlowFeature, FlowRecord};

use crate::item::Item;

/// Maximum transaction width: the seven canonical flow features plus the
/// two /16 prefix dimensions of the extended (multilevel) mode.
pub const MAX_WIDTH: usize = 9;

/// Width of the paper's canonical transaction (§II-B).
pub const CANONICAL_WIDTH: usize = 7;

/// Error building a transaction from explicit items.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransactionError {
    /// Two items share the same feature (e.g., two destination ports).
    DuplicateFeature(FlowFeature),
    /// More than [`MAX_WIDTH`] items supplied.
    TooWide(usize),
}

impl fmt::Display for TransactionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransactionError::DuplicateFeature(feat) => {
                write!(f, "transaction has two items of feature {feat}")
            }
            TransactionError::TooWide(n) => {
                write!(
                    f,
                    "transaction has {n} items; the maximum width is {MAX_WIDTH}"
                )
            }
        }
    }
}

impl std::error::Error for TransactionError {}

/// A fixed-capacity, sorted set of items — one row of the mining input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Transaction {
    items: [Item; MAX_WIDTH],
    len: u8,
}

impl Transaction {
    /// Build the canonical width-7 transaction of a flow record:
    /// srcIP, dstIP, srcPort, dstPort, protocol, #packets, #bytes.
    #[must_use]
    pub fn from_flow(flow: &FlowRecord) -> Self {
        let mut items = [Item::new(FlowFeature::SrcIp, 0); MAX_WIDTH];
        for (slot, feat) in items.iter_mut().zip(FlowFeature::ALL) {
            let v = feat.value_of(flow);
            *slot = Item::new(feat, v.raw);
        }
        // FlowFeature::ALL is in index order and Item orders feature-major,
        // so the array is already sorted.
        Transaction {
            items,
            len: CANONICAL_WIDTH as u8,
        }
    }

    /// Build the width-9 *extended* transaction including the source and
    /// destination /16 prefixes — the paper's §III-D multilevel mining
    /// dimension for anomalies spread across network ranges.
    #[must_use]
    pub fn from_flow_extended(flow: &FlowRecord) -> Self {
        let mut items = [Item::new(FlowFeature::SrcIp, 0); MAX_WIDTH];
        for (slot, feat) in items.iter_mut().zip(FlowFeature::EXTENDED) {
            let v = feat.value_of(flow);
            *slot = Item::new(feat, v.raw);
        }
        Transaction {
            items,
            len: MAX_WIDTH as u8,
        }
    }

    /// Build a transaction from explicit items (sorted internally).
    ///
    /// # Errors
    ///
    /// [`TransactionError::TooWide`] for more than seven items and
    /// [`TransactionError::DuplicateFeature`] if two items share a feature.
    pub fn from_items(src: &[Item]) -> Result<Self, TransactionError> {
        if src.len() > MAX_WIDTH {
            return Err(TransactionError::TooWide(src.len()));
        }
        let mut items = [Item::new(FlowFeature::SrcIp, 0); MAX_WIDTH];
        items[..src.len()].copy_from_slice(src);
        let slice = &mut items[..src.len()];
        slice.sort_unstable();
        for pair in slice.windows(2) {
            if pair[0].feature() == pair[1].feature() {
                return Err(TransactionError::DuplicateFeature(pair[0].feature()));
            }
        }
        Ok(Transaction {
            items,
            len: src.len() as u8,
        })
    }

    /// The items, sorted ascending.
    #[must_use]
    pub fn items(&self) -> &[Item] {
        &self.items[..usize::from(self.len)]
    }

    /// Transaction width (number of items).
    #[must_use]
    pub fn width(&self) -> usize {
        usize::from(self.len)
    }

    /// Whether this transaction contains the given item.
    #[must_use]
    pub fn contains(&self, item: Item) -> bool {
        self.items().binary_search(&item).is_ok()
    }

    /// Whether this transaction contains every item of `itemset`
    /// (`itemset` must be sorted ascending — as all itemsets in this crate
    /// are).
    #[must_use]
    pub fn contains_all(&self, itemset: &[Item]) -> bool {
        // Both sides sorted: single merge pass.
        let mine = self.items();
        let mut i = 0;
        for &want in itemset {
            while i < mine.len() && mine[i] < want {
                i += 1;
            }
            if i == mine.len() || mine[i] != want {
                return false;
            }
            i += 1;
        }
        true
    }
}

/// The mining input: a bag of transactions.
///
/// The transactions are stored behind an [`Arc`] so parallel counting
/// passes can hand `'static` jobs to a persistent worker pool without
/// copying the set: each job clones the `Arc` and reads its chunk.
/// Mutation (`push`) uses copy-on-write semantics — it is free while the
/// set is unshared, which is the entire construction phase.
#[derive(Debug, Clone, Default)]
pub struct TransactionSet {
    transactions: Arc<Vec<Transaction>>,
}

impl TransactionSet {
    /// New, empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Map a slice of flows to their canonical transactions.
    #[must_use]
    pub fn from_flows(flows: &[FlowRecord]) -> Self {
        TransactionSet {
            transactions: Arc::new(flows.iter().map(Transaction::from_flow).collect()),
        }
    }

    /// Map a slice of flows to width-9 extended transactions (with /16
    /// prefix dimensions).
    #[must_use]
    pub fn from_flows_extended(flows: &[FlowRecord]) -> Self {
        TransactionSet {
            transactions: Arc::new(flows.iter().map(Transaction::from_flow_extended).collect()),
        }
    }

    /// Build canonical transactions for the flows selected by `indices` —
    /// the zero-copy pre-filter path: the pre-filter yields index slices
    /// into the interval and transactions are built straight from them,
    /// with no intermediate `Vec<FlowRecord>` materialization.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds for `flows`.
    #[must_use]
    pub fn from_flows_at(flows: &[FlowRecord], indices: &[usize]) -> Self {
        TransactionSet {
            transactions: Arc::new(
                indices
                    .iter()
                    .map(|&i| Transaction::from_flow(&flows[i]))
                    .collect(),
            ),
        }
    }

    /// [`from_flows_at`](Self::from_flows_at) for width-9 extended
    /// transactions (with /16 prefix dimensions).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds for `flows`.
    #[must_use]
    pub fn from_flows_extended_at(flows: &[FlowRecord], indices: &[usize]) -> Self {
        TransactionSet {
            transactions: Arc::new(
                indices
                    .iter()
                    .map(|&i| Transaction::from_flow_extended(&flows[i]))
                    .collect(),
            ),
        }
    }

    /// Build canonical transactions for the rows of a columnar store
    /// selected by `indices` — the struct-of-arrays counterpart of
    /// [`from_flows_at`](Self::from_flows_at). Items are gathered
    /// **column-wise**: slot `k` of every transaction is filled from
    /// feature `k`'s single column before moving to the next feature, so
    /// the pass reads one contiguous column at a time instead of striding
    /// over whole records. Bit-identical to the record path: the features
    /// are visited in [`FlowFeature::ALL`] order (already item-sorted)
    /// and the raw keys are exactly [`FlowFeature::value_of`]'s.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds for `cols`.
    #[must_use]
    pub fn from_columns_at(cols: &FlowColumns, indices: &[usize]) -> Self {
        Self::gather_columns(cols, indices, &FlowFeature::ALL)
    }

    /// [`from_columns_at`](Self::from_columns_at) for width-9 extended
    /// transactions (with /16 prefix dimensions).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds for `cols`.
    #[must_use]
    pub fn from_columns_extended_at(cols: &FlowColumns, indices: &[usize]) -> Self {
        Self::gather_columns(cols, indices, &FlowFeature::EXTENDED)
    }

    /// The column-wise gather shared by the columnar constructors:
    /// `features` must be in index order (as `ALL`/`EXTENDED` are), so
    /// every transaction's item array comes out sorted without a sort.
    fn gather_columns(cols: &FlowColumns, indices: &[usize], features: &[FlowFeature]) -> Self {
        let mut transactions = vec![
            Transaction {
                items: [Item::new(FlowFeature::SrcIp, 0); MAX_WIDTH],
                len: features.len() as u8,
            };
            indices.len()
        ];
        for (k, &feat) in features.iter().enumerate() {
            for (t, &i) in transactions.iter_mut().zip(indices) {
                t.items[k] = Item::new(feat, cols.raw_at(feat, i));
            }
        }
        TransactionSet {
            transactions: Arc::new(transactions),
        }
    }

    /// Build from explicit transactions.
    #[must_use]
    pub fn from_transactions(transactions: Vec<Transaction>) -> Self {
        TransactionSet {
            transactions: Arc::new(transactions),
        }
    }

    /// Add one transaction (copy-on-write when the set is shared).
    pub fn push(&mut self, t: Transaction) {
        Arc::make_mut(&mut self.transactions).push(t);
    }

    /// The transactions.
    #[must_use]
    pub fn transactions(&self) -> &[Transaction] {
        &self.transactions
    }

    /// The shared handle to the transactions — what parallel counting
    /// passes clone into `'static` worker-pool jobs.
    #[must_use]
    pub fn shared(&self) -> &Arc<Vec<Transaction>> {
        &self.transactions
    }

    /// Number of transactions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// Count the transactions containing the (sorted) itemset — the
    /// reference support definition all miners must agree with.
    #[must_use]
    pub fn support_of(&self, itemset: &[Item]) -> u64 {
        self.transactions
            .iter()
            .filter(|t| t.contains_all(itemset))
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomex_netflow::Protocol;
    use std::net::Ipv4Addr;

    fn flow() -> FlowRecord {
        FlowRecord::new(
            0,
            Ipv4Addr::new(10, 1, 2, 3),
            Ipv4Addr::new(10, 4, 5, 6),
            4444,
            80,
            Protocol::Tcp,
        )
        .with_volume(5, 200)
    }

    #[test]
    fn flow_transaction_has_width_seven() {
        let t = Transaction::from_flow(&flow());
        assert_eq!(t.width(), CANONICAL_WIDTH);
        let feats: Vec<_> = t.items().iter().map(|i| i.feature()).collect();
        assert_eq!(feats, FlowFeature::ALL.to_vec());
    }

    #[test]
    fn extended_transaction_adds_prefix_items() {
        let f = flow();
        let t = Transaction::from_flow_extended(&f);
        assert_eq!(t.width(), MAX_WIDTH);
        let feats: Vec<_> = t.items().iter().map(|i| i.feature()).collect();
        assert_eq!(feats, FlowFeature::EXTENDED.to_vec());
        // The prefix items carry the high 16 bits of the addresses.
        assert!(t.contains(Item::new(
            FlowFeature::SrcNet16,
            u64::from(u32::from(f.src_ip) >> 16)
        )));
        // Extended ⊃ canonical.
        let canonical = Transaction::from_flow(&f);
        assert!(t.contains_all(canonical.items()));
    }

    #[test]
    fn flow_transaction_is_sorted() {
        let t = Transaction::from_flow(&flow());
        let mut sorted = t.items().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted.as_slice(), t.items());
    }

    #[test]
    fn contains_finds_each_item() {
        let f = flow();
        let t = Transaction::from_flow(&f);
        assert!(t.contains(Item::new(FlowFeature::DstPort, 80)));
        assert!(t.contains(Item::new(FlowFeature::Packets, 5)));
        assert!(!t.contains(Item::new(FlowFeature::DstPort, 443)));
    }

    #[test]
    fn contains_all_merge_logic() {
        let t = Transaction::from_flow(&flow());
        let sub = vec![
            Item::new(FlowFeature::DstPort, 80),
            Item::new(FlowFeature::Bytes, 200),
        ];
        assert!(t.contains_all(&sub));
        let not_sub = vec![
            Item::new(FlowFeature::DstPort, 80),
            Item::new(FlowFeature::Bytes, 999),
        ];
        assert!(!t.contains_all(&not_sub));
        assert!(t.contains_all(&[]), "empty itemset is contained everywhere");
    }

    #[test]
    fn from_items_rejects_duplicate_feature() {
        let items = vec![
            Item::new(FlowFeature::DstPort, 80),
            Item::new(FlowFeature::DstPort, 443),
        ];
        assert_eq!(
            Transaction::from_items(&items).unwrap_err(),
            TransactionError::DuplicateFeature(FlowFeature::DstPort)
        );
    }

    #[test]
    fn from_items_rejects_too_wide() {
        let items: Vec<_> = (0..10).map(|i| Item::new(FlowFeature::Bytes, i)).collect();
        assert_eq!(
            Transaction::from_items(&items).unwrap_err(),
            TransactionError::TooWide(10)
        );
    }

    #[test]
    fn from_items_sorts() {
        let items = vec![
            Item::new(FlowFeature::Bytes, 1),
            Item::new(FlowFeature::SrcIp, 9),
        ];
        let t = Transaction::from_items(&items).unwrap();
        assert_eq!(t.items()[0].feature(), FlowFeature::SrcIp);
        assert_eq!(t.width(), 2);
    }

    #[test]
    fn indexed_construction_matches_filtered_copy() {
        let flows: Vec<FlowRecord> = (0..50u16)
            .map(|p| {
                FlowRecord::new(
                    u64::from(p),
                    Ipv4Addr::new(10, 0, 0, 1),
                    Ipv4Addr::new(10, 0, 0, 2),
                    4000,
                    p,
                    Protocol::Tcp,
                )
            })
            .collect();
        let indices: Vec<usize> = (0..50).filter(|i| i % 3 == 0).collect();
        let copied: Vec<FlowRecord> = indices.iter().map(|&i| flows[i]).collect();
        assert_eq!(
            TransactionSet::from_flows_at(&flows, &indices).transactions(),
            TransactionSet::from_flows(&copied).transactions()
        );
        assert_eq!(
            TransactionSet::from_flows_extended_at(&flows, &indices).transactions(),
            TransactionSet::from_flows_extended(&copied).transactions()
        );
    }

    #[test]
    fn columnar_gather_matches_record_construction() {
        let flows: Vec<FlowRecord> = (0..60u32)
            .map(|i| {
                FlowRecord::new(
                    u64::from(i),
                    Ipv4Addr::from(0x0a01_0000 + i * 3),
                    Ipv4Addr::from(0xc0a8_0000 + i),
                    (4000 + i) as u16,
                    (i % 7) as u16,
                    Protocol::from_number((i % 30) as u8),
                )
                .with_volume(i + 1, (i + 1) * 40)
            })
            .collect();
        let cols = FlowColumns::from_flows(&flows);
        let indices: Vec<usize> = (0..60).filter(|i| i % 4 != 1).collect();
        assert_eq!(
            TransactionSet::from_columns_at(&cols, &indices).transactions(),
            TransactionSet::from_flows_at(&flows, &indices).transactions()
        );
        assert_eq!(
            TransactionSet::from_columns_extended_at(&cols, &indices).transactions(),
            TransactionSet::from_flows_extended_at(&flows, &indices).transactions()
        );
        assert!(TransactionSet::from_columns_at(&cols, &[]).is_empty());
    }

    #[test]
    fn support_of_counts_matching_transactions() {
        let mut set = TransactionSet::new();
        for port in [80u64, 80, 443] {
            let t = Transaction::from_items(&[
                Item::new(FlowFeature::DstPort, port),
                Item::new(FlowFeature::Proto, 6),
            ])
            .unwrap();
            set.push(t);
        }
        assert_eq!(set.support_of(&[Item::new(FlowFeature::DstPort, 80)]), 2);
        assert_eq!(set.support_of(&[Item::new(FlowFeature::Proto, 6)]), 3);
        let both = vec![
            Item::new(FlowFeature::DstPort, 80),
            Item::new(FlowFeature::Proto, 6),
        ];
        // note: both must be in sorted order — DstPort(idx 3) < Proto(idx 4)
        assert_eq!(set.support_of(&both), 2);
    }

    #[test]
    fn transaction_error_display() {
        assert!(TransactionError::TooWide(9).to_string().contains('9'));
        assert!(TransactionError::DuplicateFeature(FlowFeature::DstPort)
            .to_string()
            .contains("dstPort"));
    }
}
