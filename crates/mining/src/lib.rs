//! # anomex-mining — frequent item-set mining over flow transactions
//!
//! The association-rule substrate of the
//! [anomex](https://crates.io/crates/anomex) anomaly-extraction system
//! (Brauckhoff et al., IMC 2009 / IEEE ToN 2012).
//!
//! The paper models each flow record as a width-7 market-basket transaction
//! (srcIP, dstIP, srcPort, dstPort, protocol, #packets, #bytes) and mines
//! **maximal frequent item-sets** with a minimum-support threshold; the
//! resulting item-sets *are* the extracted anomaly summary.
//!
//! Provided here:
//!
//! - [`Item`], [`Transaction`], [`TransactionSet`] — the transaction model
//!   with the no-duplicate-feature invariant;
//! - [`apriori`](apriori::apriori) — the paper's modified Apriori with
//!   per-level statistics ([`LevelStats`]) matching the §II-B audit trail;
//! - [`fpgrowth`](fpgrowth::fpgrowth) and [`eclat`](eclat::eclat) — the
//!   faster miners the paper cites, with identical output contracts;
//! - [`filter_maximal`] — maximal-item-set filtering;
//! - [`MinerKind`] — runtime-selectable miner;
//! - [`mine_top_k`] and [`mine_closed`] — the paper's §V extensions
//!   (report-size-driven mining; lossless closed-set compression);
//! - [`MineTask`] — one mining invocation (algorithm, mode, support,
//!   input) as a value, executable in any [`par::Exec`] context;
//! - [`par`] — deterministic parallelism: chunked counting passes
//!   ([`map_chunks_arc`]) plus fork/join task trees
//!   ([`par::run_tree_exec`]) for the recursive search phases. Every
//!   miner's `*_exec` output is bit-identical to the sequential one for
//!   every execution context and thread count;
//! - [`rules`] — the *second* step of association-rule mining: rules
//!   `X ⇒ Y` with confidence/lift/leverage/conviction derived from the
//!   counted supports (never rescanning transactions), a rare-itemset
//!   per-level support floor for low-support attacks, and a
//!   meta-detection pass that z-scores each rule's metric vector against
//!   the interval's rule population to rank anomalous rules. The paper
//!   stops at frequent item-sets (§II-B); the rule layer adds tightness
//!   evidence and rule-level anomaly ranking on top of them.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod apriori;
pub mod closed;
pub mod combinations;
pub mod eclat;
pub mod fpgrowth;
pub mod item;
pub mod itemset;
pub mod maximal;
pub mod miner;
pub mod par;
pub mod rules;
pub mod task;
pub mod topk;
pub mod transaction;

pub use apriori::{apriori_exec, AprioriConfig, AprioriOutput, LevelStats};
pub use closed::{filter_closed, mine_closed};
pub use eclat::eclat_exec;
pub use fpgrowth::fpgrowth_exec;
pub use item::Item;
pub use itemset::{canonicalize, ItemSet};
pub use maximal::{filter_maximal, filter_maximal_general};
pub use miner::MinerKind;
pub use par::{
    map_chunks, map_chunks_arc, Exec, ForkPolicy, WorkKind, DEFAULT_DISPATCH_OVERHEAD_NS,
};
pub use rules::{
    generate_rules, merge_rule_sets, Rule, RuleConfig, RuleSet, ScoredRule, RARE_SUPPORT_GUARD,
};
pub use task::{apriori_par, eclat_par, fpgrowth_par, MineTask, RuleMineOutput};
pub use topk::{mine_top_k, TopK};
pub use transaction::{Transaction, TransactionError, TransactionSet, CANONICAL_WIDTH, MAX_WIDTH};
