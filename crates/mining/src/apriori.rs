//! The modified Apriori algorithm (paper §II-B).
//!
//! Standard Apriori (Agrawal & Srikant, VLDB'94) level-wise search with the
//! paper's modification: the final output keeps only **maximal** frequent
//! item-sets. Per-level statistics are recorded so the §II-B worked example
//! (Table II: "60 frequent 1-item-sets found, 58 removed as subsets…") can
//! be regenerated verbatim.
//!
//! Because flow transactions have bounded width (7 canonical, 9 with the
//! §III-D prefix dimensions), the algorithm makes at most width-many
//! passes and support counting can enumerate transaction k-subsets
//! allocation-free (≤ 126 subsets per transaction per level).

use std::collections::{HashMap, HashSet};
use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::Arc;

use anomex_netflow::shard::chunk_ranges;
use serde::{Deserialize, Serialize};

use crate::combinations::for_each_combination;
use crate::item::Item;
use crate::itemset::ItemSet;
use crate::maximal::filter_maximal;
use crate::par::{
    map_chunks_arc, run_tree_exec, sum_count_vecs, Exec, ForkPolicy, TreeJob, TreeScope, WorkKind,
};
use crate::transaction::{Transaction, TransactionSet, MAX_WIDTH};

/// Padding value for fixed-size candidate keys. Never a valid item
/// encoding (feature indices stop at 8, so valid encodings are < 9 << 56).
const KEY_PAD: u64 = u64::MAX;

/// Fixed-size key for a candidate item-set (allocation-free hashing).
type CandKey = [u64; MAX_WIDTH];

fn key_of(items: &[Item]) -> CandKey {
    let mut key = [KEY_PAD; MAX_WIDTH];
    for (slot, item) in key.iter_mut().zip(items) {
        *slot = item.encoding();
    }
    key
}

/// Apriori configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AprioriConfig {
    /// Minimum support threshold `s` (absolute number of transactions).
    pub min_support: u64,
    /// Output only maximal frequent item-sets (the paper's modification).
    pub maximal_only: bool,
}

impl AprioriConfig {
    /// Config with the paper's modification enabled.
    #[must_use]
    pub fn maximal(min_support: u64) -> Self {
        AprioriConfig {
            min_support,
            maximal_only: true,
        }
    }

    /// Config producing all frequent item-sets (classic Apriori).
    #[must_use]
    pub fn all_frequent(min_support: u64) -> Self {
        AprioriConfig {
            min_support,
            maximal_only: false,
        }
    }
}

/// Counters for one Apriori level (one `k`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelStats {
    /// The level `k` (item-set size).
    pub level: usize,
    /// Candidate k-item-sets generated (after join + prune).
    pub candidates: u64,
    /// Frequent k-item-sets (support ≥ s).
    pub frequent: u64,
    /// Frequent k-item-sets that survived maximal filtering.
    pub maximal: u64,
}

/// Complete Apriori output: item-sets plus the per-level audit trail.
#[derive(Debug, Clone)]
pub struct AprioriOutput {
    /// The mined item-sets, canonically ordered (length-major). Maximal
    /// only when [`AprioriConfig::maximal_only`] was set.
    pub itemsets: Vec<ItemSet>,
    /// Per-level statistics (index 0 = 1-item-sets).
    pub levels: Vec<LevelStats>,
    /// Number of dataset passes performed (≤ 7 for flow transactions).
    pub passes: usize,
}

/// Run Apriori over a transaction set, fully on the calling thread.
///
/// # Panics
///
/// Panics if `config.min_support` is zero — a zero threshold would make
/// every subset of every transaction "frequent", which is never meaningful.
#[must_use]
pub fn apriori(set: &TransactionSet, config: &AprioriConfig) -> AprioriOutput {
    apriori_exec(set, config, Exec::inline())
}

/// Pass 1 of every miner: global single-item occurrence counts, computed
/// over transaction chunks in the given execution context and merged by
/// summation (exact, order-independent — bit-identical to a sequential
/// count for every context and thread count).
#[must_use]
pub(crate) fn count_single_items(set: &TransactionSet, exec: Exec<'_>) -> HashMap<Item, u64> {
    let parts = map_chunks_arc(exec, set.shared(), |_, chunk: &[Transaction]| {
        let mut counts: HashMap<Item, u64> = HashMap::new();
        for t in chunk {
            for &item in t.items() {
                *counts.entry(item).or_insert(0) += 1;
            }
        }
        counts
    });
    let mut total: HashMap<Item, u64> = HashMap::new();
    for part in parts {
        for (item, c) in part {
            *total.entry(item).or_insert(0) += c;
        }
    }
    total
}

/// Run Apriori with every phase parallelized in the given execution
/// context — scoped threads for one-shot batch counting, or a
/// persistent [`crossbeam::WorkerPool`] when the streaming engine calls
/// every interval.
///
/// Two phases fan out per level: support counting runs over transaction
/// chunks (each worker counts candidate hits in its own index-aligned
/// vector; the vectors are summed — exact integer adds), and under
/// [`Exec::Pool`] the level-k **join+prune** itself is partitioned over
/// blocks of candidate prefix groups and submitted as tree tasks on the
/// same pool ([`run_tree_exec`]), with the per-block candidate lists
/// concatenated in block order. Both merges are independent of thread
/// scheduling, so the output is **bit-identical** to [`apriori`] for
/// every execution context; only the wall-clock changes.
///
/// # Panics
///
/// Panics if `config.min_support` is zero.
#[must_use]
pub fn apriori_exec(set: &TransactionSet, config: &AprioriConfig, exec: Exec<'_>) -> AprioriOutput {
    assert!(
        config.min_support >= 1,
        "minimum support must be at least 1"
    );
    let min_support = config.min_support;

    let mut all_frequent: Vec<ItemSet> = Vec::new();
    let mut levels: Vec<LevelStats> = Vec::new();

    // --- Pass 1: count single items. ---
    let counts = count_single_items(set, exec);
    let mut current: Vec<(Vec<Item>, u64)> = counts
        .into_iter()
        .filter(|&(_, c)| c >= min_support)
        .map(|(item, c)| (vec![item], c))
        .collect();
    current.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    levels.push(LevelStats {
        level: 1,
        candidates: 0, // level 1 has no candidate-generation step
        frequent: current.len() as u64,
        maximal: 0,
    });
    let mut passes = 1;

    // --- Passes k = 2..=7 ---
    while !current.is_empty() && passes < MAX_WIDTH {
        let k = passes + 1;
        let candidates = generate_candidates_exec(&mut current, exec);
        let n_candidates = candidates.len() as u64;
        if candidates.is_empty() {
            // Record the empty round (the paper's audit trail includes the
            // terminating round), then stop without another dataset pass.
            levels.push(LevelStats {
                level: k,
                candidates: 0,
                frequent: 0,
                maximal: 0,
            });
            all_frequent.extend(current.drain(..).map(|(items, c)| ItemSet::new(items, c)));
            break;
        }

        // Support counting: enumerate each transaction's k-subsets.
        // Workers count into index-aligned vectors against a shared
        // read-only candidate index (Arc'd so pool jobs can own a
        // handle); the vectors sum exactly.
        let index: Arc<HashMap<CandKey, usize>> = Arc::new(
            candidates
                .iter()
                .enumerate()
                .map(|(i, items)| (key_of(items), i))
                .collect(),
        );
        let n = candidates.len();
        let parts = map_chunks_arc(exec, set.shared(), move |_, chunk: &[Transaction]| {
            let mut counts = vec![0u64; n];
            for t in chunk {
                if t.width() < k {
                    continue;
                }
                for_each_combination(t.items(), k, |combo| {
                    if let Some(&i) = index.get(&key_of(combo)) {
                        counts[i] += 1;
                    }
                });
            }
            counts
        });
        let support = sum_count_vecs(parts);
        passes += 1;

        let mut next: Vec<(Vec<Item>, u64)> = candidates
            .into_iter()
            .enumerate()
            .filter_map(|(i, items)| {
                let c = support.get(i).copied().unwrap_or(0);
                (c >= min_support).then_some((items, c))
            })
            .collect();
        next.sort_unstable_by(|a, b| a.0.cmp(&b.0));

        levels.push(LevelStats {
            level: k,
            candidates: n_candidates,
            frequent: next.len() as u64,
            maximal: 0,
        });

        all_frequent.extend(current.drain(..).map(|(items, c)| ItemSet::new(items, c)));
        current = next;
    }
    all_frequent.extend(current.into_iter().map(|(items, c)| ItemSet::new(items, c)));

    let itemsets = if config.maximal_only {
        filter_maximal(all_frequent)
    } else {
        let mut v = all_frequent;
        v.sort_unstable();
        v
    };

    // Fill the per-level maximal counters from the final output.
    for s in &itemsets {
        if config.maximal_only {
            if let Some(stats) = levels.get_mut(s.len() - 1) {
                stats.maximal += 1;
            }
        }
    }

    AprioriOutput {
        itemsets,
        levels,
        passes,
    }
}

/// Boundaries of the (k-2)-prefix groups of a sorted frequent level:
/// each returned range is one maximal run sharing a join prefix. The
/// join only ever pairs item-sets within one group, so groups are the
/// natural partition unit of the parallel join.
fn prefix_groups(frequent: &[(Vec<Item>, u64)]) -> Vec<Range<usize>> {
    let mut groups = Vec::new();
    let mut group_start = 0;
    while group_start < frequent.len() {
        let prefix_len = frequent[group_start].0.len() - 1;
        let prefix = &frequent[group_start].0[..prefix_len];
        let mut group_end = group_start + 1;
        while group_end < frequent.len() && &frequent[group_end].0[..prefix_len] == prefix {
            group_end += 1;
        }
        groups.push(group_start..group_end);
        group_start = group_end;
    }
    groups
}

/// Join + prune one prefix group, appending surviving candidates in
/// join order (i < j over the group).
///
/// Two extra domain rules cut the space:
/// - the two joined tail items must belong to *different* features, since a
///   transaction never carries two values of one feature;
/// - the prefix-join only pairs lexicographically adjacent groups, keeping
///   the join linear in practice.
fn join_group(
    frequent: &[(Vec<Item>, u64)],
    group: Range<usize>,
    prev: &HashSet<CandKey>,
    out: &mut Vec<Vec<Item>>,
) {
    let prefix_len = frequent[group.start].0.len() - 1;
    for i in group.clone() {
        for j in i + 1..group.end {
            let a = &frequent[i].0;
            let b = &frequent[j].0;
            let (ta, tb) = (a[prefix_len], b[prefix_len]);
            if ta.feature() == tb.feature() {
                continue; // can never co-occur in one transaction
            }
            let mut cand = Vec::with_capacity(a.len() + 1);
            cand.extend_from_slice(a);
            cand.push(tb); // ta < tb by sort order, so cand stays sorted
            if subsets_all_frequent(&cand, prev) {
                out.push(cand);
            }
        }
    }
}

/// Candidate generation: join L(k-1) with itself on the (k-2)-prefix,
/// then prune candidates with an infrequent (k-1)-subset (downward
/// closure).
///
/// Under [`Exec::Pool`], when the [`ForkPolicy`] cost model judges the
/// level worth a queue operation per block (estimated join work vs the
/// pool's measured dispatch overhead, coarsened by live queue depth),
/// the prefix groups are partitioned into balanced contiguous blocks and
/// each block joins as one tree task on the pool; per-block candidate
/// lists concatenate in block order, reproducing the sequential join
/// order exactly. (The frequent level is lent to the tasks through an
/// `Arc` and handed back afterwards, which is why the parameter is
/// `&mut`.) In every other context the join runs inline — same output,
/// by construction.
fn generate_candidates_exec(current: &mut Vec<(Vec<Item>, u64)>, exec: Exec<'_>) -> Vec<Vec<Item>> {
    let prev: HashSet<CandKey> = current.iter().map(|(items, _)| key_of(items)).collect();
    let groups = prefix_groups(current);
    let width = exec.width();
    let fan_out = match exec {
        Exec::Pool(pool) => {
            groups.len() >= 2
                && ForkPolicy::for_exec(&exec).should_fork_at(
                    width,
                    pool.local_queue_depth(),
                    current.len(),
                    WorkKind::JoinSets,
                )
        }
        Exec::Threads(_) => false,
    };
    if !fan_out {
        let mut out = Vec::new();
        for group in groups {
            join_group(current, group, &prev, &mut out);
        }
        return out;
    }
    let frequent = Arc::new(std::mem::take(current));
    let prev = Arc::new(prev);
    let groups = Arc::new(groups);
    let blocks = chunk_ranges(
        groups.len(),
        NonZeroUsize::new(width.min(groups.len())).expect("width > 1, groups >= 2"),
    );
    let roots: Vec<TreeJob<Vec<Vec<Item>>>> = blocks
        .into_iter()
        .map(|block| {
            let frequent = Arc::clone(&frequent);
            let prev = Arc::clone(&prev);
            let groups = Arc::clone(&groups);
            Box::new(move |_: &TreeScope<'_, Vec<Vec<Item>>>| {
                let mut out = Vec::new();
                for group in &groups[block] {
                    join_group(&frequent, group.clone(), &prev, &mut out);
                }
                out
            }) as TreeJob<Vec<Vec<Item>>>
        })
        .collect();
    let parts = run_tree_exec(exec, roots);
    // All tasks have dropped their handles; reclaim the level without a
    // copy (the clone fallback is unreachable in practice).
    *current = Arc::try_unwrap(frequent).unwrap_or_else(|arc| (*arc).clone());
    parts.into_iter().flatten().collect()
}

/// Downward-closure prune: every (k-1)-subset of `cand` must be frequent.
/// Subsets are looked up by their fixed-size [`CandKey`], so the set is
/// `Copy`-keyed and shares across tree tasks without self-references.
fn subsets_all_frequent(cand: &[Item], prev: &HashSet<CandKey>) -> bool {
    let mut sub = Vec::with_capacity(cand.len() - 1);
    for skip in 0..cand.len() {
        sub.clear();
        sub.extend_from_slice(&cand[..skip]);
        sub.extend_from_slice(&cand[skip + 1..]);
        if !prev.contains(&key_of(&sub)) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::Transaction;
    use anomex_netflow::FlowFeature;

    fn tx(items: &[(FlowFeature, u64)]) -> Transaction {
        let items: Vec<_> = items.iter().map(|&(f, v)| Item::new(f, v)).collect();
        Transaction::from_items(&items).unwrap()
    }

    /// Small dataset with a known answer:
    /// 4x {dstPort=80, proto=6}, 2x {dstPort=443, proto=6}, 1x {dstPort=80, proto=17}
    fn small_set() -> TransactionSet {
        let mut set = TransactionSet::new();
        for _ in 0..4 {
            set.push(tx(&[(FlowFeature::DstPort, 80), (FlowFeature::Proto, 6)]));
        }
        for _ in 0..2 {
            set.push(tx(&[(FlowFeature::DstPort, 443), (FlowFeature::Proto, 6)]));
        }
        set.push(tx(&[(FlowFeature::DstPort, 80), (FlowFeature::Proto, 17)]));
        set
    }

    #[test]
    fn finds_expected_itemsets_at_support_4() {
        let out = apriori(&small_set(), &AprioriConfig::all_frequent(4));
        // dstPort=80 (5), proto=6 (6), {dstPort=80,proto=6} (4)
        let rendered: Vec<String> = out.itemsets.iter().map(ToString::to_string).collect();
        assert_eq!(
            rendered,
            vec![
                "{dstPort=80} x5".to_string(),
                "{protocol=6} x6".to_string(),
                "{dstPort=80, protocol=6} x4".to_string(),
            ]
        );
    }

    #[test]
    fn maximal_mode_drops_subsets() {
        let out = apriori(&small_set(), &AprioriConfig::maximal(4));
        // dstPort=80 is a subset of the frequent pair → removed.
        // proto=6 is also a subset of the pair → removed.
        let rendered: Vec<String> = out.itemsets.iter().map(ToString::to_string).collect();
        assert_eq!(rendered, vec!["{dstPort=80, protocol=6} x4".to_string()]);
        assert_eq!(out.levels[0].frequent, 2);
        assert_eq!(out.levels[0].maximal, 0);
        assert_eq!(out.levels[1].frequent, 1);
        assert_eq!(out.levels[1].maximal, 1);
    }

    #[test]
    fn supports_match_reference_definition() {
        let set = small_set();
        let out = apriori(&set, &AprioriConfig::all_frequent(1));
        for s in &out.itemsets {
            assert_eq!(
                s.support,
                set.support_of(s.items()),
                "support mismatch for {s}"
            );
        }
    }

    #[test]
    fn high_support_yields_nothing() {
        let out = apriori(&small_set(), &AprioriConfig::maximal(100));
        assert!(out.itemsets.is_empty());
        assert_eq!(out.passes, 1);
    }

    #[test]
    fn empty_transaction_set() {
        let out = apriori(&TransactionSet::new(), &AprioriConfig::maximal(1));
        assert!(out.itemsets.is_empty());
    }

    #[test]
    #[should_panic(expected = "minimum support must be at least 1")]
    fn zero_support_panics() {
        let _ = apriori(&TransactionSet::new(), &AprioriConfig::maximal(0));
    }

    #[test]
    fn same_feature_items_never_join() {
        // Two frequent dstPort values must not generate a {80,443} candidate.
        let mut set = TransactionSet::new();
        for _ in 0..3 {
            set.push(tx(&[(FlowFeature::DstPort, 80)]));
            set.push(tx(&[(FlowFeature::DstPort, 443)]));
        }
        let out = apriori(&set, &AprioriConfig::all_frequent(2));
        assert!(out.itemsets.iter().all(|s| s.len() == 1));
        assert_eq!(out.levels.len(), 2);
        assert_eq!(out.levels[1].candidates, 0);
    }

    #[test]
    fn full_width_transactions_reach_level_7() {
        use anomex_netflow::{FlowRecord, Protocol};
        use std::net::Ipv4Addr;
        // 5 identical flows → one maximal 7-item-set at support 5.
        let flow = FlowRecord::new(
            0,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1234,
            7000,
            Protocol::Udp,
        )
        .with_volume(2, 80);
        let set = TransactionSet::from_flows(&[flow; 5]);
        let out = apriori(&set, &AprioriConfig::maximal(5));
        assert_eq!(out.itemsets.len(), 1);
        assert_eq!(out.itemsets[0].len(), 7);
        assert_eq!(out.itemsets[0].support, 5);
        assert_eq!(out.passes, 7);
    }

    #[test]
    fn passes_bounded_by_transaction_width() {
        let out = apriori(&small_set(), &AprioriConfig::all_frequent(1));
        assert!(out.passes <= MAX_WIDTH);
    }

    #[test]
    fn pool_join_splits_into_tree_tasks_and_stays_identical() {
        use crossbeam::WorkerPool;
        // Many distinct frequent 1-sets across three features ⇒ the
        // level-2 join carries far more work than the fork cost model's
        // dispatch-overhead cut-off.
        let mut set = TransactionSet::new();
        for i in 0..4000u64 {
            set.push(tx(&[
                (FlowFeature::DstPort, i % 40),
                (FlowFeature::SrcPort, i % 30),
                (FlowFeature::Packets, i % 20),
            ]));
        }
        let config = AprioriConfig::all_frequent(2);
        let reference = apriori(&set, &config);
        let pool = WorkerPool::new(NonZeroUsize::new(4).unwrap());
        let pooled = apriori_exec(&set, &config, Exec::Pool(&pool));
        assert_eq!(pooled.itemsets, reference.itemsets);
        assert_eq!(pooled.levels, reference.levels);
        assert!(
            pool.tree_tasks() > 1,
            "join+prune must have fanned out as pool tasks (got {})",
            pool.tree_tasks()
        );
    }

    #[test]
    fn parallel_counting_is_identical_for_every_thread_count() {
        // Big enough to actually split into chunks (see par::MIN_ITEMS_PER_THREAD).
        let mut set = TransactionSet::new();
        for i in 0..6000u64 {
            set.push(tx(&[
                (FlowFeature::DstPort, 80 + i % 3),
                (FlowFeature::Proto, 6 + (i % 2) * 11),
                (FlowFeature::Packets, i % 5),
            ]));
        }
        for config in [
            AprioriConfig::all_frequent(500),
            AprioriConfig::maximal(500),
        ] {
            let reference = apriori(&set, &config);
            for threads in 2..=8 {
                let exec = Exec::Threads(NonZeroUsize::new(threads).unwrap());
                let par = apriori_exec(&set, &config, exec);
                assert_eq!(par.itemsets, reference.itemsets, "threads={threads}");
                for (a, b) in par.itemsets.iter().zip(&reference.itemsets) {
                    assert_eq!(a.support, b.support, "threads={threads} {a}");
                }
                assert_eq!(par.passes, reference.passes);
                assert_eq!(par.levels.len(), reference.levels.len());
                for (a, b) in par.levels.iter().zip(&reference.levels) {
                    assert_eq!(
                        (a.level, a.candidates, a.frequent, a.maximal),
                        (b.level, b.candidates, b.frequent, b.maximal),
                        "threads={threads}"
                    );
                }
            }
        }
    }
}
