//! Closed item-set filtering (paper §V future work).
//!
//! A frequent item-set is **closed** if no proper superset has the *same*
//! support. Closed sets are a lossless compression of the frequent-set
//! lattice: unlike maximal sets they preserve every support value, at the
//! cost of a (usually slightly) larger report. The paper lists "mining
//! closed or maximal frequent item-sets" as the natural extension
//! dimension; maximal is the default in `anomex`, closed is provided here
//! for operators who need exact supports of sub-patterns.

use std::collections::HashMap;

use crate::item::Item;
use crate::itemset::ItemSet;
use crate::transaction::TransactionSet;

/// Retain only the closed item-sets of a complete frequent-set collection.
///
/// **Precondition:** `sets` is downward-closed with exact supports (the
/// output of any miner in this crate with `mine_all`).
#[must_use]
pub fn filter_closed(sets: Vec<ItemSet>) -> Vec<ItemSet> {
    if sets.is_empty() {
        return sets;
    }
    let max_len = sets.iter().map(ItemSet::len).max().unwrap_or(0);
    let mut by_len: Vec<Vec<ItemSet>> = vec![Vec::new(); max_len + 1];
    for s in sets {
        let l = s.len();
        by_len[l].push(s);
    }
    // A k-set is non-closed iff some (k+1)-superset has equal support.
    // (A longer superset with equal support implies an intermediate one by
    // monotonicity of support, so one level up suffices.)
    let coverage: Vec<HashMap<Vec<Item>, u64>> = (0..max_len)
        .map(|k| {
            let mut covered: HashMap<Vec<Item>, u64> = HashMap::new();
            for bigger in &by_len[k + 1] {
                let items = bigger.items();
                for skip in 0..items.len() {
                    let mut sub = Vec::with_capacity(items.len() - 1);
                    sub.extend_from_slice(&items[..skip]);
                    sub.extend_from_slice(&items[skip + 1..]);
                    covered
                        .entry(sub)
                        .and_modify(|best| *best = (*best).max(bigger.support))
                        .or_insert(bigger.support);
                }
            }
            covered
        })
        .collect();
    let mut out = Vec::new();
    for (k, covered) in coverage.iter().enumerate() {
        for s in &by_len[k] {
            let dominated = covered.get(s.items()).is_some_and(|&sup| sup == s.support);
            if !dominated {
                out.push(s.clone());
            }
        }
    }
    out.extend(by_len[max_len].iter().cloned());
    out.sort_unstable();
    out
}

/// Mine the closed frequent item-sets directly (mine-all + filter).
///
/// # Panics
///
/// Panics if `min_support` is zero.
#[must_use]
pub fn mine_closed(
    set: &TransactionSet,
    miner: crate::miner::MinerKind,
    min_support: u64,
) -> Vec<ItemSet> {
    filter_closed(miner.mine_all(set, min_support))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::MinerKind;
    use crate::transaction::Transaction;
    use anomex_netflow::FlowFeature;

    fn tx(items: &[(FlowFeature, u64)]) -> Transaction {
        let items: Vec<_> = items.iter().map(|&(f, v)| Item::new(f, v)).collect();
        Transaction::from_items(&items).unwrap()
    }

    /// 4x {80, tcp}, 2x {80, udp}: {dstPort=80} has support 6 ≠ any
    /// superset's support → closed; {proto=6} has support 4 = its
    /// superset {80, proto=6} → NOT closed.
    fn sample() -> TransactionSet {
        let mut set = TransactionSet::new();
        for _ in 0..4 {
            set.push(tx(&[(FlowFeature::DstPort, 80), (FlowFeature::Proto, 6)]));
        }
        for _ in 0..2 {
            set.push(tx(&[(FlowFeature::DstPort, 80), (FlowFeature::Proto, 17)]));
        }
        set
    }

    #[test]
    fn closed_keeps_distinct_support_levels() {
        let closed = mine_closed(&sample(), MinerKind::Apriori, 2);
        let rendered: Vec<String> = closed.iter().map(ToString::to_string).collect();
        assert!(
            rendered.contains(&"{dstPort=80} x6".to_string()),
            "{rendered:?}"
        );
        assert!(rendered.contains(&"{dstPort=80, protocol=6} x4".to_string()));
        assert!(rendered.contains(&"{dstPort=80, protocol=17} x2".to_string()));
        // proto=6 alone is absorbed by its equal-support superset.
        assert!(
            !rendered.iter().any(|r| r == "{protocol=6} x4"),
            "{rendered:?}"
        );
    }

    #[test]
    fn closed_superset_of_maximal() {
        let set = sample();
        let closed = mine_closed(&set, MinerKind::FpGrowth, 2);
        let maximal = MinerKind::FpGrowth.mine_maximal(&set, 2);
        for m in &maximal {
            assert!(closed.contains(m), "maximal {m} must be closed");
        }
        assert!(closed.len() >= maximal.len());
    }

    #[test]
    fn closed_is_lossless_for_supports() {
        // Every frequent item-set's support equals the max support of the
        // closed supersets containing it (the closure property).
        let set = sample();
        let all = MinerKind::Eclat.mine_all(&set, 1);
        let closed = filter_closed(all.clone());
        for s in &all {
            let recovered = closed
                .iter()
                .filter(|c| s.is_subset_of(c))
                .map(|c| c.support)
                .max()
                .expect("some closed superset exists");
            assert_eq!(recovered, s.support, "closure lost the support of {s}");
        }
    }

    #[test]
    fn empty_input() {
        assert!(filter_closed(Vec::new()).is_empty());
    }

    #[test]
    fn identical_transactions_give_single_closed_set() {
        let mut set = TransactionSet::new();
        for _ in 0..5 {
            set.push(tx(&[
                (FlowFeature::SrcIp, 1),
                (FlowFeature::DstIp, 2),
                (FlowFeature::DstPort, 3),
            ]));
        }
        let closed = mine_closed(&set, MinerKind::Apriori, 1);
        assert_eq!(closed.len(), 1, "one closed set: the full transaction");
        assert_eq!(closed[0].len(), 3);
        assert_eq!(closed[0].support, 5);
    }
}
