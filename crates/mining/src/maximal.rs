//! Maximal item-set filtering.
//!
//! The paper modifies Apriori to "output only maximal frequent item-sets,
//! i.e., frequent k-item-sets that are not a subset of a more specific
//! frequent (k+1)-item-set" (§II-B). By the downward-closure property, a
//! frequent set is contained in *some* longer frequent set iff it is
//! contained in a frequent set exactly one item longer, so the filter only
//! needs to look one level up.

use std::collections::HashSet;

use crate::item::Item;
use crate::itemset::ItemSet;

/// Retain only the maximal item-sets of a complete frequent-set collection.
///
/// **Precondition:** `sets` must be downward-closed (contain every frequent
/// subset of every member), which is what all miners in this crate produce.
/// For arbitrary collections use [`filter_maximal_general`].
#[must_use]
pub fn filter_maximal(sets: Vec<ItemSet>) -> Vec<ItemSet> {
    if sets.is_empty() {
        return sets;
    }
    let max_len = sets.iter().map(ItemSet::len).max().unwrap_or(0);
    // Bucket by length.
    let mut by_len: Vec<Vec<ItemSet>> = vec![Vec::new(); max_len + 1];
    for s in sets {
        let l = s.len();
        by_len[l].push(s);
    }
    let mut out = Vec::new();
    // A k-set is non-maximal iff it is a (k)-subset of some frequent
    // (k+1)-set. Coverage must be computed from the ORIGINAL frequent
    // buckets — not the already-filtered ones — because non-maximal
    // (k+1)-sets still dominate their k-subsets.
    let coverage: Vec<HashSet<Vec<Item>>> = (0..max_len)
        .map(|k| {
            let mut covered = HashSet::new();
            for bigger in &by_len[k + 1] {
                let items = bigger.items();
                for skip in 0..items.len() {
                    let mut sub = Vec::with_capacity(items.len() - 1);
                    sub.extend_from_slice(&items[..skip]);
                    sub.extend_from_slice(&items[skip + 1..]);
                    covered.insert(sub);
                }
            }
            covered
        })
        .collect();
    for (k, covered) in coverage.iter().enumerate() {
        by_len[k].retain(|s| !covered.contains(s.items()));
    }
    for bucket in by_len {
        out.extend(bucket);
    }
    out.sort_unstable();
    out
}

/// Maximal filtering for arbitrary (not necessarily downward-closed)
/// collections: quadratic pairwise subset checks. Used by tests as an
/// oracle for [`filter_maximal`].
#[must_use]
pub fn filter_maximal_general(sets: &[ItemSet]) -> Vec<ItemSet> {
    let mut out: Vec<ItemSet> = Vec::new();
    for (i, s) in sets.iter().enumerate() {
        let dominated = sets
            .iter()
            .enumerate()
            .any(|(j, t)| j != i && s.len() < t.len() && s.is_subset_of(t));
        if !dominated && !out.contains(s) {
            out.push(s.clone());
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomex_netflow::FlowFeature;

    fn set(items: &[(FlowFeature, u64)], support: u64) -> ItemSet {
        ItemSet::new(
            items.iter().map(|&(f, v)| Item::new(f, v)).collect(),
            support,
        )
    }

    #[test]
    fn keeps_only_maximal() {
        // {a}, {b}, {a,b} — only {a,b} is maximal.
        let a = set(&[(FlowFeature::DstPort, 80)], 10);
        let b = set(&[(FlowFeature::Proto, 6)], 10);
        let ab = set(&[(FlowFeature::DstPort, 80), (FlowFeature::Proto, 6)], 8);
        let out = filter_maximal(vec![a, b, ab.clone()]);
        assert_eq!(out, vec![ab]);
    }

    #[test]
    fn unrelated_sets_all_kept() {
        let a = set(&[(FlowFeature::DstPort, 80)], 10);
        let b = set(&[(FlowFeature::DstPort, 443)], 10);
        let out = filter_maximal(vec![a.clone(), b.clone()]);
        assert_eq!(out.len(), 2);
        assert!(out.contains(&a) && out.contains(&b));
    }

    #[test]
    fn multi_level_closure() {
        // downward-closed family of {x,y,z}: every subset present.
        let x = (FlowFeature::SrcIp, 1);
        let y = (FlowFeature::DstIp, 2);
        let z = (FlowFeature::DstPort, 3);
        let family = vec![
            set(&[x], 9),
            set(&[y], 9),
            set(&[z], 9),
            set(&[x, y], 8),
            set(&[x, z], 8),
            set(&[y, z], 8),
            set(&[x, y, z], 7),
        ];
        let out = filter_maximal(family.clone());
        assert_eq!(out, vec![set(&[x, y, z], 7)]);
        assert_eq!(out, filter_maximal_general(&family));
    }

    #[test]
    fn empty_input() {
        assert!(filter_maximal(Vec::new()).is_empty());
        assert!(filter_maximal_general(&[]).is_empty());
    }

    #[test]
    fn general_filter_handles_non_closed_input() {
        // {a} ⊂ {a,b,c} with the middle level missing: the one-level-up
        // fast path would *not* catch this, the general one must.
        let a = set(&[(FlowFeature::DstPort, 80)], 10);
        let abc = set(
            &[
                (FlowFeature::DstPort, 80),
                (FlowFeature::Proto, 6),
                (FlowFeature::Packets, 2),
            ],
            5,
        );
        let out = filter_maximal_general(&[a, abc.clone()]);
        assert_eq!(out, vec![abc]);
    }
}
