//! Frequent item-sets: the mining output.

use std::cmp::Ordering;
use std::fmt;

use crate::item::Item;

/// A frequent item-set together with its support count.
///
/// Items are always sorted ascending (feature-major); two `ItemSet`s are
/// equal iff their item lists are equal — support is metadata and excluded
/// from `Eq`/`Ord` so result sets can be compared across miners.
#[derive(Debug, Clone)]
pub struct ItemSet {
    items: Vec<Item>,
    /// Number of transactions containing this item-set.
    pub support: u64,
}

impl ItemSet {
    /// Build from items (sorted internally) and a support count.
    #[must_use]
    pub fn new(mut items: Vec<Item>, support: u64) -> Self {
        items.sort_unstable();
        items.dedup();
        ItemSet { items, support }
    }

    /// The items, sorted ascending.
    #[must_use]
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Number of items (the `k` of a `k`-item-set).
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the item-set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether `self`'s items are a (not necessarily proper) subset of
    /// `other`'s.
    #[must_use]
    pub fn is_subset_of(&self, other: &ItemSet) -> bool {
        if self.items.len() > other.items.len() {
            return false;
        }
        // Both sorted: merge scan.
        let mut j = 0;
        for &item in &self.items {
            while j < other.items.len() && other.items[j] < item {
                j += 1;
            }
            if j == other.items.len() || other.items[j] != item {
                return false;
            }
            j += 1;
        }
        true
    }
}

impl PartialEq for ItemSet {
    fn eq(&self, other: &Self) -> bool {
        self.items == other.items
    }
}

impl Eq for ItemSet {}

impl PartialOrd for ItemSet {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ItemSet {
    /// Canonical order: by length, then lexicographically by items.
    fn cmp(&self, other: &Self) -> Ordering {
        self.items
            .len()
            .cmp(&other.items.len())
            .then_with(|| self.items.cmp(&other.items))
    }
}

impl fmt::Display for ItemSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, "}} x{}", self.support)
    }
}

/// Sort a result set into the canonical order (length-major) and return it.
#[must_use]
pub fn canonicalize(mut sets: Vec<ItemSet>) -> Vec<ItemSet> {
    sets.sort_unstable();
    sets
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomex_netflow::FlowFeature;

    fn item(f: FlowFeature, v: u64) -> Item {
        Item::new(f, v)
    }

    #[test]
    fn new_sorts_and_dedups() {
        let s = ItemSet::new(
            vec![
                item(FlowFeature::Bytes, 1),
                item(FlowFeature::SrcIp, 2),
                item(FlowFeature::Bytes, 1),
            ],
            10,
        );
        assert_eq!(s.len(), 2);
        assert_eq!(s.items()[0].feature(), FlowFeature::SrcIp);
    }

    #[test]
    fn subset_relation() {
        let small = ItemSet::new(vec![item(FlowFeature::DstPort, 80)], 5);
        let big = ItemSet::new(
            vec![item(FlowFeature::DstPort, 80), item(FlowFeature::Proto, 6)],
            3,
        );
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(small.is_subset_of(&small));
        let empty = ItemSet::new(vec![], 0);
        assert!(empty.is_subset_of(&small));
    }

    #[test]
    fn equality_ignores_support() {
        let a = ItemSet::new(vec![item(FlowFeature::DstPort, 80)], 5);
        let b = ItemSet::new(vec![item(FlowFeature::DstPort, 80)], 99);
        assert_eq!(a, b);
    }

    #[test]
    fn canonical_order_is_length_major() {
        let one = ItemSet::new(vec![item(FlowFeature::Bytes, 9)], 1);
        let two = ItemSet::new(
            vec![item(FlowFeature::SrcIp, 1), item(FlowFeature::DstIp, 1)],
            1,
        );
        let sorted = canonicalize(vec![two.clone(), one.clone()]);
        assert_eq!(sorted, vec![one, two]);
    }

    #[test]
    fn display_renders_paper_style() {
        let s = ItemSet::new(
            vec![
                item(FlowFeature::DstPort, 7000),
                item(FlowFeature::Proto, 6),
            ],
            53_467,
        );
        assert_eq!(s.to_string(), "{dstPort=7000, protocol=6} x53467");
    }
}
