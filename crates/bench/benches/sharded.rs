//! Criterion benches for the sharded parallel extraction engine: the
//! Table-2 workload end to end (sharded pre-filter → zero-copy
//! transactions → parallel support counting) at 1/2/4/8 shards, plus the
//! sharded detector-bank observation. The 1-shard rows double as the
//! sequential baseline — the engine runs inline without spawning threads
//! there — so the group directly reads off the sharding speedup.
//!
//! The sharded output is bit-identical to sequential for every shard
//! count (the engine's determinism guarantee); these benches measure the
//! only thing that changes: wall-clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::num::NonZeroUsize;

use anomex_core::{observe_sharded, Engine, ExtractRequest};
use anomex_detector::{DetectorBank, DetectorConfig, MetaData};
use anomex_mining::MinerKind;
use anomex_netflow::FlowFeature;
use anomex_traffic::table2_workload;

/// The Table II meta-data: the flagged flood port plus the three popular
/// ports the paper injected to force false-positive item-sets.
fn table2_metadata() -> MetaData {
    let mut md = MetaData::new();
    for port in [7000u64, 80, 9022, 25] {
        md.insert(FlowFeature::DstPort, port);
    }
    md
}

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn bench_sharded_extraction(c: &mut Criterion) {
    let w = table2_workload(2009, 0.2);
    let md = table2_metadata();
    let mut group = c.benchmark_group("sharded_extract_table2");
    group.sample_size(10);
    for shards in SHARD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("apriori", shards),
            &shards,
            |b, &shards| {
                let shards = NonZeroUsize::new(shards).unwrap();
                b.iter(|| {
                    black_box(Engine::extract(
                        &ExtractRequest::new(black_box(&w.flows), &md, w.min_support)
                            .shards(shards),
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_sharded_miners(c: &mut Criterion) {
    let w = table2_workload(2009, 0.2);
    let md = table2_metadata();
    let mut group = c.benchmark_group("sharded_miners_table2");
    group.sample_size(10);
    for miner in MinerKind::ALL {
        for shards in [1usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(miner.to_string(), shards),
                &shards,
                |b, &shards| {
                    let shards = NonZeroUsize::new(shards).unwrap();
                    b.iter(|| {
                        black_box(Engine::extract(
                            &ExtractRequest::new(black_box(&w.flows), &md, w.min_support)
                                .miner(miner)
                                .shards(shards),
                        ))
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_sharded_observation(c: &mut Criterion) {
    let w = table2_workload(2009, 0.2);
    let mut group = c.benchmark_group("sharded_observe_table2");
    group.sample_size(10);
    for shards in SHARD_COUNTS {
        group.bench_with_input(BenchmarkId::new("bank", shards), &shards, |b, &shards| {
            let shards = NonZeroUsize::new(shards).unwrap();
            let mut bank = DetectorBank::new(&DetectorConfig::default());
            b.iter(|| black_box(observe_sharded(&mut bank, black_box(&w.flows), shards)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sharded_extraction,
    bench_sharded_miners,
    bench_sharded_observation
);
criterion_main!(benches);
