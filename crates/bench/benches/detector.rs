//! Criterion benches for the detection substrate: histogram construction,
//! KL distance, iterative bin identification, and full detector-bank
//! updates (the per-interval online cost, §III-E).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use anomex_detector::{
    identify_anomalous_bins, kl_distance, BinHasher, DetectorBank, DetectorConfig, FeatureHistogram,
};
use anomex_netflow::FlowFeature;
use anomex_traffic::Scenario;

fn bench_histogram_build(c: &mut Criterion) {
    let scenario = Scenario::two_weeks(42, 0.25);
    let interval = scenario.generate(10);
    let hasher = BinHasher::new(7);
    let mut group = c.benchmark_group("histogram_build");
    for bins in [512u32, 1024, 2048] {
        group.bench_with_input(BenchmarkId::from_parameter(bins), &bins, |b, &bins| {
            b.iter(|| {
                black_box(FeatureHistogram::build(
                    FlowFeature::SrcIp,
                    hasher,
                    bins,
                    black_box(&interval.flows),
                ))
            })
        });
    }
    group.finish();
}

fn bench_kl_distance(c: &mut Criterion) {
    let scenario = Scenario::two_weeks(42, 0.25);
    let hasher = BinHasher::new(7);
    let a = FeatureHistogram::build(
        FlowFeature::SrcIp,
        hasher,
        1024,
        &scenario.generate(10).flows,
    );
    let b_hist = FeatureHistogram::build(
        FlowFeature::SrcIp,
        hasher,
        1024,
        &scenario.generate(11).flows,
    );
    c.bench_function("kl_distance_1024", |b| {
        b.iter(|| {
            black_box(kl_distance(
                black_box(a.counts()),
                black_box(b_hist.counts()),
            ))
        })
    });
}

fn bench_bin_identification(c: &mut Criterion) {
    // A concentrated spike over a realistic reference.
    let scenario = Scenario::two_weeks(42, 0.25);
    let hasher = BinHasher::new(7);
    let reference = FeatureHistogram::build(
        FlowFeature::DstPort,
        hasher,
        1024,
        &scenario.generate(10).flows,
    );
    let mut current = reference.counts().to_vec();
    current[hasher.bin_of(7000, 1024) as usize] += 5000;
    current[hasher.bin_of(9022, 1024) as usize] += 2000;
    c.bench_function("bin_identification", |b| {
        b.iter(|| {
            black_box(identify_anomalous_bins(
                black_box(&current),
                black_box(reference.counts()),
                1e-4,
            ))
        })
    });
}

fn bench_bank_observe(c: &mut Criterion) {
    let scenario = Scenario::two_weeks(42, 0.25);
    let intervals: Vec<_> = (0..8).map(|i| scenario.generate(i)).collect();
    c.bench_function("detector_bank_interval", |b| {
        // Fresh bank per batch so training state does not drift mid-bench.
        b.iter(|| {
            let mut bank = DetectorBank::new(&DetectorConfig::default());
            for iv in &intervals {
                black_box(bank.observe(black_box(&iv.flows)));
            }
        })
    });
}

criterion_group!(
    benches,
    bench_histogram_build,
    bench_kl_distance,
    bench_bin_identification,
    bench_bank_observe
);
criterion_main!(benches);
