//! Rule-generation overhead: [`MineTask::run_with_rules`] (one
//! all-frequent mining pass + rule fan-out + z-score ranking) vs the
//! itemset-only maximal run, at the descending supports where the rule
//! lattice fans out widest — the cost the `--rules` flag adds on top of
//! plain extraction. Sequential and pool rows bracket both ends of the
//! execution spectrum; on a 1-CPU container the pool rows measure the
//! overhead ceiling, on multicore they drop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::num::NonZeroUsize;

use anomex_mining::par::Exec;
use anomex_mining::{MineTask, MinerKind, RuleConfig, TransactionSet};
use anomex_traffic::table2_workload;
use crossbeam::WorkerPool;

fn pool_width() -> NonZeroUsize {
    std::thread::available_parallelism()
        .map(|n| n.min(NonZeroUsize::new(4).unwrap()))
        .unwrap_or(NonZeroUsize::MIN)
}

fn bench_rules(c: &mut Criterion) {
    let w = table2_workload(2009, 0.1);
    let tx = TransactionSet::from_flows(&w.flows);
    let pool = WorkerPool::new(pool_width());
    let rc = RuleConfig::default();
    let mut group = c.benchmark_group("rules");
    group.sample_size(10);
    for div in [4u64, 16, 64] {
        let s = (w.min_support / div).max(2);
        for miner in MinerKind::ALL {
            let task = MineTask::maximal(miner, &tx, s);
            group.bench_with_input(
                BenchmarkId::new(format!("{miner}_itemsets_seq"), s),
                &task,
                |b, task| b.iter(|| black_box(black_box(task).run(Exec::inline()))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{miner}_rules_seq"), s),
                &task,
                |b, task| b.iter(|| black_box(black_box(task).run_with_rules(&rc, Exec::inline()))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{miner}_rules_pool"), s),
                &task,
                |b, task| {
                    b.iter(|| black_box(black_box(task).run_with_rules(&rc, Exec::Pool(&pool))))
                },
            );
        }
    }
    group.finish();
    // Prove the rule fan-out actually dispatched as pool tasks.
    assert!(
        pool.threads() == 1 || pool.tree_tasks() > 1,
        "multi-width pools must have dispatched tree tasks (width {}, tasks {})",
        pool.threads(),
        pool.tree_tasks()
    );
}

criterion_group!(benches, bench_rules);
criterion_main!(benches);
