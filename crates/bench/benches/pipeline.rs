//! Criterion benches for the end-to-end pipeline: pre-filtering and the
//! full per-interval processing cost on quiet vs. anomalous intervals.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use anomex_core::{
    prefilter, AnomalyExtractor, Engine, ExtractRequest, ExtractionConfig, PrefilterMode,
};
use anomex_detector::{DetectorConfig, MetaData};
use anomex_mining::MinerKind;
use anomex_netflow::FlowFeature;
use anomex_traffic::{table2_workload, Scenario};

fn bench_prefilter(c: &mut Criterion) {
    let w = table2_workload(2009, 0.2);
    let mut md = MetaData::new();
    md.insert(FlowFeature::DstPort, 7000);
    md.insert(FlowFeature::DstPort, 80);
    c.bench_function("prefilter_union_70k_flows", |b| {
        b.iter(|| black_box(prefilter(black_box(&w.flows), &md, PrefilterMode::Union)))
    });
}

fn bench_offline_extraction(c: &mut Criterion) {
    let w = table2_workload(2009, 0.2);
    let mut md = MetaData::new();
    for port in [7000u64, 80, 9022, 25] {
        md.insert(FlowFeature::DstPort, port);
    }
    c.bench_function("extract_table2_scale0.2", |b| {
        b.iter(|| {
            black_box(Engine::extract(
                &ExtractRequest::new(black_box(&w.flows), &md, w.min_support)
                    .miner(MinerKind::FpGrowth),
            ))
        })
    });
}

fn bench_online_interval(c: &mut Criterion) {
    let scenario = Scenario::two_weeks(42, 0.25);
    // Pre-generate: training day + one quiet + one anomalous interval.
    let training: Vec<_> = (0..60).map(|i| scenario.generate(i)).collect();
    let quiet = scenario.generate(90);
    let anomalous = scenario.generate(scenario.events()[0].start_interval);
    let config = ExtractionConfig {
        interval_ms: scenario.interval_ms(),
        detector: DetectorConfig {
            training_intervals: 48,
            ..DetectorConfig::default()
        },
        min_support: 700,
        ..ExtractionConfig::default()
    };

    let mut group = c.benchmark_group("online_interval");
    group.sample_size(10);
    group.bench_function("quiet", |b| {
        b.iter_batched(
            || {
                let mut p = AnomalyExtractor::try_new(config.clone()).unwrap();
                for iv in &training {
                    p.process_interval(&iv.flows);
                }
                p
            },
            |mut p| black_box(p.process_interval(black_box(&quiet.flows))),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("anomalous", |b| {
        b.iter_batched(
            || {
                let mut p = AnomalyExtractor::try_new(config.clone()).unwrap();
                for iv in &training {
                    p.process_interval(&iv.flows);
                }
                p
            },
            |mut p| black_box(p.process_interval(black_box(&anomalous.flows))),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_prefilter,
    bench_offline_extraction,
    bench_online_interval
);
criterion_main!(benches);
