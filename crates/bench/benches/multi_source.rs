//! Criterion benches for the multi-source merge engine: the Table-2
//! workload tiled across consecutive Δ-intervals and split between N
//! exporters, run (a) as a single-source flow-by-flow replay through
//! [`StreamingExtractor`] and (b) as an N-way fan-in through
//! [`MultiSourceExtractor`] with the same flows round-robined over the
//! sources.
//!
//! The fan-in's output is bit-identical to the single-source replay of
//! the concatenation (asserted by the multi-source determinism suite);
//! these benches measure the only thing that changes: the cost of the
//! watermark merge layer — per-source assembly, pending-window
//! buffering, and the source-ordered concatenation per grid interval.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::num::NonZeroUsize;

use anomex_core::{ExtractionConfig, MultiSourceExtractor, StreamingExtractor};
use anomex_detector::DetectorConfig;
use anomex_netflow::{FlowRecord, SourceId, SourceSpec};
use anomex_traffic::table2_workload;

const INTERVAL_MS: u64 = 60_000;
const INTERVALS: u64 = 6;

/// Tile the Table-2 workload over `INTERVALS` consecutive windows: the
/// same flows, timestamps shifted into each window, so every interval
/// carries the paper's flood + popular-port mix.
fn tiled_stream() -> (Vec<Vec<FlowRecord>>, u64) {
    let w = table2_workload(2009, 0.05);
    let mut intervals = Vec::new();
    for i in 0..INTERVALS {
        let shifted: Vec<FlowRecord> = w
            .flows
            .iter()
            .map(|f| {
                let mut f = *f;
                f.start_ms = i * INTERVAL_MS + f.start_ms % INTERVAL_MS;
                f
            })
            .collect();
        intervals.push(shifted);
    }
    (intervals, w.min_support)
}

fn config(min_support: u64) -> ExtractionConfig {
    ExtractionConfig {
        interval_ms: INTERVAL_MS,
        detector: DetectorConfig {
            training_intervals: 2,
            ..DetectorConfig::default()
        },
        min_support,
        ..ExtractionConfig::default()
    }
}

fn bench_fan_in_vs_single(c: &mut Criterion) {
    let (intervals, min_support) = tiled_stream();
    let mut group = c.benchmark_group("multi_source_fan_in_table2");
    group.sample_size(10);
    let shards = NonZeroUsize::new(2).unwrap();

    group.bench_function("single_source", |b| {
        b.iter(|| {
            let mut engine = StreamingExtractor::try_new(config(min_support), shards, 0).unwrap();
            let mut events = 0usize;
            for interval in &intervals {
                for &flow in interval {
                    events += engine.push(black_box(flow)).len();
                }
            }
            let (tail, summary) = engine.finish();
            black_box((events + tail.len(), summary.alarms))
        })
    });

    for sources in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("fan_in", sources),
            &sources,
            |b, &sources| {
                let specs: Vec<SourceSpec> =
                    (0..sources).map(|i| SourceSpec::new(i as u32, 0)).collect();
                b.iter(|| {
                    let mut engine =
                        MultiSourceExtractor::try_new(config(min_support), shards, &specs, None)
                            .unwrap();
                    let mut events = 0usize;
                    for interval in &intervals {
                        // Round-robin the interval's flows over the
                        // sources — every exporter sees an equal share.
                        for (i, &flow) in interval.iter().enumerate() {
                            let source = SourceId((i % sources) as u32);
                            events += engine.push(black_box(source), flow).len();
                        }
                    }
                    let (tail, summary) = engine.finish();
                    black_box((events + tail.len(), summary.alarms))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fan_in_vs_single);
criterion_main!(benches);
