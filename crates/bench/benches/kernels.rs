//! Criterion benches for the vectorized columnar kernels: batched
//! SplitMix64 binning vs the per-value scalar `BinHasher` loop, and
//! branch-free small-set membership vs the `BTreeSet` probe, over the
//! Table II workload's columns at the fixed 0.05 scale — the same
//! workload `overhead_report` summarizes into `BENCH_kernels.json`.
//!
//! Both kernel backends produce bit-identical output to the scalar
//! reference (proptest-pinned by `tests/kernel_equivalence.rs`); these
//! benches measure the only thing that changes: wall-clock.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeSet;
use std::hint::black_box;

use anomex_detector::kernels::{self, KernelBackend, SmallValueSet};
use anomex_detector::BinHasher;
use anomex_netflow::{FlowColumns, FlowFeature};
use anomex_traffic::table2_workload;

const SCALE: f64 = 0.05;
const BINS: u32 = 1024;
const SEED: u64 = 0x616e_6f6d_6578;

/// The benchmark column: every DstPort value of the scaled Table II
/// workload, widened to the kernels' `u64` lane shape.
fn port_column() -> Vec<u64> {
    let w = table2_workload(2009, SCALE);
    let cols = FlowColumns::from_flows(&w.flows);
    let mut values = Vec::with_capacity(cols.len());
    cols.for_each_raw(FlowFeature::DstPort, 0..cols.len(), |v| values.push(v));
    values
}

fn bench_bin(c: &mut Criterion) {
    let values = port_column();
    let hasher = BinHasher::new(SEED);
    let mut out = vec![0u32; values.len()];

    let mut group = c.benchmark_group("kernels_bin_table2");
    group.bench_function("scalar_loop", |b| {
        b.iter(|| {
            for (o, &v) in out.iter_mut().zip(&values) {
                *o = hasher.bin_of(black_box(v), BINS);
            }
            black_box(out.last().copied())
        })
    });
    group.bench_function("batched", |b| {
        b.iter(|| {
            kernels::bin_batch(SEED, BINS, black_box(&values), &mut out);
            black_box(out.last().copied())
        })
    });
    group.bench_function("batched_forced_scalar", |b| {
        b.iter(|| {
            kernels::bin_batch_with(
                KernelBackend::Scalar,
                SEED,
                BINS,
                black_box(&values),
                &mut out,
            );
            black_box(out.last().copied())
        })
    });
    group.finish();
}

fn bench_membership(c: &mut Criterion) {
    let values = port_column();
    // The Table II meta-data ports: the flagged flood port plus the three
    // popular ports the paper injected — the realistic small-set case.
    let ports = [7000u64, 80, 9022, 25];
    let small = SmallValueSet::new(ports).expect("4 values fit");
    let tree: BTreeSet<u64> = ports.into_iter().collect();
    let mut hits = vec![0u8; values.len()];

    let mut group = c.benchmark_group("kernels_membership_table2");
    group.bench_function("btreeset_loop", |b| {
        b.iter(|| {
            for (h, &v) in hits.iter_mut().zip(&values) {
                *h = u8::from(tree.contains(black_box(&v)));
            }
            black_box(hits.last().copied())
        })
    });
    group.bench_function("batched", |b| {
        b.iter(|| {
            hits.iter_mut().for_each(|h| *h = 0);
            kernels::member_batch(&small, black_box(&values), &mut hits);
            black_box(hits.last().copied())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_bin, bench_membership);
criterion_main!(benches);
