//! Criterion benches for trace ingestion and the columnar flow store:
//! mmap vs heap-read parsing of a NetFlow v5 trace file, and the
//! columnar (struct-of-arrays) vs record (array-of-structs) layouts on
//! the two flow-store hot paths — detector histogram building and
//! pre-filtering.
//!
//! The columnar output is bit-identical to the record path (the store's
//! determinism guarantee, asserted by the columnar determinism suite);
//! these benches measure the only thing that changes: wall-clock.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use anomex_core::{prefilter_indices, prefilter_indices_columns, PrefilterMode};
use anomex_detector::{DetectorBank, DetectorConfig, MetaData};
use anomex_netflow::v5::{decode_stream, decode_stream_into_columns, V5Exporter};
use anomex_netflow::{FlowColumns, FlowFeature};
use anomex_traffic::table2_workload;

const SCALE: f64 = 0.05;

/// The Table II meta-data: the flagged flood port plus the three popular
/// ports the paper injected to force false-positive item-sets.
fn table2_metadata() -> MetaData {
    let mut md = MetaData::new();
    for port in [7000u64, 80, 9022, 25] {
        md.insert(FlowFeature::DstPort, port);
    }
    md
}

/// Serialize the benchmark workload as concatenated v5 datagrams.
fn trace_bytes() -> Vec<u8> {
    let w = table2_workload(2009, SCALE);
    let mut exporter = V5Exporter::new();
    let mut bytes = Vec::new();
    for dgram in exporter.export(&w.flows) {
        bytes.extend_from_slice(&dgram);
    }
    bytes
}

fn bench_parse(c: &mut Criterion) {
    let bytes = trace_bytes();
    let path = std::env::temp_dir().join("anomex-ingest-bench.nfv5");
    std::fs::write(&path, &bytes).expect("write temp trace");

    let mut group = c.benchmark_group("ingest_parse_table2");
    group.sample_size(10);
    group.bench_function("heap_read", |b| {
        b.iter(|| {
            let data = std::fs::read(&path).expect("read trace");
            black_box(decode_stream(black_box(&data)).expect("valid trace"))
        })
    });
    group.bench_function("mmap", |b| {
        b.iter(|| {
            let map = memmap2::Mmap::open(&path).expect("map trace");
            black_box(decode_stream(black_box(&map)).expect("valid trace"))
        })
    });
    // The full fast path: mapped bytes straight into the columnar store,
    // no intermediate `FlowRecord`s at all.
    group.bench_function("mmap_columnar", |b| {
        b.iter(|| {
            let map = memmap2::Mmap::open(&path).expect("map trace");
            let mut cols = FlowColumns::new();
            decode_stream_into_columns(black_box(&map), &mut cols).expect("valid trace");
            black_box(cols)
        })
    });
    group.finish();
    std::fs::remove_file(&path).ok();
}

fn bench_histogram_build(c: &mut Criterion) {
    let w = table2_workload(2009, SCALE);
    let cols = FlowColumns::from_flows(&w.flows);
    let hasher = DetectorBank::new(&DetectorConfig::default()).hasher();

    let mut group = c.benchmark_group("ingest_histogram_table2");
    group.sample_size(10);
    group.bench_function("aos_records", |b| {
        b.iter(|| black_box(hasher.partial(black_box(&w.flows))))
    });
    group.bench_function("columnar", |b| {
        b.iter(|| black_box(hasher.partial_columns(black_box(&cols), 0..cols.len())))
    });
    group.finish();
}

fn bench_prefilter(c: &mut Criterion) {
    let w = table2_workload(2009, SCALE);
    let cols = FlowColumns::from_flows(&w.flows);
    let md = table2_metadata();

    let mut group = c.benchmark_group("ingest_prefilter_table2");
    group.sample_size(10);
    group.bench_function("aos_records", |b| {
        b.iter(|| {
            black_box(prefilter_indices(
                black_box(&w.flows),
                &md,
                PrefilterMode::Union,
            ))
        })
    });
    group.bench_function("columnar", |b| {
        b.iter(|| {
            black_box(prefilter_indices_columns(
                black_box(&cols),
                &md,
                PrefilterMode::Union,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_parse, bench_histogram_build, bench_prefilter);
criterion_main!(benches);
