//! Criterion benches for the streaming extraction engine: the Table-2
//! workload tiled across consecutive Δ-intervals, run (a) as batch
//! interval slices through the pool-backed [`ShardedExtractor`] and
//! (b) as a flow-by-flow replay through [`StreamingExtractor`], whose
//! double buffer overlaps interval assembly with extraction.
//!
//! Streaming output is bit-identical to batch (asserted by the
//! streaming determinism suite); these benches measure the only thing
//! that changes: throughput. On one core the streaming engine pays the
//! assembler plus channel hops; on multicore hardware the pipeline
//! overlap and the persistent pool's amortized spawns are the win.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::num::NonZeroUsize;

use anomex_core::{ExtractionConfig, ShardedExtractor, StreamingExtractor};
use anomex_detector::DetectorConfig;
use anomex_netflow::FlowRecord;
use anomex_traffic::table2_workload;

const INTERVAL_MS: u64 = 60_000;
const INTERVALS: u64 = 6;

/// Tile the Table-2 workload over `INTERVALS` consecutive windows: the
/// same flows, timestamps shifted into each window, so every interval
/// carries the paper's flood + popular-port mix.
fn tiled_stream() -> (Vec<Vec<FlowRecord>>, u64) {
    let w = table2_workload(2009, 0.05);
    let mut intervals = Vec::new();
    for i in 0..INTERVALS {
        let shifted: Vec<FlowRecord> = w
            .flows
            .iter()
            .map(|f| {
                let mut f = *f;
                f.start_ms = i * INTERVAL_MS + f.start_ms % INTERVAL_MS;
                f
            })
            .collect();
        intervals.push(shifted);
    }
    (intervals, w.min_support)
}

fn config(min_support: u64) -> ExtractionConfig {
    ExtractionConfig {
        interval_ms: INTERVAL_MS,
        detector: DetectorConfig {
            training_intervals: 2,
            ..DetectorConfig::default()
        },
        min_support,
        ..ExtractionConfig::default()
    }
}

fn bench_streaming_vs_batch(c: &mut Criterion) {
    let (intervals, min_support) = tiled_stream();
    let mut group = c.benchmark_group("streaming_vs_batch_table2");
    group.sample_size(10);
    for shards in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("batch", shards), &shards, |b, &shards| {
            let shards = NonZeroUsize::new(shards).unwrap();
            b.iter(|| {
                let mut engine = ShardedExtractor::try_new(config(min_support), shards).unwrap();
                let mut alarms = 0u32;
                for interval in &intervals {
                    if engine
                        .process_interval(black_box(interval))
                        .extraction
                        .is_some()
                    {
                        alarms += 1;
                    }
                }
                black_box(alarms)
            })
        });
        group.bench_with_input(
            BenchmarkId::new("streaming", shards),
            &shards,
            |b, &shards| {
                let shards = NonZeroUsize::new(shards).unwrap();
                b.iter(|| {
                    let mut engine =
                        StreamingExtractor::try_new(config(min_support), shards, 0).unwrap();
                    let mut events = 0usize;
                    for interval in &intervals {
                        for &flow in interval {
                            events += engine.push(black_box(flow)).len();
                        }
                    }
                    let (tail, summary) = engine.finish();
                    black_box((events + tail.len(), summary.alarms))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_streaming_vs_batch);
criterion_main!(benches);
