//! Low-support mining: sequential vs task-parallel pool execution at
//! descending supports — the regime where Apriori's level-k join+prune
//! and FP-growth's conditional recursion dominate (§III-E; rare-rule
//! mining hits exactly this candidate-explosion band). The pool rows
//! exercise the fork/join tree tasks; on a 1-CPU container the speedup
//! is ~1.0x and the point is the overhead ceiling, on multicore the
//! pool rows drop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::num::NonZeroUsize;

use anomex_mining::par::Exec;
use anomex_mining::{MinerKind, TransactionSet};
use anomex_traffic::table2_workload;
use crossbeam::WorkerPool;

fn pool_width() -> NonZeroUsize {
    std::thread::available_parallelism()
        .map(|n| n.min(NonZeroUsize::new(4).unwrap()))
        .unwrap_or(NonZeroUsize::MIN)
}

fn bench_lowsupport(c: &mut Criterion) {
    let w = table2_workload(2009, 0.1);
    let tx = TransactionSet::from_flows(&w.flows);
    let pool = WorkerPool::new(pool_width());
    let mut group = c.benchmark_group("mining_lowsupport");
    group.sample_size(10);
    for div in [4u64, 16, 64] {
        let s = (w.min_support / div).max(2);
        for miner in MinerKind::ALL {
            group.bench_with_input(BenchmarkId::new(format!("{miner}_seq"), s), &s, |b, &s| {
                b.iter(|| black_box(miner.mine_all_exec(black_box(&tx), s, Exec::inline())))
            });
            group.bench_with_input(BenchmarkId::new(format!("{miner}_pool"), s), &s, |b, &s| {
                b.iter(|| black_box(miner.mine_all_exec(black_box(&tx), s, Exec::Pool(&pool))))
            });
        }
    }
    group.finish();
    // Prove the search phases actually dispatched as pool tasks.
    assert!(
        pool.threads() == 1 || pool.tree_tasks() > 1,
        "multi-width pools must have dispatched tree tasks (width {}, tasks {})",
        pool.threads(),
        pool.tree_tasks()
    );
}

criterion_group!(benches, bench_lowsupport);
criterion_main!(benches);
