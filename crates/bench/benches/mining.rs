//! Criterion benches for the mining substrate: the three miners on the
//! Table II workload across supports (the §III-E comparison), plus the
//! maximal-filter ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use anomex_mining::{filter_maximal, MinerKind, TransactionSet};
use anomex_traffic::table2_workload;

fn bench_miners(c: &mut Criterion) {
    let w = table2_workload(2009, 0.1);
    let tx = TransactionSet::from_flows(&w.flows);
    let mut group = c.benchmark_group("miners_table2_scale0.1");
    group.sample_size(10);
    for miner in MinerKind::ALL {
        group.bench_with_input(
            BenchmarkId::new("maximal", miner.to_string()),
            &miner,
            |b, &m| b.iter(|| black_box(m.mine_maximal(black_box(&tx), w.min_support))),
        );
    }
    group.finish();
}

fn bench_support_sensitivity(c: &mut Criterion) {
    let w = table2_workload(2009, 0.1);
    let tx = TransactionSet::from_flows(&w.flows);
    let mut group = c.benchmark_group("support_sensitivity");
    group.sample_size(10);
    for div in [1u64, 4, 16] {
        let s = (w.min_support / div).max(1);
        group.bench_with_input(BenchmarkId::new("apriori", s), &s, |b, &s| {
            b.iter(|| black_box(MinerKind::Apriori.mine_all(black_box(&tx), s)))
        });
        group.bench_with_input(BenchmarkId::new("fpgrowth", s), &s, |b, &s| {
            b.iter(|| black_box(MinerKind::FpGrowth.mine_all(black_box(&tx), s)))
        });
    }
    group.finish();
}

fn bench_maximal_filter(c: &mut Criterion) {
    let w = table2_workload(2009, 0.1);
    let tx = TransactionSet::from_flows(&w.flows);
    let all = MinerKind::FpGrowth.mine_all(&tx, (w.min_support / 4).max(1));
    c.bench_function("filter_maximal", |b| {
        b.iter(|| black_box(filter_maximal(black_box(all.clone()))))
    });
}

fn bench_transaction_building(c: &mut Criterion) {
    let w = table2_workload(2009, 0.1);
    c.bench_function("transactions_from_flows", |b| {
        b.iter(|| black_box(TransactionSet::from_flows(black_box(&w.flows))))
    });
}

criterion_group!(
    benches,
    bench_miners,
    bench_support_sensitivity,
    bench_maximal_filter,
    bench_transaction_building
);
criterion_main!(benches);
