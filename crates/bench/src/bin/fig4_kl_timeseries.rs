//! **Fig. 4** — KL-distance time series for the source-IP feature over
//! two days (top panel) and its first difference with the ±3σ̂ alarm
//! threshold (bottom panel).
//!
//! Prints both series as aligned columns with ASCII bars; pipe to a file
//! for plotting (`interval, kl, first_diff, threshold, alarm, truth`).
//!
//! ```sh
//! cargo run --release -p anomex-bench --bin fig4_kl_timeseries [scale]
//! ```

use anomex_bench::{arg_scale, bar};
use anomex_detector::{BinHasher, FirstDiffThreshold, HistogramClone};
use anomex_netflow::FlowFeature;
use anomex_traffic::{Scenario, INTERVALS_PER_DAY};

fn main() {
    let scale = arg_scale(0.25);
    let scenario = Scenario::two_weeks(42, scale);
    let two_days = 2 * INTERVALS_PER_DAY;

    // One srcIP clone, like the paper's Fig. 4; thresholds fit on day one.
    let mut clone = HistogramClone::new(
        FlowFeature::SrcIp,
        BinHasher::new(4242),
        1024,
        3.0,
        INTERVALS_PER_DAY as usize / 2,
    );

    let mut rows = Vec::new();
    for i in 0..two_days {
        let interval = scenario.generate(i);
        let obs = clone.observe(&interval.flows);
        rows.push((
            i,
            obs.kl.unwrap_or(0.0),
            obs.first_diff,
            clone.threshold().map(FirstDiffThreshold::value),
            obs.alarm,
            interval.is_anomalous(),
        ));
    }

    let kl_max = rows.iter().map(|r| r.1).fold(0.0f64, f64::max);
    println!("== Fig. 4: srcIP KL series over two days (scale {scale}) ==");
    println!(
        "{:>8} {:>10} {:>11} {:>10} {:>6} {:>6}  kl-bar",
        "interval", "kl", "first_diff", "threshold", "alarm", "truth"
    );
    for (i, kl, diff, thr, alarm, truth) in &rows {
        println!(
            "{:>8} {:>10.5} {:>11} {:>10} {:>6} {:>6}  {}",
            i,
            kl,
            diff.map_or("-".into(), |d| format!("{d:+.5}")),
            thr.map_or("-".into(), |t| format!("{t:.5}")),
            if *alarm { "ALARM" } else { "" },
            if *truth { "event" } else { "" },
            bar(*kl, kl_max, 40),
        );
    }

    // Paper-shape checks.
    let alarms: Vec<u64> = rows.iter().filter(|r| r.4).map(|r| r.0).collect();
    let events: Vec<u64> = rows.iter().filter(|r| r.5).map(|r| r.0).collect();
    println!("\nevent intervals in window: {events:?}");
    println!("alarm intervals in window: {alarms:?}");
    println!(
        "(the paper's Fig. 4 shows exactly this: a noisy baseline with spikes at \
         distribution changes, thresholded one-sided at 3σ̂ of the first difference)"
    );
}
