//! **Fig. 9** — false-positive item-sets vs. the minimum support
//! parameter, over the alarmed anomalous intervals of a two-week run.
//! The paper reports: 70% of intervals have no FP item-sets at all; the
//! average over all intervals falls from ≈ 8.5 (s = 3000) to ≈ 2
//! (s = 10 000); the worst few intervals dominate.
//!
//! ```sh
//! cargo run --release -p anomex-bench --bin fig9_fp_itemsets [scale]
//! ```

use anomex_bench::{arg_scale, eval_config, supports_for};
use anomex_core::run_scenario;
use anomex_mining::MinerKind;
use anomex_traffic::{Scenario, FIFTEEN_MIN_MS, INTERVALS_PER_DAY};

fn main() {
    let scale = arg_scale(0.25);
    let scenario = Scenario::two_weeks(42, scale);
    let fpi = scenario.config().background.flows_per_interval;
    let config = eval_config(
        FIFTEEN_MIN_MS,
        INTERVALS_PER_DAY as usize / 2,
        supports_for(fpi)[0],
    );
    println!("== Fig. 9: FP item-sets vs minimum support (scale {scale}) ==");
    let run = run_scenario(&scenario, &config);
    let alarmed = run.alarmed_anomalous().len();
    println!("alarmed anomalous intervals: {alarmed}\n");

    // The paper's support range is defined against ~1M-flow intervals;
    // scale it with the workload.
    let supports = supports_for(fpi);
    let sweep = run.fp_sweep(&supports, MinerKind::FpGrowth);

    println!(
        "{:>10} {:>8} {:>10} {:>12} {:>10}",
        "support", "avg FP", "zero-FP%", "extracted%", "max FP"
    );
    for point in &sweep {
        println!(
            "{:>10} {:>8.2} {:>9.0}% {:>11.0}% {:>10}",
            point.min_support,
            point.avg_fp,
            point.zero_fp_fraction * 100.0,
            point.extracted_fraction * 100.0,
            point.fp_per_interval.iter().max().copied().unwrap_or(0),
        );
    }

    // Per-interval lines for the FP-prone intervals (the paper plots the
    // 10 intervals with any FPs).
    let last = sweep.last().expect("non-empty sweep");
    let prone: Vec<usize> = (0..last.fp_per_interval.len())
        .filter(|&i| sweep.iter().any(|p| p.fp_per_interval[i] > 0))
        .collect();
    println!(
        "\nFP-prone intervals: {} of {alarmed} (paper: 10 of 31 = 30%)",
        prone.len()
    );
    print!("{:>10}", "support");
    for &i in prone.iter().take(10) {
        print!(
            " {:>6}",
            format!("iv{}", run.alarmed_anomalous()[i].interval)
        );
    }
    println!();
    for point in &sweep {
        print!("{:>10}", point.min_support);
        for &i in prone.iter().take(10) {
            print!(" {:>6}", point.fp_per_interval[i]);
        }
        println!();
    }
    println!(
        "\nshape check vs paper: avg FP falls with s (paper 8.5 -> 2); a small set \
         of intervals carries almost all FPs; FPs come from common ports / short \
         flow lengths colliding with anomaly meta-data."
    );
}
