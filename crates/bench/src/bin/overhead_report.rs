//! **§III-E** — computational overhead report: detector memory, per-step
//! runtimes, the miner comparison the paper cites (ref. 15: FP-tree
//! methods outperform hash-based Apriori, growing with dataset size and
//! falling support), the task-parallel low-support mining column
//! (sequential vs pool, with the tree-task count proving the recursive
//! search ran as pool tasks), the sharded-engine scaling column, and
//! the streaming engine's per-interval latency distribution with its
//! checkpoint write / restore latencies, and the
//! columnar-ingest comparison (mmap vs heap-read trace parsing, plus
//! struct-of-arrays vs record layout on the histogram-build and
//! pre-filter hot paths), and the vectorized-kernel comparison (batched
//! SplitMix64 binning and branch-free membership vs their scalar
//! loops). The sharding, streaming, mining, rule-layer, ingest, and
//! kernel numbers are also emitted as `BENCH_sharded.json` /
//! `BENCH_streaming.json` / `BENCH_mining.json` / `BENCH_rules.json` /
//! `BENCH_ingest.json` / `BENCH_kernels.json` in the working directory
//! so the perf trajectory is machine-readable across PRs.
//!
//! ```sh
//! cargo run --release -p anomex-bench --bin overhead_report -- [scale] \
//!     [--write-baseline PATH]
//! ```
//!
//! `--write-baseline PATH` re-records the gated metrics (sharded
//! overhead ratios, streaming latency percentiles, mining pool/seq
//! ratios, rule-layer overhead ratios, columnar-ingest ratios,
//! kernel batched/scalar ratios) as a fresh
//! `ci/bench-baseline.json`-shaped file measured by **this** run, so
//! the perf gates track the environment that produces the numbers —
//! see `ci/README.md` for the procedure.

use std::fmt::Write as _;
use std::num::NonZeroUsize;
use std::time::Instant;

use anomex_bench::report_args;
use anomex_core::{
    latency_percentile, prefilter_indices, prefilter_indices_columns, Engine, ExtractRequest,
    ExtractionConfig, PrefilterMode, StreamingExtractor,
};
use anomex_detector::kernels::{self, SmallValueSet};
use anomex_detector::{BinHasher, DetectorBank, DetectorConfig, MetaData};
use anomex_mining::par::Exec;
use anomex_mining::{MineTask, MinerKind, RuleConfig, TransactionSet};
use anomex_netflow::snapshot::{read_checkpoint, write_checkpoint};
use anomex_netflow::v5::{decode_stream, V5Exporter};
use anomex_netflow::{FlowColumns, FlowFeature};
use anomex_traffic::{table2_workload, Scenario};
use crossbeam::WorkerPool;

fn main() {
    let args = report_args(1.0);
    let scale = args.scale;

    // --- Detector memory (paper: 472 kB for 5 detectors × 3 clones × 1024 bins). ---
    let mut bank = DetectorBank::new(&DetectorConfig::default());
    let scenario = Scenario::two_weeks(42, 0.25);
    let interval = scenario.generate(10);
    let t0 = Instant::now();
    bank.observe(&interval.flows);
    let t_observe = t0.elapsed();
    println!("== §III-E overhead report ==\n");
    println!(
        "detector bank (5 features x 3 clones x 1024 bins): {:.1} kB retained \
         (paper: 472 kB)",
        bank.memory_bytes() as f64 / 1024.0
    );
    println!(
        "one interval of {} flows through all 15 clones: {t_observe:?}",
        interval.flows.len()
    );

    // --- Mining cost: the paper's worst case was 5 minutes (Python). ---
    let w = table2_workload(2009, scale);
    let mut md = MetaData::new();
    for port in [7000u64, 80, 9022, 25] {
        md.insert(FlowFeature::DstPort, port);
    }
    println!(
        "\nmining the Table II workload ({} flows, s = {}):",
        w.flows.len(),
        w.min_support
    );
    for miner in MinerKind::ALL {
        let t0 = Instant::now();
        let ex = Engine::extract(&ExtractRequest::new(&w.flows, &md, w.min_support).miner(miner));
        println!(
            "  {:<10} {:>10.1?}  ({} maximal item-sets)",
            miner.to_string(),
            t0.elapsed(),
            ex.itemsets.len()
        );
    }

    // --- Support sensitivity (paper: runtimes grow as relative support falls). ---
    println!("\nApriori vs FP-growth as the support falls (same workload):");
    let tx = TransactionSet::from_flows(&w.flows);
    println!(
        "{:>10} {:>12} {:>12} {:>10}",
        "support", "apriori", "fp-growth", "item-sets"
    );
    for div in [1u64, 2, 4, 8] {
        let s = (w.min_support / div).max(1);
        let t0 = Instant::now();
        let a = MinerKind::Apriori.mine_all(&tx, s);
        let t_apriori = t0.elapsed();
        let t0 = Instant::now();
        let f = MinerKind::FpGrowth.mine_all(&tx, s);
        let t_fp = t0.elapsed();
        assert_eq!(a.len(), f.len());
        println!("{s:>10} {t_apriori:>12.1?} {t_fp:>12.1?} {:>10}", a.len());
    }
    println!(
        "\n(paper: unoptimized Python Apriori needed up to 5 min per interval on a \
         2006-era Opteron; tree-based miners scale better at low support [15])"
    );

    let hardware = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);

    // --- Task-parallel mining at low support: sequential vs the shared
    // worker pool (candidate generation / conditional mining as tree
    // tasks; output bit-identical by construction). ---
    let pool_workers = hardware.clamp(2, 4);
    let mining_pool = WorkerPool::new(NonZeroUsize::new(pool_workers).expect("workers >= 2"));
    let overhead_ns = mining_pool.calibrate_dispatch_overhead();
    println!(
        "\ntask-parallel mining at descending supports ({pool_workers}-worker pool; \
         calibrated dispatch overhead {overhead_ns} ns/task; \
         tasks = fork/join tree tasks dispatched):"
    );
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>8} {:>8}",
        "support", "miner", "sequential", "pool", "speedup", "tasks"
    );
    let mut mining_rows: Vec<(u64, MinerKind, f64, f64, u64)> = Vec::new();
    for div in [4u64, 16, 64] {
        let s = (w.min_support / div).max(2);
        for miner in MinerKind::ALL {
            let t0 = Instant::now();
            let seq = miner.mine_all_exec(&tx, s, Exec::inline());
            let seq_ms = t0.elapsed().as_secs_f64() * 1e3;
            let tasks_before = mining_pool.tree_tasks();
            let t0 = Instant::now();
            let pooled = miner.mine_all_exec(&tx, s, Exec::Pool(&mining_pool));
            let pool_ms = t0.elapsed().as_secs_f64() * 1e3;
            let tasks = mining_pool.tree_tasks() - tasks_before;
            assert_eq!(seq, pooled, "pool output diverged for {miner} at s={s}");
            let speedup = if pool_ms > 0.0 { seq_ms / pool_ms } else { 1.0 };
            println!(
                "{s:>10} {:>10} {seq_ms:>10.1}ms {pool_ms:>10.1}ms {speedup:>7.2}x {tasks:>8}",
                miner.to_string()
            );
            mining_rows.push((s, miner, seq_ms, pool_ms, tasks));
        }
    }
    let dispatched: u64 = mining_rows.iter().map(|&(_, _, _, _, t)| t).sum();
    assert!(
        dispatched > 1,
        "multi-width pool must dispatch tree tasks (got {dispatched})"
    );

    // --- Machine-readable emitter: BENCH_mining.json. ---
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"mining_lowsupport_table2\",");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"flows\": {},", w.flows.len());
    let _ = writeln!(json, "  \"pool_workers\": {pool_workers},");
    let _ = writeln!(json, "  \"hardware_threads\": {hardware},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, &(s, miner, seq_ms, pool_ms, tasks)) in mining_rows.iter().enumerate() {
        let comma = if i + 1 < mining_rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"support\": {s}, \"miner\": \"{miner}\", \
             \"sequential_millis\": {seq_ms:.3}, \"pool_millis\": {pool_ms:.3}, \
             \"pool_tasks\": {tasks}}}{comma}"
        );
    }
    let _ = writeln!(json, "  ],");
    // Scheduler totals across the whole mining table: work-stealing and
    // queue-pressure counters, informational until the baseline
    // re-records with gates over them.
    let stats = mining_pool.stats();
    let _ = writeln!(json, "  \"tree_tasks\": {},", stats.tree_tasks);
    let _ = writeln!(json, "  \"steals\": {},", stats.steals);
    let _ = writeln!(json, "  \"max_queue_depth\": {},", stats.max_queue_depth);
    let _ = writeln!(
        json,
        "  \"dispatch_overhead_ns\": {}",
        stats.dispatch_overhead_ns
    );
    let _ = writeln!(json, "}}");
    println!(
        "scheduler totals: {} tree tasks, {} steals, queue-depth high-water {}",
        stats.tree_tasks, stats.steals, stats.max_queue_depth
    );
    match std::fs::write("BENCH_mining.json", &json) {
        Ok(()) => println!("\nwrote BENCH_mining.json"),
        Err(e) => eprintln!("\ncould not write BENCH_mining.json: {e}"),
    }

    // --- Rule-layer overhead: `run_with_rules` (the all-frequent
    // mining pass + rule fan-out + z-score ranking) vs the itemset-only
    // maximal run — the cost the `--rules` flag adds on top of plain
    // extraction, at the supports where the rule lattice fans widest. ---
    let rc = RuleConfig::default();
    println!(
        "\nrule generation vs itemset-only mining at descending supports \
         ({pool_workers}-worker pool):"
    );
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>9} {:>7}",
        "support", "miner", "itemsets", "rules", "overhead", "#rules"
    );
    let mut rule_rows: Vec<(u64, MinerKind, f64, f64, usize)> = Vec::new();
    for div in [4u64, 16, 64] {
        let s = (w.min_support / div).max(2);
        for miner in MinerKind::ALL {
            let task = MineTask::maximal(miner, &tx, s);
            let t0 = Instant::now();
            let base = task.run(Exec::Pool(&mining_pool));
            let base_ms = t0.elapsed().as_secs_f64() * 1e3;
            let t0 = Instant::now();
            let out = task.run_with_rules(&rc, Exec::Pool(&mining_pool));
            let rules_ms = t0.elapsed().as_secs_f64() * 1e3;
            assert_eq!(
                out.itemsets.len(),
                base.len(),
                "the rule pass lost maximal item-sets for {miner} at s={s}"
            );
            let overhead = if base_ms > 0.0 {
                rules_ms / base_ms
            } else {
                1.0
            };
            println!(
                "{s:>10} {:>10} {base_ms:>10.1}ms {rules_ms:>10.1}ms {overhead:>8.2}x {:>7}",
                miner.to_string(),
                out.rules.len()
            );
            rule_rows.push((s, miner, base_ms, rules_ms, out.rules.len()));
        }
    }

    // --- Machine-readable emitter: BENCH_rules.json. ---
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"rules_overhead_table2\",");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"flows\": {},", w.flows.len());
    let _ = writeln!(json, "  \"pool_workers\": {pool_workers},");
    let _ = writeln!(json, "  \"hardware_threads\": {hardware},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, &(s, miner, base_ms, rules_ms, count)) in rule_rows.iter().enumerate() {
        let comma = if i + 1 < rule_rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"support\": {s}, \"miner\": \"{miner}\", \
             \"itemsets_millis\": {base_ms:.3}, \"rules_millis\": {rules_ms:.3}, \
             \"rules\": {count}}}{comma}"
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    match std::fs::write("BENCH_rules.json", &json) {
        Ok(()) => println!("\nwrote BENCH_rules.json"),
        Err(e) => eprintln!("\ncould not write BENCH_rules.json: {e}"),
    }

    // --- Sharded engine scaling: the same extraction fanned out over
    // worker threads (output bit-identical for every shard count). ---
    println!(
        "\nsharded extraction on the Table II workload ({} hardware threads available):",
        hardware
    );
    println!(
        "{:>8} {:>12} {:>10} {:>10}",
        "shards", "time", "speedup", "item-sets"
    );
    let mut rows: Vec<(usize, f64)> = Vec::new();
    let mut baseline_ms = 0.0f64;
    for shards in [1usize, 2, 4, 8] {
        let n = NonZeroUsize::new(shards).unwrap();
        let t0 = Instant::now();
        let ex = Engine::extract(&ExtractRequest::new(&w.flows, &md, w.min_support).shards(n));
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        if shards == 1 {
            baseline_ms = ms;
        }
        let speedup = if ms > 0.0 { baseline_ms / ms } else { 1.0 };
        println!(
            "{shards:>8} {ms:>10.1}ms {speedup:>9.2}x {:>10}",
            ex.itemsets.len()
        );
        rows.push((shards, ms));
    }

    // --- Machine-readable emitter: BENCH_sharded.json. ---
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"sharded_extract_table2\",");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"flows\": {},", w.flows.len());
    let _ = writeln!(json, "  \"min_support\": {},", w.min_support);
    let _ = writeln!(json, "  \"hardware_threads\": {hardware},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, &(shards, ms)) in rows.iter().enumerate() {
        let speedup = if ms > 0.0 { baseline_ms / ms } else { 1.0 };
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"shards\": {shards}, \"millis\": {ms:.3}, \"speedup\": {speedup:.3}}}{comma}"
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    match std::fs::write("BENCH_sharded.json", &json) {
        Ok(()) => println!("\nwrote BENCH_sharded.json"),
        Err(e) => eprintln!("\ncould not write BENCH_sharded.json: {e}"),
    }

    // --- Streaming engine: per-interval extraction latency over a full
    // scenario replay (flow-by-flow through the double-buffered
    // pipeline, shard work on the persistent pool). ---
    let scenario = Scenario::small(42);
    let config = ExtractionConfig {
        interval_ms: scenario.interval_ms(),
        detector: DetectorConfig {
            training_intervals: 10,
            ..DetectorConfig::default()
        },
        min_support: 800,
        ..ExtractionConfig::default()
    };
    let shards = NonZeroUsize::new(hardware.min(4)).unwrap_or(NonZeroUsize::MIN);
    let mut engine =
        StreamingExtractor::try_new(config, shards, 0).expect("valid streaming config");
    let t0 = Instant::now();
    let mut latencies: Vec<u64> = Vec::new();
    let mut flows_streamed = 0u64;
    for i in 0..scenario.interval_count() {
        for flow in scenario.generate(i).flows {
            flows_streamed += 1;
            for event in engine.push(flow) {
                latencies.push(event.process_micros);
            }
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();

    // --- Durability: checkpoint write / restore latency on the trained
    // engine. The snapshot serializes the full online state (detector
    // baselines, assembler watermarks, audit counters); the write is
    // the atomic temp-file + rename; restore rebuilds a running engine
    // (worker pool included) that resumes bit-identically. ---
    let ckpt_path = std::env::temp_dir().join("anomex-overhead-checkpoint.ckpt");
    let mut payload = Vec::new();
    let (mut snap_ms, mut write_ms) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..5 {
        let t0 = Instant::now();
        let (events, p) = engine.checkpoint();
        snap_ms = snap_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        latencies.extend(events.iter().map(|e| e.process_micros));
        let t0 = Instant::now();
        write_checkpoint(&ckpt_path, &p).expect("write checkpoint");
        write_ms = write_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        payload = p;
    }
    let (mut read_ms, mut restore_ms) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..5 {
        let t0 = Instant::now();
        let bytes = read_checkpoint(&ckpt_path).expect("read checkpoint");
        read_ms = read_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        let restored = StreamingExtractor::restore(&bytes, None).expect("restore checkpoint");
        restore_ms = restore_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        drop(restored);
    }
    std::fs::remove_file(&ckpt_path).ok();

    let (tail, summary) = engine.finish();
    latencies.extend(tail.iter().map(|e| e.process_micros));
    let (p50, p95, p99) = (
        latency_percentile(&mut latencies, 50.0),
        latency_percentile(&mut latencies, 95.0),
        latency_percentile(&mut latencies, 99.0),
    );
    let throughput = flows_streamed as f64 / wall_s;
    println!(
        "\nstreaming replay ({} intervals, {} flows, {} pool workers): \
         {:.1}s wall, {:.0} flows/s",
        summary.intervals, flows_streamed, shards, wall_s, throughput
    );
    println!(
        "per-interval extraction latency: p50 = {p50} µs, p95 = {p95} µs, p99 = {p99} µs; \
         {} alarms, {} extractions",
        summary.alarms, summary.extractions
    );
    println!(
        "checkpoint ({:.1} kB payload, best of 5): snapshot {snap_ms:.2} ms, \
         atomic write {write_ms:.2} ms, read+verify {read_ms:.2} ms, restore {restore_ms:.2} ms",
        payload.len() as f64 / 1024.0
    );

    // --- Machine-readable emitter: BENCH_streaming.json. ---
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"streaming_replay_small\",");
    let _ = writeln!(json, "  \"intervals\": {},", summary.intervals);
    let _ = writeln!(json, "  \"flows\": {flows_streamed},");
    let _ = writeln!(json, "  \"pool_workers\": {shards},");
    let _ = writeln!(json, "  \"hardware_threads\": {hardware},");
    let _ = writeln!(json, "  \"wall_seconds\": {wall_s:.3},");
    let _ = writeln!(json, "  \"flows_per_second\": {throughput:.1},");
    let _ = writeln!(json, "  \"latency_micros\": {{");
    let _ = writeln!(json, "    \"p50\": {p50},");
    let _ = writeln!(json, "    \"p95\": {p95},");
    let _ = writeln!(json, "    \"p99\": {p99}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"checkpoint\": {{");
    let _ = writeln!(json, "    \"payload_bytes\": {},", payload.len());
    let _ = writeln!(json, "    \"snapshot_millis\": {snap_ms:.3},");
    let _ = writeln!(json, "    \"write_millis\": {write_ms:.3},");
    let _ = writeln!(json, "    \"read_millis\": {read_ms:.3},");
    let _ = writeln!(json, "    \"restore_millis\": {restore_ms:.3}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"alarms\": {},", summary.alarms);
    let _ = writeln!(json, "  \"extractions\": {}", summary.extractions);
    let _ = writeln!(json, "}}");
    match std::fs::write("BENCH_streaming.json", &json) {
        Ok(()) => println!("wrote BENCH_streaming.json"),
        Err(e) => eprintln!("could not write BENCH_streaming.json: {e}"),
    }

    // --- Columnar ingest: mmap vs heap-read trace parsing, and the
    // struct-of-arrays flow store vs the record layout on its two hot
    // paths (detector histogram build, pre-filter). Runs at a FIXED
    // 0.05 scale regardless of --scale so the ratios stay comparable
    // across report invocations; both layouts are bit-identical (the
    // pre-filter outputs are asserted equal below), so wall-clock is
    // the only thing measured. ---
    const INGEST_SCALE: f64 = 0.05;
    let wi = table2_workload(2009, INGEST_SCALE);
    let mut exporter = V5Exporter::new();
    let mut trace = Vec::new();
    for dgram in exporter.export(&wi.flows) {
        trace.extend_from_slice(&dgram);
    }
    let trace_path = std::env::temp_dir().join("anomex-overhead-ingest.nfv5");
    std::fs::write(&trace_path, &trace).expect("write temp trace");
    let best_ms = |f: &mut dyn FnMut()| {
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t0 = Instant::now();
            f();
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        best
    };
    let heap_parse_ms = best_ms(&mut || {
        let data = std::fs::read(&trace_path).expect("read trace");
        std::hint::black_box(decode_stream(&data).expect("valid trace"));
    });
    let mmap_parse_ms = best_ms(&mut || {
        let map = memmap2::Mmap::open(&trace_path).expect("map trace");
        std::hint::black_box(decode_stream(&map).expect("valid trace"));
    });
    std::fs::remove_file(&trace_path).ok();
    let cols = FlowColumns::from_flows(&wi.flows);
    let hasher = DetectorBank::new(&DetectorConfig::default()).hasher();
    let hist_aos_ms = best_ms(&mut || {
        std::hint::black_box(hasher.partial(&wi.flows));
    });
    let hist_col_ms = best_ms(&mut || {
        std::hint::black_box(hasher.partial_columns(&cols, 0..cols.len()));
    });
    assert_eq!(
        prefilter_indices(&wi.flows, &md, PrefilterMode::Union),
        prefilter_indices_columns(&cols, &md, PrefilterMode::Union),
        "columnar pre-filter diverged from the record path"
    );
    let pf_aos_ms = best_ms(&mut || {
        std::hint::black_box(prefilter_indices(&wi.flows, &md, PrefilterMode::Union));
    });
    let pf_col_ms = best_ms(&mut || {
        std::hint::black_box(prefilter_indices_columns(&cols, &md, PrefilterMode::Union));
    });
    // metric name -> (baseline ms, optimized ms); ratio < 1 means the
    // optimized path (mmap / columnar) wins.
    let ingest_rows: [(&str, f64, f64); 3] = [
        ("parse", heap_parse_ms, mmap_parse_ms),
        ("histogram", hist_aos_ms, hist_col_ms),
        ("prefilter", pf_aos_ms, pf_col_ms),
    ];
    println!(
        "\ncolumnar ingest ({} flows at fixed {INGEST_SCALE} scale, {} kB trace; best of 5):",
        wi.flows.len(),
        trace.len() / 1024
    );
    println!(
        "{:>10} {:>12} {:>12} {:>7}",
        "metric", "baseline", "optimized", "ratio"
    );
    for &(metric, base_ms, opt_ms) in &ingest_rows {
        let ratio = if base_ms > 0.0 { opt_ms / base_ms } else { 1.0 };
        println!("{metric:>10} {base_ms:>10.2}ms {opt_ms:>10.2}ms {ratio:>6.2}x");
    }
    println!("(parse: heap read vs mmap; histogram/prefilter: record layout vs columnar)");

    // --- Machine-readable emitter: BENCH_ingest.json. ---
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"ingest_columnar_table2\",");
    let _ = writeln!(json, "  \"scale\": {INGEST_SCALE},");
    let _ = writeln!(json, "  \"flows\": {},", wi.flows.len());
    let _ = writeln!(json, "  \"trace_bytes\": {},", trace.len());
    let _ = writeln!(json, "  \"hardware_threads\": {hardware},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, &(metric, base_ms, opt_ms)) in ingest_rows.iter().enumerate() {
        let ratio = if base_ms > 0.0 { opt_ms / base_ms } else { 1.0 };
        let comma = if i + 1 < ingest_rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"metric\": \"{metric}\", \"baseline_millis\": {base_ms:.3}, \
             \"optimized_millis\": {opt_ms:.3}, \"ratio\": {ratio:.3}}}{comma}"
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    match std::fs::write("BENCH_ingest.json", &json) {
        Ok(()) => println!("wrote BENCH_ingest.json"),
        Err(e) => eprintln!("could not write BENCH_ingest.json: {e}"),
    }

    // --- Vectorized kernels: batched SplitMix64 binning vs the scalar
    // per-value BinHasher loop, and branch-free small-set membership vs
    // the BTreeSet probe, over the same fixed 0.05-scale Table II
    // DstPort column. Output is bit-identical either way (proptest-
    // pinned by tests/kernel_equivalence.rs); ratio < 1 means the
    // batched kernel wins. ---
    let mut kernel_values = Vec::with_capacity(cols.len());
    cols.for_each_raw(FlowFeature::DstPort, 0..cols.len(), |v| {
        kernel_values.push(v);
    });
    const KERNEL_BINS: u32 = 1024;
    let kernel_hasher = BinHasher::new(0x616e_6f6d_6578);
    let mut kernel_bins = vec![0u32; kernel_values.len()];
    let bin_scalar_ms = best_ms(&mut || {
        for (o, &v) in kernel_bins.iter_mut().zip(&kernel_values) {
            *o = kernel_hasher.bin_of(v, KERNEL_BINS);
        }
        std::hint::black_box(kernel_bins.last().copied());
    });
    let bin_batched_ms = best_ms(&mut || {
        kernels::bin_batch(
            kernel_hasher.seed(),
            KERNEL_BINS,
            &kernel_values,
            &mut kernel_bins,
        );
        std::hint::black_box(kernel_bins.last().copied());
    });
    let meta_ports: Vec<u64> = md
        .values_for(FlowFeature::DstPort)
        .map_or_else(|| vec![7000, 80, 9022, 25], |s| s.iter().copied().collect());
    let small_set = SmallValueSet::new(meta_ports.iter().copied()).expect("meta ports fit");
    let tree_set: std::collections::BTreeSet<u64> = meta_ports.iter().copied().collect();
    let mut kernel_hits = vec![0u8; kernel_values.len()];
    let member_scalar_ms = best_ms(&mut || {
        for (h, &v) in kernel_hits.iter_mut().zip(&kernel_values) {
            *h = u8::from(tree_set.contains(&v));
        }
        std::hint::black_box(kernel_hits.last().copied());
    });
    let member_batched_ms = best_ms(&mut || {
        kernel_hits.iter_mut().for_each(|h| *h = 0);
        kernels::member_batch(&small_set, &kernel_values, &mut kernel_hits);
        std::hint::black_box(kernel_hits.last().copied());
    });
    let kernel_rows: [(&str, f64, f64); 2] = [
        ("bin", bin_scalar_ms, bin_batched_ms),
        ("prefilter", member_scalar_ms, member_batched_ms),
    ];
    println!(
        "\nvectorized kernels ({} values at fixed {INGEST_SCALE} scale, backend {}; best of 5):",
        kernel_values.len(),
        kernels::active_backend().name()
    );
    println!(
        "{:>10} {:>12} {:>12} {:>7}",
        "metric", "scalar", "batched", "ratio"
    );
    for &(metric, scalar_ms, batched_ms) in &kernel_rows {
        let ratio = if scalar_ms > 0.0 {
            batched_ms / scalar_ms
        } else {
            1.0
        };
        println!("{metric:>10} {scalar_ms:>10.3}ms {batched_ms:>10.3}ms {ratio:>6.2}x");
    }
    println!(
        "(bin: per-value BinHasher loop vs bin_batch; prefilter: BTreeSet probe vs member_batch)"
    );

    // --- Machine-readable emitter: BENCH_kernels.json. ---
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"kernels_table2\",");
    let _ = writeln!(json, "  \"scale\": {INGEST_SCALE},");
    let _ = writeln!(json, "  \"values\": {},", kernel_values.len());
    let _ = writeln!(
        json,
        "  \"backend\": \"{}\",",
        kernels::active_backend().name()
    );
    let _ = writeln!(json, "  \"hardware_threads\": {hardware},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, &(metric, scalar_ms, batched_ms)) in kernel_rows.iter().enumerate() {
        let ratio = if scalar_ms > 0.0 {
            batched_ms / scalar_ms
        } else {
            1.0
        };
        let comma = if i + 1 < kernel_rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"metric\": \"{metric}\", \"scalar_millis\": {scalar_ms:.3}, \
             \"batched_millis\": {batched_ms:.3}, \"ratio\": {ratio:.3}}}{comma}"
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    match std::fs::write("BENCH_kernels.json", &json) {
        Ok(()) => println!("wrote BENCH_kernels.json"),
        Err(e) => eprintln!("could not write BENCH_kernels.json: {e}"),
    }

    // --- Baseline re-record: persist the gated metrics as measured by
    // THIS run, in the ci/bench-baseline.json shape, so the perf gates
    // track the environment that produces the numbers. ---
    if let Some(path) = args.write_baseline {
        let mut json = String::new();
        let _ = writeln!(json, "{{");
        let _ = writeln!(
            json,
            "  \"comment\": \"Committed perf baseline for scripts/bench_trend.py. \
             sharded_overhead_ratio maps shard count -> (k-shard wall time / 1-shard wall \
             time) from overhead_report's BENCH_sharded.json; a >10% relative regression \
             fails. streaming_latency_micros holds the streaming replay's per-interval \
             extraction-latency percentiles from BENCH_streaming.json; p95 is gated at >15% \
             relative (p50/p99 are informational). mining_pool_seq_ratio maps \
             'support:miner' -> (pool wall time / sequential wall time) from \
             BENCH_mining.json, and rules_overhead_ratio maps 'support:miner' -> (rule-pass \
             wall time / itemset-only wall time) from BENCH_rules.json; both are gated at \
             >25% relative plus absolute slack, and the gates stay dormant until the \
             baseline carries the sections. ingest_columnar_ratio maps an ingest metric \
             (parse/histogram/prefilter) -> (optimized wall time / baseline wall time) from \
             BENCH_ingest.json and follows the same dormant-gate rules. kernel_bin_ratio and \
             kernel_prefilter_ratio are (batched kernel wall time / scalar wall time) from \
             BENCH_kernels.json, likewise dormant until recorded here. Re-record with \
             `overhead_report <scale> \
             --write-baseline <path>` on the hardware CI actually uses (see ci/README.md); \
             keys missing on either side warn instead of failing.\","
        );
        let _ = writeln!(
            json,
            "  \"source\": \"overhead_report {scale} --write-baseline, {hardware} hardware \
             thread(s)\","
        );
        let _ = writeln!(json, "  \"sharded_overhead_ratio\": {{");
        for (i, &(shards, ms)) in rows.iter().enumerate() {
            let ratio = if baseline_ms > 0.0 {
                ms / baseline_ms
            } else {
                1.0
            };
            let comma = if i + 1 < rows.len() { "," } else { "" };
            let _ = writeln!(json, "    \"{shards}\": {ratio:.3}{comma}");
        }
        let _ = writeln!(json, "  }},");
        let _ = writeln!(json, "  \"streaming_latency_micros\": {{");
        let _ = writeln!(json, "    \"p50\": {p50},");
        let _ = writeln!(json, "    \"p95\": {p95},");
        let _ = writeln!(json, "    \"p99\": {p99}");
        let _ = writeln!(json, "  }},");
        let _ = writeln!(json, "  \"mining_pool_seq_ratio\": {{");
        for (i, &(s, miner, seq_ms, pool_ms, _)) in mining_rows.iter().enumerate() {
            let ratio = if seq_ms > 0.0 { pool_ms / seq_ms } else { 1.0 };
            let comma = if i + 1 < mining_rows.len() { "," } else { "" };
            let _ = writeln!(json, "    \"{s}:{miner}\": {ratio:.3}{comma}");
        }
        let _ = writeln!(json, "  }},");
        let _ = writeln!(json, "  \"rules_overhead_ratio\": {{");
        for (i, &(s, miner, base_ms, rules_ms, _)) in rule_rows.iter().enumerate() {
            let ratio = if base_ms > 0.0 {
                rules_ms / base_ms
            } else {
                1.0
            };
            let comma = if i + 1 < rule_rows.len() { "," } else { "" };
            let _ = writeln!(json, "    \"{s}:{miner}\": {ratio:.3}{comma}");
        }
        let _ = writeln!(json, "  }},");
        let _ = writeln!(json, "  \"ingest_columnar_ratio\": {{");
        for (i, &(metric, base_ms, opt_ms)) in ingest_rows.iter().enumerate() {
            let ratio = if base_ms > 0.0 { opt_ms / base_ms } else { 1.0 };
            let comma = if i + 1 < ingest_rows.len() { "," } else { "" };
            let _ = writeln!(json, "    \"{metric}\": {ratio:.3}{comma}");
        }
        let _ = writeln!(json, "  }},");
        let kernel_bin_ratio = if bin_scalar_ms > 0.0 {
            bin_batched_ms / bin_scalar_ms
        } else {
            1.0
        };
        let kernel_prefilter_ratio = if member_scalar_ms > 0.0 {
            member_batched_ms / member_scalar_ms
        } else {
            1.0
        };
        let _ = writeln!(json, "  \"kernel_bin_ratio\": {kernel_bin_ratio:.3},");
        let _ = writeln!(
            json,
            "  \"kernel_prefilter_ratio\": {kernel_prefilter_ratio:.3}"
        );
        let _ = writeln!(json, "}}");
        match std::fs::write(&path, &json) {
            Ok(()) => println!("re-recorded perf baseline to {path}"),
            Err(e) => eprintln!("could not write baseline {path}: {e}"),
        }
    }
}
