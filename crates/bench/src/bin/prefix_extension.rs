//! **§III-D extension** — multilevel (prefix) item-set mining on a
//! distributed subnet scan: "anomalies that affect certain network ranges,
//! such as outages or routing anomalies, can be either captured by using
//! IP address prefixes as additional dimensions for item-set mining, or by
//! applying concepts from the hierarchical heavy-hitter detection domain."
//!
//! A botnet scans one /16: no single source or destination address is
//! frequent, so canonical width-7 mining cannot name the target range.
//! Width-9 transactions with /16 prefix items pin it exactly.
//!
//! ```sh
//! cargo run --release -p anomex-bench --bin prefix_extension
//! ```

use std::net::Ipv4Addr;
use std::time::Instant;

use anomex_core::{Engine, ExtractRequest, TransactionMode};
use anomex_detector::MetaData;
use anomex_mining::MinerKind;
use anomex_netflow::{FlowFeature, FlowRecord, Protocol};
use anomex_traffic::inject::dscan;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn workload() -> Vec<FlowRecord> {
    let mut rng = StdRng::seed_from_u64(99);
    let mut flows = dscan::generate(
        Ipv4Addr::new(10, 16, 0, 0),
        445,
        1500,
        20_000,
        0,
        900_000,
        &mut rng,
    );
    for i in 0..80_000u32 {
        flows.push(
            FlowRecord::new(
                u64::from(i) * 10,
                Ipv4Addr::from(rng.random::<u32>() | 0x2000_0000),
                Ipv4Addr::from(0x0a00_0000 | (rng.random::<u32>() & 0x00FF_FFFF)),
                rng.random_range(1024..60_000),
                [80u16, 443, 25, 53][rng.random_range(0..4usize)],
                Protocol::Tcp,
            )
            .with_volume(rng.random_range(1..20), 500),
        );
    }
    flows
}

fn main() {
    let flows = workload();
    let mut md = MetaData::new();
    md.insert(FlowFeature::DstPort, 445);
    println!(
        "== §III-D prefix extension: distributed /16 scan, {} flows ==\n",
        flows.len()
    );

    for (label, mode) in [
        ("canonical width-7", TransactionMode::Canonical),
        ("prefix-extended width-9", TransactionMode::WithPrefixes),
    ] {
        let t0 = Instant::now();
        let ex = Engine::extract(
            &ExtractRequest::new(&flows, &md, 2000)
                .transactions(mode)
                .miner(MinerKind::FpGrowth),
        );
        println!("-- {label} ({:?}) --", t0.elapsed());
        for set in ex.itemsets.iter().rev() {
            println!("  {set}");
        }
        let pins_range = ex
            .itemsets
            .iter()
            .any(|s| s.to_string().contains("dstNet16"));
        println!(
            "  target range pinned: {}\n",
            if pins_range {
                "YES (dstNet16=10.16.0.0/16)"
            } else {
                "no — only port + flow shape"
            }
        );
    }
    println!(
        "paper: canonical transactions summarize the scan as a port + flow-length\n\
         pattern only; the prefix dimension names the attacked network range."
    );
}
