//! **Table II** — the §II-B worked example: maximal frequent item-sets
//! mined from 350 872 flows (port-7000 flood + injected popular ports)
//! with s = 10 000, including the per-round Apriori audit trail the paper
//! narrates ("in the first iteration, a total of 60 frequent 1-item-sets
//! were found…").
//!
//! ```sh
//! cargo run --release -p anomex-bench --bin table2_apriori [scale]
//! ```

use anomex_bench::arg_scale;
use anomex_core::{render_report, Engine, ExtractRequest};
use anomex_detector::MetaData;
use anomex_netflow::FlowFeature;
use anomex_traffic::table2_workload;
use std::time::Instant;

fn main() {
    let scale = arg_scale(1.0);
    let w = table2_workload(2009, scale);
    println!("== Table II reproduction (scale {scale}) ==");
    println!(
        "input flows: {} | minimum support: {}\n",
        w.flows.len(),
        w.min_support
    );

    let mut metadata = MetaData::new();
    for port in [u64::from(w.flood_port), 80, 9022, 25] {
        metadata.insert(FlowFeature::DstPort, port);
    }

    let t0 = Instant::now();
    let extraction = Engine::extract(&ExtractRequest::new(&w.flows, &metadata, w.min_support));
    let elapsed = t0.elapsed();

    println!("{}", render_report(&extraction));

    let port7000 = extraction
        .itemsets
        .iter()
        .filter(|s| s.to_string().contains("dstPort=7000"))
        .count();
    let proxies = w
        .proxies
        .iter()
        .filter(|p| {
            extraction
                .itemsets
                .iter()
                .any(|s| s.to_string().contains(&format!("srcIP={p}")))
        })
        .count();
    let backscatter = extraction
        .itemsets
        .iter()
        .filter(|s| s.to_string().contains("dstPort=9022"))
        .count();

    println!("-- paper-vs-measured --");
    println!(
        "total maximal item-sets     paper: 15   measured: {}",
        extraction.itemsets.len()
    );
    println!("item-sets with dstPort=7000 paper:  3   measured: {port7000}");
    println!("proxies A/B/C surfaced      paper:  3   measured: {proxies}");
    println!("backscatter item-sets       paper:  1+  measured: {backscatter}");
    println!(
        "victim E pinned             paper: yes  measured: {}",
        extraction
            .itemsets
            .iter()
            .any(|s| s.to_string().contains(&format!("dstIP={}", w.victim)))
    );
    println!(
        "\nmodified-Apriori runtime: {elapsed:?} over {} flows (paper: up to 5 min in Python on a 2006 Opteron)",
        w.flows.len()
    );
}
