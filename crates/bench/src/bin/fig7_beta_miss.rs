//! **Fig. 7** — the analytic upper bound β on the probability that an
//! anomalous feature value is eliminated by l-of-n voting (eq. (2)),
//! for p = 0.99 and n ∈ [1, 25], highlighting the l = 1 and l = n curves
//! the paper marks.
//!
//! ```sh
//! cargo run --release -p anomex-bench --bin fig7_beta_miss
//! ```

use anomex_core::beta_miss_upper;

fn main() {
    let p = 0.99;
    println!("== Fig. 7: β (miss probability upper bound) vs n and l, p = {p} ==\n");
    println!(
        "{:>3} {:>12} {:>12} {:>12} {:>12}",
        "n", "l=1", "l=ceil(n/2)", "l=n", "log10(l=n)"
    );
    for n in 1..=25u64 {
        let l_mid = n.div_ceil(2);
        let b1 = beta_miss_upper(p, n, 1);
        let bm = beta_miss_upper(p, n, l_mid);
        let bn = beta_miss_upper(p, n, n);
        println!(
            "{n:>3} {b1:>12.3e} {bm:>12.3e} {bn:>12.3e} {:>12.2}",
            bn.log10()
        );
    }

    println!("\npaper checkpoints:");
    println!(
        "  l=n, n=5  -> β = {:.3} (paper ≈ 0.049 = 1 - 0.99^5)",
        beta_miss_upper(p, 5, 5)
    );
    println!(
        "  l=n, n=25 -> β = {:.3} (paper: increases to ≈ 0.22)",
        beta_miss_upper(p, 25, 25)
    );
    println!(
        "  minimum at l=1 for every n; β grows with l at fixed n — the \
         trade-off the voting parameters settle (paper §III-C)."
    );
}
