//! **§III-B parameter sensitivity** — the paper's first evaluation
//! paragraph: "We found small differences in the detection results for k
//! equal to 512, 1024, and 2048. We also found that the number of
//! detections decreases with the interval length Δ. In particular, setting
//! k to 1024 and Δ to 5, 10, and 15 min, we detected 62, 52, and 31
//! anomalous intervals, respectively."
//!
//! This experiment re-slices the same two-week flow stream at Δ ∈ {5, 10,
//! 15} min and sweeps k ∈ {512, 1024, 2048}, counting alarmed intervals.
//!
//! ```sh
//! cargo run --release -p anomex-bench --bin sensitivity_sweep [scale]
//! ```

use anomex_bench::arg_scale;
use anomex_detector::{DetectorBank, DetectorConfig};
use anomex_netflow::{IntervalAssembler, MINUTE_MS};
use anomex_traffic::{Scenario, INTERVALS_PER_DAY};

/// Run detection over the scenario re-intervaled at `delta_ms` with `k`
/// bins; returns (alarmed anomalous, total anomalous, false alarms, total
/// clean) sub-intervals after training.
fn run(scenario: &Scenario, delta_ms: u64, bins: u32) -> (usize, usize, usize, usize) {
    // Scale the training period so σ̂ always sees one day of traffic.
    let training = (INTERVALS_PER_DAY as usize) * 15 * 60_000 / (delta_ms as usize) / 2;
    let config = DetectorConfig {
        bins,
        training_intervals: training,
        ..DetectorConfig::default()
    };
    let mut bank = DetectorBank::new(&config);
    let mut assembler = IntervalAssembler::new(0, delta_ms);

    // Ground truth at sub-interval granularity: a sub-interval is
    // anomalous if it overlaps an event's 15-minute window.
    let anomalous_15min = scenario.anomalous_intervals();
    let is_anomalous = |begin_ms: u64| {
        let fifteen = begin_ms / (15 * MINUTE_MS);
        anomalous_15min.contains(&fifteen)
    };

    let skip_ms = INTERVALS_PER_DAY * 15 * MINUTE_MS; // training day
    let (mut tp, mut pos, mut fp, mut neg) = (0, 0, 0, 0);
    let mut process =
        |begin_ms: u64, flows: &[anomex_netflow::FlowRecord], bank: &mut DetectorBank| {
            let obs = bank.observe(flows);
            if begin_ms < skip_ms {
                return;
            }
            match (is_anomalous(begin_ms), obs.alarm) {
                (true, true) => {
                    tp += 1;
                    pos += 1;
                }
                (true, false) => pos += 1,
                (false, true) => {
                    fp += 1;
                    neg += 1;
                }
                (false, false) => neg += 1,
            }
        };

    for i in 0..scenario.interval_count() {
        let labeled = scenario.generate(i);
        for flow in labeled.flows {
            for closed in assembler.push(flow) {
                process(closed.begin_ms, &closed.flows, &mut bank);
            }
        }
    }
    if let Some(closed) = assembler.flush() {
        process(closed.begin_ms, &closed.flows, &mut bank);
    }
    (tp, pos, fp, neg)
}

fn main() {
    let scale = arg_scale(0.15);
    let scenario = Scenario::two_weeks(42, scale);
    println!("== §III-B sensitivity sweep (scale {scale}) ==\n");

    println!("-- interval length Δ (k = 1024) --");
    println!(
        "{:>8} {:>18} {:>12} {:>12}",
        "Δ (min)", "alarmed anomalous", "false alarms", "clean ivs"
    );
    for minutes in [5u64, 10, 15] {
        let (tp, pos, fp, neg) = run(&scenario, minutes * MINUTE_MS, 1024);
        println!(
            "{minutes:>8} {:>18} {fp:>12} {neg:>12}",
            format!("{tp}/{pos}")
        );
    }
    println!(
        "(paper: 62 / 52 / 31 detected intervals at Δ = 5/10/15: shorter intervals\n\
         slice one event into several detectable windows. Reproduced direction:\n\
         more alarmed intervals at Δ = 5 than Δ = 15. The Δ = 10 dip is an artifact\n\
         of this generator's grid-aligned 15-min event windows, whose onsets are\n\
         split across misaligned 10-min windows.)\n"
    );

    println!("-- hash length k (Δ = 15 min) --");
    println!(
        "{:>8} {:>18} {:>12} {:>12}",
        "k", "alarmed anomalous", "false alarms", "clean ivs"
    );
    for bins in [512u32, 1024, 2048] {
        let (tp, pos, fp, neg) = run(&scenario, 15 * MINUTE_MS, bins);
        println!("{bins:>8} {:>18} {fp:>12} {neg:>12}", format!("{tp}/{pos}"));
    }
    println!("(paper: \"small differences in the detection results for k = 512, 1024, 2048\")");
}
