//! **Fig. 6** — ROC curves (false-positive rate vs. true-positive rate)
//! for three histogram clones, produced by sweeping the alarm threshold
//! over the normalized KL first-difference scores of a two-week run.
//!
//! The paper's ground truth (manual inspection) includes *marginal*
//! anomalies that strict thresholds miss — that is why its curve passes
//! TPR ≈ 0.4 at FPR 0.01 and only reaches TPR 1.0 at FPR 0.05–0.08. To
//! reproduce that regime, this experiment grades the planted events from
//! far-below-noise to clearly-visible (×0.05 … ×1.0 of their nominal
//! volume).
//!
//! ```sh
//! cargo run --release -p anomex-bench --bin fig6_roc [scale]
//! ```

use anomex_bench::{arg_scale, eval_config};
use anomex_core::run_scenario;
use anomex_detector::RocCurve;
use anomex_traffic::{Scenario, FIFTEEN_MIN_MS, INTERVALS_PER_DAY};

fn main() {
    let scale = arg_scale(0.25);
    let base = Scenario::two_weeks(42, scale);

    // Grade the 36 events across difficulty levels: many weak, some
    // strong — the detectability mix a two-week backbone trace actually
    // contains.
    let grades = [0.05, 0.10, 0.20, 0.40, 0.70, 1.00];
    let events: Vec<_> = base
        .events()
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let mut e = e.clone();
            let g = grades[i % grades.len()];
            e.flows_per_interval = ((e.flows_per_interval as f64 * g) as u64).max(5);
            e
        })
        .collect();
    let scenario = Scenario::new(base.config().clone(), events);

    let config = eval_config(FIFTEEN_MIN_MS, INTERVALS_PER_DAY as usize / 2, 100);
    println!("== Fig. 6: per-clone ROC over two weeks with graded events (scale {scale}) ==");
    let run = run_scenario(&scenario, &config);

    // Skip the training day: scores there are zero by construction.
    let skip = INTERVALS_PER_DAY as usize;
    let truth: Vec<bool> = run.truth[skip..].to_vec();
    println!(
        "ground truth: {} anomalous intervals, graded volumes {:?}\n",
        truth.iter().filter(|&&t| t).count(),
        grades
    );

    for (c, scores) in run.clone_scores.iter().enumerate() {
        let scores = &scores[skip..];
        let roc = RocCurve::from_scores(scores, &truth);
        println!("clone {c}: AUC = {:.3}", roc.auc());
        println!("{:>12} {:>8} {:>8}", "threshold", "FPR", "TPR");
        let step = (roc.points.len() / 20).max(1);
        for p in roc.points.iter().step_by(step) {
            println!("{:>12.3} {:>8.4} {:>8.4}", p.threshold, p.fpr, p.tpr);
        }
        println!(
            "paper anchors -> TPR@FPR=0.01: {:.2} (paper ~0.4) | TPR@FPR=0.03: {:.2} (paper ~0.8) | TPR@FPR=0.08: {:.2} (paper ~1.0)\n",
            roc.tpr_at_fpr(0.01),
            roc.tpr_at_fpr(0.03),
            roc.tpr_at_fpr(0.08)
        );
    }
    println!(
        "(the paper's curves are lower bounds — \"some of the false-positive \
         intervals might contain unknown anomalous traffic\"; the same holds here \
         for the sub-noise ×0.05 events)"
    );
}
