//! **Voting ablation (§III-C empirical companion)** — sweep the vote
//! quorum `l` for fixed n and measure, on real pipeline runs, what the
//! analytic curves of Figs. 7–8 predict: small `l` keeps more meta-data
//! values (more suspicious flows, more FP item-sets); large `l` keeps
//! fewer (risking missed anomalous values).
//!
//! ```sh
//! cargo run --release -p anomex-bench --bin voting_sweep [scale]
//! ```

use anomex_bench::{arg_scale, eval_config, supports_for};
use anomex_core::run_scenario;
use anomex_traffic::{Scenario, FIFTEEN_MIN_MS, INTERVALS_PER_DAY};

fn main() {
    let scale = arg_scale(0.25);
    let scenario = Scenario::two_weeks(42, scale);
    let n = 5;

    println!("== voting sweep: n = {n}, l = 1..={n} (scale {scale}) ==\n");
    println!(
        "{:>3} {:>9} {:>12} {:>12} {:>10} {:>8} {:>8}",
        "l", "alarms", "meta values", "susp flows", "extracted", "TP sets", "FP sets"
    );

    for l in 1..=n {
        let fpi = scenario.config().background.flows_per_interval;
        let mut config = eval_config(
            FIFTEEN_MIN_MS,
            INTERVALS_PER_DAY as usize / 2,
            supports_for(fpi)[0],
        );
        config.detector.clones = n;
        config.detector.votes = l;
        let run = run_scenario(&scenario, &config);

        let alarmed = run.alarmed_anomalous();
        let meta_values: usize = alarmed
            .iter()
            .filter_map(|r| r.extraction.as_ref())
            .map(|e| e.metadata.len())
            .sum();
        let suspicious: usize = alarmed.iter().map(|r| r.suspicious.len()).sum();
        let extracted = alarmed
            .iter()
            .filter(|r| r.evaluated.iter().any(|e| e.is_tp))
            .count();
        let tp: usize = alarmed.iter().map(|r| r.tp_itemsets()).sum();
        let fp: usize = alarmed.iter().map(|r| r.fp_itemsets()).sum();

        println!(
            "{l:>3} {:>9} {meta_values:>12} {suspicious:>12} {:>10} {tp:>8} {fp:>8}",
            alarmed.len(),
            format!("{extracted}/{}", alarmed.len()),
        );
    }

    println!(
        "\nexpected shape (Figs. 7-8): meta-data values and suspicious flows shrink \
         as l grows (γ falls), while extraction quality holds until l approaches n \
         (β grows slowly for p ≈ 1). The paper runs l = n = 3."
    );
}
