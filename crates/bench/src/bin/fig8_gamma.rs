//! **Fig. 8(a)/(b)** — the probability γ that a *normal* feature value
//! survives l-of-n voting (eq. (3)) for b = 1 and b = 5 anomalous bins out
//! of k = 1024, n ∈ [1, 25].
//!
//! ```sh
//! cargo run --release -p anomex-bench --bin fig8_gamma
//! ```

use anomex_core::{expected_normal_survivors, gamma_normal_survives};

fn panel(b: u64, k: u64) {
    println!("-- panel: b = {b}, k = {k} --");
    println!(
        "{:>3} {:>12} {:>12} {:>12}",
        "n", "l=1", "l=ceil(n/2)", "l=n"
    );
    for n in 1..=25u64 {
        let l_mid = n.div_ceil(2);
        println!(
            "{n:>3} {:>12.3e} {:>12.3e} {:>12.3e}",
            gamma_normal_survives(b, k, n, 1),
            gamma_normal_survives(b, k, n, l_mid),
            gamma_normal_survives(b, k, n, n),
        );
    }
    println!();
}

fn main() {
    println!("== Fig. 8: γ (normal value survives voting) ==\n");
    panel(1, 1024);
    panel(5, 1024);

    println!("paper checkpoints:");
    println!(
        "  b=1, l=1, n=5 -> γ = {:.2e} (≈ 1 - (1 - 1/1024)^5 ≈ 4.9e-3)",
        gamma_normal_survives(1, 1024, 5, 1)
    );
    println!(
        "  b=1, l=n=5    -> γ = {:.2e} (≈ (1/1024)^5: unanimous voting almost \
         never keeps a colliding value)",
        gamma_normal_survives(1, 1024, 5, 5)
    );
    println!(
        "  b=5 vs b=1 at l=2, n=3: {:.2e} vs {:.2e} — γ grows dramatically with \
         the number of anomalous bins (distributed anomalies)",
        gamma_normal_survives(5, 1024, 3, 2),
        gamma_normal_survives(1, 1024, 3, 2)
    );
    println!(
        "\nexpected normal port values kept (65 536 ports, b=3, k=1024, l=n=3): {:.3e}",
        expected_normal_survivors(65_536, 3, 1024, 3, 3)
    );
}
