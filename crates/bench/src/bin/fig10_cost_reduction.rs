//! **Fig. 10** — average classification-cost reduction `R = F / I` vs.
//! the minimum support parameter. The paper reports 600 000–800 000
//! against 0.7–2.6 M-flow intervals, increasing with s and saturating
//! once the item-set count bottoms out.
//!
//! ```sh
//! cargo run --release -p anomex-bench --bin fig10_cost_reduction [scale]
//! ```

use anomex_bench::{arg_scale, bar, eval_config, supports_for};
use anomex_core::run_scenario;
use anomex_mining::MinerKind;
use anomex_traffic::{Scenario, FIFTEEN_MIN_MS, INTERVALS_PER_DAY};

fn main() {
    let scale = arg_scale(0.25);
    let scenario = Scenario::two_weeks(42, scale);
    let fpi = scenario.config().background.flows_per_interval;
    let config = eval_config(
        FIFTEEN_MIN_MS,
        INTERVALS_PER_DAY as usize / 2,
        supports_for(fpi)[0],
    );
    println!("== Fig. 10: classification-cost reduction vs minimum support (scale {scale}) ==");
    let run = run_scenario(&scenario, &config);
    let flows: Vec<usize> = run
        .alarmed_anomalous()
        .iter()
        .map(|r| r.total_flows)
        .collect();
    println!(
        "alarmed anomalous intervals: {} | flows per interval: {}..{}\n",
        flows.len(),
        flows.iter().min().copied().unwrap_or(0),
        flows.iter().max().copied().unwrap_or(0),
    );

    let supports = supports_for(fpi);
    let costs = run.cost_sweep(&supports, MinerKind::FpGrowth);
    let max = costs.iter().map(|&(_, r)| r).fold(0.0f64, f64::max);

    println!("{:>10} {:>14}  profile", "support", "avg reduction");
    for &(s, r) in &costs {
        println!("{s:>10} {r:>14.0}  {}", bar(r, max, 40));
    }

    // Shape checks.
    let increasing = costs.windows(2).all(|w| w[1].1 >= w[0].1 * 0.98);
    let saturation = if costs.len() >= 2 {
        let tail = costs[costs.len() - 1].1 / costs[costs.len() - 2].1;
        (0.9..=1.2).contains(&tail)
    } else {
        false
    };
    println!("\nshape check vs paper:");
    println!("  reduction grows with support: {increasing} (paper: yes)");
    println!("  saturates at high support:    {saturation} (paper: yes, once the minimum item-set count is reached)");
    println!(
        "  magnitude ≈ interval flow count / handful of item-sets (paper: 600k-800k \
         against ~1M-flow intervals; scales linearly with the workload)"
    );
}
