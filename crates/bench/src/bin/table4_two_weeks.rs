//! **Table IV** — the two-week evaluation: 36 events in 31 anomalous
//! intervals across seven classes. Prints per-class occurrences, average
//! event flows, and — beyond the paper's table — how many of each class
//! were detected and extracted by the pipeline (the paper reports 31/31
//! extraction in §III-D).
//!
//! ```sh
//! cargo run --release -p anomex-bench --bin table4_two_weeks [scale]
//! ```

use anomex_bench::{arg_scale, eval_config};
use anomex_core::run_scenario;
use anomex_traffic::{Scenario, FIFTEEN_MIN_MS, INTERVALS_PER_DAY};
use std::time::Instant;

fn main() {
    let scale = arg_scale(0.25);
    let scenario = Scenario::two_weeks(42, scale);
    // The paper's s = 10 000 against ~1 M-flow intervals is ~1% of the
    // interval volume; use the same relative support here.
    let min_support = ((scenario.config().background.flows_per_interval as f64) * 0.01) as u64;
    let config = eval_config(
        FIFTEEN_MIN_MS,
        INTERVALS_PER_DAY as usize / 2,
        min_support.max(10),
    );

    println!(
        "== Table IV reproduction: two weeks, {} intervals, ~{} flows/interval, s = {} ==",
        scenario.interval_count(),
        scenario.config().background.flows_per_interval,
        config.min_support
    );
    let t0 = Instant::now();
    let run = run_scenario(&scenario, &config);
    println!("(pipeline run took {:?})\n", t0.elapsed());

    println!(
        "{:<20} {:>11} {:>12} {:>9} {:>10}",
        "anomaly class", "occurrences", "avg #flows", "detected", "extracted"
    );
    let rows = run.table4(&scenario);
    let mut total = (0usize, 0usize, 0usize);
    for row in &rows {
        println!(
            "{:<20} {:>11} {:>12.0} {:>9} {:>10}",
            row.class, row.occurrences, row.avg_flows, row.detected, row.extracted
        );
        total.0 += row.occurrences;
        total.1 += row.detected;
        total.2 += row.extracted;
    }
    println!(
        "{:<20} {:>11} {:>12} {:>9} {:>10}",
        "TOTAL", total.0, "", total.1, total.2
    );

    let (tp, fp, fns, tn) = run.detection_counts(INTERVALS_PER_DAY as usize);
    println!("\ninterval-level detection after the training day:");
    println!(
        "  anomalous intervals alarmed: {tp} / {} (paper: 31/31 analyzed)",
        tp + fns
    );
    println!("  false alarms: {fp} over {} clean intervals", fp + tn);

    // The paper's §III-D headline: item-set mining extracted the anomaly
    // in all studied cases.
    let alarmed = run.alarmed_anomalous();
    let extracted = alarmed
        .iter()
        .filter(|r| r.evaluated.iter().any(|e| e.is_tp))
        .count();
    println!(
        "  alarmed anomalous intervals with the event extracted: {extracted} / {}",
        alarmed.len()
    );
    let fp_counts: Vec<usize> = alarmed.iter().map(|r| r.fp_itemsets()).collect();
    let zero = fp_counts.iter().filter(|&&c| c == 0).count();
    println!(
        "  FP item-sets at s = {}: avg {:.1}, zero-FP intervals {}/{} (paper: 70% zero-FP)",
        config.min_support,
        fp_counts.iter().sum::<usize>() as f64 / fp_counts.len().max(1) as f64,
        zero,
        fp_counts.len()
    );
}
