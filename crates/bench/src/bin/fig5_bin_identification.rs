//! **Fig. 5** — convergence of the iterative anomalous-bin identification:
//! the KL distance after each simulated bin removal, dropping sharply in
//! the first round and crossing the alarm-clearing target within a few
//! rounds.
//!
//! The clearing target is computed exactly as the live detector computes
//! it: previous interval's KL plus the MAD-fitted 3σ̂ threshold on the KL
//! first difference.
//!
//! ```sh
//! cargo run --release -p anomex-bench --bin fig5_bin_identification [scale]
//! ```

use anomex_bench::{arg_scale, bar};
use anomex_detector::{
    identify_anomalous_bins, kl_distance, BinHasher, FeatureHistogram, FirstDiffThreshold,
};
use anomex_netflow::FlowFeature;
use anomex_traffic::Scenario;

fn main() {
    let scale = arg_scale(0.25);
    let scenario = Scenario::two_weeks(42, scale);

    // A flooding interval; train the threshold on the preceding intervals.
    let flood_event = scenario
        .events()
        .iter()
        .find(|e| matches!(e.class(), anomex_traffic::AnomalyClass::Flooding))
        .expect("the two-week scenario plants floods");
    let at = flood_event.start_interval;
    let hasher = BinHasher::new(77);
    let hist = |i: u64| {
        FeatureHistogram::build(
            FlowFeature::DstPort,
            hasher,
            1024,
            &scenario.generate(i).flows,
        )
    };

    // KL series over the 40 intervals before the event.
    let mut kls = Vec::new();
    let mut prev = hist(at - 41);
    for i in (at - 40)..=at {
        let cur = hist(i);
        kls.push(kl_distance(cur.counts(), prev.counts()));
        prev = cur;
    }
    let diffs: Vec<f64> = kls.windows(2).map(|w| w[1] - w[0]).collect();
    let threshold = FirstDiffThreshold::fit(3.0, &diffs[..diffs.len() - 1]);
    let kl_prev = kls[kls.len() - 2];
    let target = kl_prev + threshold.value();

    let current = hist(at);
    let reference = hist(at - 1);
    let id = identify_anomalous_bins(current.counts(), reference.counts(), target);

    println!(
        "== Fig. 5: iterative bin identification on the {} flood (interval {at}) ==",
        flood_event.id
    );
    println!(
        "dstPort histogram, k = 1024 | σ̂ = {:.2e} | clearing target KL = {target:.5}\n",
        threshold.sigma()
    );
    println!("{:>6} {:>12}  trajectory", "round", "KL distance");
    let max = id.kl_trajectory[0];
    for (round, kl) in id.kl_trajectory.iter().enumerate() {
        println!("{round:>6} {kl:>12.6}  {}", bar(*kl, max, 50));
    }
    println!("\nbins removed ({} rounds): {:?}", id.bins.len(), id.bins);
    println!("converged: {}", id.converged);

    let first_drop = (id.kl_trajectory[0] - id.kl_trajectory[1]) / id.kl_trajectory[0];
    println!(
        "first-round drop: {:.1}% of the initial distance (paper: \"already after \
         the first round, the KL distance decreases significantly\")",
        first_drop * 100.0
    );

    // Cross-check: the first removed bin holds the flood port.
    let flood_port = match flood_event.params {
        anomex_traffic::EventParams::Flooding { port, .. } => u64::from(port),
        _ => unreachable!(),
    };
    println!(
        "first removed bin is the flood-port bin: {}",
        id.bins.first() == Some(&hasher.bin_of(flood_port, 1024))
    );
}
