//! # anomex-bench — experiment harness
//!
//! One binary per table/figure of the paper (run with
//! `cargo run --release -p anomex-bench --bin <name>`), plus criterion
//! timing benches (`cargo bench -p anomex-bench`). See DESIGN.md §4 for
//! the experiment index and EXPERIMENTS.md for recorded results.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use anomex_core::ExtractionConfig;
use anomex_detector::DetectorConfig;

/// Parse the first CLI argument as a volume scale (default otherwise).
///
/// # Panics
///
/// Panics (with a helpful message) on a non-numeric argument.
#[must_use]
pub fn arg_scale(default: f64) -> f64 {
    std::env::args().nth(1).map_or(default, |s| {
        s.parse()
            .unwrap_or_else(|_| panic!("expected a numeric scale, got {s:?}"))
    })
}

/// Parsed `overhead_report` command line: an optional scale (positional
/// or `--scale S`) plus the `--write-baseline PATH` re-record flag.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportArgs {
    /// Workload volume scale (first positional argument or `--scale S`).
    pub scale: f64,
    /// When set, write a freshly measured `ci/bench-baseline.json`-shaped
    /// file to this path so the perf gates track the environment that
    /// actually measured them.
    pub write_baseline: Option<String>,
}

/// The usage line every `overhead_report` argument error points at.
const REPORT_USAGE: &str = "usage: overhead_report [scale] [--scale S] [--write-baseline PATH]";

/// Parse `[scale] [--scale S] [--write-baseline PATH]` in any order
/// from the process arguments. The scale can be given positionally or
/// via `--scale`; the last occurrence wins.
///
/// # Panics
///
/// Panics (with the usage line) on a non-numeric scale, a missing flag
/// value, or an unknown flag.
#[must_use]
pub fn report_args(default_scale: f64) -> ReportArgs {
    parse_report_args(default_scale, std::env::args().skip(1))
}

fn parse_report_args(default_scale: f64, args: impl Iterator<Item = String>) -> ReportArgs {
    let mut parsed = ReportArgs {
        scale: default_scale,
        write_baseline: None,
    };
    let parse_scale = |s: &str| -> f64 {
        s.parse()
            .unwrap_or_else(|_| panic!("expected a numeric scale, got {s:?}\n{REPORT_USAGE}"))
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        if arg == "--write-baseline" {
            let path = args
                .next()
                .unwrap_or_else(|| panic!("--write-baseline needs a PATH\n{REPORT_USAGE}"));
            parsed.write_baseline = Some(path);
        } else if arg == "--scale" {
            let s = args
                .next()
                .unwrap_or_else(|| panic!("--scale needs a value\n{REPORT_USAGE}"));
            parsed.scale = parse_scale(&s);
        } else if let Some(rest) = arg.strip_prefix("--") {
            panic!("unknown flag --{rest}\n{REPORT_USAGE}");
        } else {
            parsed.scale = parse_scale(&arg);
        }
    }
    parsed
}

/// The evaluation pipeline configuration used by all scenario-driven
/// experiments: the paper's detector settings with a scenario-appropriate
/// training period and minimum support.
#[must_use]
pub fn eval_config(
    interval_ms: u64,
    training_intervals: usize,
    min_support: u64,
) -> ExtractionConfig {
    ExtractionConfig {
        interval_ms,
        detector: DetectorConfig {
            training_intervals,
            ..DetectorConfig::default()
        },
        min_support,
        ..ExtractionConfig::default()
    }
}

/// The paper's support range [3000, 10000] was defined against 0.7-2.6 M
/// flows per interval, i.e. roughly 0.3%-1% of the interval volume
/// (consistent with the §II-E guidance of 1%-10% of the *pre-filtered*
/// input). Scale that relative range to this experiment's interval volume.
#[must_use]
pub fn supports_for(flows_per_interval: u64) -> Vec<u64> {
    (3..=10u64)
        .map(|m| ((m as f64 * 0.001 * flows_per_interval as f64) as u64).max(2))
        .collect()
}

/// Print a simple horizontal ASCII bar for a value in `[0, max]`.
#[must_use]
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64)
        .round()
        .clamp(0.0, width as f64) as usize;
    "#".repeat(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supports_scale_and_floor() {
        let s = supports_for(100);
        assert!(s.iter().all(|&x| x >= 2));
        // At the paper's ~1M-flow intervals the range is [3000, 10000].
        let s = supports_for(1_000_000);
        assert_eq!(s[0], 3000);
        assert_eq!(s[7], 10_000);
    }

    #[test]
    fn bars_are_bounded() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(20.0, 10.0, 10).len(), 10);
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn eval_config_is_valid() {
        assert!(eval_config(60_000, 10, 500).validate().is_ok());
    }

    #[test]
    fn report_args_parse_scale_and_baseline_in_any_order() {
        let parse =
            |args: &[&str]| super::parse_report_args(1.0, args.iter().map(ToString::to_string));
        assert_eq!(parse(&[]).scale, 1.0);
        assert_eq!(parse(&["0.5"]).scale, 0.5);
        let a = parse(&["0.5", "--write-baseline", "ci/bench-baseline.json"]);
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.write_baseline.as_deref(), Some("ci/bench-baseline.json"));
        let a = parse(&["--write-baseline", "out.json", "0.25"]);
        assert_eq!(a.scale, 0.25);
        assert_eq!(a.write_baseline.as_deref(), Some("out.json"));
    }

    #[test]
    fn report_args_accept_scale_flag() {
        let parse =
            |args: &[&str]| super::parse_report_args(1.0, args.iter().map(ToString::to_string));
        assert_eq!(parse(&["--scale", "0.05"]).scale, 0.05);
        let a = parse(&["--scale", "0.1", "--write-baseline", "out.json"]);
        assert_eq!(a.scale, 0.1);
        assert_eq!(a.write_baseline.as_deref(), Some("out.json"));
        // Positional and flag forms mix; the last occurrence wins.
        assert_eq!(parse(&["0.5", "--scale", "0.2"]).scale, 0.2);
    }

    #[test]
    #[should_panic(expected = "--write-baseline needs a PATH")]
    fn report_args_reject_missing_baseline_path() {
        let _ = super::parse_report_args(1.0, ["--write-baseline".to_string()].into_iter());
    }

    #[test]
    #[should_panic(expected = "usage: overhead_report")]
    fn report_args_print_usage_on_unknown_flag() {
        let _ = super::parse_report_args(1.0, ["--frobnicate".to_string()].into_iter());
    }

    #[test]
    #[should_panic(expected = "usage: overhead_report")]
    fn report_args_print_usage_on_bad_scale_value() {
        let _ =
            super::parse_report_args(1.0, ["--scale".to_string(), "fast".to_string()].into_iter());
    }
}
