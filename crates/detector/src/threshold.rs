//! Robust alarm thresholding on the first difference of the KL series.
//!
//! The paper observes that the first difference of the KL time series is
//! approximately zero-mean normal, and derives a robust estimate of its
//! standard deviation via the **median absolute deviation** (MAD) over a
//! limited number of training intervals (§II-C). An alarm fires when the
//! first difference exceeds `α·σ̂` — one-sided, because positive spikes
//! mean *additional* similar flows while negative spikes mark anomaly end.

use serde::{Deserialize, Serialize};

/// Scale factor turning a MAD into a consistent σ estimate for normal data.
pub const MAD_TO_SIGMA: f64 = 1.4826;

/// Numerical floor for σ̂: a perfectly constant training series would give
/// σ̂ = 0 and make the detector fire on femto-scale float noise.
pub const SIGMA_FLOOR: f64 = 1e-9;

/// Median of a sample (average of the two middle values for even sizes).
///
/// # Panics
///
/// Panics on an empty sample.
#[must_use]
pub fn median(sample: &[f64]) -> f64 {
    assert!(!sample.is_empty(), "median of an empty sample");
    let mut v: Vec<f64> = sample.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("KL differences are never NaN"));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

/// Robust σ estimate: `1.4826 × median(|x - median(x)|)`, floored at
/// [`SIGMA_FLOOR`].
///
/// # Panics
///
/// Panics on an empty sample.
#[must_use]
pub fn robust_sigma(sample: &[f64]) -> f64 {
    let med = median(sample);
    let deviations: Vec<f64> = sample.iter().map(|x| (x - med).abs()).collect();
    (MAD_TO_SIGMA * median(&deviations)).max(SIGMA_FLOOR)
}

/// One-sided alarm threshold trained on first-difference samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FirstDiffThreshold {
    /// Threshold multiplier α (the paper uses 3).
    pub alpha: f64,
    sigma: f64,
}

impl FirstDiffThreshold {
    /// Fit from training first-differences.
    ///
    /// # Panics
    ///
    /// Panics on an empty training sample.
    #[must_use]
    pub fn fit(alpha: f64, training_diffs: &[f64]) -> Self {
        FirstDiffThreshold {
            alpha,
            sigma: robust_sigma(training_diffs),
        }
    }

    /// Reassemble a threshold from a previously fitted `(α, σ̂)` pair —
    /// the checkpoint-restore path. Because σ̂ travels as its raw bit
    /// pattern through a snapshot, the rebuilt threshold alarms on
    /// *exactly* the same first differences as the one that was saved.
    #[must_use]
    pub fn from_parts(alpha: f64, sigma: f64) -> Self {
        FirstDiffThreshold { alpha, sigma }
    }

    /// The fitted robust σ̂.
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The alarm threshold `α·σ̂`.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.alpha * self.sigma
    }

    /// One-sided alarm test: positive spikes only (paper §II-C).
    #[must_use]
    pub fn is_alarm(&self, first_diff: f64) -> bool {
        first_diff > self.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn median_empty_panics() {
        let _ = median(&[]);
    }

    #[test]
    fn robust_sigma_of_known_sample() {
        // sample: deviations from median 0 are |±1|, |±2| → MAD = 1.5.
        let s = [-2.0, -1.0, 1.0, 2.0];
        let expected = MAD_TO_SIGMA * 1.5;
        assert!((robust_sigma(&s) - expected).abs() < 1e-12);
    }

    #[test]
    fn robust_sigma_ignores_outliers() {
        // MAD is immune to a huge outlier; the sample σ is not.
        let mut clean: Vec<f64> = (0..100).map(|i| f64::from(i % 7) - 3.0).collect();
        let sigma_clean = robust_sigma(&clean);
        clean.push(1e9);
        let sigma_dirty = robust_sigma(&clean);
        assert!((sigma_clean - sigma_dirty).abs() / sigma_clean < 0.05);
    }

    #[test]
    fn constant_series_hits_floor() {
        let s = [0.0; 50];
        assert_eq!(robust_sigma(&s), SIGMA_FLOOR);
    }

    #[test]
    fn one_sided_alarm() {
        let t = FirstDiffThreshold::fit(3.0, &[-1.0, -0.5, 0.0, 0.5, 1.0]);
        let thr = t.value();
        assert!(thr > 0.0);
        assert!(t.is_alarm(thr * 1.01));
        assert!(!t.is_alarm(thr * 0.99));
        // Negative spikes NEVER alarm, however large.
        assert!(!t.is_alarm(-1e12));
    }

    #[test]
    fn alpha_scales_threshold() {
        let diffs = [-1.0, 0.0, 1.0, 2.0, -2.0];
        let t3 = FirstDiffThreshold::fit(3.0, &diffs);
        let t5 = FirstDiffThreshold::fit(5.0, &diffs);
        assert!((t5.value() / t3.value() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(t3.sigma(), t5.sigma());
    }
}
