//! Kullback–Leibler distance between binned flow-count distributions.
//!
//! The detector computes, per interval and per feature, the KL distance
//! between the current interval's histogram `p` and the previous interval's
//! histogram `q` (paper §II-C):
//!
//! ```text
//! D(p ‖ q) = Σᵢ pᵢ · log₂(pᵢ / qᵢ)
//! ```
//!
//! Zero-count bins would make the distance undefined; the paper does not
//! specify a convention, so we apply **add-one (Laplace) smoothing** to both
//! histograms before normalizing. This preserves the two properties the
//! detector relies on — identical histograms give exactly 0, and
//! distribution *changes* (not volume changes) drive the distance — while
//! keeping D finite for disjoint supports. See DESIGN.md §5.

/// KL distance in bits between two histograms of equal bin count, with
/// add-one smoothing. `p` is the current interval, `q` the reference.
///
/// # Panics
///
/// Panics if the histograms have different lengths or are empty.
#[must_use]
pub fn kl_distance(p: &[u64], q: &[u64]) -> f64 {
    assert_eq!(p.len(), q.len(), "histograms must have the same bin count");
    assert!(!p.is_empty(), "histograms must have at least one bin");
    let k = p.len() as f64;
    let p_total: u64 = p.iter().sum();
    let q_total: u64 = q.iter().sum();
    let p_norm = p_total as f64 + k;
    let q_norm = q_total as f64 + k;
    let mut d = 0.0;
    for (&pc, &qc) in p.iter().zip(q) {
        let pi = (pc as f64 + 1.0) / p_norm;
        let qi = (qc as f64 + 1.0) / q_norm;
        d += pi * (pi / qi).log2();
    }
    // Clamp the tiny negative residue floating-point rounding can leave
    // when p == q.
    d.max(0.0)
}

/// KL distance on already-normalized probability vectors (no smoothing).
/// Bins where `p == 0` contribute zero; bins where `q == 0 < p` make the
/// distance infinite, faithfully.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
#[must_use]
pub fn kl_divergence_raw(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must have the same length");
    let mut d = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi > 0.0 {
            if qi <= 0.0 {
                return f64::INFINITY;
            }
            d += pi * (pi / qi).log2();
        }
    }
    d.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_histograms_have_zero_distance() {
        let h = vec![10u64, 20, 30, 0, 5];
        assert_eq!(kl_distance(&h, &h), 0.0);
    }

    #[test]
    fn scaled_histograms_have_zero_distance() {
        // KL is about the *distribution*: doubling every count leaves the
        // distribution unchanged (up to smoothing, which vanishes as counts
        // grow). Uses large counts so smoothing is negligible.
        let p: Vec<u64> = vec![100_000, 200_000, 300_000, 400_000];
        let q: Vec<u64> = p.iter().map(|c| c * 2).collect();
        assert!(kl_distance(&p, &q) < 1e-6);
    }

    #[test]
    fn distance_is_positive_for_different_distributions() {
        let p = vec![1000u64, 0, 0, 0];
        let q = vec![250u64, 250, 250, 250];
        assert!(kl_distance(&p, &q) > 1.0);
    }

    #[test]
    fn distance_is_asymmetric() {
        let p = vec![900u64, 50, 25, 25];
        let q = vec![250u64, 250, 250, 250];
        let d_pq = kl_distance(&p, &q);
        let d_qp = kl_distance(&q, &p);
        assert!(
            (d_pq - d_qp).abs() > 1e-3,
            "KL should be asymmetric: {d_pq} vs {d_qp}"
        );
    }

    #[test]
    fn concentrated_shift_increases_distance() {
        // An attack concentrating mass on one bin moves the distance more
        // than a diffuse wiggle of the same volume.
        let base = vec![100u64; 16];
        let mut concentrated = base.clone();
        concentrated[3] += 800;
        let mut diffuse = base.clone();
        for c in diffuse.iter_mut() {
            *c += 50;
        }
        assert!(kl_distance(&concentrated, &base) > kl_distance(&diffuse, &base));
    }

    #[test]
    fn empty_interval_against_busy_reference_is_finite() {
        let p = vec![0u64; 8];
        let q = vec![1000u64; 8];
        let d = kl_distance(&p, &q);
        assert!(d.is_finite());
        assert!(
            d < 1e-9,
            "uniform-empty vs uniform-busy has equal distributions: {d}"
        );
    }

    #[test]
    #[should_panic(expected = "same bin count")]
    fn mismatched_lengths_panic() {
        let _ = kl_distance(&[1, 2], &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn empty_histograms_panic() {
        let _ = kl_distance(&[], &[]);
    }

    #[test]
    fn raw_divergence_known_value() {
        // D([1,0] || [0.5,0.5]) = 1*log2(2) = 1 bit.
        let d = kl_divergence_raw(&[1.0, 0.0], &[0.5, 0.5]);
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn raw_divergence_infinite_when_q_zero() {
        assert!(kl_divergence_raw(&[0.5, 0.5], &[1.0, 0.0]).is_infinite());
    }

    #[test]
    fn raw_divergence_zero_p_bins_contribute_nothing() {
        let d = kl_divergence_raw(&[0.0, 1.0], &[0.5, 0.5]);
        assert!((d - 1.0).abs() < 1e-12);
    }
}
