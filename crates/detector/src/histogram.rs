//! Hashed feature histograms with bin→value reverse maps.
//!
//! A histogram counts flows per bin for one traffic feature, binning values
//! with a clone-specific hash function. Because a bin aggregates many
//! feature values (e.g., 64 ports per bin with 1024 bins over the port
//! space), the histogram also records *which* values were observed in each
//! bin during the interval — the paper's "map of bins and corresponding
//! feature values" (§II-D) needed to turn anomalous bins back into
//! candidate feature values.

use std::collections::{BTreeSet, HashMap};

use anomex_netflow::snapshot::{RestoreError, SnapshotReader, SnapshotWriter};
use anomex_netflow::{FlowFeature, FlowRecord};

use crate::hash::BinHasher;

/// One interval's histogram for one feature under one hash function.
#[derive(Debug, Clone)]
pub struct FeatureHistogram {
    feature: FlowFeature,
    hasher: BinHasher,
    counts: Vec<u64>,
    /// bin → set of feature values observed in that bin this interval.
    values: HashMap<u32, BTreeSet<u64>>,
    total: u64,
}

impl FeatureHistogram {
    /// New empty histogram with `bins` bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero.
    #[must_use]
    pub fn new(feature: FlowFeature, hasher: BinHasher, bins: u32) -> Self {
        assert!(bins > 0, "bin count must be positive");
        FeatureHistogram {
            feature,
            hasher,
            counts: vec![0; bins as usize],
            values: HashMap::new(),
            total: 0,
        }
    }

    /// Build a histogram over one interval's flows.
    #[must_use]
    pub fn build(feature: FlowFeature, hasher: BinHasher, bins: u32, flows: &[FlowRecord]) -> Self {
        let mut h = Self::new(feature, hasher, bins);
        for flow in flows {
            h.add(flow);
        }
        h
    }

    /// Merge another partial histogram into this one: per-bin counts add
    /// and per-bin value sets union, so merging shard partials yields
    /// exactly the histogram a single pass over the concatenated shards
    /// would have built (counts are integers — no rounding, no order
    /// dependence). Consumes `other` so bins observed in only one shard
    /// move their value set instead of copying it — the merge is the
    /// sequential fraction of a sharded observation, so it stays cheap.
    ///
    /// # Panics
    ///
    /// Panics if the histograms disagree on feature, hasher, or bin
    /// count — partials are only mergeable within one clone.
    pub fn merge(&mut self, other: FeatureHistogram) {
        assert!(
            self.feature == other.feature
                && self.hasher == other.hasher
                && self.counts.len() == other.counts.len(),
            "cannot merge histograms of different clones"
        );
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        for (bin, values) in other.values {
            match self.values.entry(bin) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    e.get_mut().extend(values);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(values);
                }
            }
        }
    }

    /// Count one flow.
    pub fn add(&mut self, flow: &FlowRecord) {
        self.add_value(self.feature.value_of(flow).raw);
    }

    /// Count one pre-extracted feature value (the uniform `u64` key of
    /// [`FlowFeature::value_of`]) — the columnar hot path, where a
    /// single-column scan extracts the keys and feeds every clone's
    /// histogram without touching the other nine columns. Bit-identical
    /// to [`add`](Self::add) by construction: `add` delegates here.
    pub fn add_value(&mut self, value: u64) {
        let bin = self.hasher.bin_of(value, self.counts.len() as u32);
        self.counts[bin as usize] += 1;
        self.total += 1;
        self.values.entry(bin).or_default().insert(value);
    }

    /// Count one value into the bin counts **without** recording it in
    /// the bin→values reverse map — the tight half of the columnar scan.
    ///
    /// Callers must register every distinct value via
    /// [`note_value`](Self::note_value) for the histogram to stay
    /// equivalent to [`add_value`](Self::add_value); splitting the two
    /// lets a column pass pay the map insert once per *distinct* value
    /// instead of once per flow.
    pub(crate) fn add_value_count(&mut self, value: u64) {
        let bin = self.hasher.bin_of(value, self.counts.len() as u32);
        self.counts[bin as usize] += 1;
        self.total += 1;
    }

    /// Count a chunk of pre-hashed bins — the kernel half of the
    /// columnar scan, fed by [`crate::kernels::bin_chunk`]. Equivalent
    /// to [`add_value_count`](Self::add_value_count) per bin (integer
    /// adds, so order and chunking cannot change the result); the same
    /// [`note_value`](Self::note_value) obligation applies.
    ///
    /// # Panics
    ///
    /// Panics if any bin is out of range for this histogram.
    pub(crate) fn add_bins(&mut self, bins: &[u32]) {
        for &bin in bins {
            self.counts[bin as usize] += 1;
        }
        self.total += bins.len() as u64;
    }

    /// Record `value` in the bin→values reverse map without counting it
    /// — the companion of [`add_value_count`](Self::add_value_count).
    pub(crate) fn note_value(&mut self, value: u64) {
        let bin = self.hasher.bin_of(value, self.counts.len() as u32);
        self.values.entry(bin).or_default().insert(value);
    }

    /// The monitored feature.
    #[must_use]
    pub fn feature(&self) -> FlowFeature {
        self.feature
    }

    /// The hash function binning this histogram.
    #[must_use]
    pub fn hasher(&self) -> BinHasher {
        self.hasher
    }

    /// Number of bins `k`.
    #[must_use]
    pub fn bins(&self) -> u32 {
        self.counts.len() as u32
    }

    /// Per-bin flow counts.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total flows counted.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Feature values observed in a bin this interval (empty if none).
    pub fn values_in_bin(&self, bin: u32) -> impl Iterator<Item = u64> + '_ {
        self.values.get(&bin).into_iter().flatten().copied()
    }

    /// Number of distinct feature values observed this interval.
    #[must_use]
    pub fn distinct_values(&self) -> usize {
        self.values.values().map(BTreeSet::len).sum()
    }

    /// Collect all values observed across a set of bins — the clone's
    /// candidate feature values once anomalous bins are identified.
    #[must_use]
    pub fn values_in_bins(&self, bins: &[u32]) -> BTreeSet<u64> {
        let mut out = BTreeSet::new();
        for &bin in bins {
            out.extend(self.values_in_bin(bin));
        }
        out
    }

    /// Serialize the histogram's contents — per-bin counts, total, and
    /// the bin→values reverse map (non-empty bins only, in ascending bin
    /// order so the encoding is deterministic despite the `HashMap`).
    /// The identifying triple (feature, hasher, bins) is *not* written:
    /// the restore side rebuilds it from the owning clone's
    /// configuration and passes it to
    /// [`decode_snapshot`](Self::decode_snapshot).
    pub fn encode_snapshot(&self, w: &mut SnapshotWriter) {
        w.usize(self.counts.len());
        for &c in &self.counts {
            w.u64(c);
        }
        w.u64(self.total);
        let mut bins: Vec<u32> = self.values.keys().copied().collect();
        bins.sort_unstable();
        w.usize(bins.len());
        for bin in bins {
            w.u32(bin);
            let set = &self.values[&bin];
            w.usize(set.len());
            for &v in set {
                w.u64(v);
            }
        }
    }

    /// Rebuild a histogram from a snapshot written by
    /// [`encode_snapshot`](Self::encode_snapshot), under the given
    /// identity (which the snapshot deliberately does not carry).
    ///
    /// # Errors
    ///
    /// [`RestoreError::Truncated`] on a short payload and
    /// [`RestoreError::Corrupt`] when the recorded bin count disagrees
    /// with `bins` or a bin index is out of range.
    pub fn decode_snapshot(
        feature: FlowFeature,
        hasher: BinHasher,
        bins: u32,
        r: &mut SnapshotReader<'_>,
    ) -> Result<Self, RestoreError> {
        let count_len = r.seq_len(8)?;
        if count_len != bins as usize {
            return Err(RestoreError::Corrupt(format!(
                "histogram has {count_len} bins, clone expects {bins}"
            )));
        }
        let mut counts = Vec::with_capacity(count_len);
        for _ in 0..count_len {
            counts.push(r.u64()?);
        }
        let total = r.u64()?;
        let occupied = r.seq_len(4)?;
        let mut values = HashMap::with_capacity(occupied);
        for _ in 0..occupied {
            let bin = r.u32()?;
            if bin >= bins {
                return Err(RestoreError::Corrupt(format!(
                    "bin {bin} out of range for {bins}-bin histogram"
                )));
            }
            let n = r.seq_len(8)?;
            let mut set = BTreeSet::new();
            for _ in 0..n {
                set.insert(r.u64()?);
            }
            values.insert(bin, set);
        }
        Ok(FeatureHistogram {
            feature,
            hasher,
            counts,
            values,
            total,
        })
    }

    /// Approximate heap footprint in bytes (counts + value maps), used to
    /// reproduce the paper's §III-E memory numbers.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        let counts = self.counts.len() * std::mem::size_of::<u64>();
        let values: usize = self
            .values
            .values()
            .map(|set| set.len() * std::mem::size_of::<u64>() + std::mem::size_of::<u32>())
            .sum();
        counts + values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomex_netflow::Protocol;
    use std::net::Ipv4Addr;

    fn flow_to_port(port: u16) -> FlowRecord {
        FlowRecord::new(
            0,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            4000,
            port,
            Protocol::Tcp,
        )
    }

    #[test]
    fn counts_are_conserved() {
        let flows: Vec<_> = (0..500u16).map(flow_to_port).collect();
        let h = FeatureHistogram::build(FlowFeature::DstPort, BinHasher::new(1), 64, &flows);
        assert_eq!(h.total(), 500);
        assert_eq!(h.counts().iter().sum::<u64>(), 500);
        assert_eq!(h.distinct_values(), 500);
    }

    #[test]
    fn repeated_value_lands_in_same_bin() {
        let flows: Vec<_> = (0..100).map(|_| flow_to_port(7000)).collect();
        let h = FeatureHistogram::build(FlowFeature::DstPort, BinHasher::new(1), 64, &flows);
        let nonzero: Vec<_> = h.counts().iter().filter(|&&c| c > 0).collect();
        assert_eq!(nonzero, vec![&100u64]);
        assert_eq!(h.distinct_values(), 1);
    }

    #[test]
    fn reverse_map_finds_the_value() {
        let flows = vec![flow_to_port(7000)];
        let h = FeatureHistogram::build(FlowFeature::DstPort, BinHasher::new(9), 1024, &flows);
        let bin = BinHasher::new(9).bin_of(7000, 1024);
        let vals: Vec<u64> = h.values_in_bin(bin).collect();
        assert_eq!(vals, vec![7000]);
        // Other bins are empty.
        let other = (bin + 1) % 1024;
        assert_eq!(h.values_in_bin(other).count(), 0);
    }

    #[test]
    fn values_in_bins_unions() {
        let flows = vec![flow_to_port(80), flow_to_port(7000), flow_to_port(25)];
        let hasher = BinHasher::new(3);
        let h = FeatureHistogram::build(FlowFeature::DstPort, hasher, 1024, &flows);
        let bins: Vec<u32> = [80u64, 7000, 25]
            .iter()
            .map(|&v| hasher.bin_of(v, 1024))
            .collect();
        let vals = h.values_in_bins(&bins);
        assert!(vals.contains(&80) && vals.contains(&7000) && vals.contains(&25));
    }

    #[test]
    fn collisions_share_a_bin() {
        // With 1 bin everything collides; the reverse map keeps them apart.
        let flows = vec![flow_to_port(1), flow_to_port(2)];
        let h = FeatureHistogram::build(FlowFeature::DstPort, BinHasher::new(1), 1, &flows);
        assert_eq!(h.counts(), &[2]);
        assert_eq!(h.values_in_bin(0).count(), 2);
    }

    #[test]
    fn memory_accounting_is_positive_and_scales() {
        let small = FeatureHistogram::build(
            FlowFeature::DstPort,
            BinHasher::new(1),
            64,
            &(0..10u16).map(flow_to_port).collect::<Vec<_>>(),
        );
        let big = FeatureHistogram::build(
            FlowFeature::DstPort,
            BinHasher::new(1),
            1024,
            &(0..10u16).map(flow_to_port).collect::<Vec<_>>(),
        );
        assert!(big.memory_bytes() > small.memory_bytes());
    }

    #[test]
    fn merged_partials_equal_a_single_pass() {
        let flows: Vec<_> = (0..997u16).map(flow_to_port).collect();
        let whole = FeatureHistogram::build(FlowFeature::DstPort, BinHasher::new(5), 64, &flows);
        for split in [1usize, 250, 500, 996] {
            let (a, b) = flows.split_at(split);
            let mut merged =
                FeatureHistogram::build(FlowFeature::DstPort, BinHasher::new(5), 64, a);
            merged.merge(FeatureHistogram::build(
                FlowFeature::DstPort,
                BinHasher::new(5),
                64,
                b,
            ));
            assert_eq!(merged.counts(), whole.counts(), "split at {split}");
            assert_eq!(merged.total(), whole.total());
            assert_eq!(merged.distinct_values(), whole.distinct_values());
            for bin in 0..64 {
                assert_eq!(
                    merged.values_in_bin(bin).collect::<Vec<_>>(),
                    whole.values_in_bin(bin).collect::<Vec<_>>(),
                    "bin {bin} split {split}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "different clones")]
    fn merging_across_clones_panics() {
        let flows = vec![flow_to_port(80)];
        let mut a = FeatureHistogram::build(FlowFeature::DstPort, BinHasher::new(1), 64, &flows);
        let b = FeatureHistogram::build(FlowFeature::DstPort, BinHasher::new(2), 64, &flows);
        a.merge(b);
    }

    #[test]
    #[should_panic(expected = "bin count must be positive")]
    fn zero_bins_panics() {
        let _ = FeatureHistogram::new(FlowFeature::DstPort, BinHasher::new(0), 0);
    }
}
