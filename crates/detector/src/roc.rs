//! Receiver-operating-characteristic analysis (paper §III-B, Fig. 6).
//!
//! The paper assesses detection accuracy with ROC curves: sweep the alarm
//! threshold, and for each setting compute the false-positive rate (alarms
//! on non-anomalous intervals / all non-anomalous intervals) and the
//! true-positive rate (alarms on ground-truth intervals / all ground-truth
//! intervals). This module is detector-agnostic: it consumes per-interval
//! *scores* (e.g., the normalized KL first difference, `d/σ̂`) and boolean
//! ground-truth labels.

use serde::{Deserialize, Serialize};

/// One point of a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// The threshold generating this point.
    pub threshold: f64,
    /// False-positive rate at this threshold.
    pub fpr: f64,
    /// True-positive rate (detection rate) at this threshold.
    pub tpr: f64,
}

/// A ROC curve: points ordered by descending threshold (ascending FPR).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RocCurve {
    /// The curve's points.
    pub points: Vec<RocPoint>,
}

impl RocCurve {
    /// Build a ROC curve from per-interval scores and ground-truth labels,
    /// sweeping the threshold over every distinct score (plus +∞).
    /// An interval alarms at threshold `t` iff `score > t` (one-sided,
    /// like the detector).
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or are empty.
    #[must_use]
    pub fn from_scores(scores: &[f64], truth: &[bool]) -> Self {
        assert_eq!(scores.len(), truth.len(), "scores and labels must align");
        assert!(!scores.is_empty(), "cannot build a ROC curve from nothing");

        let mut thresholds: Vec<f64> = scores.to_vec();
        thresholds.sort_by(|a, b| b.partial_cmp(a).expect("scores are never NaN"));
        thresholds.dedup();

        let positives = truth.iter().filter(|&&t| t).count().max(1) as f64;
        let negatives = truth.iter().filter(|&&t| !t).count().max(1) as f64;

        let mut points = vec![RocPoint {
            threshold: f64::INFINITY,
            fpr: 0.0,
            tpr: 0.0,
        }];
        for &thr in &thresholds {
            let mut tp = 0usize;
            let mut fp = 0usize;
            for (&score, &is_anomalous) in scores.iter().zip(truth) {
                if score > thr {
                    if is_anomalous {
                        tp += 1;
                    } else {
                        fp += 1;
                    }
                }
            }
            points.push(RocPoint {
                threshold: thr,
                fpr: fp as f64 / negatives,
                tpr: tp as f64 / positives,
            });
        }
        // Ensure the terminal (1,1)-ish point exists: threshold below min.
        let min_score = scores.iter().cloned().fold(f64::INFINITY, f64::min);
        let mut tp = 0usize;
        let mut fp = 0usize;
        for (&score, &is_anomalous) in scores.iter().zip(truth) {
            if score > min_score - 1.0 {
                if is_anomalous {
                    tp += 1;
                } else {
                    fp += 1;
                }
            }
        }
        points.push(RocPoint {
            threshold: min_score - 1.0,
            fpr: fp as f64 / negatives,
            tpr: tp as f64 / positives,
        });
        RocCurve { points }
    }

    /// Area under the curve via trapezoidal integration over FPR.
    #[must_use]
    pub fn auc(&self) -> f64 {
        let mut pts = self.points.clone();
        pts.sort_by(|a, b| a.fpr.partial_cmp(&b.fpr).expect("rates are never NaN"));
        let mut area = 0.0;
        for w in pts.windows(2) {
            area += (w[1].fpr - w[0].fpr) * (w[0].tpr + w[1].tpr) / 2.0;
        }
        area
    }

    /// The detection rate achieved at (or just below) a given FPR budget —
    /// the paper quotes e.g. "a detection rate of 0.8 corresponds to a
    /// false positive rate of 0.03".
    #[must_use]
    pub fn tpr_at_fpr(&self, fpr_budget: f64) -> f64 {
        self.points
            .iter()
            .filter(|p| p.fpr <= fpr_budget)
            .map(|p| p.tpr)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_gives_auc_one() {
        let scores = [0.1, 0.2, 0.3, 5.0, 6.0, 7.0];
        let truth = [false, false, false, true, true, true];
        let roc = RocCurve::from_scores(&scores, &truth);
        assert!((roc.auc() - 1.0).abs() < 1e-9, "auc = {}", roc.auc());
        assert!((roc.tpr_at_fpr(0.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn random_scores_give_diagonal_auc() {
        // Alternating labels over identical score ramp ⇒ AUC ≈ 0.5.
        let scores: Vec<f64> = (0..200).map(f64::from).collect();
        let truth: Vec<bool> = (0..200).map(|i| i % 2 == 0).collect();
        let roc = RocCurve::from_scores(&scores, &truth);
        assert!((roc.auc() - 0.5).abs() < 0.05, "auc = {}", roc.auc());
    }

    #[test]
    fn inverted_scores_give_auc_zero() {
        let scores = [5.0, 6.0, 7.0, 0.1, 0.2, 0.3];
        let truth = [false, false, false, true, true, true];
        let roc = RocCurve::from_scores(&scores, &truth);
        assert!(roc.auc() < 0.01);
    }

    #[test]
    fn endpoints_are_present() {
        let roc = RocCurve::from_scores(&[1.0, 2.0], &[false, true]);
        let first = roc.points.first().unwrap();
        assert_eq!((first.fpr, first.tpr), (0.0, 0.0));
        let last = roc.points.last().unwrap();
        assert_eq!((last.fpr, last.tpr), (1.0, 1.0));
    }

    #[test]
    fn curve_is_monotone_in_fpr_and_tpr() {
        let scores = [0.5, 1.5, 0.7, 3.0, 2.5, 0.1, 4.0, 0.2];
        let truth = [false, true, false, true, false, false, true, false];
        let roc = RocCurve::from_scores(&scores, &truth);
        for w in roc.points.windows(2) {
            assert!(w[1].fpr >= w[0].fpr - 1e-12);
            assert!(w[1].tpr >= w[0].tpr - 1e-12);
        }
    }

    #[test]
    fn tpr_at_fpr_budget() {
        let scores = [0.0, 1.0, 2.0, 3.0];
        let truth = [false, false, true, true];
        let roc = RocCurve::from_scores(&scores, &truth);
        // At FPR = 0 we can still catch both positives (threshold between
        // 1 and 2).
        assert!((roc.tpr_at_fpr(0.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_panic() {
        let _ = RocCurve::from_scores(&[1.0], &[true, false]);
    }

    #[test]
    #[should_panic(expected = "from nothing")]
    fn empty_input_panics() {
        let _ = RocCurve::from_scores(&[], &[]);
    }
}
