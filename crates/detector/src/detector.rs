//! Per-feature detector: `n` histogram clones plus l-of-n voting.

use std::collections::BTreeSet;
use std::ops::Range;

use anomex_netflow::snapshot::{RestoreError, SnapshotReader, SnapshotWriter};
use anomex_netflow::{FlowColumns, FlowFeature, FlowRecord};

use crate::clone::{CloneObservation, ClonePhase, HistogramClone};
use crate::hash::{derive_hashers, BinHasher};
use crate::vote::vote;

/// What one feature detector (all clones + voting) saw in one interval.
#[derive(Debug, Clone)]
pub struct FeatureObservation {
    /// The feature this observation belongs to.
    pub feature: FlowFeature,
    /// Per-clone observations, in clone order.
    pub clones: Vec<CloneObservation>,
    /// Number of clones that alarmed.
    pub alarmed_clones: usize,
    /// Whether the feature-level alarm fired (≥ `l` clones alarmed).
    pub alarm: bool,
    /// The voted (l-of-n) anomalous feature values; empty unless `alarm`.
    pub voted_values: BTreeSet<u64>,
}

/// Per-clone partial histograms of one feature detector over one flow
/// shard — the mergeable unit of the build-partials → merge → score
/// decomposition. Built by [`FeatureDetector::partial`] (a `&self`
/// method, so shards can run on worker threads), merged with
/// [`merge`](FeaturePartial::merge), and scored by
/// [`FeatureDetector::observe_partial`].
#[derive(Debug, Clone)]
pub struct FeaturePartial {
    histograms: Vec<crate::histogram::FeatureHistogram>,
}

impl FeaturePartial {
    /// Merge (and consume) another shard's partial into this one —
    /// per-clone histogram merges: exact integer count sums,
    /// order-independent.
    ///
    /// # Panics
    ///
    /// Panics if the partials come from detectors with different clone
    /// configurations.
    pub fn merge(&mut self, other: FeaturePartial) {
        assert_eq!(
            self.histograms.len(),
            other.histograms.len(),
            "cannot merge partials of different detectors"
        );
        for (mine, theirs) in self.histograms.iter_mut().zip(other.histograms) {
            mine.merge(theirs);
        }
    }
}

/// The immutable histogramming half of a [`FeatureDetector`]: the
/// feature, each clone's hash function, and the bin count — everything
/// needed to build per-shard partial histograms, and nothing else.
///
/// Snapshotting this once and sharing it behind an `Arc` lets persistent
/// worker-pool threads build [`FeaturePartial`]s concurrently while the
/// mutable detector state (reference histograms, thresholds, training)
/// stays exclusively with the owner for the scoring step. By
/// construction, [`partial`](FeatureHasher::partial) is bit-identical to
/// [`FeatureDetector::partial`].
#[derive(Debug, Clone)]
pub struct FeatureHasher {
    feature: FlowFeature,
    hashers: Vec<BinHasher>,
    bins: u32,
}

impl FeatureHasher {
    /// The monitored feature.
    #[must_use]
    pub fn feature(&self) -> FlowFeature {
        self.feature
    }

    /// Build all clones' histograms over one flow shard — exactly what
    /// [`FeatureDetector::partial`] builds, without needing the detector.
    #[must_use]
    pub fn partial(&self, flows: &[FlowRecord]) -> FeaturePartial {
        FeaturePartial {
            histograms: self
                .hashers
                .iter()
                .map(|&h| {
                    crate::histogram::FeatureHistogram::build(self.feature, h, self.bins, flows)
                })
                .collect(),
        }
    }

    /// Build all clones' histograms from a columnar store over the row
    /// `range` — the struct-of-arrays hot path, touching only the
    /// feature's single column. The scan walks the column in fixed
    /// [`LANES`](crate::kernels::LANES)-wide chunks; each loaded chunk
    /// feeds **every** clone through the batched bin kernel
    /// ([`crate::kernels::bin_chunk`], seed-major inner loop) before the
    /// next chunk is read, so one column pass serves all clones. A final
    /// sort + dedup of the keys lets the bin→values reverse map pay its
    /// insert once per **distinct** value instead of once per flow
    /// (repeats are set-semantics no-ops, so the result is bit-identical
    /// to [`partial`](Self::partial) over the reassembled records — the
    /// kernels match `BinHasher` bit-for-bit and integer count sums are
    /// order-independent).
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds for `cols`.
    #[must_use]
    pub fn partial_columns(&self, cols: &FlowColumns, range: Range<usize>) -> FeaturePartial {
        use crate::kernels::{self, LANES};

        let mut histograms: Vec<crate::histogram::FeatureHistogram> = self
            .hashers
            .iter()
            .map(|&h| crate::histogram::FeatureHistogram::new(self.feature, h, self.bins))
            .collect();
        let chunks = cols.raw_chunks(self.feature, range);
        let backend = kernels::active_backend();
        let mut keys: Vec<u64> = Vec::with_capacity(chunks.len());
        let mut lanes = [0u64; LANES];
        let mut bins_out = [0u32; LANES];
        for c in 0..chunks.full_chunks() {
            chunks.load(c, &mut lanes);
            keys.extend_from_slice(&lanes);
            for (h, hasher) in histograms.iter_mut().zip(&self.hashers) {
                kernels::bin_chunk(backend, hasher.seed(), self.bins, &lanes, &mut bins_out);
                h.add_bins(&bins_out);
            }
        }
        for &value in chunks.tail() {
            keys.push(value);
            for h in &mut histograms {
                h.add_value_count(value);
            }
        }
        keys.sort_unstable();
        keys.dedup();
        for h in &mut histograms {
            for &value in &keys {
                h.note_value(value);
            }
        }
        FeaturePartial { histograms }
    }
}

/// A histogram-based detector for one traffic feature.
#[derive(Debug)]
pub struct FeatureDetector {
    feature: FlowFeature,
    clones: Vec<HistogramClone>,
    votes: usize,
}

impl FeatureDetector {
    /// Build a detector with `clones` clones of `bins` bins each, requiring
    /// `votes` agreeing clones, thresholding at `alpha·σ̂` after
    /// `training_intervals` training first-differences.
    ///
    /// Clone hash functions are derived deterministically from
    /// `seed` and the feature index, so detectors over different features
    /// (and different seeds) use independent binnings.
    ///
    /// # Panics
    ///
    /// Panics if `clones` is zero or `votes` is not in `1..=clones`.
    #[must_use]
    pub fn new(
        feature: FlowFeature,
        bins: u32,
        clones: usize,
        votes: usize,
        alpha: f64,
        training_intervals: usize,
        seed: u64,
    ) -> Self {
        assert!(clones >= 1, "need at least one clone");
        assert!(
            (1..=clones).contains(&votes),
            "votes {votes} must be within 1..={clones}"
        );
        let family_seed = BinHasher::new(seed).mix(feature.index() as u64);
        let hashers = derive_hashers(family_seed, clones);
        let clones = hashers
            .into_iter()
            .map(|h| HistogramClone::new(feature, h, bins, alpha, training_intervals))
            .collect();
        FeatureDetector {
            feature,
            clones,
            votes,
        }
    }

    /// The monitored feature.
    #[must_use]
    pub fn feature(&self) -> FlowFeature {
        self.feature
    }

    /// Number of clones `n`.
    #[must_use]
    pub fn clone_count(&self) -> usize {
        self.clones.len()
    }

    /// The vote quorum `l`.
    #[must_use]
    pub fn votes(&self) -> usize {
        self.votes
    }

    /// Whether every clone has finished training.
    #[must_use]
    pub fn is_trained(&self) -> bool {
        self.clones
            .iter()
            .all(|c| c.phase() == ClonePhase::Detecting)
    }

    /// Access the clones (for ROC evaluation of individual clones).
    #[must_use]
    pub fn clones(&self) -> &[HistogramClone] {
        &self.clones
    }

    /// Snapshot the immutable histogramming half of this detector — the
    /// hash functions and bin count worker threads need to build
    /// partials without borrowing the detector itself.
    #[must_use]
    pub fn hasher_spec(&self) -> FeatureHasher {
        FeatureHasher {
            feature: self.feature,
            hashers: self.clones.iter().map(HistogramClone::hasher).collect(),
            bins: self.clones.first().map_or(0, HistogramClone::bins),
        }
    }

    /// Build all clones' histograms over one flow shard without touching
    /// detector state. Partials over disjoint shards merge into exactly
    /// what one pass over the whole interval builds.
    #[must_use]
    pub fn partial(&self, flows: &[FlowRecord]) -> FeaturePartial {
        FeaturePartial {
            histograms: self
                .clones
                .iter()
                .map(|c| c.build_histogram(flows))
                .collect(),
        }
    }

    /// Observe one interval.
    pub fn observe(&mut self, flows: &[FlowRecord]) -> FeatureObservation {
        let partial = self.partial(flows);
        self.observe_partial(partial)
    }

    /// Score a merged partial and advance every clone's state machine —
    /// the sequential tail of a sharded observation.
    ///
    /// # Panics
    ///
    /// Panics if the partial was built by a detector with a different
    /// clone configuration.
    pub fn observe_partial(&mut self, partial: FeaturePartial) -> FeatureObservation {
        assert_eq!(
            partial.histograms.len(),
            self.clones.len(),
            "partial was built by a different detector"
        );
        let observations: Vec<CloneObservation> = self
            .clones
            .iter_mut()
            .zip(partial.histograms)
            .map(|(c, h)| c.observe_histogram(h))
            .collect();
        let alarmed_clones = observations.iter().filter(|o| o.alarm).count();
        let alarm = alarmed_clones >= self.votes;
        let voted_values = if alarm {
            let sets: Vec<BTreeSet<u64>> = observations.iter().map(|o| o.values.clone()).collect();
            vote(&sets, self.votes)
        } else {
            BTreeSet::new()
        };
        FeatureObservation {
            feature: self.feature,
            clones: observations,
            alarmed_clones,
            alarm,
            voted_values,
        }
    }

    /// Change the threshold multiplier α on every clone — live
    /// reconfiguration at an interval boundary.
    pub fn set_alpha(&mut self, alpha: f64) {
        for clone in &mut self.clones {
            clone.set_alpha(alpha);
        }
    }

    /// Serialize every clone's mutable temporal state, in clone order.
    /// The detector's structure (feature, hashers, quorum) is rebuilt
    /// from configuration on restore, not written.
    pub fn encode_snapshot(&self, w: &mut SnapshotWriter) {
        w.usize(self.clones.len());
        for clone in &self.clones {
            clone.encode_snapshot(w);
        }
    }

    /// Overwrite every clone's mutable state from a snapshot written by
    /// [`encode_snapshot`](Self::encode_snapshot).
    ///
    /// # Errors
    ///
    /// [`RestoreError::Corrupt`] when the snapshot's clone count differs
    /// from this detector's configuration, plus the per-clone decode
    /// errors.
    pub fn restore_snapshot(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), RestoreError> {
        let n = r.seq_len(1)?;
        if n != self.clones.len() {
            return Err(RestoreError::Corrupt(format!(
                "snapshot has {n} clones, detector expects {}",
                self.clones.len()
            )));
        }
        for clone in &mut self.clones {
            clone.restore_snapshot(r)?;
        }
        Ok(())
    }

    /// Retained heap footprint across clones (§III-E overhead report).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.clones.iter().map(HistogramClone::memory_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomex_netflow::Protocol;
    use std::net::Ipv4Addr;

    fn background(interval: u64, salt: u64) -> Vec<FlowRecord> {
        (0..300u64)
            .map(|i| {
                FlowRecord::new(
                    interval * 60_000 + i,
                    Ipv4Addr::from(0x0a00_0000 + ((i * 7 + salt) % 128) as u32),
                    Ipv4Addr::new(10, 0, 0, 2),
                    4000,
                    (1 + (i * 13 + salt) % 500) as u16,
                    Protocol::Tcp,
                )
            })
            .collect()
    }

    fn flood(interval: u64, n: u64) -> Vec<FlowRecord> {
        let mut flows = background(interval, interval);
        for i in 0..n {
            flows.push(FlowRecord::new(
                interval * 60_000 + i,
                Ipv4Addr::new(192, 168, 1, 1),
                Ipv4Addr::new(10, 0, 0, 9),
                (2000 + (i % 30_000)) as u16,
                7000,
                Protocol::Tcp,
            ));
        }
        flows
    }

    fn trained(votes: usize) -> FeatureDetector {
        let mut det = FeatureDetector::new(FlowFeature::DstPort, 1024, 3, votes, 3.0, 12, 99);
        for i in 0..14 {
            det.observe(&background(i, i));
        }
        assert!(det.is_trained());
        det
    }

    #[test]
    fn unanimous_vote_finds_the_flood_port() {
        let mut det = trained(3);
        let obs = det.observe(&flood(14, 4000));
        assert!(obs.alarm);
        assert_eq!(obs.alarmed_clones, 3);
        assert!(obs.voted_values.contains(&7000));
        // Unanimous voting keeps very few values besides the true one:
        // every kept value collided with the anomalous bin in ALL 3 clones.
        assert!(
            obs.voted_values.len() < 50,
            "kept {}",
            obs.voted_values.len()
        );
    }

    #[test]
    fn union_vote_keeps_more_values_than_intersection() {
        let mut det_union = trained(1);
        let mut det_inter = trained(3);
        let union_obs = det_union.observe(&flood(14, 4000));
        let inter_obs = det_inter.observe(&flood(14, 4000));
        assert!(union_obs.alarm && inter_obs.alarm);
        assert!(
            union_obs.voted_values.len() >= inter_obs.voted_values.len(),
            "union {} < intersection {}",
            union_obs.voted_values.len(),
            inter_obs.voted_values.len()
        );
        assert!(inter_obs.voted_values.is_subset(&union_obs.voted_values));
    }

    #[test]
    fn no_alarm_without_quorum() {
        // With votes = 3, nothing fires on steady traffic.
        let mut det = trained(3);
        for i in 14..20 {
            let obs = det.observe(&background(i, i));
            assert!(!obs.alarm, "steady interval {i} alarmed");
            assert!(obs.voted_values.is_empty());
        }
    }

    #[test]
    fn clone_hashers_are_distinct() {
        let det = FeatureDetector::new(FlowFeature::DstPort, 64, 5, 1, 3.0, 5, 1);
        let mut seeds: Vec<u64> = det.clones().iter().map(|c| c.hasher().seed()).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 5);
    }

    #[test]
    #[should_panic(expected = "must be within")]
    fn invalid_quorum_panics() {
        let _ = FeatureDetector::new(FlowFeature::DstPort, 64, 3, 4, 3.0, 5, 1);
    }

    #[test]
    fn memory_scales_with_clones() {
        let mut one = FeatureDetector::new(FlowFeature::DstPort, 1024, 1, 1, 3.0, 5, 1);
        let mut three = FeatureDetector::new(FlowFeature::DstPort, 1024, 3, 1, 3.0, 5, 1);
        one.observe(&background(0, 0));
        three.observe(&background(0, 0));
        assert!(three.memory_bytes() > 2 * one.memory_bytes());
    }
}
