//! Batched, lane-oriented kernels for the two columnar hot loops:
//! SplitMix64 bin hashing and pre-filter set membership.
//!
//! The scalar reference for hashing is [`BinHasher`]: `mix` is the
//! SplitMix64 finalizer over the seed-offset value and `bin_of` is the
//! multiply-shift range reduction `(mix · bins) >> 64`. The kernels here
//! process fixed-width chunks of [`LANES`] `u64` lanes at a time and are
//! **bit-identical** to that reference for every input — same bins, same
//! order — which is what lets the sharded/streaming/multi-source
//! determinism suites ride on top of them unchanged.
//!
//! Two implementations exist behind one dispatch:
//!
//! - **Scalar** — branch-free array loops over `[u64; LANES]` chunks
//!   that delegate lane-by-lane to [`BinHasher`] (and to
//!   [`SmallValueSet::contains`] for membership). The compiler
//!   autovectorizes these; they are the always-correct fallback and the
//!   only implementation on non-x86-64 targets.
//! - **Avx2** — explicit `std::arch::x86_64` intrinsics, selected at
//!   runtime behind `is_x86_feature_detected!("avx2")`. 64-bit lane
//!   multiplies are composed from `_mm256_mul_epu32` partial products
//!   (exact mod 2⁶⁴), and the range reduction uses the exact 32-bit
//!   decomposition `bin = (hi·b + ((lo·b) >> 32)) >> 32` of the 128-bit
//!   multiply-shift (`hi`/`lo` are the mixed value's halves, `b` the bin
//!   count), which never overflows 64 bits.
//!
//! The backend is resolved **once** per process ([`active_backend`],
//! a `OnceLock`): setting the `ANOMEX_FORCE_SCALAR` environment variable
//! (to anything but `0` or the empty string) pins the scalar path, so CI
//! runs the whole suite under both variants and diffs them.
//!
//! # Safety
//!
//! This module is the **only** `unsafe` surface of the detector crate
//! (the crate is `deny(unsafe_code)` with a scoped allow here, mirroring
//! how `vendor/mmap` isolates its FFI). The unsafety is exactly the
//! `#[target_feature(enable = "avx2")]` functions in the private `avx2`
//! submodule and the calls into them:
//!
//! - every call site re-checks `is_x86_feature_detected!("avx2")`
//!   (a cached atomic load) before entering the `unsafe` block, so the
//!   required CPU feature is present no matter which [`KernelBackend`]
//!   value a caller passes — requesting [`KernelBackend::Avx2`] on a
//!   CPU without AVX2 silently runs the scalar fallback instead;
//! - all loads and stores are `loadu`/`storeu` (no alignment
//!   requirement) over `&[u64; LANES]` / `&mut` borrows whose size is
//!   fixed by the type, so every pointer dereference stays in bounds by
//!   construction.

use std::sync::OnceLock;

pub use anomex_netflow::LANES;

use crate::hash::BinHasher;

/// Which kernel implementation batched calls run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelBackend {
    /// Portable branch-free loops (autovectorized; always correct).
    Scalar,
    /// Runtime-detected AVX2 `std::arch` intrinsics (x86-64 only).
    /// Requesting it on a CPU without AVX2 falls back to scalar.
    Avx2,
}

impl KernelBackend {
    /// Stable lowercase name, for reports and logs.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Avx2 => "avx2",
        }
    }
}

/// The backend every batched entry point dispatches to, resolved once
/// per process: scalar when `ANOMEX_FORCE_SCALAR` is set (to anything
/// but `0`/empty), otherwise AVX2 when the CPU supports it, otherwise
/// scalar.
pub fn active_backend() -> KernelBackend {
    static BACKEND: OnceLock<KernelBackend> = OnceLock::new();
    *BACKEND.get_or_init(detect_backend)
}

fn detect_backend() -> KernelBackend {
    if std::env::var("ANOMEX_FORCE_SCALAR").is_ok_and(|v| !v.is_empty() && v != "0") {
        return KernelBackend::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        return KernelBackend::Avx2;
    }
    KernelBackend::Scalar
}

// ---------------------------------------------------------------------
// SplitMix64 mixing + multiply-shift binning
// ---------------------------------------------------------------------

/// Mix one chunk of values with the seeded SplitMix64 finalizer on the
/// requested backend — lane `k` of `out` is exactly
/// `BinHasher::new(seed).mix(values[k])`.
#[inline]
pub fn mix_chunk(backend: KernelBackend, seed: u64, values: &[u64; LANES], out: &mut [u64; LANES]) {
    match backend {
        KernelBackend::Scalar => scalar_mix_chunk(seed, values, out),
        KernelBackend::Avx2 => avx2_mix_chunk(seed, values, out),
    }
}

/// Bin one chunk of values on the requested backend — lane `k` of `out`
/// is exactly `BinHasher::new(seed).bin_of(values[k], bins)`.
///
/// # Panics
///
/// Panics if `bins` is zero.
#[inline]
pub fn bin_chunk(
    backend: KernelBackend,
    seed: u64,
    bins: u32,
    values: &[u64; LANES],
    out: &mut [u32; LANES],
) {
    assert!(bins > 0, "bin count must be positive");
    match backend {
        KernelBackend::Scalar => scalar_bin_chunk(seed, bins, values, out),
        KernelBackend::Avx2 => avx2_bin_chunk(seed, bins, values, out),
    }
}

/// [`mix_chunk`] over a whole slice on an explicit backend: full chunks
/// go through the chunk kernel, the `len % LANES` tail runs the scalar
/// reference. `out[k] == BinHasher::new(seed).mix(values[k])` for every
/// `k`.
///
/// # Panics
///
/// Panics if `values` and `out` differ in length.
pub fn mix_batch_with(backend: KernelBackend, seed: u64, values: &[u64], out: &mut [u64]) {
    assert_eq!(values.len(), out.len(), "mix_batch length mismatch");
    let mut pairs = out.chunks_exact_mut(LANES).zip(values.chunks_exact(LANES));
    for (o, v) in &mut pairs {
        let v: &[u64; LANES] = v.try_into().expect("exact chunk");
        let o: &mut [u64; LANES] = o.try_into().expect("exact chunk");
        mix_chunk(backend, seed, v, o);
    }
    let hasher = BinHasher::new(seed);
    let tail = values.len() - values.len() % LANES;
    for (o, &v) in out[tail..].iter_mut().zip(&values[tail..]) {
        *o = hasher.mix(v);
    }
}

/// [`mix_batch_with`] on the process-wide [`active_backend`].
pub fn mix_batch(seed: u64, values: &[u64], out: &mut [u64]) {
    mix_batch_with(active_backend(), seed, values, out);
}

/// [`bin_chunk`] over a whole slice on an explicit backend: full chunks
/// go through the chunk kernel, the `len % LANES` tail runs the scalar
/// reference. `out[k] == BinHasher::new(seed).bin_of(values[k], bins)`
/// for every `k`.
///
/// # Panics
///
/// Panics if `bins` is zero or `values` and `out` differ in length.
pub fn bin_batch_with(
    backend: KernelBackend,
    seed: u64,
    bins: u32,
    values: &[u64],
    out: &mut [u32],
) {
    assert!(bins > 0, "bin count must be positive");
    assert_eq!(values.len(), out.len(), "bin_batch length mismatch");
    let mut pairs = out.chunks_exact_mut(LANES).zip(values.chunks_exact(LANES));
    for (o, v) in &mut pairs {
        let v: &[u64; LANES] = v.try_into().expect("exact chunk");
        let o: &mut [u32; LANES] = o.try_into().expect("exact chunk");
        bin_chunk(backend, seed, bins, v, o);
    }
    let hasher = BinHasher::new(seed);
    let tail = values.len() - values.len() % LANES;
    for (o, &v) in out[tail..].iter_mut().zip(&values[tail..]) {
        *o = hasher.bin_of(v, bins);
    }
}

/// [`bin_batch_with`] on the process-wide [`active_backend`].
pub fn bin_batch(seed: u64, bins: u32, values: &[u64], out: &mut [u32]) {
    bin_batch_with(active_backend(), seed, bins, values, out);
}

fn scalar_mix_chunk(seed: u64, values: &[u64; LANES], out: &mut [u64; LANES]) {
    let hasher = BinHasher::new(seed);
    for (o, &v) in out.iter_mut().zip(values) {
        *o = hasher.mix(v);
    }
}

fn scalar_bin_chunk(seed: u64, bins: u32, values: &[u64; LANES], out: &mut [u32; LANES]) {
    let hasher = BinHasher::new(seed);
    for (o, &v) in out.iter_mut().zip(values) {
        *o = hasher.bin_of(v, bins);
    }
}

// ---------------------------------------------------------------------
// Branch-free small-set membership (the pre-filter's common case)
// ---------------------------------------------------------------------

/// A value set of at most [`SmallValueSet::MAX`] members stored as a
/// fixed array padded by repetition, so membership probes touch every
/// slot without branching — the pre-filter's representation for the
/// common small meta-data sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmallValueSet {
    /// Member values padded to `MAX` by repeating the first member
    /// (duplicates cannot change membership).
    padded: [u64; SmallValueSet::MAX],
    members: usize,
}

impl SmallValueSet {
    /// Largest membership the fixed probe array covers.
    pub const MAX: usize = 16;

    /// Build from the member values; `None` when the set is empty or
    /// holds more than [`MAX`](Self::MAX) values (callers then keep
    /// their ordinary set representation).
    pub fn new<I: IntoIterator<Item = u64>>(values: I) -> Option<Self> {
        let mut padded = [0u64; Self::MAX];
        let mut members = 0usize;
        for v in values {
            if members == Self::MAX {
                return None;
            }
            padded[members] = v;
            members += 1;
        }
        if members == 0 {
            return None;
        }
        let first = padded[0];
        for slot in padded.iter_mut().skip(members) {
            *slot = first;
        }
        Some(SmallValueSet { padded, members })
    }

    /// Number of members the set was built from.
    #[must_use]
    pub fn member_count(&self) -> usize {
        self.members
    }

    /// Branch-free membership probe over all [`MAX`](Self::MAX) padded
    /// slots — the scalar reference the chunk kernel matches.
    #[must_use]
    #[inline]
    pub fn contains(&self, value: u64) -> bool {
        let mut hit = 0u8;
        for &slot in &self.padded {
            hit |= u8::from(slot == value);
        }
        hit != 0
    }
}

/// Accumulate membership of one chunk into per-lane hit counters on the
/// requested backend: `hits[k] += 1` exactly when `set.contains(values[k])`
/// — the byte-lane add of the pre-filter's per-row hit counting.
#[inline]
pub fn member_chunk(
    backend: KernelBackend,
    set: &SmallValueSet,
    values: &[u64; LANES],
    hits: &mut [u8; LANES],
) {
    match backend {
        KernelBackend::Scalar => scalar_member_chunk(set, values, hits),
        KernelBackend::Avx2 => avx2_member_chunk(set, values, hits),
    }
}

/// [`member_chunk`] over a whole slice on an explicit backend, scalar
/// tail included.
///
/// # Panics
///
/// Panics if `values` and `hits` differ in length.
pub fn member_batch_with(
    backend: KernelBackend,
    set: &SmallValueSet,
    values: &[u64],
    hits: &mut [u8],
) {
    assert_eq!(values.len(), hits.len(), "member_batch length mismatch");
    let mut pairs = hits.chunks_exact_mut(LANES).zip(values.chunks_exact(LANES));
    for (h, v) in &mut pairs {
        let v: &[u64; LANES] = v.try_into().expect("exact chunk");
        let h: &mut [u8; LANES] = h.try_into().expect("exact chunk");
        member_chunk(backend, set, v, h);
    }
    let tail = values.len() - values.len() % LANES;
    for (h, &v) in hits[tail..].iter_mut().zip(&values[tail..]) {
        *h += u8::from(set.contains(v));
    }
}

/// [`member_batch_with`] on the process-wide [`active_backend`].
pub fn member_batch(set: &SmallValueSet, values: &[u64], hits: &mut [u8]) {
    member_batch_with(active_backend(), set, values, hits);
}

fn scalar_member_chunk(set: &SmallValueSet, values: &[u64; LANES], hits: &mut [u8; LANES]) {
    for (h, &v) in hits.iter_mut().zip(values) {
        *h += u8::from(set.contains(v));
    }
}

// ---------------------------------------------------------------------
// AVX2 dispatch shims: the crate's entire unsafe surface.
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
fn avx2_mix_chunk(seed: u64, values: &[u64; LANES], out: &mut [u64; LANES]) {
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified on this CPU; the
        // target-feature function performs only unaligned loads/stores
        // within the fixed-size borrows it receives.
        unsafe { avx2::mix_chunk(seed, values, out) }
    } else {
        scalar_mix_chunk(seed, values, out);
    }
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
fn avx2_bin_chunk(seed: u64, bins: u32, values: &[u64; LANES], out: &mut [u32; LANES]) {
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified on this CPU; the
        // target-feature function performs only unaligned loads/stores
        // within the fixed-size borrows it receives.
        unsafe { avx2::bin_chunk(seed, bins, values, out) }
    } else {
        scalar_bin_chunk(seed, bins, values, out);
    }
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
fn avx2_member_chunk(set: &SmallValueSet, values: &[u64; LANES], hits: &mut [u8; LANES]) {
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified on this CPU; the
        // target-feature function performs only unaligned loads/stores
        // within the fixed-size borrows it receives.
        unsafe { avx2::member_chunk(set, values, hits) }
    } else {
        scalar_member_chunk(set, values, hits);
    }
}

// Off x86-64 the Avx2 variant is never selected by `detect_backend`;
// honoring an explicit request with the scalar loop keeps the API total.
#[cfg(not(target_arch = "x86_64"))]
fn avx2_mix_chunk(seed: u64, values: &[u64; LANES], out: &mut [u64; LANES]) {
    scalar_mix_chunk(seed, values, out);
}

#[cfg(not(target_arch = "x86_64"))]
fn avx2_bin_chunk(seed: u64, bins: u32, values: &[u64; LANES], out: &mut [u32; LANES]) {
    scalar_bin_chunk(seed, bins, values, out);
}

#[cfg(not(target_arch = "x86_64"))]
fn avx2_member_chunk(set: &SmallValueSet, values: &[u64; LANES], hits: &mut [u8; LANES]) {
    scalar_member_chunk(set, values, hits);
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod avx2 {
    //! The explicit AVX2 kernels. Every function here is
    //! `#[target_feature(enable = "avx2")]` and therefore `unsafe` to
    //! call: the caller must have verified AVX2 support (the shims above
    //! do, via the cached `is_x86_feature_detected!`). Within the
    //! functions, all memory access is `loadu`/`storeu` over fixed-size
    //! array borrows — no pointer arithmetic beyond the second half of
    //! an 8-lane chunk, which the `[u64; LANES]` type guarantees exists.

    use std::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_cmpeq_epi64, _mm256_loadu_si256, _mm256_mul_epu32,
        _mm256_or_si256, _mm256_set1_epi64x, _mm256_setzero_si256, _mm256_slli_epi64,
        _mm256_srli_epi64, _mm256_storeu_si256, _mm256_xor_si256,
    };

    use super::{SmallValueSet, LANES};

    const GOLDEN: i64 = 0x9E37_79B9_7F4A_7C15_u64 as i64;
    const MUL1: i64 = 0xBF58_476D_1CE4_E5B9_u64 as i64;
    const MUL2: i64 = 0x94D0_49BB_1331_11EB_u64 as i64;

    /// Four-lane 64-bit multiply mod 2⁶⁴ from 32×32→64 partial
    /// products: `a·b = lo(a)·lo(b) + ((lo(a)·hi(b) + hi(a)·lo(b)) << 32)`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mul64(a: __m256i, b: __m256i) -> __m256i {
        let a_hi = _mm256_srli_epi64(a, 32);
        let b_hi = _mm256_srli_epi64(b, 32);
        let low = _mm256_mul_epu32(a, b);
        let cross = _mm256_add_epi64(_mm256_mul_epu32(a_hi, b), _mm256_mul_epu32(a, b_hi));
        _mm256_add_epi64(low, _mm256_slli_epi64(cross, 32))
    }

    /// The SplitMix64 finalizer over four seed-offset lanes —
    /// bit-identical to `BinHasher::mix` per lane (wrapping adds and
    /// multiplies are exactly the mod-2⁶⁴ lane ops).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn splitmix(v: __m256i, seed_plus_golden: __m256i) -> __m256i {
        let z = _mm256_add_epi64(v, seed_plus_golden);
        let z = mul64(
            _mm256_xor_si256(z, _mm256_srli_epi64(z, 30)),
            _mm256_set1_epi64x(MUL1),
        );
        let z = mul64(
            _mm256_xor_si256(z, _mm256_srli_epi64(z, 27)),
            _mm256_set1_epi64x(MUL2),
        );
        _mm256_xor_si256(z, _mm256_srli_epi64(z, 31))
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn mix_chunk(seed: u64, values: &[u64; LANES], out: &mut [u64; LANES]) {
        let offset = _mm256_set1_epi64x((seed.wrapping_add(GOLDEN as u64)) as i64);
        let src = values.as_ptr().cast::<__m256i>();
        let dst = out.as_mut_ptr().cast::<__m256i>();
        for half in 0..2 {
            let v = _mm256_loadu_si256(src.add(half));
            _mm256_storeu_si256(dst.add(half), splitmix(v, offset));
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn bin_chunk(seed: u64, bins: u32, values: &[u64; LANES], out: &mut [u32; LANES]) {
        let offset = _mm256_set1_epi64x((seed.wrapping_add(GOLDEN as u64)) as i64);
        // Bin count in the low 32 bits of each lane (high bits zero), as
        // `_mm256_mul_epu32` requires.
        let b = _mm256_set1_epi64x(i64::from(bins));
        let src = values.as_ptr().cast::<__m256i>();
        for half in 0..2 {
            let m = splitmix(_mm256_loadu_si256(src.add(half)), offset);
            // Exact 128-bit multiply-shift via 32-bit halves:
            //   (m · b) >> 64  ==  (hi(m)·b + ((lo(m)·b) >> 32)) >> 32
            // hi(m)·b ≤ (2³²−1)² and the added term is < 2³², so the
            // sum never wraps 64 bits and flooring composes exactly.
            let hi_prod = _mm256_mul_epu32(_mm256_srli_epi64(m, 32), b);
            let lo_prod = _mm256_mul_epu32(m, b);
            let sum = _mm256_add_epi64(hi_prod, _mm256_srli_epi64(lo_prod, 32));
            let bin = _mm256_srli_epi64(sum, 32);
            let mut lanes = [0u64; LANES / 2];
            _mm256_storeu_si256(lanes.as_mut_ptr().cast::<__m256i>(), bin);
            for (k, &lane) in lanes.iter().enumerate() {
                out[half * (LANES / 2) + k] = lane as u32;
            }
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn member_chunk(set: &SmallValueSet, values: &[u64; LANES], hits: &mut [u8; LANES]) {
        let src = values.as_ptr().cast::<__m256i>();
        for half in 0..2 {
            let v = _mm256_loadu_si256(src.add(half));
            let mut mask = _mm256_setzero_si256();
            for &slot in &set.padded {
                mask =
                    _mm256_or_si256(mask, _mm256_cmpeq_epi64(v, _mm256_set1_epi64x(slot as i64)));
            }
            // Each lane is now all-ones (member) or all-zeros; its low
            // bit is exactly the 0/1 increment the hit counter wants.
            let mut lanes = [0u64; LANES / 2];
            _mm256_storeu_si256(lanes.as_mut_ptr().cast::<__m256i>(), mask);
            for (k, &lane) in lanes.iter().enumerate() {
                hits[half * (LANES / 2) + k] += (lane & 1) as u8;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOTH: [KernelBackend; 2] = [KernelBackend::Scalar, KernelBackend::Avx2];

    fn sample_values(n: usize) -> Vec<u64> {
        (0..n as u64)
            .map(|i| {
                i.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .rotate_left((i % 64) as u32)
                    ^ (i << 7)
            })
            .collect()
    }

    #[test]
    fn backend_name_round_trips() {
        assert_eq!(KernelBackend::Scalar.name(), "scalar");
        assert_eq!(KernelBackend::Avx2.name(), "avx2");
        // Resolving twice yields the same pinned backend.
        assert_eq!(active_backend(), active_backend());
    }

    #[test]
    fn mix_batch_matches_scalar_reference_on_every_backend() {
        for &backend in &BOTH {
            for n in [0usize, 1, 7, 8, 9, 16, 63, 64, 65] {
                let values = sample_values(n);
                let mut out = vec![0u64; n];
                for seed in [0u64, 1, 42, u64::MAX] {
                    mix_batch_with(backend, seed, &values, &mut out);
                    let h = BinHasher::new(seed);
                    for (k, &v) in values.iter().enumerate() {
                        assert_eq!(out[k], h.mix(v), "{backend:?} n={n} seed={seed} lane {k}");
                    }
                }
            }
        }
    }

    #[test]
    fn bin_batch_matches_scalar_reference_on_every_backend() {
        for &backend in &BOTH {
            for n in [0usize, 1, 7, 8, 9, 40, 100] {
                let values = sample_values(n);
                let mut out = vec![0u32; n];
                for seed in [0u64, 7, 0x616e_6f6d_6578] {
                    for bins in [1u32, 2, 3, 64, 1000, 1024, u32::MAX] {
                        bin_batch_with(backend, seed, bins, &values, &mut out);
                        let h = BinHasher::new(seed);
                        for (k, &v) in values.iter().enumerate() {
                            assert_eq!(
                                out[k],
                                h.bin_of(v, bins),
                                "{backend:?} n={n} seed={seed} bins={bins} lane {k}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn member_batch_accumulates_like_contains_on_every_backend() {
        let set = SmallValueSet::new([3u64, 9, 27, u64::MAX]).expect("4 values fit");
        for &backend in &BOTH {
            for n in [0usize, 1, 8, 13, 80] {
                let values: Vec<u64> = (0..n as u64).map(|i| i % 30).collect();
                let mut hits = vec![1u8; n]; // nonzero start: kernel must ADD
                member_batch_with(backend, &set, &values, &mut hits);
                for (k, &v) in values.iter().enumerate() {
                    let expected = 1 + u8::from(set.contains(v));
                    assert_eq!(hits[k], expected, "{backend:?} n={n} lane {k}");
                }
            }
        }
    }

    #[test]
    fn small_value_set_bounds() {
        assert!(SmallValueSet::new(std::iter::empty()).is_none(), "empty");
        assert!(SmallValueSet::new(0..17u64).is_none(), "17 values overflow");
        let full = SmallValueSet::new(0..16u64).expect("16 values fit");
        assert_eq!(full.member_count(), 16);
        for v in 0..16u64 {
            assert!(full.contains(v));
        }
        assert!(!full.contains(16));
        // Padding repeats a member: padded slots must not admit extras.
        let one = SmallValueSet::new([5u64]).expect("singleton");
        assert_eq!(one.member_count(), 1);
        assert!(one.contains(5));
        assert!(!one.contains(0));
    }

    #[test]
    #[should_panic(expected = "bin count must be positive")]
    fn zero_bins_panics() {
        let mut out = [0u32; LANES];
        bin_chunk(KernelBackend::Scalar, 1, 0, &[0u64; LANES], &mut out);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn batch_length_mismatch_panics() {
        let mut out = vec![0u32; 3];
        bin_batch(1, 16, &[1u64, 2, 3, 4], &mut out);
    }
}
