//! Iterative identification of anomalous histogram bins (paper §II-C,
//! Fig. 5).
//!
//! When a clone alarms, the detector must find *which bins* caused the KL
//! spike. The paper's algorithm simulates the removal of suspicious flows:
//! in each round, pick the bin with the largest absolute count difference
//! from the reference histogram, set its count equal to the reference
//! count, and recompute the KL distance — until the "cleaned" histogram no
//! longer generates an alert.

use crate::kl::kl_distance;

/// Result of the iterative bin-identification procedure.
#[derive(Debug, Clone, PartialEq)]
pub struct BinIdentification {
    /// Bins flagged anomalous, in removal order (most deviating first).
    pub bins: Vec<u32>,
    /// KL distance after each round; `kl_trajectory[0]` is the initial
    /// distance, `kl_trajectory[r]` the distance after removing `r` bins.
    /// This is exactly the series plotted in the paper's Fig. 5.
    pub kl_trajectory: Vec<f64>,
    /// Whether the procedure converged below the target (it can only fail
    /// on the pathological all-bins-differ case, after k rounds).
    pub converged: bool,
}

/// Identify anomalous bins by simulated flow removal.
///
/// `current` and `reference` are the per-bin counts of the alarming and the
/// reference interval; `target_kl` is the KL value below which the alarm
/// clears (the caller computes it from its threshold state: the alarm
/// condition is on the *first difference* of the KL series, so the target
/// is `previous_kl + threshold`).
///
/// # Panics
///
/// Panics if the histograms have different lengths or are empty.
#[must_use]
pub fn identify_anomalous_bins(
    current: &[u64],
    reference: &[u64],
    target_kl: f64,
) -> BinIdentification {
    assert_eq!(
        current.len(),
        reference.len(),
        "histograms must have the same bin count"
    );
    let mut work: Vec<u64> = current.to_vec();
    let mut bins = Vec::new();
    let mut kl_trajectory = vec![kl_distance(&work, reference)];

    while *kl_trajectory.last().expect("non-empty") > target_kl {
        // Find the not-yet-cleaned bin with the largest absolute deviation.
        let candidate = work
            .iter()
            .zip(reference)
            .enumerate()
            .filter(|(_, (&w, &r))| w != r)
            .max_by_key(|(_, (&w, &r))| w.abs_diff(r));
        let Some((bin, _)) = candidate else {
            // Fully aligned with the reference yet still above target:
            // the target is unreachable (e.g., negative). Report
            // non-convergence instead of looping.
            return BinIdentification {
                bins,
                kl_trajectory,
                converged: false,
            };
        };
        work[bin] = reference[bin];
        bins.push(bin as u32);
        kl_trajectory.push(kl_distance(&work, reference));
    }
    BinIdentification {
        bins,
        kl_trajectory,
        converged: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_spiked_bin_is_found_first() {
        let reference = vec![100u64; 16];
        let mut current = reference.clone();
        current[5] += 5000; // a flood concentrated on one bin
        let id = identify_anomalous_bins(&current, &reference, 0.001);
        assert!(id.converged);
        assert_eq!(id.bins[0], 5);
        // Removing the spike alone should clean the histogram.
        assert_eq!(id.bins.len(), 1);
        assert!(id.kl_trajectory[1] < id.kl_trajectory[0]);
    }

    #[test]
    fn multiple_spikes_found_in_deviation_order() {
        let reference = vec![1000u64; 8];
        let mut current = reference.clone();
        current[2] += 9000;
        current[6] += 4000;
        let id = identify_anomalous_bins(&current, &reference, 0.0001);
        assert!(id.converged);
        assert_eq!(&id.bins[..2], &[2, 6]);
    }

    #[test]
    fn kl_trajectory_converges_for_diffuse_spikes() {
        // Aligning one bin renormalizes the others, so the trajectory is
        // not strictly monotone in general — but it must terminate below
        // the target within k rounds (each round aligns one more bin).
        let reference = vec![500u64; 32];
        let mut current = reference.clone();
        for (i, c) in current.iter_mut().enumerate() {
            *c += (i as u64 % 5) * 300;
        }
        let id = identify_anomalous_bins(&current, &reference, 1e-6);
        assert!(id.converged);
        assert!(id.bins.len() <= 32);
        assert!(*id.kl_trajectory.last().unwrap() <= 1e-6);
        assert!(id.kl_trajectory.last().unwrap() < id.kl_trajectory.first().unwrap());
    }

    #[test]
    fn already_clean_histogram_needs_no_rounds() {
        let h = vec![10u64, 20, 30];
        let id = identify_anomalous_bins(&h, &h, 0.001);
        assert!(id.converged);
        assert!(id.bins.is_empty());
        assert_eq!(id.kl_trajectory.len(), 1);
    }

    #[test]
    fn unreachable_target_reports_nonconvergence() {
        let h = vec![10u64, 20, 30];
        let id = identify_anomalous_bins(&h, &h, -1.0);
        assert!(!id.converged);
        assert!(id.bins.is_empty());
    }

    #[test]
    fn negative_deviation_bins_are_cleaned_too() {
        // An anomaly *ending* leaves bins below the reference; the
        // procedure must clean those as well (|difference|, not signed).
        let reference = vec![1000u64; 8];
        let mut current = reference.clone();
        current[3] = 0;
        let id = identify_anomalous_bins(&current, &reference, 1e-6);
        assert!(id.converged);
        assert_eq!(id.bins, vec![3]);
    }

    #[test]
    fn first_round_drops_kl_significantly() {
        // Paper Fig. 5: "Already after the first round, the KL distance
        // decreases significantly" — for a concentrated anomaly the first
        // removal should eliminate most of the distance.
        let reference = vec![2000u64; 1024];
        let mut current = reference.clone();
        current[100] += 500_000;
        let id = identify_anomalous_bins(&current, &reference, 1e-9);
        let drop = (id.kl_trajectory[0] - id.kl_trajectory[1]) / id.kl_trajectory[0];
        assert!(drop > 0.9, "first-round drop only {drop:.3}");
    }
}
