//! Seeded hash functions for histogram cloning.
//!
//! Each histogram clone bins feature values with an *independent* random
//! hash function (paper §II-D, "a histogram clone with k bins uses a hash
//! function to randomly place each traffic feature value into a bin").
//! We use the SplitMix64 finalizer keyed by a per-clone seed: deterministic,
//! portable across platforms and runs, and passes avalanche tests — the
//! properties random projections in sketches need.

use serde::{Deserialize, Serialize};

/// A seeded 64-bit mixing function mapping feature values to histogram bins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinHasher {
    seed: u64,
}

impl BinHasher {
    /// Create a hasher from a seed. Different seeds give (statistically)
    /// independent binnings.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        BinHasher { seed }
    }

    /// The seed this hasher was built from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Mix a value to a uniform 64-bit output (SplitMix64 finalizer over
    /// the seed-offset input).
    ///
    /// This is the scalar reference the batched kernels in
    /// [`crate::kernels`] are bit-identical to.
    #[must_use]
    #[inline]
    pub fn mix(&self, value: u64) -> u64 {
        let mut z = value
            .wrapping_add(self.seed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Map a feature value to a bin in `0..bins`.
    ///
    /// The batched form is [`crate::kernels::bin_batch`], which matches
    /// this bit-for-bit on every input.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero.
    #[must_use]
    #[inline]
    pub fn bin_of(&self, value: u64, bins: u32) -> u32 {
        assert!(bins > 0, "bin count must be positive");
        // Multiply-shift range reduction: unbiased enough for binning and
        // cheaper/cleaner than modulo for non-power-of-two bin counts.
        ((u128::from(self.mix(value)) * u128::from(bins)) >> 64) as u32
    }
}

/// Derive `n` independent per-clone hashers from a master seed.
/// (Seeds are themselves mixed so that consecutive master seeds do not
/// produce correlated clone families.)
#[must_use]
pub fn derive_hashers(master_seed: u64, n: usize) -> Vec<BinHasher> {
    let master = BinHasher::new(master_seed);
    (0..n as u64)
        .map(|i| BinHasher::new(master.mix(i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let h = BinHasher::new(42);
        assert_eq!(h.bin_of(12345, 1024), h.bin_of(12345, 1024));
        assert_eq!(h.mix(7), BinHasher::new(42).mix(7));
    }

    #[test]
    fn different_seeds_bin_differently() {
        let a = BinHasher::new(1);
        let b = BinHasher::new(2);
        let differing = (0..1000u64)
            .filter(|&v| a.bin_of(v, 1024) != b.bin_of(v, 1024))
            .count();
        // With 1024 bins, ~99.9% of values should land in different bins.
        assert!(
            differing > 950,
            "only {differing}/1000 values binned differently"
        );
    }

    #[test]
    fn bins_are_in_range() {
        let h = BinHasher::new(99);
        for bins in [1u32, 2, 512, 1024, 1000, 2048] {
            for v in 0..200u64 {
                assert!(h.bin_of(v, bins) < bins);
            }
        }
    }

    #[test]
    fn single_bin_maps_everything_to_zero() {
        let h = BinHasher::new(5);
        for v in 0..100 {
            assert_eq!(h.bin_of(v, 1), 0);
        }
    }

    #[test]
    fn uniformity_rough_chi_square() {
        // 64k sequential values into 64 bins: each bin expects 1024.
        // A correct mixer keeps every bin within ±20% of expectation.
        let h = BinHasher::new(1234);
        let bins = 64u32;
        let mut counts = vec![0u32; bins as usize];
        for v in 0..65_536u64 {
            counts[h.bin_of(v, bins) as usize] += 1;
        }
        let expect = 1024.0;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (f64::from(c) - expect).abs() / expect;
            assert!(
                dev < 0.2,
                "bin {i} count {c} deviates {dev:.2} from uniform"
            );
        }
    }

    #[test]
    fn avalanche_single_bit_flip() {
        // Flipping one input bit should flip ~32 of 64 output bits.
        let h = BinHasher::new(7);
        let mut total_flips = 0u32;
        let samples = 256u64;
        for v in 0..samples {
            let base = h.mix(v);
            let flipped = h.mix(v ^ 1);
            total_flips += (base ^ flipped).count_ones();
        }
        let mean = f64::from(total_flips) / samples as f64;
        assert!((24.0..40.0).contains(&mean), "mean flipped bits {mean}");
    }

    #[test]
    fn derive_hashers_yields_distinct_seeds() {
        let hs = derive_hashers(0, 25);
        let mut seeds: Vec<_> = hs.iter().map(BinHasher::seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 25);
    }

    #[test]
    #[should_panic(expected = "bin count must be positive")]
    fn zero_bins_panics() {
        let _ = BinHasher::new(0).bin_of(1, 0);
    }
}
