//! Meta-data: the suspicious feature values detectors hand to the
//! pre-filter.
//!
//! Table I of the paper lists the meta-data various detector families can
//! provide; the histogram detectors here provide *feature values* (IP
//! addresses, ports, packet counts…). [`MetaData`] aggregates them per
//! feature and implements the two matching semantics the paper compares:
//! **union** (a flow matching *any* value is suspicious — the paper's
//! choice) and **intersection** (a flow must match *every* feature —
//! DoWitcher's choice, shown to miss multi-stage anomalies).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use anomex_netflow::{FeatureValue, FlowFeature, FlowRecord};
use serde::{Deserialize, Serialize};

/// Suspicious feature values, grouped by feature.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetaData {
    values: BTreeMap<FlowFeature, BTreeSet<u64>>,
}

impl MetaData {
    /// New, empty meta-data.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert one suspicious value.
    pub fn insert(&mut self, feature: FlowFeature, value: u64) {
        self.values.entry(feature).or_default().insert(value);
    }

    /// Insert many values for one feature.
    pub fn insert_all(&mut self, feature: FlowFeature, values: impl IntoIterator<Item = u64>) {
        self.values.entry(feature).or_default().extend(values);
    }

    /// Merge another meta-data set into this one (set union per feature).
    pub fn merge(&mut self, other: &MetaData) {
        for (&feature, vals) in &other.values {
            self.values
                .entry(feature)
                .or_default()
                .extend(vals.iter().copied());
        }
    }

    /// Whether no values are present at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.values().all(BTreeSet::is_empty)
    }

    /// Features that carry at least one value.
    pub fn features(&self) -> impl Iterator<Item = FlowFeature> + '_ {
        self.values
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(&f, _)| f)
    }

    /// The suspicious values for one feature.
    #[must_use]
    pub fn values_for(&self, feature: FlowFeature) -> Option<&BTreeSet<u64>> {
        self.values.get(&feature).filter(|v| !v.is_empty())
    }

    /// Total number of (feature, value) pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.values().map(BTreeSet::len).sum()
    }

    /// Iterate all (feature, value) pairs as [`FeatureValue`]s.
    pub fn iter(&self) -> impl Iterator<Item = FeatureValue> + '_ {
        self.values
            .iter()
            .flat_map(|(&f, vals)| vals.iter().map(move |&v| FeatureValue::new(f, v)))
    }

    /// **Union semantics** (the paper's choice): does the flow match *any*
    /// suspicious value in *any* feature?
    #[must_use]
    pub fn matches_any(&self, flow: &FlowRecord) -> bool {
        self.values
            .iter()
            .any(|(&feature, vals)| !vals.is_empty() && vals.contains(&feature.value_of(flow).raw))
    }

    /// **Intersection semantics** (the DoWitcher baseline): does the flow
    /// match a suspicious value in *every* feature that has values?
    /// Returns `false` when the meta-data is empty.
    #[must_use]
    pub fn matches_all(&self, flow: &FlowRecord) -> bool {
        let mut any = false;
        for (&feature, vals) in &self.values {
            if vals.is_empty() {
                continue;
            }
            any = true;
            if !vals.contains(&feature.value_of(flow).raw) {
                return false;
            }
        }
        any
    }
}

impl fmt::Display for MetaData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (&feature, vals) in &self.values {
            if vals.is_empty() {
                continue;
            }
            if !first {
                writeln!(f)?;
            }
            first = false;
            write!(f, "{feature}: ")?;
            for (i, v) in vals.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", FeatureValue::new(feature, *v).render())?;
                if i >= 9 && vals.len() > 10 {
                    write!(f, ", … ({} total)", vals.len())?;
                    break;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomex_netflow::Protocol;
    use std::net::Ipv4Addr;

    fn flow(dst_port: u16, packets: u32) -> FlowRecord {
        FlowRecord::new(
            0,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            4000,
            dst_port,
            Protocol::Tcp,
        )
        .with_volume(packets, packets * 40)
    }

    #[test]
    fn union_matches_any_feature() {
        let mut md = MetaData::new();
        md.insert(FlowFeature::DstPort, 7000);
        md.insert(FlowFeature::Packets, 3);
        assert!(md.matches_any(&flow(7000, 1)), "port matches");
        assert!(md.matches_any(&flow(80, 3)), "packet count matches");
        assert!(!md.matches_any(&flow(80, 1)), "nothing matches");
    }

    #[test]
    fn intersection_requires_every_feature() {
        let mut md = MetaData::new();
        md.insert(FlowFeature::DstPort, 7000);
        md.insert(FlowFeature::Packets, 3);
        assert!(md.matches_all(&flow(7000, 3)));
        assert!(!md.matches_all(&flow(7000, 1)));
        assert!(!md.matches_all(&flow(80, 3)));
    }

    #[test]
    fn empty_metadata_matches_nothing() {
        let md = MetaData::new();
        assert!(!md.matches_any(&flow(80, 1)));
        assert!(!md.matches_all(&flow(80, 1)));
        assert!(md.is_empty());
    }

    #[test]
    fn union_superset_of_intersection() {
        let mut md = MetaData::new();
        md.insert_all(FlowFeature::DstPort, [7000, 9996]);
        md.insert(FlowFeature::Packets, 2);
        for f in [flow(7000, 2), flow(9996, 1), flow(80, 2), flow(80, 9)] {
            if md.matches_all(&f) {
                assert!(md.matches_any(&f), "intersection ⊆ union violated for {f}");
            }
        }
    }

    #[test]
    fn merge_unions_per_feature() {
        let mut a = MetaData::new();
        a.insert(FlowFeature::DstPort, 80);
        let mut b = MetaData::new();
        b.insert(FlowFeature::DstPort, 443);
        b.insert(FlowFeature::SrcIp, 1234);
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert!(a.values_for(FlowFeature::DstPort).unwrap().contains(&80));
        assert!(a.values_for(FlowFeature::DstPort).unwrap().contains(&443));
    }

    #[test]
    fn iter_yields_feature_values() {
        let mut md = MetaData::new();
        md.insert(FlowFeature::DstPort, 7000);
        md.insert(FlowFeature::SrcIp, 0x0a000001);
        let rendered: Vec<String> = md.iter().map(|fv| fv.to_string()).collect();
        assert!(rendered.contains(&"dstPort=7000".to_string()));
        assert!(rendered.contains(&"srcIP=10.0.0.1".to_string()));
    }

    #[test]
    fn display_truncates_long_lists() {
        let mut md = MetaData::new();
        md.insert_all(FlowFeature::DstPort, 0..100u64);
        let s = md.to_string();
        assert!(s.contains("(100 total)"));
    }
}
