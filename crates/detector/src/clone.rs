//! A single histogram clone: one feature, one hash function, full
//! detection state machine.
//!
//! Per measurement interval the clone (1) builds the feature histogram,
//! (2) computes the KL distance to the previous interval's histogram,
//! (3) thresholds the first difference of the KL series (after a training
//! phase that fits the MAD-based σ̂), and (4) on alarm, runs the iterative
//! bin identification and proposes the feature values observed in the
//! anomalous bins.

use std::collections::BTreeSet;

use anomex_netflow::snapshot::{RestoreError, SnapshotReader, SnapshotWriter};
use anomex_netflow::{FlowFeature, FlowRecord};

use crate::binid::{identify_anomalous_bins, BinIdentification};
use crate::hash::BinHasher;
use crate::histogram::FeatureHistogram;
use crate::kl::kl_distance;
use crate::threshold::FirstDiffThreshold;

/// What one clone saw in one interval.
#[derive(Debug, Clone)]
pub struct CloneObservation {
    /// KL distance to the previous interval (`None` on the very first
    /// interval, which has no reference).
    pub kl: Option<f64>,
    /// First difference of the KL series (`None` for the first two
    /// intervals).
    pub first_diff: Option<f64>,
    /// Whether this clone raised an alarm (never during training).
    pub alarm: bool,
    /// Feature values this clone proposes as anomalous (empty unless
    /// `alarm`).
    pub values: BTreeSet<u64>,
    /// The bin-identification audit trail, when an alarm fired.
    pub bin_identification: Option<BinIdentification>,
}

/// Detection phase of a clone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClonePhase {
    /// Accumulating KL first-differences; no alarms yet.
    Training,
    /// Threshold fitted; alarms active.
    Detecting,
}

/// One histogram clone with its full temporal state.
#[derive(Debug)]
pub struct HistogramClone {
    feature: FlowFeature,
    hasher: BinHasher,
    bins: u32,
    alpha: f64,
    training_intervals: usize,
    training_diffs: Vec<f64>,
    threshold: Option<FirstDiffThreshold>,
    prev_histogram: Option<FeatureHistogram>,
    prev_kl: Option<f64>,
}

impl HistogramClone {
    /// New clone.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero or `training_intervals < 2` (at least two
    /// first differences are needed for a meaningful MAD).
    #[must_use]
    pub fn new(
        feature: FlowFeature,
        hasher: BinHasher,
        bins: u32,
        alpha: f64,
        training_intervals: usize,
    ) -> Self {
        assert!(bins > 0, "bin count must be positive");
        assert!(
            training_intervals >= 2,
            "need at least 2 training intervals"
        );
        HistogramClone {
            feature,
            hasher,
            bins,
            alpha,
            training_intervals,
            training_diffs: Vec::new(),
            threshold: None,
            prev_histogram: None,
            prev_kl: None,
        }
    }

    /// The monitored feature.
    #[must_use]
    pub fn feature(&self) -> FlowFeature {
        self.feature
    }

    /// The clone's hash function.
    #[must_use]
    pub fn hasher(&self) -> BinHasher {
        self.hasher
    }

    /// The clone's bin count `k`.
    #[must_use]
    pub fn bins(&self) -> u32 {
        self.bins
    }

    /// Current phase.
    #[must_use]
    pub fn phase(&self) -> ClonePhase {
        if self.threshold.is_some() {
            ClonePhase::Detecting
        } else {
            ClonePhase::Training
        }
    }

    /// The fitted threshold, once training completes.
    #[must_use]
    pub fn threshold(&self) -> Option<&FirstDiffThreshold> {
        self.threshold.as_ref()
    }

    /// Build this clone's histogram over a batch of flows *without*
    /// advancing the state machine — the per-shard "partial" of the
    /// build-partials → merge → score decomposition. Partials built over
    /// disjoint flow shards [`merge`](FeatureHistogram::merge) into
    /// exactly the histogram a single pass would produce, so sharded
    /// observation is bit-identical to sequential by construction.
    #[must_use]
    pub fn build_histogram(&self, flows: &[FlowRecord]) -> FeatureHistogram {
        FeatureHistogram::build(self.feature, self.hasher, self.bins, flows)
    }

    /// Observe one interval's flows and advance the state machine.
    pub fn observe(&mut self, flows: &[FlowRecord]) -> CloneObservation {
        let current = self.build_histogram(flows);
        self.observe_histogram(current)
    }

    /// Score a pre-built interval histogram and advance the state machine
    /// — the "score" half of [`build_histogram`](Self::build_histogram).
    ///
    /// # Panics
    ///
    /// Panics if `current` was built by a different clone (feature,
    /// hasher, or bin count mismatch).
    pub fn observe_histogram(&mut self, current: FeatureHistogram) -> CloneObservation {
        assert!(
            current.feature() == self.feature
                && current.hasher() == self.hasher
                && current.bins() == self.bins,
            "histogram was built by a different clone"
        );
        let kl = self
            .prev_histogram
            .as_ref()
            .map(|prev| kl_distance(current.counts(), prev.counts()));
        let first_diff = match (kl, self.prev_kl) {
            (Some(now), Some(before)) => Some(now - before),
            _ => None,
        };

        let mut alarm = false;
        let mut values = BTreeSet::new();
        let mut bin_identification = None;

        if let Some(diff) = first_diff {
            match &self.threshold {
                None => {
                    // Training phase: collect the difference, fit when full.
                    self.training_diffs.push(diff);
                    if self.training_diffs.len() >= self.training_intervals {
                        self.threshold =
                            Some(FirstDiffThreshold::fit(self.alpha, &self.training_diffs));
                        self.training_diffs.clear();
                        self.training_diffs.shrink_to_fit();
                    }
                }
                Some(threshold) => {
                    if threshold.is_alarm(diff) {
                        alarm = true;
                        let prev = self
                            .prev_histogram
                            .as_ref()
                            .expect("first_diff exists ⇒ previous histogram exists");
                        let target_kl = self
                            .prev_kl
                            .expect("first_diff exists ⇒ previous KL exists")
                            + threshold.value();
                        let id =
                            identify_anomalous_bins(current.counts(), prev.counts(), target_kl);
                        values = current.values_in_bins(&id.bins);
                        bin_identification = Some(id);
                    }
                }
            }
        }

        self.prev_kl = kl;
        self.prev_histogram = Some(current);

        CloneObservation {
            kl,
            first_diff,
            alarm,
            values,
            bin_identification,
        }
    }

    /// Change the threshold multiplier α in place — live reconfiguration
    /// at an interval boundary. Applies to the already-fitted threshold
    /// (σ̂ is untouched; only the multiplier moves) and to any future fit
    /// if the clone is still training.
    pub fn set_alpha(&mut self, alpha: f64) {
        self.alpha = alpha;
        if let Some(t) = &mut self.threshold {
            t.alpha = alpha;
        }
    }

    /// Serialize the clone's mutable temporal state: collected training
    /// differences, the fitted threshold (if any), the previous
    /// interval's histogram, and the previous KL value. The structural
    /// identity (feature, hasher, bins, α, training length) is *not*
    /// written — [`restore_snapshot`](Self::restore_snapshot) is called
    /// on a clone freshly rebuilt from the same configuration, which
    /// regenerates it deterministically.
    pub fn encode_snapshot(&self, w: &mut SnapshotWriter) {
        w.usize(self.training_diffs.len());
        for &d in &self.training_diffs {
            w.f64(d);
        }
        match &self.threshold {
            Some(t) => {
                w.bool(true);
                w.f64(t.alpha);
                w.f64(t.sigma());
            }
            None => w.bool(false),
        }
        match &self.prev_histogram {
            Some(h) => {
                w.bool(true);
                h.encode_snapshot(w);
            }
            None => w.bool(false),
        }
        match self.prev_kl {
            Some(kl) => {
                w.bool(true);
                w.f64(kl);
            }
            None => w.bool(false),
        }
    }

    /// Overwrite this clone's mutable state with a snapshot written by
    /// [`encode_snapshot`](Self::encode_snapshot). Because floats travel
    /// as raw bit patterns, the restored clone scores subsequent
    /// intervals bit-identically to the clone that was saved.
    ///
    /// # Errors
    ///
    /// [`RestoreError::Truncated`] on a short payload and
    /// [`RestoreError::Corrupt`] when the embedded histogram disagrees
    /// with this clone's bin count.
    pub fn restore_snapshot(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), RestoreError> {
        let n = r.seq_len(8)?;
        let mut training_diffs = Vec::with_capacity(n);
        for _ in 0..n {
            training_diffs.push(r.f64()?);
        }
        let threshold = if r.bool()? {
            let alpha = r.f64()?;
            let sigma = r.f64()?;
            Some(FirstDiffThreshold::from_parts(alpha, sigma))
        } else {
            None
        };
        let prev_histogram = if r.bool()? {
            Some(FeatureHistogram::decode_snapshot(
                self.feature,
                self.hasher,
                self.bins,
                r,
            )?)
        } else {
            None
        };
        let prev_kl = if r.bool()? { Some(r.f64()?) } else { None };
        self.training_diffs = training_diffs;
        self.threshold = threshold;
        self.prev_histogram = prev_histogram;
        self.prev_kl = prev_kl;
        Ok(())
    }

    /// Approximate retained heap footprint (the previous histogram), for
    /// the §III-E overhead report.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.prev_histogram
            .as_ref()
            .map_or(0, FeatureHistogram::memory_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomex_netflow::Protocol;
    use std::net::Ipv4Addr;

    /// Steady background: 200 flows to ports 1..=200 (one each).
    fn background(interval: u64) -> Vec<FlowRecord> {
        (1..=200u16)
            .map(|p| {
                FlowRecord::new(
                    interval * 60_000 + u64::from(p),
                    Ipv4Addr::new(10, 0, 0, 1),
                    Ipv4Addr::new(10, 0, 0, 2),
                    4000,
                    p,
                    Protocol::Tcp,
                )
            })
            .collect()
    }

    /// Background plus a 2000-flow flood on port 7000.
    fn flooded(interval: u64) -> Vec<FlowRecord> {
        let mut flows = background(interval);
        for i in 0..2000u64 {
            flows.push(FlowRecord::new(
                interval * 60_000 + i,
                Ipv4Addr::new(192, 168, 0, 7),
                Ipv4Addr::new(10, 0, 0, 99),
                (1024 + (i % 40_000)) as u16,
                7000,
                Protocol::Tcp,
            ));
        }
        flows
    }

    fn trained_clone() -> HistogramClone {
        let mut clone = HistogramClone::new(FlowFeature::DstPort, BinHasher::new(7), 1024, 3.0, 10);
        // 12 intervals of steady traffic: 10 first-diffs → training done.
        for i in 0..12 {
            let obs = clone.observe(&background(i));
            assert!(!obs.alarm, "no alarms during training");
        }
        assert_eq!(clone.phase(), ClonePhase::Detecting);
        clone
    }

    #[test]
    fn first_interval_has_no_kl() {
        let mut clone = HistogramClone::new(FlowFeature::DstPort, BinHasher::new(7), 64, 3.0, 5);
        let obs = clone.observe(&background(0));
        assert!(obs.kl.is_none());
        assert!(obs.first_diff.is_none());
        let obs = clone.observe(&background(1));
        assert!(obs.kl.is_some());
        assert!(obs.first_diff.is_none());
        let obs = clone.observe(&background(2));
        assert!(obs.first_diff.is_some());
    }

    #[test]
    fn steady_traffic_never_alarms() {
        let mut clone = trained_clone();
        for i in 12..30 {
            let obs = clone.observe(&background(i));
            assert!(!obs.alarm, "interval {i} alarmed on steady traffic");
        }
    }

    #[test]
    fn flood_triggers_alarm_with_correct_value() {
        let mut clone = trained_clone();
        let obs = clone.observe(&flooded(12));
        assert!(obs.alarm, "flood must alarm");
        assert!(
            obs.values.contains(&7000),
            "port 7000 must be proposed: {:?}",
            obs.values
        );
        let id = obs
            .bin_identification
            .expect("alarm carries the audit trail");
        assert!(id.converged);
        assert!(!id.bins.is_empty());
        // The flood is concentrated: the first removed bin is the port-7000
        // bin.
        let expected_bin = BinHasher::new(7).bin_of(7000, 1024);
        assert_eq!(id.bins[0], expected_bin);
    }

    #[test]
    fn alarm_clears_after_anomaly_persists() {
        // Reference = previous interval ⇒ a *persistent* anomaly only spikes
        // the first difference at its start (paper §II-C).
        let mut clone = trained_clone();
        assert!(clone.observe(&flooded(12)).alarm);
        let obs = clone.observe(&flooded(13));
        assert!(!obs.alarm, "steady-state anomaly must not re-alarm");
    }

    #[test]
    fn anomaly_end_does_not_alarm_one_sided() {
        let mut clone = trained_clone();
        assert!(clone.observe(&flooded(12)).alarm);
        let obs = clone.observe(&background(13));
        // The KL spikes again at anomaly end, but the first difference of
        // the *end* transition is positive too... verify one-sidedness via
        // sign: dKL(end) = KL(end-vs-anomalous) - KL(anomalous-vs-normal).
        // Both are large; what matters is no panic and a well-formed
        // observation.
        assert!(obs.kl.unwrap() > 0.0);
    }

    #[test]
    fn empty_intervals_are_tolerated() {
        let mut clone = HistogramClone::new(FlowFeature::DstPort, BinHasher::new(7), 64, 3.0, 3);
        for _ in 0..6 {
            let obs = clone.observe(&[]);
            assert!(!obs.alarm);
            if let Some(kl) = obs.kl {
                assert!(kl.abs() < 1e-9, "empty vs empty is identical");
            }
        }
    }

    #[test]
    fn memory_is_reported_after_first_interval() {
        let mut clone = HistogramClone::new(FlowFeature::DstPort, BinHasher::new(7), 1024, 3.0, 5);
        assert_eq!(clone.memory_bytes(), 0);
        clone.observe(&background(0));
        assert!(clone.memory_bytes() >= 1024 * 8);
    }

    #[test]
    fn merged_shard_partials_score_bit_identically() {
        // Two clones fed the same traffic, one via observe(), one via
        // per-shard partials merged then scored: every KL must match to
        // the bit.
        let mut whole = trained_clone();
        let mut sharded = trained_clone();
        for i in 12..18 {
            let flows = if i == 14 { flooded(i) } else { background(i) };
            let a = whole.observe(&flows);
            let third = flows.len() / 3;
            let mut partial = sharded.build_histogram(&flows[..third]);
            partial.merge(sharded.build_histogram(&flows[third..2 * third]));
            partial.merge(sharded.build_histogram(&flows[2 * third..]));
            let b = sharded.observe_histogram(partial);
            assert_eq!(
                a.kl.map(f64::to_bits),
                b.kl.map(f64::to_bits),
                "interval {i}"
            );
            assert_eq!(a.alarm, b.alarm, "interval {i}");
            assert_eq!(a.values, b.values, "interval {i}");
        }
    }

    #[test]
    fn snapshot_round_trip_scores_bit_identically() {
        for cut in [1usize, 5, 12, 13] {
            // Run `cut` intervals, snapshot, restore into a fresh clone,
            // then drive both through the same tail (with a flood) and
            // compare every observation to the bit.
            let mut live =
                HistogramClone::new(FlowFeature::DstPort, BinHasher::new(7), 1024, 3.0, 10);
            for i in 0..cut as u64 {
                live.observe(&background(i));
            }
            let mut w = SnapshotWriter::new();
            live.encode_snapshot(&mut w);
            let buf = w.into_bytes();
            let mut restored =
                HistogramClone::new(FlowFeature::DstPort, BinHasher::new(7), 1024, 3.0, 10);
            let mut r = SnapshotReader::new(&buf);
            restored.restore_snapshot(&mut r).unwrap();
            r.finish().unwrap();
            assert_eq!(restored.phase(), live.phase(), "cut {cut}");
            for i in cut as u64..16 {
                let flows = if i == 14 { flooded(i) } else { background(i) };
                let a = live.observe(&flows);
                let b = restored.observe(&flows);
                assert_eq!(
                    a.kl.map(f64::to_bits),
                    b.kl.map(f64::to_bits),
                    "cut {cut} interval {i}"
                );
                assert_eq!(a.alarm, b.alarm, "cut {cut} interval {i}");
                assert_eq!(a.values, b.values, "cut {cut} interval {i}");
            }
        }
    }

    #[test]
    fn set_alpha_moves_the_fitted_threshold() {
        let mut clone = trained_clone();
        let before = clone.threshold().unwrap().value();
        clone.set_alpha(6.0);
        let after = clone.threshold().unwrap().value();
        assert!((after / before - 2.0).abs() < 1e-12, "α 3→6 doubles it");
        assert_eq!(clone.threshold().unwrap().sigma(), before / 3.0);
    }

    #[test]
    fn restore_rejects_foreign_bin_count() {
        let mut live = HistogramClone::new(FlowFeature::DstPort, BinHasher::new(7), 64, 3.0, 5);
        live.observe(&background(0));
        let mut w = SnapshotWriter::new();
        live.encode_snapshot(&mut w);
        let buf = w.into_bytes();
        let mut other = HistogramClone::new(FlowFeature::DstPort, BinHasher::new(7), 128, 3.0, 5);
        let mut r = SnapshotReader::new(&buf);
        assert!(other.restore_snapshot(&mut r).is_err());
    }

    #[test]
    #[should_panic(expected = "different clone")]
    fn foreign_histogram_panics() {
        let mut clone = HistogramClone::new(FlowFeature::DstPort, BinHasher::new(7), 64, 3.0, 5);
        let other = HistogramClone::new(FlowFeature::DstPort, BinHasher::new(8), 64, 3.0, 5);
        let h = other.build_histogram(&background(0));
        let _ = clone.observe_histogram(h);
    }

    #[test]
    #[should_panic(expected = "at least 2 training intervals")]
    fn too_short_training_panics() {
        let _ = HistogramClone::new(FlowFeature::DstPort, BinHasher::new(1), 64, 3.0, 1);
    }
}
