//! Entropy-based anomaly detection — an alternative detector family from
//! the paper's Table I.
//!
//! The paper's extraction method is detector-agnostic: anything that can
//! name suspicious feature values can feed the pre-filter ("useful
//! meta-data provided by various anomaly detectors", Table I; entropy
//! detectors per Wagner & Plattner, ref. 33, and Lakhina et al., ref. 18).
//! This module implements the classic sample-entropy detector: track the
//! per-interval Shannon entropy of a feature's exact value distribution,
//! alarm on *two-sided* spikes of its first difference (scans raise
//! entropy by spraying values; DoS concentrates it), and propose the
//! values whose probability shifted most as meta-data.

use std::collections::{BTreeSet, HashMap};

use anomex_netflow::{FlowFeature, FlowRecord};

use crate::threshold::{robust_sigma, SIGMA_FLOOR};

/// Shannon entropy (bits) of a value-count map.
///
/// Returns 0 for an empty map (no flows ⇒ no uncertainty).
#[must_use]
pub fn shannon_entropy(counts: &HashMap<u64, u64>) -> f64 {
    let total: u64 = counts.values().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    let mut h = 0.0;
    for &c in counts.values() {
        if c > 0 {
            let p = c as f64 / total;
            h -= p * p.log2();
        }
    }
    h
}

/// What the entropy detector saw in one interval.
#[derive(Debug, Clone)]
pub struct EntropyObservation {
    /// The interval's sample entropy (bits).
    pub entropy: f64,
    /// First difference of the entropy series (`None` on the first
    /// interval).
    pub first_diff: Option<f64>,
    /// Whether the two-sided alarm fired (never during training).
    pub alarm: bool,
    /// The feature values with the largest probability shifts (empty
    /// unless `alarm`).
    pub values: BTreeSet<u64>,
}

/// Sample-entropy detector for one traffic feature.
///
/// Unlike the histogram clones, this detector tracks the *exact* value
/// distribution (no hashing), which is viable for features with bounded
/// alphabets (ports, packet counts, prefixes) and demonstrates meta-data
/// interoperability for the extraction pipeline.
#[derive(Debug)]
pub struct EntropyDetector {
    feature: FlowFeature,
    alpha: f64,
    training_intervals: usize,
    training_diffs: Vec<f64>,
    sigma: Option<f64>,
    prev_counts: Option<HashMap<u64, u64>>,
    prev_entropy: Option<f64>,
    /// Maximum number of meta-data values proposed per alarm.
    max_values: usize,
}

impl EntropyDetector {
    /// New detector with threshold `alpha · σ̂` fitted after
    /// `training_intervals` first differences.
    ///
    /// # Panics
    ///
    /// Panics if `training_intervals < 2`.
    #[must_use]
    pub fn new(feature: FlowFeature, alpha: f64, training_intervals: usize) -> Self {
        assert!(
            training_intervals >= 2,
            "need at least 2 training intervals"
        );
        EntropyDetector {
            feature,
            alpha,
            training_intervals,
            training_diffs: Vec::new(),
            sigma: None,
            prev_counts: None,
            prev_entropy: None,
            max_values: 32,
        }
    }

    /// The monitored feature.
    #[must_use]
    pub fn feature(&self) -> FlowFeature {
        self.feature
    }

    /// The fitted σ̂, once training completes.
    #[must_use]
    pub fn sigma(&self) -> Option<f64> {
        self.sigma
    }

    /// Whether training has completed.
    #[must_use]
    pub fn is_trained(&self) -> bool {
        self.sigma.is_some()
    }

    /// Observe one interval.
    pub fn observe(&mut self, flows: &[FlowRecord]) -> EntropyObservation {
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for flow in flows {
            *counts.entry(self.feature.value_of(flow).raw).or_insert(0) += 1;
        }
        let entropy = shannon_entropy(&counts);
        let first_diff = self.prev_entropy.map(|prev| entropy - prev);

        let mut alarm = false;
        let mut values = BTreeSet::new();
        if let Some(diff) = first_diff {
            match self.sigma {
                None => {
                    self.training_diffs.push(diff);
                    if self.training_diffs.len() >= self.training_intervals {
                        self.sigma = Some(robust_sigma(&self.training_diffs).max(SIGMA_FLOOR));
                        self.training_diffs.clear();
                    }
                }
                Some(sigma) => {
                    // Two-sided: concentration (DoS) drops entropy, value
                    // spraying (scans) raises it.
                    if diff.abs() > self.alpha * sigma {
                        alarm = true;
                        values = self.top_movers(&counts, flows.len() as u64);
                    }
                }
            }
        }

        self.prev_entropy = Some(entropy);
        self.prev_counts = Some(counts);
        EntropyObservation {
            entropy,
            first_diff,
            alarm,
            values,
        }
    }

    /// The values whose probability shifted most against the previous
    /// interval, capped at `max_values`, covering ≥ 50 % of the total
    /// shift.
    fn top_movers(&self, counts: &HashMap<u64, u64>, total: u64) -> BTreeSet<u64> {
        let empty = HashMap::new();
        let prev = self.prev_counts.as_ref().unwrap_or(&empty);
        let prev_total: u64 = prev.values().sum();
        let p_now = |v: u64| counts.get(&v).copied().unwrap_or(0) as f64 / total.max(1) as f64;
        let p_before =
            |v: u64| prev.get(&v).copied().unwrap_or(0) as f64 / prev_total.max(1) as f64;
        let mut shifts: Vec<(u64, f64)> = counts
            .keys()
            .chain(prev.keys())
            .map(|&v| (v, (p_now(v) - p_before(v)).abs()))
            .collect();
        shifts.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("shifts are never NaN"));
        shifts.dedup_by_key(|s| s.0);
        let total_shift: f64 = shifts.iter().map(|&(_, s)| s).sum();
        let mut out = BTreeSet::new();
        let mut covered = 0.0;
        for (value, shift) in shifts {
            if out.len() >= self.max_values || (covered >= 0.5 * total_shift && !out.is_empty()) {
                break;
            }
            out.insert(value);
            covered += shift;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomex_netflow::Protocol;
    use std::net::Ipv4Addr;

    fn flows_to_ports(ports: &[u16]) -> Vec<FlowRecord> {
        ports
            .iter()
            .map(|&p| {
                FlowRecord::new(
                    0,
                    Ipv4Addr::new(10, 0, 0, 1),
                    Ipv4Addr::new(10, 0, 0, 2),
                    4000,
                    p,
                    Protocol::Tcp,
                )
            })
            .collect()
    }

    fn steady(i: u64) -> Vec<FlowRecord> {
        // 64 evenly-used ports with a small deterministic wobble.
        let ports: Vec<u16> = (0..512u16).map(|j| 1 + (j + i as u16) % 64).collect();
        flows_to_ports(&ports)
    }

    #[test]
    fn entropy_of_uniform_beats_concentrated() {
        let mut uniform = HashMap::new();
        for v in 0..16u64 {
            uniform.insert(v, 10);
        }
        let mut concentrated = HashMap::new();
        concentrated.insert(1u64, 150);
        concentrated.insert(2, 10);
        assert!(shannon_entropy(&uniform) > shannon_entropy(&concentrated));
        // Uniform over 16 values = exactly 4 bits.
        assert!((shannon_entropy(&uniform) - 4.0).abs() < 1e-12);
        assert_eq!(shannon_entropy(&HashMap::new()), 0.0);
    }

    fn trained() -> EntropyDetector {
        let mut d = EntropyDetector::new(FlowFeature::DstPort, 3.0, 8);
        for i in 0..10 {
            let obs = d.observe(&steady(i));
            assert!(!obs.alarm, "no alarm during training");
        }
        assert!(d.is_trained());
        d
    }

    #[test]
    fn scan_raises_entropy_and_alarms() {
        let mut d = trained();
        // A port scan sprays 400 distinct previously-unseen ports.
        let mut flows = steady(10);
        flows.extend(flows_to_ports(&(1000..1400).collect::<Vec<u16>>()));
        let obs = d.observe(&flows);
        assert!(obs.first_diff.unwrap() > 0.0, "spraying raises entropy");
        assert!(obs.alarm);
        assert!(!obs.values.is_empty());
    }

    #[test]
    fn flood_concentration_drops_entropy_and_alarms() {
        let mut d = trained();
        // A flood on one port concentrates the distribution.
        let mut flows = steady(10);
        flows.extend(flows_to_ports(&vec![7000u16; 3000]));
        let obs = d.observe(&flows);
        assert!(obs.first_diff.unwrap() < 0.0, "concentration drops entropy");
        assert!(obs.alarm, "two-sided threshold catches the drop");
        assert!(
            obs.values.contains(&7000),
            "the flooded port is the top mover: {:?}",
            obs.values
        );
    }

    #[test]
    fn steady_traffic_stays_quiet() {
        let mut d = trained();
        for i in 10..20 {
            let obs = d.observe(&steady(i));
            assert!(!obs.alarm, "interval {i} alarmed on steady traffic");
        }
    }

    #[test]
    fn top_movers_are_bounded() {
        let mut d = trained();
        let mut flows = steady(10);
        flows.extend(flows_to_ports(&(2000..4000).collect::<Vec<u16>>()));
        let obs = d.observe(&flows);
        assert!(obs.alarm);
        assert!(
            obs.values.len() <= 32,
            "meta-data capped: {}",
            obs.values.len()
        );
    }

    #[test]
    fn empty_interval_is_tolerated() {
        let mut d = EntropyDetector::new(FlowFeature::DstPort, 3.0, 3);
        for _ in 0..6 {
            let obs = d.observe(&[]);
            assert_eq!(obs.entropy, 0.0);
            assert!(!obs.alarm);
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 training intervals")]
    fn short_training_panics() {
        let _ = EntropyDetector::new(FlowFeature::DstPort, 3.0, 1);
    }
}
