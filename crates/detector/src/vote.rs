//! l-of-n voting across histogram clones (paper §II-D).
//!
//! Each clone that alarms proposes a set of candidate feature values (the
//! values observed in its anomalous bins). Voting keeps a value iff at
//! least `l` of the `n` clones proposed it: `l = 1` is the union of the
//! clones' views, `l = n` the intersection used in the short (IMC'09)
//! version of the paper. The generalized scheme trades false negatives
//! (large `l`) against false positives (small `l`) — quantified by the
//! analytic models in `anomex-core::models`.

use std::collections::{BTreeMap, BTreeSet};

/// Keep the values proposed by at least `votes` of the given clone sets.
///
/// # Panics
///
/// Panics if `votes` is zero (a zero quorum would keep every value ever
/// seen, including values proposed by nobody — meaningless) or larger than
/// the number of clone sets (nothing could ever qualify).
#[must_use]
pub fn vote(clone_sets: &[BTreeSet<u64>], votes: usize) -> BTreeSet<u64> {
    assert!(votes >= 1, "vote quorum must be at least 1");
    assert!(
        votes <= clone_sets.len(),
        "vote quorum {} exceeds the number of clone sets {}",
        votes,
        clone_sets.len()
    );
    let mut tally: BTreeMap<u64, usize> = BTreeMap::new();
    for set in clone_sets {
        for &value in set {
            *tally.entry(value).or_insert(0) += 1;
        }
    }
    tally
        .into_iter()
        .filter(|&(_, n)| n >= votes)
        .map(|(v, _)| v)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(vals: &[u64]) -> BTreeSet<u64> {
        vals.iter().copied().collect()
    }

    #[test]
    fn unanimous_vote_is_intersection() {
        let sets = vec![set(&[1, 2, 3]), set(&[2, 3, 4]), set(&[3, 2, 9])];
        assert_eq!(vote(&sets, 3), set(&[2, 3]));
    }

    #[test]
    fn single_vote_is_union() {
        let sets = vec![set(&[1]), set(&[2]), set(&[3])];
        assert_eq!(vote(&sets, 1), set(&[1, 2, 3]));
    }

    #[test]
    fn majority_vote() {
        let sets = vec![set(&[1, 2]), set(&[2, 3]), set(&[2, 4])];
        assert_eq!(vote(&sets, 2), set(&[2]));
    }

    #[test]
    fn raising_quorum_never_adds_values() {
        let sets = vec![
            set(&[1, 2, 5]),
            set(&[2, 5, 7]),
            set(&[5, 7, 9]),
            set(&[5, 1]),
        ];
        let mut prev = vote(&sets, 1);
        for l in 2..=4 {
            let cur = vote(&sets, l);
            assert!(cur.is_subset(&prev), "quorum {l} added values");
            prev = cur;
        }
    }

    #[test]
    fn empty_sets_yield_empty_result() {
        let sets = vec![BTreeSet::new(), BTreeSet::new()];
        assert!(vote(&sets, 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "quorum must be at least 1")]
    fn zero_quorum_panics() {
        let _ = vote(&[BTreeSet::new()], 0);
    }

    #[test]
    #[should_panic(expected = "exceeds the number of clone sets")]
    fn oversized_quorum_panics() {
        let _ = vote(&[BTreeSet::new()], 2);
    }
}
