//! The detector bank: `m` feature detectors producing consolidated
//! meta-data.
//!
//! The paper runs five histogram detectors (srcIP, dstIP, srcPort, dstPort,
//! packets-per-flow) and consolidates their per-feature meta-data by
//! **union** into the pre-filter input (Fig. 3). [`DetectorBank`] is that
//! assembly: feed it intervals, get alarms plus merged [`MetaData`].

use std::ops::Range;

use anomex_netflow::snapshot::{RestoreError, SnapshotReader, SnapshotWriter};
use anomex_netflow::{FlowColumns, FlowFeature, FlowRecord};
use serde::{Deserialize, Serialize};

use crate::detector::{FeatureDetector, FeatureObservation, FeaturePartial};
use crate::metadata::MetaData;

/// Configuration of a detector bank — the paper's Table III parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Histogram bins `k` per clone (paper: 1024; range 512–2048).
    pub bins: u32,
    /// Histogram clones `n` per feature (paper: 3).
    pub clones: usize,
    /// Vote quorum `l` (paper: 3, i.e. unanimous with n = 3).
    pub votes: usize,
    /// Threshold multiplier α on the first-difference σ̂ (paper: 3).
    pub alpha: f64,
    /// Number of first-difference samples used to fit σ̂.
    pub training_intervals: usize,
    /// The monitored features (paper: the five detection features).
    pub features: Vec<FlowFeature>,
    /// Master seed for all clone hash functions.
    pub seed: u64,
}

impl Default for DetectorConfig {
    /// The paper's evaluation setting: k = 1024, n = l = 3, α = 3, five
    /// detection features.
    fn default() -> Self {
        DetectorConfig {
            bins: 1024,
            clones: 3,
            votes: 3,
            alpha: 3.0,
            training_intervals: 48,
            features: FlowFeature::DETECTION_FEATURES.to_vec(),
            seed: 0x616e_6f6d_6578, // "anomex"
        }
    }
}

impl DetectorConfig {
    /// Validate the parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.bins == 0 {
            return Err("bins must be positive".into());
        }
        if self.clones == 0 {
            return Err("need at least one clone".into());
        }
        if !(1..=self.clones).contains(&self.votes) {
            return Err(format!(
                "votes {} must be within 1..={}",
                self.votes, self.clones
            ));
        }
        if self.training_intervals < 2 {
            return Err("need at least 2 training intervals".into());
        }
        if self.features.is_empty() {
            return Err("need at least one monitored feature".into());
        }
        if !self.alpha.is_finite() || self.alpha <= 0.0 {
            return Err("alpha must be positive and finite".into());
        }
        Ok(())
    }

    /// Serialize the configuration into a snapshot payload, so a restore
    /// can rebuild the bank structure without out-of-band knowledge.
    pub fn encode_snapshot(&self, w: &mut SnapshotWriter) {
        w.u32(self.bins);
        w.usize(self.clones);
        w.usize(self.votes);
        w.f64(self.alpha);
        w.usize(self.training_intervals);
        w.usize(self.features.len());
        for &f in &self.features {
            w.u8(f.index() as u8);
        }
        w.u64(self.seed);
    }

    /// Rebuild a configuration from a snapshot written by
    /// [`encode_snapshot`](Self::encode_snapshot).
    ///
    /// # Errors
    ///
    /// [`RestoreError::Truncated`] on a short payload,
    /// [`RestoreError::Corrupt`] on an unknown feature index or a
    /// configuration that fails [`validate`](Self::validate).
    pub fn decode_snapshot(r: &mut SnapshotReader<'_>) -> Result<Self, RestoreError> {
        let bins = r.u32()?;
        let clones = r.usize()?;
        let votes = r.usize()?;
        let alpha = r.f64()?;
        let training_intervals = r.usize()?;
        let n = r.seq_len(1)?;
        let mut features = Vec::with_capacity(n);
        for _ in 0..n {
            let idx = usize::from(r.u8()?);
            if idx >= FlowFeature::EXTENDED.len() {
                return Err(RestoreError::Corrupt(format!("bad feature index {idx}")));
            }
            features.push(FlowFeature::from_index(idx));
        }
        let seed = r.u64()?;
        let config = DetectorConfig {
            bins,
            clones,
            votes,
            alpha,
            training_intervals,
            features,
            seed,
        };
        config
            .validate()
            .map_err(|e| RestoreError::Corrupt(format!("invalid detector config: {e}")))?;
        Ok(config)
    }
}

/// What the whole bank saw in one interval.
#[derive(Debug, Clone)]
pub struct BankObservation {
    /// Zero-based interval index since the bank was created.
    pub interval: u64,
    /// Per-feature observations, in configured feature order.
    pub features: Vec<FeatureObservation>,
    /// Whether any feature alarmed.
    pub alarm: bool,
    /// Union of the voted meta-data of all alarmed features (Fig. 3's
    /// "⋃ Mᵢ").
    pub metadata: MetaData,
}

impl BankObservation {
    /// The features that alarmed this interval.
    pub fn alarmed_features(&self) -> impl Iterator<Item = FlowFeature> + '_ {
        self.features.iter().filter(|o| o.alarm).map(|o| o.feature)
    }
}

/// All detectors' partial histograms over one flow shard — what one
/// worker thread produces from its chunk of an interval. Partials over
/// disjoint shards [`merge`](BankPartial::merge) into exactly the state a
/// sequential [`DetectorBank::observe`] would build, so the sharded and
/// sequential paths score bit-identical KL values by construction.
#[derive(Debug, Clone)]
pub struct BankPartial {
    features: Vec<FeaturePartial>,
}

impl BankPartial {
    /// Merge another shard's partial into this one. Merging is
    /// order-independent (integer count sums and value-set unions), so
    /// any merge tree over the shards yields the same result.
    ///
    /// # Panics
    ///
    /// Panics if the partials come from banks with different
    /// configurations.
    pub fn merge(&mut self, other: BankPartial) {
        assert_eq!(
            self.features.len(),
            other.features.len(),
            "cannot merge partials of different banks"
        );
        for (mine, theirs) in self.features.iter_mut().zip(other.features) {
            mine.merge(theirs);
        }
    }
}

/// The immutable histogramming half of a whole [`DetectorBank`]: one
/// [`FeatureHasher`](crate::FeatureHasher) per configured feature.
///
/// Snapshot it once ([`DetectorBank::hasher`]), share it behind an
/// `Arc`, and persistent worker-pool threads can build [`BankPartial`]s
/// over flow shards for every interval of a stream — while the bank's
/// mutable state (reference histograms, σ̂ thresholds, the interval
/// counter) stays exclusively with the owner, which scores the merged
/// partial via [`DetectorBank::observe_partial`]. The partials are
/// bit-identical to [`DetectorBank::partial`]'s by construction.
#[derive(Debug, Clone)]
pub struct BankHasher {
    features: Vec<crate::detector::FeatureHasher>,
}

impl BankHasher {
    /// Build every detector's partial histograms over one flow shard —
    /// exactly what [`DetectorBank::partial`] builds, without borrowing
    /// the bank.
    #[must_use]
    pub fn partial(&self, flows: &[FlowRecord]) -> BankPartial {
        BankPartial {
            features: self.features.iter().map(|h| h.partial(flows)).collect(),
        }
    }

    /// Build every detector's partial histograms from a columnar store
    /// over the row `range` — the struct-of-arrays counterpart of
    /// [`partial`](Self::partial): each feature scans only its own
    /// contiguous column
    /// ([`FeatureHasher::partial_columns`](crate::FeatureHasher::partial_columns)),
    /// and the partials are bit-identical to the record path's by
    /// construction.
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds for `cols`.
    #[must_use]
    pub fn partial_columns(&self, cols: &FlowColumns, range: Range<usize>) -> BankPartial {
        BankPartial {
            features: self
                .features
                .iter()
                .map(|h| h.partial_columns(cols, range.clone()))
                .collect(),
        }
    }
}

/// `m` feature detectors operated in lockstep.
#[derive(Debug)]
pub struct DetectorBank {
    detectors: Vec<FeatureDetector>,
    interval: u64,
}

impl DetectorBank {
    /// Build a bank from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`DetectorConfig::validate`]).
    #[must_use]
    pub fn new(config: &DetectorConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid detector configuration: {e}");
        }
        let detectors = config
            .features
            .iter()
            .map(|&feature| {
                FeatureDetector::new(
                    feature,
                    config.bins,
                    config.clones,
                    config.votes,
                    config.alpha,
                    config.training_intervals,
                    config.seed,
                )
            })
            .collect();
        DetectorBank {
            detectors,
            interval: 0,
        }
    }

    /// Build every detector's partial histograms over one flow shard
    /// without advancing any state. Takes `&self`, so worker threads can
    /// histogram disjoint shards concurrently; the partials then
    /// [`merge`](BankPartial::merge) and a single
    /// [`observe_partial`](Self::observe_partial) call scores the result.
    #[must_use]
    pub fn partial(&self, flows: &[FlowRecord]) -> BankPartial {
        BankPartial {
            features: self.detectors.iter().map(|d| d.partial(flows)).collect(),
        }
    }

    /// Snapshot the immutable histogramming half of the bank — what
    /// worker threads need to build partials for every interval of a
    /// stream without borrowing (or locking) the bank itself.
    #[must_use]
    pub fn hasher(&self) -> BankHasher {
        BankHasher {
            features: self
                .detectors
                .iter()
                .map(FeatureDetector::hasher_spec)
                .collect(),
        }
    }

    /// Observe one interval's flows with every detector.
    pub fn observe(&mut self, flows: &[FlowRecord]) -> BankObservation {
        let partial = self.partial(flows);
        self.observe_partial(partial)
    }

    /// Score a (merged) partial and advance every detector — the
    /// sequential tail of a sharded observation. Produces exactly what
    /// [`observe`](Self::observe) over the concatenated shards would.
    ///
    /// # Panics
    ///
    /// Panics if the partial was built by a bank with a different
    /// configuration.
    pub fn observe_partial(&mut self, partial: BankPartial) -> BankObservation {
        assert_eq!(
            partial.features.len(),
            self.detectors.len(),
            "partial was built by a different bank"
        );
        let features: Vec<FeatureObservation> = self
            .detectors
            .iter_mut()
            .zip(partial.features)
            .map(|(d, p)| d.observe_partial(p))
            .collect();
        let mut metadata = MetaData::new();
        for obs in &features {
            if obs.alarm {
                metadata.insert_all(obs.feature, obs.voted_values.iter().copied());
            }
        }
        let alarm = features.iter().any(|o| o.alarm);
        let observation = BankObservation {
            interval: self.interval,
            features,
            alarm,
            metadata,
        };
        self.interval += 1;
        observation
    }

    /// Whether all detectors finished training.
    #[must_use]
    pub fn is_trained(&self) -> bool {
        self.detectors.iter().all(FeatureDetector::is_trained)
    }

    /// Access the per-feature detectors.
    #[must_use]
    pub fn detectors(&self) -> &[FeatureDetector] {
        &self.detectors
    }

    /// Number of intervals observed so far.
    #[must_use]
    pub fn intervals_observed(&self) -> u64 {
        self.interval
    }

    /// Change the threshold multiplier α on every clone of every
    /// detector — live reconfiguration at an interval boundary. Fitted
    /// σ̂s are untouched; only the multiplier moves.
    pub fn set_alpha(&mut self, alpha: f64) {
        for det in &mut self.detectors {
            det.set_alpha(alpha);
        }
    }

    /// Serialize the bank's complete mutable state — the interval
    /// counter and every clone's temporal state, in configured detector
    /// order. Structure (features, hashers, quorums) is rebuilt from the
    /// [`DetectorConfig`] on restore; hash functions are re-derived from
    /// the seed, so only their *state* travels.
    pub fn encode_snapshot(&self, w: &mut SnapshotWriter) {
        w.u64(self.interval);
        w.usize(self.detectors.len());
        for det in &self.detectors {
            det.encode_snapshot(w);
        }
    }

    /// Overwrite this bank's mutable state with a snapshot written by
    /// [`encode_snapshot`](Self::encode_snapshot). The bank must have
    /// been built from the same [`DetectorConfig`] that produced the
    /// snapshot; the restored bank then scores subsequent intervals
    /// bit-identically to the bank that was saved.
    ///
    /// # Errors
    ///
    /// [`RestoreError::Corrupt`] when the snapshot's detector count
    /// differs from this bank's configuration, plus the per-detector
    /// decode errors.
    pub fn restore_snapshot(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), RestoreError> {
        let interval = r.u64()?;
        let n = r.seq_len(1)?;
        if n != self.detectors.len() {
            return Err(RestoreError::Corrupt(format!(
                "snapshot has {n} detectors, bank expects {}",
                self.detectors.len()
            )));
        }
        for det in &mut self.detectors {
            det.restore_snapshot(r)?;
        }
        self.interval = interval;
        Ok(())
    }

    /// Retained heap footprint of all histograms — reproduces the paper's
    /// §III-E memory accounting (5 detectors × 3 clones × 1024 bins ≈
    /// hundreds of kB).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.detectors
            .iter()
            .map(FeatureDetector::memory_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomex_netflow::Protocol;
    use std::net::Ipv4Addr;

    fn config() -> DetectorConfig {
        DetectorConfig {
            training_intervals: 10,
            ..DetectorConfig::default()
        }
    }

    fn background(interval: u64) -> Vec<FlowRecord> {
        (0..400u64)
            .map(|i| {
                FlowRecord::new(
                    interval * 60_000 + i,
                    Ipv4Addr::from(0x0a00_0000 + ((i * 31 + interval) % 256) as u32),
                    Ipv4Addr::from(0xc0a8_0000 + ((i * 17) % 64) as u32),
                    (1024 + (i * 7) % 2000) as u16,
                    (1 + (i * 13) % 800) as u16,
                    Protocol::Tcp,
                )
                .with_volume(1 + (i % 9) as u32, 40 * (1 + (i % 9) as u32))
            })
            .collect()
    }

    fn ddos(interval: u64) -> Vec<FlowRecord> {
        let mut flows = background(interval);
        for i in 0..3000u64 {
            flows.push(
                FlowRecord::new(
                    interval * 60_000 + i,
                    Ipv4Addr::from(0x3000_0000 + (i % 2500) as u32), // many sources
                    Ipv4Addr::new(10, 0, 0, 77),                     // one victim
                    (1024 + (i % 50_000)) as u16,
                    7000,
                    Protocol::Udp,
                )
                .with_volume(2, 96),
            );
        }
        flows
    }

    #[test]
    fn default_config_is_the_papers() {
        let c = DetectorConfig::default();
        assert_eq!(c.bins, 1024);
        assert_eq!(c.clones, 3);
        assert_eq!(c.votes, 3);
        assert!((c.alpha - 3.0).abs() < f64::EPSILON);
        assert_eq!(c.features.len(), 5);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_parameters() {
        let mut c = config();
        c.votes = 5;
        assert!(c.validate().is_err());
        c = config();
        c.bins = 0;
        assert!(c.validate().is_err());
        c = config();
        c.features.clear();
        assert!(c.validate().is_err());
        c = config();
        c.alpha = f64::NAN;
        assert!(c.validate().is_err());
    }

    #[test]
    fn ddos_alarms_dst_features_and_produces_metadata() {
        let mut bank = DetectorBank::new(&config());
        for i in 0..13 {
            let obs = bank.observe(&background(i));
            assert!(!obs.alarm, "training interval {i} alarmed");
        }
        assert!(bank.is_trained());
        let obs = bank.observe(&ddos(13));
        assert!(obs.alarm, "DDoS must raise an alarm");
        let alarmed: Vec<FlowFeature> = obs.alarmed_features().collect();
        assert!(
            alarmed.contains(&FlowFeature::DstIp) || alarmed.contains(&FlowFeature::DstPort),
            "a destination feature must alarm, got {alarmed:?}"
        );
        assert!(!obs.metadata.is_empty());
        // The victim artifacts should be in the meta-data.
        let has_victim_port = obs
            .metadata
            .values_for(FlowFeature::DstPort)
            .is_some_and(|v| v.contains(&7000));
        let has_victim_ip = obs
            .metadata
            .values_for(FlowFeature::DstIp)
            .is_some_and(|v| v.contains(&u64::from(u32::from(Ipv4Addr::new(10, 0, 0, 77)))));
        assert!(
            has_victim_port || has_victim_ip,
            "victim must appear in meta-data"
        );
    }

    #[test]
    fn interval_counter_advances() {
        let mut bank = DetectorBank::new(&config());
        assert_eq!(bank.intervals_observed(), 0);
        bank.observe(&background(0));
        bank.observe(&background(1));
        assert_eq!(bank.intervals_observed(), 2);
    }

    #[test]
    fn memory_footprint_reported() {
        let mut bank = DetectorBank::new(&config());
        bank.observe(&background(0));
        // 5 features × 3 clones × 1024 bins × 8 bytes = 122 880 minimum.
        assert!(bank.memory_bytes() >= 5 * 3 * 1024 * 8);
    }

    #[test]
    fn sharded_observation_is_bit_identical_to_sequential() {
        let mut sequential = DetectorBank::new(&config());
        let mut sharded = DetectorBank::new(&config());
        for i in 0..16 {
            let flows = if i == 14 { ddos(i) } else { background(i) };
            let a = sequential.observe(&flows);
            // Four uneven shards, merged in order.
            let quarter = flows.len() / 4;
            let mut partial = sharded.partial(&flows[..quarter]);
            partial.merge(sharded.partial(&flows[quarter..2 * quarter]));
            partial.merge(sharded.partial(&flows[2 * quarter..3 * quarter + 1]));
            partial.merge(sharded.partial(&flows[3 * quarter + 1..]));
            let b = sharded.observe_partial(partial);
            assert_eq!(a.alarm, b.alarm, "interval {i}");
            assert_eq!(a.metadata, b.metadata, "interval {i}");
            for (x, y) in a.features.iter().zip(&b.features) {
                for (cx, cy) in x.clones.iter().zip(&y.clones) {
                    assert_eq!(
                        cx.kl.map(f64::to_bits),
                        cy.kl.map(f64::to_bits),
                        "interval {i} feature {:?}",
                        x.feature
                    );
                }
            }
        }
    }

    #[test]
    fn hasher_snapshot_builds_bit_identical_partials() {
        let mut via_bank = DetectorBank::new(&config());
        let mut via_hasher = DetectorBank::new(&config());
        let hasher = via_hasher.hasher();
        for i in 0..16 {
            let flows = if i == 14 { ddos(i) } else { background(i) };
            // Same uneven three-way sharding on both sides; one side
            // builds partials through the bank, the other through the
            // detached hasher snapshot.
            let third = flows.len() / 3;
            let a = {
                let mut p = via_bank.partial(&flows[..third]);
                p.merge(via_bank.partial(&flows[third..2 * third]));
                p.merge(via_bank.partial(&flows[2 * third..]));
                via_bank.observe_partial(p)
            };
            let b = {
                let mut p = hasher.partial(&flows[..third]);
                p.merge(hasher.partial(&flows[third..2 * third]));
                p.merge(hasher.partial(&flows[2 * third..]));
                via_hasher.observe_partial(p)
            };
            assert_eq!(a.alarm, b.alarm, "interval {i}");
            assert_eq!(a.metadata, b.metadata, "interval {i}");
            for (x, y) in a.features.iter().zip(&b.features) {
                assert_eq!(&x.voted_values, &y.voted_values);
                for (cx, cy) in x.clones.iter().zip(&y.clones) {
                    assert_eq!(cx.kl.map(f64::to_bits), cy.kl.map(f64::to_bits));
                }
            }
        }
    }

    #[test]
    fn columnar_partials_are_bit_identical_to_record_partials() {
        let mut via_records = DetectorBank::new(&config());
        let mut via_columns = DetectorBank::new(&config());
        let hasher = via_columns.hasher();
        for i in 0..16 {
            let flows = if i == 14 { ddos(i) } else { background(i) };
            let cols = FlowColumns::from_flows(&flows);
            let third = flows.len() / 3;
            let a = {
                let mut p = via_records.partial(&flows[..third]);
                p.merge(via_records.partial(&flows[third..2 * third]));
                p.merge(via_records.partial(&flows[2 * third..]));
                via_records.observe_partial(p)
            };
            let b = {
                let mut p = hasher.partial_columns(&cols, 0..third);
                p.merge(hasher.partial_columns(&cols, third..2 * third));
                p.merge(hasher.partial_columns(&cols, 2 * third..flows.len()));
                via_columns.observe_partial(p)
            };
            assert_eq!(a.alarm, b.alarm, "interval {i}");
            assert_eq!(a.metadata, b.metadata, "interval {i}");
            for (x, y) in a.features.iter().zip(&b.features) {
                assert_eq!(&x.voted_values, &y.voted_values);
                for (cx, cy) in x.clones.iter().zip(&y.clones) {
                    assert_eq!(cx.kl.map(f64::to_bits), cy.kl.map(f64::to_bits));
                }
            }
        }
    }

    #[test]
    fn bank_snapshot_round_trip_is_bit_identical() {
        // Train past the threshold fit, snapshot mid-stream, restore into
        // a bank rebuilt from the (decoded) config, and verify the tail —
        // including a DDoS interval — scores identically to the bit.
        let mut live = DetectorBank::new(&config());
        for i in 0..13 {
            live.observe(&background(i));
        }
        let mut w = SnapshotWriter::new();
        config().encode_snapshot(&mut w);
        live.encode_snapshot(&mut w);
        let buf = w.into_bytes();
        let mut r = SnapshotReader::new(&buf);
        let decoded_config = DetectorConfig::decode_snapshot(&mut r).unwrap();
        let mut restored = DetectorBank::new(&decoded_config);
        restored.restore_snapshot(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(restored.intervals_observed(), live.intervals_observed());
        assert_eq!(restored.is_trained(), live.is_trained());
        for i in 13..17 {
            let flows = if i == 14 { ddos(i) } else { background(i) };
            let a = live.observe(&flows);
            let b = restored.observe(&flows);
            assert_eq!(a.alarm, b.alarm, "interval {i}");
            assert_eq!(a.metadata, b.metadata, "interval {i}");
            for (x, y) in a.features.iter().zip(&b.features) {
                for (cx, cy) in x.clones.iter().zip(&y.clones) {
                    assert_eq!(cx.kl.map(f64::to_bits), cy.kl.map(f64::to_bits));
                }
            }
        }
    }

    #[test]
    fn bank_restore_rejects_detector_count_mismatch() {
        let mut live = DetectorBank::new(&config());
        live.observe(&background(0));
        let mut w = SnapshotWriter::new();
        live.encode_snapshot(&mut w);
        let buf = w.into_bytes();
        let mut other_config = config();
        other_config.features = vec![FlowFeature::DstPort];
        let mut other = DetectorBank::new(&other_config);
        let mut r = SnapshotReader::new(&buf);
        assert!(other.restore_snapshot(&mut r).is_err());
    }

    #[test]
    fn config_snapshot_round_trips_and_validates() {
        let c = config();
        let mut w = SnapshotWriter::new();
        c.encode_snapshot(&mut w);
        let buf = w.into_bytes();
        let mut r = SnapshotReader::new(&buf);
        let back = DetectorConfig::decode_snapshot(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.bins, c.bins);
        assert_eq!(back.features, c.features);
        assert_eq!(back.seed, c.seed);
        assert_eq!(back.alpha.to_bits(), c.alpha.to_bits());
        // A config that decodes but violates its own invariants is corrupt.
        let mut bad = config();
        bad.votes = 99;
        let mut w = SnapshotWriter::new();
        bad.encode_snapshot(&mut w);
        let buf = w.into_bytes();
        let mut r = SnapshotReader::new(&buf);
        assert!(DetectorConfig::decode_snapshot(&mut r).is_err());
    }

    #[test]
    #[should_panic(expected = "invalid detector configuration")]
    fn bad_config_panics_on_construction() {
        let mut c = config();
        c.clones = 0;
        let _ = DetectorBank::new(&c);
    }
}
