//! # anomex-detector — histogram-based anomaly detection
//!
//! The detection substrate of the
//! [anomex](https://crates.io/crates/anomex) anomaly-extraction system
//! (Brauckhoff et al., IMC 2009 / IEEE ToN 2012), §II-C–§II-D of the paper:
//!
//! - [`kl`] — Kullback–Leibler distance between per-interval flow-count
//!   histograms;
//! - [`threshold`] — MAD-robust σ̂ estimation and the one-sided
//!   `α·σ̂` alarm test on the first difference of the KL series;
//! - [`hash`] / [`histogram`] — histogram *cloning*: per-clone seeded hash
//!   binning with bin→value reverse maps;
//! - [`kernels`] — batched, lane-oriented kernels for the columnar hot
//!   loops (SplitMix64 binning, small-set membership) with runtime
//!   scalar/AVX2 dispatch, bit-identical to the scalar reference;
//! - [`binid`] — the iterative anomalous-bin identification that simulates
//!   flow removal until the alarm clears (Fig. 5);
//! - [`mod@vote`] — l-of-n voting across clones;
//! - [`detector`] / [`bank`] — per-feature detectors and the five-feature
//!   detector bank producing consolidated [`MetaData`];
//! - [`roc`] — ROC curve analysis for the threshold sweep (Fig. 6);
//! - [`entropy`] — a sample-entropy detector (Table I's alternative
//!   detector family) producing the same [`MetaData`] interface.
//!
//! The output of this crate — [`MetaData`] — is what the extraction
//! pipeline (`anomex-core`) uses to pre-filter suspicious flows before
//! frequent item-set mining.

#![warn(missing_docs)]
// `deny` rather than `forbid`: the one sanctioned exception is the AVX2
// kernel layer in [`kernels`], which scopes an `allow(unsafe_code)` to
// its runtime-dispatched `std::arch` surface (documented there).
#![deny(unsafe_code)]

pub mod bank;
pub mod binid;
pub mod clone;
pub mod detector;
pub mod entropy;
pub mod hash;
pub mod histogram;
pub mod kernels;
pub mod kl;
pub mod metadata;
pub mod roc;
pub mod threshold;
pub mod vote;

pub use bank::{BankHasher, BankObservation, BankPartial, DetectorBank, DetectorConfig};
pub use binid::{identify_anomalous_bins, BinIdentification};
pub use clone::{CloneObservation, ClonePhase, HistogramClone};
pub use detector::{FeatureDetector, FeatureHasher, FeatureObservation, FeaturePartial};
pub use entropy::{shannon_entropy, EntropyDetector, EntropyObservation};
pub use hash::{derive_hashers, BinHasher};
pub use histogram::FeatureHistogram;
pub use kernels::{active_backend, KernelBackend, SmallValueSet};
pub use kl::{kl_distance, kl_divergence_raw};
pub use metadata::MetaData;
pub use roc::{RocCurve, RocPoint};
pub use threshold::{median, robust_sigma, FirstDiffThreshold, MAD_TO_SIGMA, SIGMA_FLOOR};
pub use vote::vote;
