//! Property-based tests for the detection substrate.

use std::collections::BTreeSet;

use anomex_detector::{
    identify_anomalous_bins, kl_distance, robust_sigma, vote, BinHasher, RocCurve, SIGMA_FLOOR,
};
use proptest::prelude::*;

proptest! {
    /// KL(p, p) = 0 for any histogram.
    #[test]
    fn kl_self_is_zero(h in proptest::collection::vec(0u64..100_000, 1..256)) {
        prop_assert_eq!(kl_distance(&h, &h), 0.0);
    }

    /// KL is non-negative (Gibbs' inequality, preserved by smoothing).
    #[test]
    fn kl_nonnegative(
        p in proptest::collection::vec(0u64..100_000, 32),
        q in proptest::collection::vec(0u64..100_000, 32),
    ) {
        let d = kl_distance(&p, &q);
        prop_assert!(d >= 0.0);
        prop_assert!(d.is_finite());
    }

    /// Bin identification always converges for a positive target, removes
    /// no bin twice, and ends below the target.
    #[test]
    fn binid_converges(
        reference in proptest::collection::vec(0u64..10_000, 64),
        spikes in proptest::collection::vec((0usize..64, 1u64..1_000_000), 0..8),
        target_milli in 1u64..1000,
    ) {
        let mut current = reference.clone();
        for &(bin, mass) in &spikes {
            current[bin] += mass;
        }
        let target = target_milli as f64 / 1000.0;
        let id = identify_anomalous_bins(&current, &reference, target);
        prop_assert!(id.converged);
        prop_assert!(*id.kl_trajectory.last().unwrap() <= target);
        let mut bins = id.bins.clone();
        bins.sort_unstable();
        bins.dedup();
        prop_assert_eq!(bins.len(), id.bins.len(), "a bin was removed twice");
        // Termination bound: at most one round per bin.
        prop_assert!(id.bins.len() <= reference.len());
    }

    /// Voting is monotone: raising the quorum never adds values, l=1 is
    /// the union, l=n the intersection.
    #[test]
    fn voting_monotone(
        sets in proptest::collection::vec(
            proptest::collection::btree_set(0u64..50, 0..20), 1..6
        ),
    ) {
        let n = sets.len();
        let union: BTreeSet<u64> = sets.iter().flatten().copied().collect();
        let inter: BTreeSet<u64> = sets
            .iter()
            .skip(1)
            .fold(sets[0].clone(), |acc, s| acc.intersection(s).copied().collect());
        prop_assert_eq!(vote(&sets, 1), union);
        prop_assert_eq!(vote(&sets, n), inter);
        let mut prev = vote(&sets, 1);
        for l in 2..=n {
            let cur = vote(&sets, l);
            prop_assert!(cur.is_subset(&prev));
            prev = cur;
        }
    }

    /// The robust σ is invariant under shifts and scales with the data.
    #[test]
    fn robust_sigma_affine(sample in proptest::collection::vec(-1000.0f64..1000.0, 3..64),
                           shift in -100.0f64..100.0) {
        let sigma = robust_sigma(&sample);
        let shifted: Vec<f64> = sample.iter().map(|x| x + shift).collect();
        let sigma_shifted = robust_sigma(&shifted);
        prop_assert!((sigma - sigma_shifted).abs() < 1e-6 * sigma.max(1.0));
        let scaled: Vec<f64> = sample.iter().map(|x| x * 3.0).collect();
        let sigma_scaled = robust_sigma(&scaled);
        if sigma > SIGMA_FLOOR {
            prop_assert!((sigma_scaled / sigma - 3.0).abs() < 1e-6);
        }
    }

    /// Hash binning is deterministic and in-range for any seed.
    #[test]
    fn hash_bins_in_range(seed in any::<u64>(), values in proptest::collection::vec(any::<u64>(), 1..100), bins in 1u32..4096) {
        let h = BinHasher::new(seed);
        for &v in &values {
            let b = h.bin_of(v, bins);
            prop_assert!(b < bins);
            prop_assert_eq!(b, h.bin_of(v, bins));
        }
    }

    /// ROC curves are monotone with endpoints (0,0) and (1,1), and AUC is
    /// within [0,1].
    #[test]
    fn roc_invariants(
        scored in proptest::collection::vec((0.0f64..100.0, any::<bool>()), 2..100),
    ) {
        let scores: Vec<f64> = scored.iter().map(|&(s, _)| s).collect();
        let truth: Vec<bool> = scored.iter().map(|&(_, t)| t).collect();
        let roc = RocCurve::from_scores(&scores, &truth);
        let first = roc.points.first().unwrap();
        prop_assert_eq!((first.fpr, first.tpr), (0.0, 0.0));
        let last = roc.points.last().unwrap();
        prop_assert!(last.fpr >= 1.0 - 1e-9 || truth.iter().all(|&t| t));
        for w in roc.points.windows(2) {
            prop_assert!(w[1].fpr >= w[0].fpr - 1e-12);
            prop_assert!(w[1].tpr >= w[0].tpr - 1e-12);
        }
        let auc = roc.auc();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&auc));
    }
}
