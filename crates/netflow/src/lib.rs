//! # anomex-netflow — flow-record substrate
//!
//! The data layer of the [anomex](https://crates.io/crates/anomex) anomaly
//! extraction system (Brauckhoff et al., *Anomaly Extraction in Backbone
//! Networks Using Association Rules*, IMC 2009 / IEEE ToN 2012).
//!
//! Provides:
//!
//! - [`FlowRecord`] / [`Protocol`] / [`TcpFlags`] — unidirectional NetFlow
//!   v5-style flow records;
//! - [`FlowFeature`] / [`FeatureValue`] — the seven per-flow traffic
//!   features the paper histograms and mines, with a uniform `u64` value
//!   encoding;
//! - [`v5`] — a complete NetFlow v5 wire codec (header + 48-byte records,
//!   big-endian) with a sequence-tracking exporter and collector;
//! - [`v9`] — v9/IPFIX template-only punctuation packets decoded as
//!   exporter heartbeats for the multi-source watermark grid;
//! - [`FlowTrace`] / [`Interval`] — batch traces sliced into measurement
//!   intervals;
//! - [`IntervalAssembler`] — streaming interval assembly for online
//!   operation;
//! - [`SourceId`] / [`SourceSpec`] / [`SourcedFlow`] — exporter identity
//!   and per-exporter clock origins for multi-router ingestion;
//! - [`MergeAssembler`] — N exporters fanned in onto one shared interval
//!   grid with watermark close semantics and per-source drop accounting;
//! - [`shard`] — deterministic balanced chunking of flow batches, the
//!   partitioning contract of the sharded parallel extraction engine;
//! - [`FlowColumns`] — struct-of-arrays storage of a flow batch (one
//!   contiguous column per feature) for cache-friendly single-column
//!   scans, with a v5 fast path ([`v5::decode_into_columns`]) that
//!   parses datagrams straight into columns;
//! - [`snapshot`] — the versioned, checksummed checkpoint codec that
//!   durable operation is built on: atomic checkpoint files, bit-exact
//!   state round trips, and typed [`RestoreError`]s on hostile input.
//!
//! This crate has no opinion about detection or mining; it only defines
//! what a flow is and how flows are grouped in time.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod columns;
pub mod error;
pub mod feature;
pub mod flow;
pub mod merge;
pub mod shard;
pub mod snapshot;
pub mod source;
pub mod stream;
pub mod trace;
pub mod v5;
pub mod v9;

pub use columns::{FlowColumns, RawChunks, LANES};
pub use error::{DecodeError, EncodeError};
pub use feature::{FeatureValue, FlowFeature, ParseFeatureValueError};
pub use flow::{FlowRecord, Protocol, TcpFlags};
pub use merge::{MergeAssembler, MergeConfig, MergedInterval, SourceStats};
pub use shard::{chunk_ranges, chunks_of, default_shards};
pub use snapshot::{
    read_checkpoint, write_checkpoint, RestoreError, SnapshotReader, SnapshotWriter,
    CHECKPOINT_VERSION,
};
pub use source::{SourceId, SourceSpec, SourcedFlow};
pub use stream::{ClosedInterval, IntervalAssembler, StreamConfigError};
pub use trace::{FlowTrace, Interval, MINUTE_MS};
