//! NetFlow v9 / IPFIX punctuation: template-only packets as heartbeats.
//!
//! The flow records themselves travel as NetFlow v5 in this system (the
//! paper's dataset is v5), but real collectors also receive periodic
//! **template and options-template packets** from v9/IPFIX exporters —
//! sent even when the link is idle, as keepalives carrying sampling
//! configuration and exporter state. For the multi-source watermark grid
//! ([`crate::MergeAssembler`]) these packets matter: an idle-but-live
//! exporter's punctuation proves its clock has advanced, releasing
//! merged intervals that would otherwise wait for `max_lag` to fire.
//!
//! This module decodes exactly that punctuation: v9 (version 9) and
//! IPFIX (version 10) packets whose flowsets are all templates or
//! options templates. Each decodes to a [`Punctuation`] carrying the
//! header's export wall-clock, which callers feed to
//! [`crate::MergeAssembler::heartbeat`]. Data flowsets are rejected with
//! [`DecodeError::UnsupportedFlowset`] — decoding them would need
//! per-exporter template state, and the flow path here is v5.
//!
//! [`decode_mixed_stream`] ingests a capture file interleaving v5
//! datagrams with v9/IPFIX punctuation, dispatching on each packet's
//! leading version word.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::DecodeError;
use crate::v5::{decode_datagram, V5Datagram, V5_HEADER_LEN, V5_RECORD_LEN};

/// The NetFlow v9 version word.
pub const V9_VERSION: u16 = 9;
/// The IPFIX version word (RFC 7011 calls it version 10).
pub const IPFIX_VERSION: u16 = 10;
/// Size of the fixed v9 packet header in bytes.
pub const V9_HEADER_LEN: usize = 20;
/// Size of the fixed IPFIX message header in bytes.
pub const IPFIX_HEADER_LEN: usize = 16;

/// A decoded template-only v9/IPFIX packet — exporter punctuation.
///
/// Carries no flows; its value is the export wall-clock, which advances
/// the exporter's watermark lane in the merge grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Punctuation {
    /// The version word: [`V9_VERSION`] or [`IPFIX_VERSION`].
    pub version: u16,
    /// Export wall-clock in milliseconds (header seconds × 1000) — the
    /// `now_ms` to hand [`crate::MergeAssembler::heartbeat`].
    pub export_ms: u64,
    /// The packet/message sequence number.
    pub sequence: u32,
    /// v9 source id / IPFIX observation domain id.
    pub domain: u32,
}

/// Decode one v9 or IPFIX punctuation packet from the front of `data`,
/// returning it and the number of bytes consumed.
///
/// Every flowset (v9) / set (IPFIX) in the packet must be a template or
/// options template; the presence of a data set makes the packet flow
/// traffic, not punctuation, and is an error here.
///
/// # Errors
///
/// [`DecodeError::BadVersion`] for a version word other than 9 or 10,
/// [`DecodeError::TruncatedHeader`]/[`DecodeError::TruncatedPacket`] on
/// short input, and [`DecodeError::UnsupportedFlowset`] on a data or
/// unknown flowset.
pub fn decode_punctuation(data: &[u8]) -> Result<(Punctuation, usize), DecodeError> {
    if data.len() < 2 {
        return Err(DecodeError::TruncatedHeader {
            have: data.len(),
            need: V9_HEADER_LEN.min(IPFIX_HEADER_LEN),
        });
    }
    match u16::from_be_bytes([data[0], data[1]]) {
        V9_VERSION => decode_v9(data),
        IPFIX_VERSION => decode_ipfix(data),
        other => Err(DecodeError::BadVersion(other)),
    }
}

/// v9: the header counts records, not bytes, so framing walks the
/// flowsets — each one length-prefixed — until the record count is met.
fn decode_v9(mut data: &[u8]) -> Result<(Punctuation, usize), DecodeError> {
    let total = data.len();
    if total < V9_HEADER_LEN {
        return Err(DecodeError::TruncatedHeader {
            have: total,
            need: V9_HEADER_LEN,
        });
    }
    let _version = data.get_u16();
    let count = data.get_u16();
    let _sys_uptime_ms = data.get_u32();
    let unix_secs = data.get_u32();
    let sequence = data.get_u32();
    let domain = data.get_u32();

    let mut records_seen: usize = 0;
    while records_seen < usize::from(count) {
        let (id, body) = read_set_header(&mut data, V9_VERSION)?;
        records_seen += match id {
            0 => count_template_records(body),
            1 => count_options_records(body),
            other => {
                return Err(DecodeError::UnsupportedFlowset {
                    version: V9_VERSION,
                    id: other,
                })
            }
        };
    }
    let punct = Punctuation {
        version: V9_VERSION,
        export_ms: u64::from(unix_secs) * 1000,
        sequence,
        domain,
    };
    Ok((punct, total - data.len()))
}

/// IPFIX: the header carries the total message length, so framing is
/// direct; the sets still have to all be templates.
fn decode_ipfix(packet: &[u8]) -> Result<(Punctuation, usize), DecodeError> {
    if packet.len() < IPFIX_HEADER_LEN {
        return Err(DecodeError::TruncatedHeader {
            have: packet.len(),
            need: IPFIX_HEADER_LEN,
        });
    }
    let mut data = packet;
    let _version = data.get_u16();
    let length = usize::from(data.get_u16());
    let export_secs = data.get_u32();
    let sequence = data.get_u32();
    let domain = data.get_u32();
    if length < IPFIX_HEADER_LEN || packet.len() < length {
        return Err(DecodeError::TruncatedPacket {
            have: packet.len(),
            need: length.max(IPFIX_HEADER_LEN),
        });
    }
    let mut sets = &packet[IPFIX_HEADER_LEN..length];
    while !sets.is_empty() {
        let (id, _body) = read_set_header(&mut sets, IPFIX_VERSION)?;
        if id != 2 && id != 3 {
            return Err(DecodeError::UnsupportedFlowset {
                version: IPFIX_VERSION,
                id,
            });
        }
    }
    let punct = Punctuation {
        version: IPFIX_VERSION,
        export_ms: u64::from(export_secs) * 1000,
        sequence,
        domain,
    };
    Ok((punct, length))
}

/// Read one flowset/set header (id + byte length) and split off its
/// body, leaving `data` positioned at the next set.
fn read_set_header<'a>(data: &mut &'a [u8], version: u16) -> Result<(u16, &'a [u8]), DecodeError> {
    if data.len() < 4 {
        return Err(DecodeError::TruncatedPacket {
            have: data.len(),
            need: 4,
        });
    }
    let id = data.get_u16();
    let length = usize::from(data.get_u16());
    if length < 4 {
        // A set shorter than its own header cannot frame anything.
        return Err(DecodeError::UnsupportedFlowset { version, id });
    }
    let body_len = length - 4;
    if data.len() < body_len {
        return Err(DecodeError::TruncatedPacket {
            have: data.len(),
            need: body_len,
        });
    }
    let (body, rest) = data.split_at(body_len);
    *data = rest;
    Ok((id, body))
}

/// Count the template records in a template flowset body: each is
/// `template_id, field_count` plus `field_count` 4-byte field specs.
/// Trailing padding (less than a record header, or a zero template id)
/// ends the walk.
fn count_template_records(mut body: &[u8]) -> usize {
    let mut n = 0;
    while body.len() >= 4 {
        let template_id = u16::from_be_bytes([body[0], body[1]]);
        if template_id == 0 {
            break; // padding
        }
        let field_count = usize::from(u16::from_be_bytes([body[2], body[3]]));
        let record = 4 + field_count * 4;
        if body.len() < record {
            break;
        }
        body = &body[record..];
        n += 1;
    }
    n
}

/// Count the records in an options-template flowset body: each is
/// `template_id, scope_length, option_length` plus that many bytes of
/// field specs (both lengths are in bytes on the v9 wire).
fn count_options_records(mut body: &[u8]) -> usize {
    let mut n = 0;
    while body.len() >= 6 {
        let template_id = u16::from_be_bytes([body[0], body[1]]);
        if template_id == 0 {
            break; // padding
        }
        let scope_len = usize::from(u16::from_be_bytes([body[2], body[3]]));
        let option_len = usize::from(u16::from_be_bytes([body[4], body[5]]));
        let record = 6 + scope_len + option_len;
        if body.len() < record {
            break;
        }
        body = &body[record..];
        n += 1;
    }
    n
}

/// Encode a v9 keepalive: one options-template flowset (scope `System`,
/// option `samplingInterval`), padded to a 4-byte boundary — the packet
/// an idle Cisco-style exporter sends to prove it is alive.
#[must_use]
pub fn encode_v9_options_template(export_secs: u32, sequence: u32, source_id: u32) -> Bytes {
    let mut buf = BytesMut::with_capacity(V9_HEADER_LEN + 20);
    buf.put_u16(V9_VERSION);
    buf.put_u16(1); // one record (the options template)
    buf.put_u32(0); // sys_uptime_ms
    buf.put_u32(export_secs);
    buf.put_u32(sequence);
    buf.put_u32(source_id);
    // Options-template flowset: id 1, record = id 256, 4-byte scope
    // (System) + 4-byte option (samplingInterval), 2 bytes padding.
    buf.put_u16(1); // flowset id: options template
    buf.put_u16(20); // flowset length incl. header + padding
    buf.put_u16(256); // options template id
    buf.put_u16(4); // scope length (bytes)
    buf.put_u16(4); // option length (bytes)
    buf.put_u16(1); // scope field: System
    buf.put_u16(4); // scope field length
    buf.put_u16(34); // option field: samplingInterval
    buf.put_u16(4); // option field length
    buf.put_u16(0); // padding to 4-byte boundary
    buf.freeze()
}

/// Encode an IPFIX keepalive: one options-template set, the v10
/// counterpart of [`encode_v9_options_template`].
#[must_use]
pub fn encode_ipfix_options_template(export_secs: u32, sequence: u32, domain: u32) -> Bytes {
    let mut buf = BytesMut::with_capacity(IPFIX_HEADER_LEN + 14);
    buf.put_u16(IPFIX_VERSION);
    buf.put_u16((IPFIX_HEADER_LEN + 14) as u16); // total message length
    buf.put_u32(export_secs);
    buf.put_u32(sequence);
    buf.put_u32(domain);
    // Options-template set: id 3; record = id 256, 2 fields of which 1
    // is scope; scope System then option samplingInterval.
    buf.put_u16(3); // set id: options template
    buf.put_u16(14); // set length incl. header
    buf.put_u16(256); // template id
    buf.put_u16(2); // total field count
    buf.put_u16(1); // scope field count
    buf.put_u16(1); // scope field: System
    buf.put_u16(4); // scope field length
    buf.freeze()
}

/// One packet of a mixed capture: v5 flow datagrams interleaved with
/// v9/IPFIX punctuation, in file (= collector arrival) order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceItem {
    /// A NetFlow v5 datagram carrying flow records.
    Flows(V5Datagram),
    /// A template-only v9/IPFIX packet: an exporter heartbeat.
    Heartbeat(Punctuation),
}

/// Decode a capture file of concatenated packets, dispatching each on
/// its leading version word: 5 → flow datagram, 9/10 → punctuation.
///
/// # Errors
///
/// Returns the first [`DecodeError`]: any other version word, a data
/// flowset inside a v9/IPFIX packet, or a truncated packet.
pub fn decode_mixed_stream(mut data: &[u8]) -> Result<Vec<TraceItem>, DecodeError> {
    let mut out = Vec::new();
    while !data.is_empty() {
        if data.len() < 2 {
            return Err(DecodeError::TruncatedHeader {
                have: data.len(),
                need: 2,
            });
        }
        match u16::from_be_bytes([data[0], data[1]]) {
            5 => {
                let dgram = decode_datagram(data)?;
                let consumed = V5_HEADER_LEN + usize::from(dgram.header.count) * V5_RECORD_LEN;
                data = &data[consumed..];
                out.push(TraceItem::Flows(dgram));
            }
            V9_VERSION | IPFIX_VERSION => {
                let (punct, consumed) = decode_punctuation(data)?;
                data = &data[consumed..];
                out.push(TraceItem::Heartbeat(punct));
            }
            other => return Err(DecodeError::BadVersion(other)),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{FlowRecord, Protocol};
    use crate::v5::encode_datagram;
    use std::net::Ipv4Addr;

    #[test]
    fn v9_options_template_round_trips_as_a_heartbeat() {
        let bytes = encode_v9_options_template(1234, 7, 99);
        let (p, consumed) = decode_punctuation(&bytes).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(
            p,
            Punctuation {
                version: V9_VERSION,
                export_ms: 1_234_000,
                sequence: 7,
                domain: 99,
            }
        );
    }

    #[test]
    fn ipfix_options_template_round_trips_as_a_heartbeat() {
        let bytes = encode_ipfix_options_template(55, 3, 1);
        let (p, consumed) = decode_punctuation(&bytes).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(p.version, IPFIX_VERSION);
        assert_eq!(p.export_ms, 55_000);
    }

    #[test]
    fn v9_data_flowsets_are_rejected() {
        let mut bytes = encode_v9_options_template(1, 0, 0).to_vec();
        bytes[20] = 1; // flowset id 1 → 257: a data flowset
        bytes[21] = 1;
        assert_eq!(
            decode_punctuation(&bytes).unwrap_err(),
            DecodeError::UnsupportedFlowset {
                version: V9_VERSION,
                id: 257
            }
        );
    }

    #[test]
    fn ipfix_data_sets_are_rejected() {
        let mut bytes = encode_ipfix_options_template(1, 0, 0).to_vec();
        bytes[16] = 1; // set id 3 → 259: a data set
        bytes[17] = 3;
        assert_eq!(
            decode_punctuation(&bytes).unwrap_err(),
            DecodeError::UnsupportedFlowset {
                version: IPFIX_VERSION,
                id: 259
            }
        );
    }

    #[test]
    fn truncated_packets_are_rejected() {
        let v9 = encode_v9_options_template(1, 0, 0);
        assert!(decode_punctuation(&v9[..10]).is_err());
        assert!(decode_punctuation(&v9[..v9.len() - 4]).is_err());
        let ipfix = encode_ipfix_options_template(1, 0, 0);
        assert!(decode_punctuation(&ipfix[..ipfix.len() - 2]).is_err());
        assert!(decode_punctuation(&[0x00]).is_err());
    }

    #[test]
    fn unknown_versions_are_rejected() {
        assert_eq!(
            decode_punctuation(&[0, 7, 0, 0]).unwrap_err(),
            DecodeError::BadVersion(7)
        );
    }

    #[test]
    fn mixed_stream_interleaves_flows_and_heartbeats_in_file_order() {
        let flow = FlowRecord::new(
            10,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(192, 168, 0, 1),
            1024,
            80,
            Protocol::Tcp,
        );
        let mut file = Vec::new();
        file.extend_from_slice(&encode_datagram(&[flow], 0, 0).unwrap());
        file.extend_from_slice(&encode_v9_options_template(60, 1, 0));
        file.extend_from_slice(&encode_ipfix_options_template(120, 2, 0));
        file.extend_from_slice(&encode_datagram(&[flow], 1, 0).unwrap());

        let items = decode_mixed_stream(&file).unwrap();
        assert_eq!(items.len(), 4);
        assert!(matches!(&items[0], TraceItem::Flows(d) if d.flows.len() == 1));
        assert!(
            matches!(&items[1], TraceItem::Heartbeat(p) if p.export_ms == 60_000
                && p.version == V9_VERSION)
        );
        assert!(
            matches!(&items[2], TraceItem::Heartbeat(p) if p.export_ms == 120_000
                && p.version == IPFIX_VERSION)
        );
        assert!(matches!(&items[3], TraceItem::Flows(_)));
    }

    #[test]
    fn mixed_stream_rejects_garbage() {
        assert!(decode_mixed_stream(&[1, 2, 3, 4]).is_err());
    }

    #[test]
    fn template_record_counting_handles_multiple_and_padding() {
        // Two plain templates in one flowset, then 2 bytes of padding.
        let mut buf = BytesMut::new();
        buf.put_u16(V9_VERSION);
        buf.put_u16(2); // two records
        buf.put_u32(0);
        buf.put_u32(9); // unix_secs
        buf.put_u32(0);
        buf.put_u32(0);
        buf.put_u16(0); // flowset id 0: templates
        buf.put_u16(4 + 12 + 12 + 2); // flowset length
        for template_id in [256u16, 257] {
            buf.put_u16(template_id);
            buf.put_u16(2); // field count
            buf.put_u16(8); // IN_BYTES
            buf.put_u16(4);
            buf.put_u16(12); // IPV4_DST_ADDR
            buf.put_u16(4);
        }
        buf.put_u16(0); // padding
        let (p, consumed) = decode_punctuation(&buf).unwrap();
        assert_eq!(consumed, buf.len());
        assert_eq!(p.export_ms, 9000);
    }
}
