//! Flow traces and measurement-interval slicing.
//!
//! The pipeline operates on fixed-length measurement intervals (the paper's
//! Δ, 5–15 minutes). [`FlowTrace`] owns a time-ordered flow sequence;
//! [`FlowTrace::intervals`] slices it into [`Interval`]s by flow *start*
//! time, which is how per-interval flow-count histograms are defined in the
//! paper (a flow belongs to the interval in which it starts).

use serde::{Deserialize, Serialize};

use crate::flow::FlowRecord;

/// Milliseconds in one minute, for interval arithmetic.
pub const MINUTE_MS: u64 = 60_000;

/// An owned, time-ordered collection of flow records.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowTrace {
    flows: Vec<FlowRecord>,
    sorted: bool,
}

impl FlowTrace {
    /// New, empty trace.
    #[must_use]
    pub fn new() -> Self {
        FlowTrace {
            flows: Vec::new(),
            sorted: true,
        }
    }

    /// Build from flows, sorting them by start time.
    #[must_use]
    pub fn from_flows(mut flows: Vec<FlowRecord>) -> Self {
        flows.sort_by_key(|f| f.start_ms);
        FlowTrace {
            flows,
            sorted: true,
        }
    }

    /// Append one flow. Order is re-established lazily on first use.
    pub fn push(&mut self, flow: FlowRecord) {
        if let Some(last) = self.flows.last() {
            if flow.start_ms < last.start_ms {
                self.sorted = false;
            }
        }
        self.flows.push(flow);
    }

    /// Append many flows.
    pub fn extend(&mut self, flows: impl IntoIterator<Item = FlowRecord>) {
        for f in flows {
            self.push(f);
        }
    }

    /// Ensure time ordering (no-op when already sorted).
    pub fn sort(&mut self) {
        if !self.sorted {
            self.flows.sort_by_key(|f| f.start_ms);
            self.sorted = true;
        }
    }

    /// The flows, in time order.
    #[must_use]
    pub fn flows(&mut self) -> &[FlowRecord] {
        self.sort();
        &self.flows
    }

    /// Number of flows in the trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether the trace holds no flows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Start time of the earliest flow (ms), or `None` when empty.
    #[must_use]
    pub fn start_ms(&mut self) -> Option<u64> {
        self.sort();
        self.flows.first().map(|f| f.start_ms)
    }

    /// Start time of the latest flow (ms), or `None` when empty.
    #[must_use]
    pub fn end_ms(&mut self) -> Option<u64> {
        self.sort();
        self.flows.last().map(|f| f.start_ms)
    }

    /// Slice the trace into consecutive measurement intervals of
    /// `interval_ms`, starting at `origin_ms`.
    ///
    /// Every interval between `origin_ms` and the last flow is produced,
    /// **including empty ones** — gaps matter to the detector because the KL
    /// time series must stay aligned with wall-clock intervals.
    #[must_use]
    pub fn intervals(&mut self, origin_ms: u64, interval_ms: u64) -> Vec<Interval<'_>> {
        assert!(interval_ms > 0, "interval length must be positive");
        self.sort();
        let mut out = Vec::new();
        if self.flows.is_empty() {
            return out;
        }
        let last_start = self.flows.last().expect("non-empty").start_ms;
        let mut lo = 0usize;
        let mut index = 0u64;
        loop {
            let begin = origin_ms + index * interval_ms;
            let end = begin + interval_ms;
            if begin > last_start {
                break;
            }
            let hi = self.flows[lo..].partition_point(|f| f.start_ms < end) + lo;
            out.push(Interval {
                index,
                begin_ms: begin,
                end_ms: end,
                flows: &self.flows[lo..hi],
            });
            lo = hi;
            index += 1;
        }
        out
    }

    /// Consume the trace, returning the (sorted) flows.
    #[must_use]
    pub fn into_flows(mut self) -> Vec<FlowRecord> {
        self.sort();
        self.flows
    }
}

impl FromIterator<FlowRecord> for FlowTrace {
    fn from_iter<T: IntoIterator<Item = FlowRecord>>(iter: T) -> Self {
        FlowTrace::from_flows(iter.into_iter().collect())
    }
}

/// One measurement interval: a window `[begin_ms, end_ms)` and the flows
/// that started inside it.
#[derive(Debug, Clone, Copy)]
pub struct Interval<'a> {
    /// Zero-based interval index since the trace origin.
    pub index: u64,
    /// Inclusive window start, ms.
    pub begin_ms: u64,
    /// Exclusive window end, ms.
    pub end_ms: u64,
    /// Flows whose start time falls inside the window.
    pub flows: &'a [FlowRecord],
}

impl Interval<'_> {
    /// Number of flows in the interval.
    #[must_use]
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether the interval contains no flows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::Protocol;
    use std::net::Ipv4Addr;

    fn flow_at(ms: u64) -> FlowRecord {
        FlowRecord::new(
            ms,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1,
            2,
            Protocol::Udp,
        )
    }

    #[test]
    fn push_out_of_order_then_sort() {
        let mut t = FlowTrace::new();
        t.push(flow_at(500));
        t.push(flow_at(100));
        t.push(flow_at(300));
        let starts: Vec<_> = t.flows().iter().map(|f| f.start_ms).collect();
        assert_eq!(starts, vec![100, 300, 500]);
    }

    #[test]
    fn intervals_partition_all_flows() {
        let flows: Vec<_> = (0..100).map(|i| flow_at(i * 137)).collect();
        let mut t = FlowTrace::from_flows(flows);
        let ivs = t.intervals(0, 1000);
        let total: usize = ivs.iter().map(Interval::len).sum();
        assert_eq!(total, 100);
        for iv in &ivs {
            for f in iv.flows {
                assert!(f.start_ms >= iv.begin_ms && f.start_ms < iv.end_ms);
            }
        }
    }

    #[test]
    fn intervals_include_empty_gaps() {
        let mut t = FlowTrace::from_flows(vec![flow_at(100), flow_at(5100)]);
        let ivs = t.intervals(0, 1000);
        assert_eq!(ivs.len(), 6); // windows [0,1000) .. [5000,6000)
        assert_eq!(ivs[0].len(), 1);
        assert!(ivs[1].is_empty());
        assert!(ivs[4].is_empty());
        assert_eq!(ivs[5].len(), 1);
        assert_eq!(ivs[5].index, 5);
    }

    #[test]
    fn boundary_flow_belongs_to_next_interval() {
        let mut t = FlowTrace::from_flows(vec![flow_at(999), flow_at(1000)]);
        let ivs = t.intervals(0, 1000);
        assert_eq!(ivs[0].len(), 1);
        assert_eq!(ivs[1].len(), 1);
    }

    #[test]
    fn empty_trace_yields_no_intervals() {
        let mut t = FlowTrace::new();
        assert!(t.intervals(0, 1000).is_empty());
        assert_eq!(t.start_ms(), None);
        assert_eq!(t.end_ms(), None);
    }

    #[test]
    fn origin_offsets_window_alignment() {
        let mut t = FlowTrace::from_flows(vec![flow_at(1500)]);
        let ivs = t.intervals(500, 1000);
        assert_eq!(ivs.len(), 2);
        assert_eq!(ivs[1].begin_ms, 1500);
        assert_eq!(ivs[1].len(), 1);
    }

    #[test]
    #[should_panic(expected = "interval length must be positive")]
    fn zero_interval_panics() {
        let mut t = FlowTrace::from_flows(vec![flow_at(0)]);
        let _ = t.intervals(0, 0);
    }

    #[test]
    fn from_iterator_collects_sorted() {
        let t: FlowTrace = vec![flow_at(9), flow_at(3)].into_iter().collect();
        assert_eq!(t.len(), 2);
        let mut t = t;
        assert_eq!(t.start_ms(), Some(3));
        assert_eq!(t.end_ms(), Some(9));
    }
}
