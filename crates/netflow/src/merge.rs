//! Multi-source interval merging: N exporters → one interval grid.
//!
//! The paper's deployment collects NetFlow from **several border
//! routers** and analyzes the union of their traffic per Δ-minute
//! interval. [`MergeAssembler`] implements that fan-in: one
//! [`IntervalAssembler`] per exporter (each with its own clock origin,
//! so exporters need not agree on wall time) feeding a shared interval
//! grid with **watermark semantics** — grid interval `i` closes only
//! once every live source has advanced past it, so no source's flows
//! can be left behind by a faster peer.
//!
//! ```text
//!   src0 ──► IntervalAssembler(origin₀) ──┐
//!   src1 ──► IntervalAssembler(origin₁) ──┼──► pending[i] per source
//!   srcN ──► IntervalAssembler(originₙ) ──┘         │
//!                                                   ▼
//!                  watermark = min over live sources of closed-below
//!                  grid closes i < watermark → MergedInterval i
//!                  (flows concatenated in source registration order)
//! ```
//!
//! **Determinism.** A merged interval's flows are the concatenation, in
//! source registration order, of each source's window-`i` flows in that
//! source's arrival order. Both orders are independent of how pushes
//! from different sources interleave, so for a fixed per-source flow
//! sequence the merged stream is **bit-identical** no matter how the
//! sources race each other — the contract the multi-source determinism
//! property suite asserts end to end.
//!
//! **Lateness bound.** A pure watermark stalls forever on a source that
//! goes quiet without saying so. [`MergeConfig::max_lag_intervals`]
//! bounds that: when the fastest source runs more than `max_lag`
//! intervals ahead of the grid, the grid force-closes without the
//! laggards, and any interval a laggard eventually delivers for an
//! already-closed grid slot is dropped and counted in its
//! [`SourceStats::stale_flows`]. Sources that end cleanly should call
//! [`MergeAssembler::finish_source`] instead, which releases the
//! watermark without dropping anything.

use std::collections::BTreeMap;

use crate::flow::FlowRecord;
use crate::snapshot::{RestoreError, SnapshotReader, SnapshotWriter};
use crate::source::{SourceId, SourceSpec};
use crate::stream::{IntervalAssembler, StreamConfigError};

/// Configuration of the multi-source merge grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeConfig {
    /// Shared interval length Δ, ms.
    pub interval_ms: u64,
    /// Watermark lateness bound, in intervals: when the fastest source
    /// has closed more than this many intervals past the grid, the grid
    /// force-closes without the laggards (their eventual deliveries for
    /// those slots are dropped as stale). `None` = pure watermark: wait
    /// for every live source forever.
    pub max_lag_intervals: Option<u64>,
}

impl MergeConfig {
    /// Pure-watermark config (no lateness bound) at the given Δ.
    #[must_use]
    pub fn new(interval_ms: u64) -> Self {
        MergeConfig {
            interval_ms,
            max_lag_intervals: None,
        }
    }

    /// Set the lateness bound.
    #[must_use]
    pub fn with_max_lag(mut self, intervals: u64) -> Self {
        self.max_lag_intervals = Some(intervals);
        self
    }
}

/// One closed interval of the shared grid: the union of every source's
/// window-`i` flows, concatenated in source registration order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergedInterval {
    /// Zero-based grid interval index.
    pub index: u64,
    /// Inclusive window start in grid time (`index * Δ`), ms.
    pub begin_ms: u64,
    /// Exclusive window end in grid time, ms.
    pub end_ms: u64,
    /// Every source's flows for this window, concatenated in source
    /// registration order (each source's segment in its arrival order).
    pub flows: Vec<FlowRecord>,
    /// How many flows each registered source contributed, in
    /// registration order — the per-source weights of the union.
    pub source_flows: Vec<usize>,
}

/// Per-source ingestion and drop accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceStats {
    /// The exporter.
    pub id: SourceId,
    /// Flows pushed for this source.
    pub flows: u64,
    /// Flows dropped inside the source's own assembler because they
    /// arrived after their *per-source* window closed.
    pub late_flows: u64,
    /// Flows dropped because they were dated before the source's origin.
    pub pre_origin_flows: u64,
    /// Flows dropped at the merge layer: their whole window arrived
    /// after the grid force-closed that slot (lateness bound exceeded).
    pub stale_flows: u64,
}

impl SourceStats {
    /// Every flow this source lost, for any reason.
    #[must_use]
    pub fn dropped_flows(&self) -> u64 {
        self.late_flows + self.pre_origin_flows + self.stale_flows
    }
}

/// One exporter's lane through the merge: its private assembler, the
/// closed-but-unmerged windows it has delivered, and its drop counters.
#[derive(Debug)]
struct SourceLane {
    spec: SourceSpec,
    assembler: IntervalAssembler,
    /// Windows this source has closed but the grid has not: grid index →
    /// the source's flows for that window.
    pending: BTreeMap<u64, Vec<FlowRecord>>,
    /// Every grid index `< closed_below` has been closed by this source
    /// (the inner assembler emits windows contiguously from 0, empties
    /// included, so this is a single frontier).
    closed_below: u64,
    /// Whether the source declared end-of-stream; finished sources no
    /// longer hold the watermark.
    finished: bool,
    flows: u64,
    stale_flows: u64,
}

impl SourceLane {
    /// Accept one window the inner assembler closed: stash it for the
    /// grid, or drop it as stale when the grid already force-closed that
    /// slot.
    fn accept(&mut self, index: u64, flows: Vec<FlowRecord>, grid_next: u64) {
        self.closed_below = self.closed_below.max(index + 1);
        if index < grid_next {
            self.stale_flows += flows.len() as u64;
        } else if !flows.is_empty() {
            // Empty windows need no entry: a missing slot merges as zero
            // flows, so only data-bearing windows occupy memory.
            self.pending.insert(index, flows);
        }
    }
}

/// Streaming fan-in of N exporters onto one shared interval grid, with
/// watermark close semantics and per-source drop accounting. See the
/// [module docs](self) for the execution model.
#[derive(Debug)]
pub struct MergeAssembler {
    config: MergeConfig,
    lanes: Vec<SourceLane>,
    /// Next grid index to close; every index below it has been emitted.
    grid_next: u64,
}

impl MergeAssembler {
    /// Build a merge grid over the given exporters.
    ///
    /// # Errors
    ///
    /// Returns a [`StreamConfigError`] when Δ is zero, no sources are
    /// given, or two sources share an id.
    pub fn try_new(config: MergeConfig, sources: &[SourceSpec]) -> Result<Self, StreamConfigError> {
        if sources.is_empty() {
            return Err(StreamConfigError::new(
                "multi-source merge needs at least one source",
            ));
        }
        let mut lanes = Vec::with_capacity(sources.len());
        for spec in sources {
            if lanes.iter().any(|l: &SourceLane| l.spec.id == spec.id) {
                return Err(StreamConfigError::new(format!(
                    "duplicate source id {}",
                    spec.id
                )));
            }
            lanes.push(SourceLane {
                spec: *spec,
                assembler: IntervalAssembler::try_new(spec.origin_ms, config.interval_ms)?,
                pending: BTreeMap::new(),
                closed_below: 0,
                finished: false,
                flows: 0,
                stale_flows: 0,
            });
        }
        Ok(MergeAssembler {
            config,
            lanes,
            grid_next: 0,
        })
    }

    /// The merge configuration.
    #[must_use]
    pub fn config(&self) -> &MergeConfig {
        &self.config
    }

    /// The registered sources, in registration order.
    #[must_use]
    pub fn sources(&self) -> Vec<SourceSpec> {
        self.lanes.iter().map(|l| l.spec).collect()
    }

    fn lane_mut(&mut self, source: SourceId) -> &mut SourceLane {
        self.lanes
            .iter_mut()
            .find(|l| l.spec.id == source)
            .unwrap_or_else(|| panic!("unknown source {source}: not registered with this merge"))
    }

    /// Feed one flow from `source`; returns every grid interval that
    /// became closeable (watermark advanced, or the lateness bound
    /// force-closed laggards).
    ///
    /// # Panics
    ///
    /// Panics when `source` was not registered at construction, or when
    /// `source` already declared end-of-stream via
    /// [`finish_source`](Self::finish_source).
    pub fn push(&mut self, source: SourceId, flow: FlowRecord) -> Vec<MergedInterval> {
        let grid_next = self.grid_next;
        let lane = self.lane_mut(source);
        assert!(!lane.finished, "source {source} already finished");
        lane.flows += 1;
        for closed in lane.assembler.push(flow) {
            lane.accept(closed.index, closed.flows, grid_next);
        }
        self.advance()
    }

    /// Tag-based variant of [`push`](Self::push) for callers holding
    /// [`crate::SourcedFlow`]s.
    ///
    /// # Panics
    ///
    /// As [`push`](Self::push).
    pub fn push_sourced(&mut self, flow: crate::source::SourcedFlow) -> Vec<MergedInterval> {
        self.push(flow.source, flow.flow)
    }

    /// Event-time heartbeat from `source`: advance its watermark to
    /// `now_ms` (source-local clock, like its flows' start times)
    /// **without any flows** — the punctuation a live-but-idle exporter
    /// sends (options templates, keepalives) so its silence does not
    /// hold the grid until the lateness bound fires. Every window of
    /// `source` that ends at or before `now_ms`'s window closes (empty
    /// unless flows arrived earlier) and the grid advances as far as the
    /// watermark allows; returns every merged interval that released.
    ///
    /// A stale or pre-origin heartbeat is a no-op: heartbeats carry no
    /// data, so nothing is dropped or counted.
    ///
    /// # Panics
    ///
    /// Panics when `source` was not registered at construction, or when
    /// `source` already declared end-of-stream via
    /// [`finish_source`](Self::finish_source).
    pub fn heartbeat(&mut self, source: SourceId, now_ms: u64) -> Vec<MergedInterval> {
        let grid_next = self.grid_next;
        let lane = self.lane_mut(source);
        assert!(!lane.finished, "source {source} already finished");
        for closed in lane.assembler.advance_to(now_ms) {
            lane.accept(closed.index, closed.flows, grid_next);
        }
        self.advance()
    }

    /// Declare `source` cleanly ended: its in-progress window is flushed
    /// into the grid and it stops holding the watermark, so the
    /// remaining sources alone pace the grid from here on. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics when `source` was not registered at construction.
    pub fn finish_source(&mut self, source: SourceId) -> Vec<MergedInterval> {
        let grid_next = self.grid_next;
        let lane = self.lane_mut(source);
        if lane.finished {
            return Vec::new();
        }
        lane.finished = true;
        if let Some(closed) = lane.assembler.flush() {
            lane.accept(closed.index, closed.flows, grid_next);
        }
        self.advance()
    }

    /// End of all streams: finish every remaining source and close the
    /// grid out to the furthest window any source delivered.
    pub fn flush(&mut self) -> Vec<MergedInterval> {
        let grid_next = self.grid_next;
        for lane in &mut self.lanes {
            if !lane.finished {
                lane.finished = true;
                if let Some(closed) = lane.assembler.flush() {
                    lane.accept(closed.index, closed.flows, grid_next);
                }
            }
        }
        let horizon = self.frontier();
        self.close_until(horizon)
    }

    /// Per-source ingestion and drop accounting, in registration order.
    #[must_use]
    pub fn source_stats(&self) -> Vec<SourceStats> {
        self.lanes
            .iter()
            .map(|l| SourceStats {
                id: l.spec.id,
                flows: l.flows,
                late_flows: l.assembler.late_flows(),
                pre_origin_flows: l.assembler.pre_origin_flows(),
                stale_flows: l.stale_flows,
            })
            .collect()
    }

    /// Every flow the merge has dropped across all sources and layers.
    #[must_use]
    pub fn dropped_flows(&self) -> u64 {
        self.source_stats()
            .iter()
            .map(SourceStats::dropped_flows)
            .sum()
    }

    /// Serialize the merge grid's complete mutable state — the config,
    /// every lane (spec, inner assembler, pending windows, frontier,
    /// finished flag, counters), and the grid cursor — so
    /// [`decode_snapshot`](Self::decode_snapshot) can resume the fan-in
    /// exactly where this one stood.
    pub fn encode_snapshot(&self, w: &mut SnapshotWriter) {
        w.u64(self.config.interval_ms);
        match self.config.max_lag_intervals {
            Some(lag) => {
                w.bool(true);
                w.u64(lag);
            }
            None => w.bool(false),
        }
        w.u64(self.grid_next);
        w.usize(self.lanes.len());
        for lane in &self.lanes {
            w.u32(lane.spec.id.0);
            w.u64(lane.spec.origin_ms);
            lane.assembler.encode_snapshot(w);
            w.usize(lane.pending.len());
            for (&index, flows) in &lane.pending {
                w.u64(index);
                w.flows(flows);
            }
            w.u64(lane.closed_below);
            w.bool(lane.finished);
            w.u64(lane.flows);
            w.u64(lane.stale_flows);
        }
    }

    /// Rebuild a merge grid from a snapshot written by
    /// [`encode_snapshot`](Self::encode_snapshot).
    ///
    /// # Errors
    ///
    /// [`RestoreError::Truncated`] on a short payload and
    /// [`RestoreError::Corrupt`] on an impossible configuration (zero Δ,
    /// no lanes).
    pub fn decode_snapshot(r: &mut SnapshotReader<'_>) -> Result<Self, RestoreError> {
        let interval_ms = r.u64()?;
        if interval_ms == 0 {
            return Err(RestoreError::Corrupt("zero merge interval".into()));
        }
        let max_lag_intervals = if r.bool()? { Some(r.u64()?) } else { None };
        let grid_next = r.u64()?;
        let lane_count = r.seq_len(1)?;
        if lane_count == 0 {
            return Err(RestoreError::Corrupt("merge grid with no sources".into()));
        }
        let mut lanes = Vec::with_capacity(lane_count);
        for _ in 0..lane_count {
            let spec = SourceSpec::new(r.u32()?, r.u64()?);
            let assembler = IntervalAssembler::decode_snapshot(r)?;
            let pending_count = r.seq_len(8)?;
            let mut pending = BTreeMap::new();
            for _ in 0..pending_count {
                let index = r.u64()?;
                pending.insert(index, r.flows()?);
            }
            lanes.push(SourceLane {
                spec,
                assembler,
                pending,
                closed_below: r.u64()?,
                finished: r.bool()?,
                flows: r.u64()?,
                stale_flows: r.u64()?,
            });
        }
        Ok(MergeAssembler {
            config: MergeConfig {
                interval_ms,
                max_lag_intervals,
            },
            lanes,
            grid_next,
        })
    }

    /// The furthest close frontier any source has reached.
    fn frontier(&self) -> u64 {
        self.lanes.iter().map(|l| l.closed_below).max().unwrap_or(0)
    }

    /// Close every grid interval the watermark (and lateness bound)
    /// allows.
    fn advance(&mut self) -> Vec<MergedInterval> {
        // Watermark: the slowest live source. With every source
        // finished the watermark lifts entirely (flush semantics).
        let watermark = self
            .lanes
            .iter()
            .filter(|l| !l.finished)
            .map(|l| l.closed_below)
            .min()
            .unwrap_or_else(|| self.frontier());
        // Lateness bound: never let the grid trail the leader by more
        // than max_lag intervals.
        let forced = self
            .config
            .max_lag_intervals
            .map_or(0, |lag| self.frontier().saturating_sub(lag));
        self.close_until(watermark.max(forced))
    }

    /// Emit merged intervals for every grid index in `[grid_next, upto)`.
    fn close_until(&mut self, upto: u64) -> Vec<MergedInterval> {
        let mut merged = Vec::new();
        while self.grid_next < upto {
            let index = self.grid_next;
            let mut flows = Vec::new();
            let mut source_flows = Vec::with_capacity(self.lanes.len());
            for lane in &mut self.lanes {
                match lane.pending.remove(&index) {
                    Some(mut segment) => {
                        source_flows.push(segment.len());
                        flows.append(&mut segment);
                    }
                    None => source_flows.push(0),
                }
            }
            let begin_ms = index * self.config.interval_ms;
            merged.push(MergedInterval {
                index,
                begin_ms,
                end_ms: begin_ms + self.config.interval_ms,
                flows,
                source_flows,
            });
            self.grid_next += 1;
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::Protocol;
    use std::net::Ipv4Addr;

    fn flow_at(ms: u64) -> FlowRecord {
        FlowRecord::new(
            ms,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1,
            2,
            Protocol::Udp,
        )
    }

    fn two_sources(max_lag: Option<u64>) -> MergeAssembler {
        let mut config = MergeConfig::new(1000);
        config.max_lag_intervals = max_lag;
        MergeAssembler::try_new(
            config,
            &[SourceSpec::new(0u32, 0), SourceSpec::new(1u32, 0)],
        )
        .unwrap()
    }

    #[test]
    fn grid_waits_for_the_slowest_source() {
        let mut m = two_sources(None);
        // Source 0 races three windows ahead; nothing closes until
        // source 1 advances past window 0.
        assert!(m.push(SourceId(0), flow_at(100)).is_empty());
        assert!(m.push(SourceId(0), flow_at(3200)).is_empty());
        assert!(m.push(SourceId(1), flow_at(50)).is_empty());
        let closed = m.push(SourceId(1), flow_at(1100));
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].index, 0);
        assert_eq!(closed[0].flows.len(), 2);
        assert_eq!(closed[0].source_flows, vec![1, 1]);
    }

    #[test]
    fn merged_flows_concatenate_in_registration_order() {
        let mut m = two_sources(None);
        // Source 1's window-0 flow arrives first; the merge must still
        // put source 0's segment first.
        m.push(SourceId(1), flow_at(700));
        m.push(SourceId(0), flow_at(300));
        m.push(SourceId(0), flow_at(400));
        let mut closed = m.flush();
        assert_eq!(closed.len(), 1);
        let iv = closed.remove(0);
        assert_eq!(iv.source_flows, vec![2, 1]);
        let starts: Vec<u64> = iv.flows.iter().map(|f| f.start_ms).collect();
        assert_eq!(starts, vec![300, 400, 700], "src0 segment, then src1");
    }

    #[test]
    fn per_source_origins_skew_onto_one_grid() {
        let config = MergeConfig::new(1000);
        let mut m = MergeAssembler::try_new(
            config,
            &[SourceSpec::new(0u32, 0), SourceSpec::new(1u32, 250)],
        )
        .unwrap();
        // Local time 1100 at source 1 is grid time 850: still window 0.
        m.push(SourceId(1), flow_at(1100));
        m.push(SourceId(0), flow_at(100));
        let closed = m.flush();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].source_flows, vec![1, 1]);
    }

    #[test]
    fn finished_source_releases_the_watermark() {
        let mut m = two_sources(None);
        m.push(SourceId(0), flow_at(100));
        m.push(SourceId(0), flow_at(2500));
        // Source 1 never sent a flow; finishing it hands the grid to
        // source 0 alone.
        let closed = m.finish_source(SourceId(1));
        assert_eq!(closed.len(), 2, "windows 0 and 1 close");
        assert_eq!(closed[0].source_flows, vec![1, 0]);
        assert!(closed[1].flows.is_empty(), "gap window merged empty");
        assert!(m.finish_source(SourceId(1)).is_empty(), "idempotent");
        let tail = m.flush();
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].index, 2);
    }

    #[test]
    fn heartbeat_releases_the_grid_without_flows() {
        // No lateness bound: only the heartbeat can release the grid.
        let mut m = two_sources(None);
        m.push(SourceId(0), flow_at(100));
        m.push(SourceId(0), flow_at(2500)); // source 0 frontier: 2
                                            // Source 1 is live but idle: nothing closes...
        assert_eq!(m.dropped_flows(), 0);
        // ...until its collector punctuation advances it past window 1.
        let closed = m.heartbeat(SourceId(1), 2100);
        assert_eq!(closed.len(), 2, "windows 0 and 1 released");
        assert_eq!(closed[0].source_flows, vec![1, 0]);
        assert!(closed[1].flows.is_empty());
        assert_eq!(m.dropped_flows(), 0, "heartbeats drop nothing");
        // A later flow from source 1 in its current window still lands.
        let closed = m.push(SourceId(1), flow_at(2200));
        assert!(closed.is_empty());
        let tail = m.flush();
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].source_flows, vec![1, 1]);
    }

    #[test]
    fn heartbeat_respects_per_source_origin_and_staleness() {
        let config = MergeConfig::new(1000);
        let mut m = MergeAssembler::try_new(
            config,
            &[SourceSpec::new(0u32, 0), SourceSpec::new(1u32, 250)],
        )
        .unwrap();
        m.push(SourceId(0), flow_at(100));
        m.push(SourceId(0), flow_at(1100));
        // Local 1250 at source 1 is grid 1000: only window 0 closes.
        let closed = m.heartbeat(SourceId(1), 1250 + 250);
        assert_eq!(closed.len(), 1);
        assert!(m.heartbeat(SourceId(1), 100).is_empty(), "stale is a no-op");
        assert_eq!(m.dropped_flows(), 0);
    }

    #[test]
    #[should_panic(expected = "already finished")]
    fn heartbeat_after_finish_panics() {
        let mut m = two_sources(None);
        let _ = m.finish_source(SourceId(0));
        let _ = m.heartbeat(SourceId(0), 5000);
    }

    #[test]
    fn lateness_bound_force_closes_and_counts_stale_flows() {
        let mut m = two_sources(Some(2));
        m.push(SourceId(1), flow_at(50));
        // Source 0 storms ahead: closing windows 0..=4 puts its frontier
        // at 5, so the grid force-closes up to 5 - 2 = 3 without
        // source 1.
        let closed = m.push(SourceId(0), flow_at(5500));
        assert_eq!(closed.len(), 3, "windows 0,1,2 force-closed");
        assert_eq!(
            closed[0].source_flows,
            vec![0, 0],
            "src0's own window 0 \
             was empty too — its first flow landed in window 5"
        );
        // Source 1 now delivers window 0 (closing it by advancing):
        // stale, dropped, counted.
        m.push(SourceId(1), flow_at(1100));
        let stats = m.source_stats();
        assert_eq!(stats[1].stale_flows, 1);
        assert_eq!(stats[1].late_flows, 0, "stale ≠ per-source late");
        assert_eq!(m.dropped_flows(), 1);
    }

    #[test]
    fn per_source_late_and_pre_origin_drops_are_attributed() {
        let config = MergeConfig::new(1000);
        let mut m = MergeAssembler::try_new(
            config,
            &[SourceSpec::new(0u32, 1000), SourceSpec::new(1u32, 0)],
        )
        .unwrap();
        m.push(SourceId(0), flow_at(500)); // before src0's origin
        m.push(SourceId(1), flow_at(1500));
        m.push(SourceId(1), flow_at(300)); // late within src1
        let stats = m.source_stats();
        assert_eq!(stats[0].pre_origin_flows, 1);
        assert_eq!(stats[1].late_flows, 1);
        assert_eq!(m.dropped_flows(), 2);
    }

    #[test]
    fn flush_emits_trailing_gap_windows() {
        let mut m = two_sources(None);
        m.push(SourceId(0), flow_at(100));
        m.push(SourceId(1), flow_at(4200));
        let closed = m.flush();
        // Grid runs to source 1's frontier (window 4 inclusive).
        let indices: Vec<u64> = closed.iter().map(|c| c.index).collect();
        assert_eq!(indices, vec![0, 1, 2, 3, 4]);
        assert_eq!(closed[0].source_flows, vec![1, 0]);
        assert_eq!(closed[4].source_flows, vec![0, 1]);
    }

    #[test]
    fn config_errors_are_reported() {
        let config = MergeConfig::new(1000);
        assert!(MergeAssembler::try_new(config, &[]).is_err(), "no sources");
        assert!(
            MergeAssembler::try_new(
                config,
                &[SourceSpec::new(1u32, 0), SourceSpec::new(1u32, 50)]
            )
            .is_err(),
            "duplicate ids"
        );
        assert!(
            MergeAssembler::try_new(MergeConfig::new(0), &[SourceSpec::new(0u32, 0)]).is_err(),
            "zero interval"
        );
    }

    #[test]
    #[should_panic(expected = "unknown source")]
    fn unknown_source_panics() {
        let mut m = two_sources(None);
        let _ = m.push(SourceId(9), flow_at(0));
    }

    #[test]
    #[should_panic(expected = "already finished")]
    fn push_after_finish_panics() {
        let mut m = two_sources(None);
        let _ = m.finish_source(SourceId(0));
        let _ = m.push(SourceId(0), flow_at(0));
    }

    #[test]
    fn snapshot_round_trip_resumes_the_grid_identically() {
        let mut m = two_sources(Some(2));
        m.push(SourceId(0), flow_at(100));
        m.push(SourceId(0), flow_at(2500));
        m.push(SourceId(1), flow_at(50));
        m.heartbeat(SourceId(1), 1200);
        let mut w = SnapshotWriter::new();
        m.encode_snapshot(&mut w);
        let buf = w.into_bytes();
        let mut r = SnapshotReader::new(&buf);
        let mut restored = MergeAssembler::decode_snapshot(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(restored.sources(), m.sources());
        assert_eq!(restored.source_stats(), m.source_stats());
        // Both continue identically through a finish + flush.
        let mut a = m.push(SourceId(1), flow_at(2300));
        let mut b = restored.push(SourceId(1), flow_at(2300));
        a.extend(m.finish_source(SourceId(0)));
        b.extend(restored.finish_source(SourceId(0)));
        a.extend(m.flush());
        b.extend(restored.flush());
        assert_eq!(a, b);
        assert_eq!(restored.source_stats(), m.source_stats());
    }

    #[test]
    fn snapshot_rejects_a_grid_with_no_sources() {
        let mut w = SnapshotWriter::new();
        w.u64(1000); // interval
        w.bool(false); // no lag bound
        w.u64(0); // grid_next
        w.usize(0); // zero lanes — impossible
        let buf = w.into_bytes();
        let mut r = SnapshotReader::new(&buf);
        assert!(MergeAssembler::decode_snapshot(&mut r).is_err());
    }

    #[test]
    fn single_source_merge_matches_plain_assembly() {
        let starts = [10u64, 999, 1000, 1001, 2500, 2600, 7000];
        let mut plain = IntervalAssembler::new(0, 1000);
        let mut reference: Vec<(u64, usize)> = Vec::new();
        for &s in &starts {
            for c in plain.push(flow_at(s)) {
                reference.push((c.index, c.flows.len()));
            }
        }
        if let Some(c) = plain.flush() {
            reference.push((c.index, c.flows.len()));
        }

        let mut m =
            MergeAssembler::try_new(MergeConfig::new(1000), &[SourceSpec::new(0u32, 0)]).unwrap();
        let mut merged: Vec<(u64, usize)> = Vec::new();
        for &s in &starts {
            for c in m.push(SourceId(0), flow_at(s)) {
                merged.push((c.index, c.flows.len()));
            }
        }
        for c in m.flush() {
            merged.push((c.index, c.flows.len()));
        }
        assert_eq!(merged, reference);
    }
}
