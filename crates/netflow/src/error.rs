//! Error types for the flow substrate.

use std::fmt;

/// Errors produced while decoding NetFlow wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer is shorter than the fixed NetFlow v5 header.
    TruncatedHeader {
        /// Bytes available.
        have: usize,
        /// Bytes required.
        need: usize,
    },
    /// The version field is not 5.
    BadVersion(u16),
    /// The header's record count does not match the bytes that follow.
    TruncatedRecords {
        /// Records promised by the header.
        declared: u16,
        /// Bytes available for records.
        have: usize,
        /// Bytes required for `declared` records.
        need: usize,
    },
    /// The header declares more records than a v5 datagram can carry (30).
    TooManyRecords(u16),
    /// A v9/IPFIX packet was cut short of what its framing declares.
    TruncatedPacket {
        /// Bytes available.
        have: usize,
        /// Bytes required.
        need: usize,
    },
    /// A v9/IPFIX punctuation packet carried a flowset that is not a
    /// template or options template — decoding data flowsets would need
    /// per-exporter template state, and flow records travel as v5 here.
    UnsupportedFlowset {
        /// The packet's version word (9 or 10).
        version: u16,
        /// The offending flowset/set id.
        id: u16,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::TruncatedHeader { have, need } => {
                write!(f, "truncated NetFlow v5 header: have {have} bytes, need {need}")
            }
            DecodeError::BadVersion(v) => write!(f, "unsupported NetFlow version {v} (expected 5)"),
            DecodeError::TruncatedRecords { declared, have, need } => write!(
                f,
                "truncated NetFlow v5 records: header declares {declared} records ({need} bytes) but only {have} bytes follow"
            ),
            DecodeError::TooManyRecords(n) => {
                write!(f, "NetFlow v5 header declares {n} records; the maximum per datagram is 30")
            }
            DecodeError::TruncatedPacket { have, need } => {
                write!(f, "truncated NetFlow v9/IPFIX packet: have {have} bytes, need {need}")
            }
            DecodeError::UnsupportedFlowset { version, id } => write!(
                f,
                "NetFlow v{version} flowset {id} is not a template; only template-only \
                 punctuation packets are supported (flow records travel as v5)"
            ),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Errors produced while encoding NetFlow wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// More records were supplied than fit in one v5 datagram (30).
    TooManyRecords(usize),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::TooManyRecords(n) => {
                write!(
                    f,
                    "cannot encode {n} records into one NetFlow v5 datagram (max 30)"
                )
            }
        }
    }
}

impl std::error::Error for EncodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_error_messages_are_informative() {
        let e = DecodeError::TruncatedHeader { have: 3, need: 24 };
        assert!(e.to_string().contains("have 3"));
        let e = DecodeError::BadVersion(9);
        assert!(e.to_string().contains('9'));
        let e = DecodeError::TruncatedRecords {
            declared: 2,
            have: 10,
            need: 96,
        };
        assert!(e.to_string().contains("2 records"));
        let e = DecodeError::TooManyRecords(31);
        assert!(e.to_string().contains("31"));
    }

    #[test]
    fn encode_error_messages_are_informative() {
        let e = EncodeError::TooManyRecords(31);
        assert!(e.to_string().contains("31"));
    }

    #[test]
    fn errors_implement_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&DecodeError::BadVersion(1));
        assert_err(&EncodeError::TooManyRecords(99));
    }
}
