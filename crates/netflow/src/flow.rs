//! Flow records: the fundamental unit of data in the anomaly-extraction
//! pipeline.
//!
//! A [`FlowRecord`] is the 5-tuple plus volume counters that a NetFlow-style
//! exporter emits for every unidirectional flow it observes. The paper mines
//! *seven* features per flow (source/destination IP and port, protocol,
//! packet count, byte count); all seven live here.

use std::fmt;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

/// IP protocol carried by a flow.
///
/// Only the protocols that matter for backbone anomaly analysis get named
/// variants; everything else is carried verbatim in [`Protocol::Other`] so a
/// round trip through the NetFlow codec is lossless.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Protocol {
    /// ICMP (protocol number 1).
    Icmp,
    /// TCP (protocol number 6).
    Tcp,
    /// UDP (protocol number 17).
    Udp,
    /// Any other IP protocol, by number.
    Other(u8),
}

impl Protocol {
    /// The IANA protocol number.
    #[must_use]
    pub fn number(self) -> u8 {
        match self {
            Protocol::Icmp => 1,
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Other(n) => n,
        }
    }

    /// Build from an IANA protocol number, normalizing the named variants.
    #[must_use]
    pub fn from_number(n: u8) -> Self {
        match n {
            1 => Protocol::Icmp,
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            other => Protocol::Other(other),
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Icmp => write!(f, "ICMP"),
            Protocol::Tcp => write!(f, "TCP"),
            Protocol::Udp => write!(f, "UDP"),
            Protocol::Other(n) => write!(f, "proto{n}"),
        }
    }
}

impl From<u8> for Protocol {
    fn from(n: u8) -> Self {
        Protocol::from_number(n)
    }
}

/// TCP control-flag bits accumulated over a flow, NetFlow-style
/// (`tcp_flags` field: the OR of the flags of all packets in the flow).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN bit.
    pub const FIN: u8 = 0x01;
    /// SYN bit.
    pub const SYN: u8 = 0x02;
    /// RST bit.
    pub const RST: u8 = 0x04;
    /// PSH bit.
    pub const PSH: u8 = 0x08;
    /// ACK bit.
    pub const ACK: u8 = 0x10;
    /// URG bit.
    pub const URG: u8 = 0x20;

    /// A pure SYN flow (scan / flood signature).
    #[must_use]
    pub fn syn_only() -> Self {
        TcpFlags(Self::SYN)
    }

    /// SYN+ACK (backscatter signature).
    #[must_use]
    pub fn syn_ack() -> Self {
        TcpFlags(Self::SYN | Self::ACK)
    }

    /// Whether the given bit(s) are all set.
    #[must_use]
    pub fn contains(self, bits: u8) -> bool {
        self.0 & bits == bits
    }
}

/// A unidirectional flow record (NetFlow v5 semantics).
///
/// Timestamps are in **milliseconds** since an arbitrary epoch (for synthetic
/// traces: since the start of the scenario; for decoded NetFlow v5: `sysuptime`
/// milliseconds). The pipeline only ever uses differences and interval
/// bucketing, so the epoch does not matter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowRecord {
    /// Flow start time, ms.
    pub start_ms: u64,
    /// Flow end time, ms (`>= start_ms`).
    pub end_ms: u64,
    /// Source IPv4 address.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// Source transport port (0 for protocols without ports).
    pub src_port: u16,
    /// Destination transport port (0 for protocols without ports).
    pub dst_port: u16,
    /// IP protocol.
    pub proto: Protocol,
    /// Number of packets in the flow (NetFlow `dPkts`). Always `>= 1`.
    pub packets: u32,
    /// Number of layer-3 bytes in the flow (NetFlow `dOctets`).
    pub bytes: u32,
    /// Cumulative TCP flags (zero for non-TCP).
    pub tcp_flags: TcpFlags,
}

impl FlowRecord {
    /// Create a flow with the volume counters defaulted to a single
    /// 40-byte packet (minimal TCP segment), starting and ending at
    /// `start_ms`. Use the builder-style setters to refine.
    #[must_use]
    pub fn new(
        start_ms: u64,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        proto: Protocol,
    ) -> Self {
        FlowRecord {
            start_ms,
            end_ms: start_ms,
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto,
            packets: 1,
            bytes: 40,
            tcp_flags: TcpFlags::default(),
        }
    }

    /// Set the packet and byte counters.
    #[must_use]
    pub fn with_volume(mut self, packets: u32, bytes: u32) -> Self {
        self.packets = packets;
        self.bytes = bytes;
        self
    }

    /// Set the end timestamp (duration = `end_ms - start_ms`).
    #[must_use]
    pub fn with_end(mut self, end_ms: u64) -> Self {
        debug_assert!(end_ms >= self.start_ms);
        self.end_ms = end_ms;
        self
    }

    /// Set the cumulative TCP flags.
    #[must_use]
    pub fn with_flags(mut self, flags: TcpFlags) -> Self {
        self.tcp_flags = flags;
        self
    }

    /// Flow duration in milliseconds.
    #[must_use]
    pub fn duration_ms(&self) -> u64 {
        self.end_ms - self.start_ms
    }

    /// Mean packet size in bytes (0 if the flow somehow has no packets).
    #[must_use]
    pub fn mean_packet_size(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            f64::from(self.bytes) / f64::from(self.packets)
        }
    }
}

impl fmt::Display for FlowRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} -> {}:{} pkts={} bytes={}",
            self.proto,
            self.src_ip,
            self.src_port,
            self.dst_ip,
            self.dst_port,
            self.packets,
            self.bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn protocol_number_round_trip() {
        for n in 0..=255u8 {
            assert_eq!(Protocol::from_number(n).number(), n);
        }
    }

    #[test]
    fn protocol_normalizes_named_variants() {
        assert_eq!(Protocol::from_number(6), Protocol::Tcp);
        assert_eq!(Protocol::from_number(17), Protocol::Udp);
        assert_eq!(Protocol::from_number(1), Protocol::Icmp);
        assert_eq!(Protocol::from_number(47), Protocol::Other(47));
    }

    #[test]
    fn protocol_display() {
        assert_eq!(Protocol::Tcp.to_string(), "TCP");
        assert_eq!(Protocol::Other(47).to_string(), "proto47");
    }

    #[test]
    fn tcp_flags_contains() {
        let f = TcpFlags::syn_ack();
        assert!(f.contains(TcpFlags::SYN));
        assert!(f.contains(TcpFlags::ACK));
        assert!(f.contains(TcpFlags::SYN | TcpFlags::ACK));
        assert!(!f.contains(TcpFlags::RST));
    }

    #[test]
    fn flow_builder_sets_fields() {
        let f = FlowRecord::new(
            1000,
            ip("10.0.0.1"),
            ip("10.0.0.2"),
            1234,
            80,
            Protocol::Tcp,
        )
        .with_volume(10, 4000)
        .with_end(1500)
        .with_flags(TcpFlags::syn_only());
        assert_eq!(f.duration_ms(), 500);
        assert_eq!(f.packets, 10);
        assert_eq!(f.bytes, 4000);
        assert!((f.mean_packet_size() - 400.0).abs() < f64::EPSILON);
        assert!(f.tcp_flags.contains(TcpFlags::SYN));
    }

    #[test]
    fn default_flow_is_single_minimal_packet() {
        let f = FlowRecord::new(0, ip("1.1.1.1"), ip("2.2.2.2"), 1, 2, Protocol::Udp);
        assert_eq!(f.packets, 1);
        assert_eq!(f.bytes, 40);
        assert_eq!(f.duration_ms(), 0);
    }

    #[test]
    fn mean_packet_size_zero_packets() {
        let mut f = FlowRecord::new(0, ip("1.1.1.1"), ip("2.2.2.2"), 1, 2, Protocol::Udp);
        f.packets = 0;
        assert_eq!(f.mean_packet_size(), 0.0);
    }

    #[test]
    fn flow_display_mentions_endpoints() {
        let f = FlowRecord::new(0, ip("10.0.0.1"), ip("10.0.0.2"), 1234, 80, Protocol::Tcp);
        let s = f.to_string();
        assert!(s.contains("10.0.0.1:1234"));
        assert!(s.contains("10.0.0.2:80"));
    }
}
