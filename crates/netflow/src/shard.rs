//! Deterministic partitioning of flow batches into contiguous shards.
//!
//! The extraction pipeline is embarrassingly partitionable by flow: every
//! per-interval structure it builds (histograms, item counts, tid-lists)
//! is a sum over flows, so a batch can be split into contiguous chunks,
//! processed independently, and the partial results merged in chunk order
//! with bit-identical totals. This module is the single source of truth
//! for *how* a batch is split, so the detector, the miners, and the
//! sharded extractor all agree on shard boundaries.
//!
//! Chunks are contiguous index ranges covering `0..len` exactly once, in
//! order, with sizes differing by at most one (the first `len % shards`
//! chunks take the extra element). Determinism follows from the layout
//! being a pure function of `(len, shards)`.

use std::num::NonZeroUsize;
use std::ops::Range;

/// The balanced contiguous index ranges that split `len` elements into at
/// most `shards` chunks.
///
/// Ranges are returned in ascending order, are non-empty, and concatenate
/// to exactly `0..len`. Fewer than `shards` ranges are returned when
/// `len < shards` (never an empty range); an empty input yields no ranges.
#[must_use]
pub fn chunk_ranges(len: usize, shards: NonZeroUsize) -> Vec<Range<usize>> {
    let shards = shards.get().min(len);
    if shards == 0 {
        return Vec::new();
    }
    let base = len / shards;
    let extra = len % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Split a slice into the balanced contiguous chunks of [`chunk_ranges`],
/// paired with each chunk's starting index in the original slice.
#[must_use]
pub fn chunks_of<T>(items: &[T], shards: NonZeroUsize) -> Vec<(usize, &[T])> {
    chunk_ranges(items.len(), shards)
        .into_iter()
        .map(|r| (r.start, &items[r]))
        .collect()
}

/// The number of shards to use by default: the machine's available
/// parallelism, or 1 when it cannot be determined.
#[must_use]
pub fn default_shards() -> NonZeroUsize {
    std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nz(n: usize) -> NonZeroUsize {
        NonZeroUsize::new(n).unwrap()
    }

    #[test]
    fn ranges_cover_exactly_once_in_order() {
        for len in [0usize, 1, 2, 7, 8, 9, 100, 1023] {
            for shards in 1..=9 {
                let ranges = chunk_ranges(len, nz(shards));
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "len={len} shards={shards}");
                    assert!(r.end > r.start, "empty range at len={len}");
                    next = r.end;
                }
                assert_eq!(next, len, "len={len} shards={shards}");
            }
        }
    }

    #[test]
    fn sizes_are_balanced() {
        let ranges = chunk_ranges(10, nz(4));
        let sizes: Vec<usize> = ranges
            .iter()
            .map(std::iter::ExactSizeIterator::len)
            .collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }

    #[test]
    fn fewer_chunks_than_shards_for_tiny_inputs() {
        assert_eq!(chunk_ranges(2, nz(8)).len(), 2);
        assert!(chunk_ranges(0, nz(8)).is_empty());
    }

    #[test]
    fn chunks_of_reassembles_the_slice() {
        let data: Vec<u32> = (0..17).collect();
        let chunks = chunks_of(&data, nz(5));
        let mut rebuilt = Vec::new();
        for (start, chunk) in chunks {
            assert_eq!(rebuilt.len(), start);
            rebuilt.extend_from_slice(chunk);
        }
        assert_eq!(rebuilt, data);
    }

    #[test]
    fn default_shards_is_positive() {
        assert!(default_shards().get() >= 1);
    }
}
