//! Checkpoint codec: a versioned, checksummed binary snapshot format.
//!
//! Durable long-run operation needs the online state — detector baselines,
//! assembler watermarks, drop counters — to survive process restarts. This
//! module provides the byte-level substrate: a little-endian writer/reader
//! pair for snapshot payloads, an FNV-1a integrity checksum, and atomic
//! checkpoint files (`temp file + rename`) carrying a versioned header so a
//! restore can reject foreign, truncated, or corrupted files with a typed
//! [`RestoreError`] instead of a panic.
//!
//! The format is deliberately hand-rolled: every multi-byte integer is
//! little-endian, every `f64` travels as its raw IEEE-754 bit pattern
//! ([`f64::to_bits`]), and every sequence is length-prefixed with a `u64`.
//! That makes snapshots bit-exact — restoring a detector baseline yields
//! *exactly* the floats the live process held, which is what the
//! kill-and-resume determinism contract requires.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use crate::flow::{FlowRecord, Protocol, TcpFlags};

/// Magic bytes opening every checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"ANOMEXCK";

/// Current checkpoint format version. Bump on any layout change.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Why a checkpoint could not be restored.
///
/// Every failure mode of [`read_checkpoint`] and of the state decoders
/// built on [`SnapshotReader`] maps to one of these variants — restore
/// never panics on hostile input.
#[derive(Debug)]
pub enum RestoreError {
    /// The file (or a field inside the payload) ends before its declared
    /// length.
    Truncated,
    /// The file does not start with [`CHECKPOINT_MAGIC`] — not a
    /// checkpoint at all.
    BadMagic,
    /// The checkpoint was written by an incompatible format version.
    UnsupportedVersion {
        /// The version recorded in the file header.
        found: u32,
    },
    /// The payload does not match the checksum recorded in the header.
    ChecksumMismatch,
    /// The payload decoded but its contents are inconsistent (bad enum
    /// tag, impossible length, trailing bytes, …).
    Corrupt(String),
    /// The underlying file could not be read or written.
    Io(io::Error),
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::Truncated => write!(f, "checkpoint truncated"),
            RestoreError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            RestoreError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported checkpoint version {found} (expected {CHECKPOINT_VERSION})"
                )
            }
            RestoreError::ChecksumMismatch => write!(f, "checkpoint checksum mismatch"),
            RestoreError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
            RestoreError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
        }
    }
}

impl std::error::Error for RestoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RestoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for RestoreError {
    fn from(e: io::Error) -> Self {
        RestoreError::Io(e)
    }
}

/// 64-bit FNV-1a over a byte slice — the header's integrity checksum.
/// Not cryptographic; it guards against torn writes and bit rot, not
/// adversaries.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Append-only little-endian payload builder for snapshot state.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// New empty payload.
    #[must_use]
    pub fn new() -> Self {
        SnapshotWriter::default()
    }

    /// Consume the writer, yielding the payload bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current payload length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `bool` as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Write a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Write an `f64` as its raw bit pattern — bit-exact round trip.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Write a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Write a flow record (all ten fields, fixed width).
    pub fn flow(&mut self, f: &FlowRecord) {
        self.u64(f.start_ms);
        self.u64(f.end_ms);
        self.u32(u32::from(f.src_ip));
        self.u32(u32::from(f.dst_ip));
        self.u16(f.src_port);
        self.u16(f.dst_port);
        self.u8(f.proto.number());
        self.u32(f.packets);
        self.u32(f.bytes);
        self.u8(f.tcp_flags.0);
    }

    /// Write a length-prefixed sequence of flow records.
    pub fn flows(&mut self, flows: &[FlowRecord]) {
        self.usize(flows.len());
        for f in flows {
            self.flow(f);
        }
    }
}

/// Cursor over a snapshot payload; every read is bounds-checked and
/// returns [`RestoreError::Truncated`] past the end.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// Read from the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        SnapshotReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fail with [`RestoreError::Corrupt`] unless the payload is fully
    /// consumed — trailing bytes mean the reader and writer disagree on
    /// the layout.
    pub fn finish(&self) -> Result<(), RestoreError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(RestoreError::Corrupt(format!(
                "{} trailing bytes",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], RestoreError> {
        if self.remaining() < n {
            return Err(RestoreError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, RestoreError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `bool`; any byte other than 0/1 is corrupt.
    pub fn bool(&mut self) -> Result<bool, RestoreError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(RestoreError::Corrupt(format!("bad bool byte {other}"))),
        }
    }

    /// Read a `u16`, little-endian.
    pub fn u16(&mut self) -> Result<u16, RestoreError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a `u32`, little-endian.
    pub fn u32(&mut self) -> Result<u32, RestoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a `u64`, little-endian.
    pub fn u64(&mut self) -> Result<u64, RestoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a `usize` written by [`SnapshotWriter::usize`], rejecting
    /// values that cannot index memory on this platform.
    pub fn usize(&mut self) -> Result<usize, RestoreError> {
        usize::try_from(self.u64()?)
            .map_err(|_| RestoreError::Corrupt("length exceeds usize".into()))
    }

    /// Read a sequence length and sanity-check it against the bytes that
    /// remain: each element needs at least `min_element_bytes`, so a
    /// length that promises more elements than the payload can hold is
    /// corrupt (and protects against huge bogus allocations).
    pub fn seq_len(&mut self, min_element_bytes: usize) -> Result<usize, RestoreError> {
        let len = self.usize()?;
        if len.saturating_mul(min_element_bytes.max(1)) > self.remaining() {
            return Err(RestoreError::Truncated);
        }
        Ok(len)
    }

    /// Read an `f64` from its raw bit pattern.
    pub fn f64(&mut self) -> Result<f64, RestoreError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], RestoreError> {
        let len = self.seq_len(1)?;
        self.take(len)
    }

    /// Read one flow record.
    pub fn flow(&mut self) -> Result<FlowRecord, RestoreError> {
        Ok(FlowRecord {
            start_ms: self.u64()?,
            end_ms: self.u64()?,
            src_ip: std::net::Ipv4Addr::from(self.u32()?),
            dst_ip: std::net::Ipv4Addr::from(self.u32()?),
            src_port: self.u16()?,
            dst_port: self.u16()?,
            proto: Protocol::from_number(self.u8()?),
            packets: self.u32()?,
            bytes: self.u32()?,
            tcp_flags: TcpFlags(self.u8()?),
        })
    }

    /// Read a length-prefixed sequence of flow records.
    pub fn flows(&mut self) -> Result<Vec<FlowRecord>, RestoreError> {
        let len = self.seq_len(FLOW_WIRE_BYTES)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.flow()?);
        }
        Ok(out)
    }
}

/// Fixed wire width of one encoded [`FlowRecord`].
pub const FLOW_WIRE_BYTES: usize = 8 + 8 + 4 + 4 + 2 + 2 + 1 + 4 + 4 + 1;

/// Frame a payload with the checkpoint header: magic, format version,
/// payload length, FNV-1a checksum, then the payload itself.
#[must_use]
pub fn frame_checkpoint(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(28 + payload.len());
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Verify a framed checkpoint and return its payload.
///
/// # Errors
///
/// [`RestoreError::BadMagic`], [`RestoreError::UnsupportedVersion`],
/// [`RestoreError::Truncated`] (short header or payload), or
/// [`RestoreError::ChecksumMismatch`].
pub fn unframe_checkpoint(bytes: &[u8]) -> Result<&[u8], RestoreError> {
    if bytes.len() < 8 {
        return Err(RestoreError::Truncated);
    }
    if bytes[..8] != CHECKPOINT_MAGIC {
        return Err(RestoreError::BadMagic);
    }
    if bytes.len() < 28 {
        return Err(RestoreError::Truncated);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != CHECKPOINT_VERSION {
        return Err(RestoreError::UnsupportedVersion { found: version });
    }
    let len = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let checksum = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
    let payload = &bytes[28..];
    let len = usize::try_from(len).map_err(|_| RestoreError::Truncated)?;
    if payload.len() != len {
        return Err(RestoreError::Truncated);
    }
    if fnv1a64(payload) != checksum {
        return Err(RestoreError::ChecksumMismatch);
    }
    Ok(payload)
}

/// Atomically write a framed checkpoint to `path`: the bytes land in a
/// sibling temp file first and are `rename`d into place, so a crash
/// mid-write leaves either the previous checkpoint or none — never a
/// half-written file at the final path.
///
/// # Errors
///
/// [`RestoreError::Io`] on any filesystem failure.
pub fn write_checkpoint(path: &Path, payload: &[u8]) -> Result<(), RestoreError> {
    let framed = frame_checkpoint(payload);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    fs::write(&tmp, &framed)?;
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Read and verify a checkpoint file, returning its payload.
///
/// # Errors
///
/// All of [`unframe_checkpoint`]'s errors, plus [`RestoreError::Io`] when
/// the file cannot be read.
pub fn read_checkpoint(path: &Path) -> Result<Vec<u8>, RestoreError> {
    let bytes = fs::read(path)?;
    unframe_checkpoint(&bytes).map(<[u8]>::to_vec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn sample_flow(i: u32) -> FlowRecord {
        FlowRecord::new(
            u64::from(i) * 17,
            Ipv4Addr::from(0x0a00_0000 + i),
            Ipv4Addr::from(0x0b00_0000 + i),
            (i % 60_000) as u16,
            7000,
            Protocol::from_number((i % 255) as u8),
        )
        .with_volume(i + 1, (i + 1) * 40)
        .with_flags(TcpFlags((i % 64) as u8))
    }

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapshotWriter::new();
        w.u8(7);
        w.bool(true);
        w.u16(65_000);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 3);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.bytes(b"hello");
        let buf = w.into_bytes();
        let mut r = SnapshotReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u16().unwrap(), 65_000);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.bytes().unwrap(), b"hello");
        r.finish().unwrap();
    }

    #[test]
    fn flows_round_trip_bit_exact() {
        let flows: Vec<_> = (0..100).map(sample_flow).collect();
        let mut w = SnapshotWriter::new();
        w.flows(&flows);
        let buf = w.into_bytes();
        let mut r = SnapshotReader::new(&buf);
        assert_eq!(r.flows().unwrap(), flows);
        r.finish().unwrap();
    }

    #[test]
    fn flow_wire_width_matches_encoder() {
        let mut w = SnapshotWriter::new();
        w.flow(&sample_flow(1));
        assert_eq!(w.len(), FLOW_WIRE_BYTES);
    }

    #[test]
    fn truncated_reads_error_not_panic() {
        let mut w = SnapshotWriter::new();
        w.u64(42);
        let buf = w.into_bytes();
        let mut r = SnapshotReader::new(&buf[..5]);
        assert!(matches!(r.u64(), Err(RestoreError::Truncated)));
    }

    #[test]
    fn bogus_sequence_length_is_rejected() {
        let mut w = SnapshotWriter::new();
        w.u64(u64::MAX);
        let buf = w.into_bytes();
        let mut r = SnapshotReader::new(&buf);
        assert!(r.flows().is_err());
    }

    #[test]
    fn trailing_bytes_are_corrupt() {
        let mut w = SnapshotWriter::new();
        w.u8(1);
        w.u8(2);
        let buf = w.into_bytes();
        let mut r = SnapshotReader::new(&buf);
        let _ = r.u8().unwrap();
        assert!(matches!(r.finish(), Err(RestoreError::Corrupt(_))));
    }

    #[test]
    fn frame_and_unframe_round_trip() {
        let payload = b"detector state goes here";
        let framed = frame_checkpoint(payload);
        assert_eq!(unframe_checkpoint(&framed).unwrap(), payload);
    }

    #[test]
    fn unframe_rejects_bad_magic() {
        let mut framed = frame_checkpoint(b"x");
        framed[0] = b'Z';
        assert!(matches!(
            unframe_checkpoint(&framed),
            Err(RestoreError::BadMagic)
        ));
    }

    #[test]
    fn unframe_rejects_future_version() {
        let mut framed = frame_checkpoint(b"x");
        framed[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            unframe_checkpoint(&framed),
            Err(RestoreError::UnsupportedVersion { found: 99 })
        ));
    }

    #[test]
    fn unframe_rejects_flipped_payload_bit() {
        let mut framed = frame_checkpoint(b"important state");
        let last = framed.len() - 1;
        framed[last] ^= 0x40;
        assert!(matches!(
            unframe_checkpoint(&framed),
            Err(RestoreError::ChecksumMismatch)
        ));
    }

    #[test]
    fn unframe_rejects_truncation() {
        let framed = frame_checkpoint(b"important state");
        for cut in [0, 4, 11, 27, framed.len() - 1] {
            assert!(
                matches!(
                    unframe_checkpoint(&framed[..cut]),
                    Err(RestoreError::Truncated | RestoreError::BadMagic)
                ),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn checkpoint_file_round_trip_is_atomic() {
        let dir = std::env::temp_dir().join(format!("anomex-snap-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckpt");
        write_checkpoint(&path, b"first").unwrap();
        assert_eq!(read_checkpoint(&path).unwrap(), b"first");
        // Overwrite goes through the same temp+rename path.
        write_checkpoint(&path, b"second").unwrap();
        assert_eq!(read_checkpoint(&path).unwrap(), b"second");
        // No temp file lingers.
        assert!(!dir.join("state.ckpt.tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_checkpoint(Path::new("/nonexistent/anomex.ckpt")).unwrap_err();
        assert!(matches!(err, RestoreError::Io(_)));
    }
}
