//! NetFlow version 5 wire codec.
//!
//! The paper's dataset is non-sampled NetFlow collected from a backbone
//! peering link; v5 is the format such collectors exported in 2007. This
//! module implements the complete v5 datagram layout — 24-byte header plus
//! up to thirty 48-byte flow records, all fields big-endian — so the
//! pipeline can ingest and emit the same bytes a real exporter would.
//!
//! Fields that [`crate::flow::FlowRecord`] does not model (next-hop,
//! interface indices, AS numbers, masks, ToS) are encoded as zero and
//! ignored on decode, which is also what most collectors do for
//! single-router deployments.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::net::Ipv4Addr;

use crate::columns::FlowColumns;
use crate::error::{DecodeError, EncodeError};
use crate::flow::{FlowRecord, Protocol, TcpFlags};

/// Size of the fixed v5 header in bytes.
pub const V5_HEADER_LEN: usize = 24;
/// Size of one v5 flow record in bytes.
pub const V5_RECORD_LEN: usize = 48;
/// Maximum records per v5 datagram (fits a 1500-byte MTU).
pub const V5_MAX_RECORDS: usize = 30;

/// Decoded NetFlow v5 datagram header.
///
/// The all-zero default mirrors an unsampled exporter at boot (the SWITCH
/// traces are non-sampled).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct V5Header {
    /// Number of flow records in this datagram (1–30).
    pub count: u16,
    /// Milliseconds since the exporter booted.
    pub sys_uptime_ms: u32,
    /// Export wall-clock seconds (UNIX epoch).
    pub unix_secs: u32,
    /// Residual nanoseconds of the export wall clock.
    pub unix_nsecs: u32,
    /// Total flows exported before this datagram (loss detection).
    pub flow_sequence: u32,
    /// Exporter engine type.
    pub engine_type: u8,
    /// Exporter engine slot.
    pub engine_id: u8,
    /// Sampling mode (2 bits) and interval (14 bits); zero = unsampled.
    pub sampling: u16,
}

/// A decoded v5 datagram: header plus flow records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct V5Datagram {
    /// The datagram header.
    pub header: V5Header,
    /// The flow records (`header.count` of them).
    pub flows: Vec<FlowRecord>,
}

/// Encode up to 30 flows into a single v5 datagram.
///
/// `flow_sequence` is the cumulative flow counter maintained by the caller
/// (see [`V5Exporter`] for a stateful wrapper that manages it).
///
/// # Errors
///
/// [`EncodeError::TooManyRecords`] if more than 30 flows are supplied.
pub fn encode_datagram(
    flows: &[FlowRecord],
    flow_sequence: u32,
    sys_uptime_ms: u32,
) -> Result<Bytes, EncodeError> {
    if flows.len() > V5_MAX_RECORDS {
        return Err(EncodeError::TooManyRecords(flows.len()));
    }
    let mut buf = BytesMut::with_capacity(V5_HEADER_LEN + flows.len() * V5_RECORD_LEN);
    // -- header --
    buf.put_u16(5); // version
    buf.put_u16(flows.len() as u16);
    buf.put_u32(sys_uptime_ms);
    buf.put_u32(0); // unix_secs: synthetic traces have no wall clock
    buf.put_u32(0); // unix_nsecs
    buf.put_u32(flow_sequence);
    buf.put_u8(0); // engine_type
    buf.put_u8(0); // engine_id
    buf.put_u16(0); // sampling: non-sampled
                    // -- records --
    for flow in flows {
        buf.put_u32(u32::from(flow.src_ip));
        buf.put_u32(u32::from(flow.dst_ip));
        buf.put_u32(0); // nexthop
        buf.put_u16(0); // input ifindex
        buf.put_u16(0); // output ifindex
        buf.put_u32(flow.packets);
        buf.put_u32(flow.bytes);
        buf.put_u32(flow.start_ms as u32); // first (sysuptime ms)
        buf.put_u32(flow.end_ms as u32); // last
        buf.put_u16(flow.src_port);
        buf.put_u16(flow.dst_port);
        buf.put_u8(0); // pad1
        buf.put_u8(flow.tcp_flags.0);
        buf.put_u8(flow.proto.number());
        buf.put_u8(0); // tos
        buf.put_u16(0); // src_as
        buf.put_u16(0); // dst_as
        buf.put_u8(0); // src_mask
        buf.put_u8(0); // dst_mask
        buf.put_u16(0); // pad2
    }
    Ok(buf.freeze())
}

/// Decode one v5 datagram from a byte buffer.
///
/// # Errors
///
/// Returns a [`DecodeError`] on short input, a non-v5 version field, a
/// record count above 30, or fewer record bytes than the header declares.
pub fn decode_datagram(mut data: &[u8]) -> Result<V5Datagram, DecodeError> {
    if data.len() < V5_HEADER_LEN {
        return Err(DecodeError::TruncatedHeader {
            have: data.len(),
            need: V5_HEADER_LEN,
        });
    }
    let version = data.get_u16();
    if version != 5 {
        return Err(DecodeError::BadVersion(version));
    }
    let count = data.get_u16();
    if usize::from(count) > V5_MAX_RECORDS {
        return Err(DecodeError::TooManyRecords(count));
    }
    let header = V5Header {
        count,
        sys_uptime_ms: data.get_u32(),
        unix_secs: data.get_u32(),
        unix_nsecs: data.get_u32(),
        flow_sequence: data.get_u32(),
        engine_type: data.get_u8(),
        engine_id: data.get_u8(),
        sampling: data.get_u16(),
    };
    let need = usize::from(count) * V5_RECORD_LEN;
    if data.remaining() < need {
        return Err(DecodeError::TruncatedRecords {
            declared: count,
            have: data.remaining(),
            need,
        });
    }
    let mut flows = Vec::with_capacity(usize::from(count));
    for _ in 0..count {
        let src_ip = Ipv4Addr::from(data.get_u32());
        let dst_ip = Ipv4Addr::from(data.get_u32());
        data.advance(4 + 2 + 2); // nexthop, input, output
        let packets = data.get_u32();
        let bytes = data.get_u32();
        let first = data.get_u32();
        let last = data.get_u32();
        let src_port = data.get_u16();
        let dst_port = data.get_u16();
        data.advance(1); // pad1
        let tcp_flags = TcpFlags(data.get_u8());
        let proto = Protocol::from_number(data.get_u8());
        data.advance(1 + 2 + 2 + 1 + 1 + 2); // tos, ASes, masks, pad2
        flows.push(FlowRecord {
            start_ms: u64::from(first),
            end_ms: u64::from(last),
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto,
            packets,
            bytes,
            tcp_flags,
        });
    }
    Ok(V5Datagram { header, flows })
}

/// Decode one v5 datagram straight into a [`FlowColumns`] store — the
/// columnar fast path with no intermediate `FlowRecord` materialization.
///
/// Appends the datagram's `count` flows as rows of `out` and returns the
/// decoded header. The header and the record-byte length are validated
/// **before** any column is touched, so `out` is unchanged on error
/// (mirroring [`V5Collector::ingest`]), and the errors are exactly those
/// of [`decode_datagram`] on the same input.
///
/// # Errors
///
/// Returns a [`DecodeError`] on short input, a non-v5 version field, a
/// record count above 30, or fewer record bytes than the header declares.
pub fn decode_into_columns(
    mut data: &[u8],
    out: &mut FlowColumns,
) -> Result<V5Header, DecodeError> {
    if data.len() < V5_HEADER_LEN {
        return Err(DecodeError::TruncatedHeader {
            have: data.len(),
            need: V5_HEADER_LEN,
        });
    }
    let version = data.get_u16();
    if version != 5 {
        return Err(DecodeError::BadVersion(version));
    }
    let count = data.get_u16();
    if usize::from(count) > V5_MAX_RECORDS {
        return Err(DecodeError::TooManyRecords(count));
    }
    let header = V5Header {
        count,
        sys_uptime_ms: data.get_u32(),
        unix_secs: data.get_u32(),
        unix_nsecs: data.get_u32(),
        flow_sequence: data.get_u32(),
        engine_type: data.get_u8(),
        engine_id: data.get_u8(),
        sampling: data.get_u16(),
    };
    let need = usize::from(count) * V5_RECORD_LEN;
    if data.remaining() < need {
        return Err(DecodeError::TruncatedRecords {
            declared: count,
            have: data.remaining(),
            need,
        });
    }
    for _ in 0..count {
        out.src_ip.push(data.get_u32());
        out.dst_ip.push(data.get_u32());
        data.advance(4 + 2 + 2); // nexthop, input, output
        out.packets.push(data.get_u32());
        out.bytes.push(data.get_u32());
        out.start_ms.push(u64::from(data.get_u32())); // first
        out.end_ms.push(u64::from(data.get_u32())); // last
        out.src_port.push(data.get_u16());
        out.dst_port.push(data.get_u16());
        data.advance(1); // pad1
        out.tcp_flags.push(data.get_u8());
        out.proto.push(data.get_u8());
        data.advance(1 + 2 + 2 + 1 + 1 + 2); // tos, ASes, masks, pad2
    }
    Ok(header)
}

/// Decode a concatenated stream of v5 datagrams straight into a
/// [`FlowColumns`] store, returning the per-datagram headers.
///
/// The columnar counterpart of [`decode_stream`]: each datagram is
/// self-framing, and the first error is returned as-is. Datagrams
/// decoded before the error remain appended to `out` (the failing
/// datagram itself leaves `out` untouched, per
/// [`decode_into_columns`]).
///
/// # Errors
///
/// Returns the first [`DecodeError`] encountered.
pub fn decode_stream_into_columns(
    mut data: &[u8],
    out: &mut FlowColumns,
) -> Result<Vec<V5Header>, DecodeError> {
    let mut headers = Vec::new();
    while !data.is_empty() {
        let header = decode_into_columns(data, out)?;
        let consumed = V5_HEADER_LEN + usize::from(header.count) * V5_RECORD_LEN;
        data = &data[consumed..];
        headers.push(header);
    }
    Ok(headers)
}

/// Decode a concatenated stream of v5 datagrams (e.g. a capture file):
/// each datagram's header declares its record count, so the stream is
/// self-framing.
///
/// # Errors
///
/// Returns the first [`DecodeError`] encountered; datagrams before the
/// error are not returned (use [`V5Collector`] for tolerant ingestion).
pub fn decode_stream(mut data: &[u8]) -> Result<Vec<V5Datagram>, DecodeError> {
    let mut out = Vec::new();
    while !data.is_empty() {
        let dgram = decode_datagram(data)?;
        let consumed = V5_HEADER_LEN + usize::from(dgram.header.count) * V5_RECORD_LEN;
        data = &data[consumed..];
        out.push(dgram);
    }
    Ok(out)
}

/// Stateful exporter: packs an arbitrary flow stream into maximal v5
/// datagrams and maintains the `flow_sequence` counter like a real router.
#[derive(Debug, Default)]
pub struct V5Exporter {
    sequence: u32,
}

impl V5Exporter {
    /// New exporter with sequence counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current cumulative flow sequence number.
    #[must_use]
    pub fn sequence(&self) -> u32 {
        self.sequence
    }

    /// Export `flows` as a series of datagrams of at most 30 records each.
    ///
    /// Never fails: chunking guarantees the per-datagram record limit.
    pub fn export(&mut self, flows: &[FlowRecord]) -> Vec<Bytes> {
        let mut out = Vec::with_capacity(flows.len().div_ceil(V5_MAX_RECORDS));
        for chunk in flows.chunks(V5_MAX_RECORDS) {
            let uptime = chunk.last().map_or(0, |f| f.end_ms as u32);
            let dgram = encode_datagram(chunk, self.sequence, uptime)
                .expect("chunk length is bounded by V5_MAX_RECORDS");
            self.sequence = self.sequence.wrapping_add(chunk.len() as u32);
            out.push(dgram);
        }
        out
    }
}

/// Stateful collector: decodes datagrams, accumulates flows, and tracks
/// sequence gaps (lost datagrams) like a real NetFlow collector.
#[derive(Debug, Default)]
pub struct V5Collector {
    flows: Vec<FlowRecord>,
    expected_sequence: Option<u32>,
    lost_flows: u64,
}

impl V5Collector {
    /// New, empty collector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingest one datagram.
    ///
    /// # Errors
    ///
    /// Propagates [`DecodeError`] from [`decode_datagram`]; the collector
    /// state is unchanged on error.
    pub fn ingest(&mut self, data: &[u8]) -> Result<(), DecodeError> {
        let dgram = decode_datagram(data)?;
        if let Some(expected) = self.expected_sequence {
            // A gap means datagrams were dropped between exporter and us.
            self.lost_flows += u64::from(dgram.header.flow_sequence.wrapping_sub(expected));
        }
        self.expected_sequence = Some(
            dgram
                .header
                .flow_sequence
                .wrapping_add(u32::from(dgram.header.count)),
        );
        self.flows.extend(dgram.flows);
        Ok(())
    }

    /// Flows collected so far.
    #[must_use]
    pub fn flows(&self) -> &[FlowRecord] {
        &self.flows
    }

    /// Flows lost to datagram drops, inferred from sequence gaps.
    #[must_use]
    pub fn lost_flows(&self) -> u64 {
        self.lost_flows
    }

    /// Consume the collector, returning the flows.
    #[must_use]
    pub fn into_flows(self) -> Vec<FlowRecord> {
        self.flows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_flow(i: u32) -> FlowRecord {
        FlowRecord::new(
            u64::from(i) * 10,
            Ipv4Addr::from(0x0a00_0001 + i),
            Ipv4Addr::from(0xc0a8_0001),
            (1024 + i) as u16,
            80,
            Protocol::Tcp,
        )
        .with_volume(i + 1, (i + 1) * 40)
        .with_end(u64::from(i) * 10 + 5)
        .with_flags(TcpFlags::syn_only())
    }

    #[test]
    fn round_trip_preserves_all_modeled_fields() {
        let flows: Vec<_> = (0..7).map(sample_flow).collect();
        let bytes = encode_datagram(&flows, 1234, 99_000).unwrap();
        assert_eq!(bytes.len(), V5_HEADER_LEN + 7 * V5_RECORD_LEN);
        let dgram = decode_datagram(&bytes).unwrap();
        assert_eq!(dgram.header.count, 7);
        assert_eq!(dgram.header.flow_sequence, 1234);
        assert_eq!(dgram.header.sys_uptime_ms, 99_000);
        assert_eq!(dgram.header.sampling, 0, "SWITCH traces are non-sampled");
        assert_eq!(dgram.flows, flows);
    }

    #[test]
    fn rejects_more_than_30_records() {
        let flows: Vec<_> = (0..31).map(sample_flow).collect();
        assert_eq!(
            encode_datagram(&flows, 0, 0).unwrap_err(),
            EncodeError::TooManyRecords(31)
        );
    }

    #[test]
    fn decode_rejects_short_header() {
        let err = decode_datagram(&[0u8; 10]).unwrap_err();
        assert_eq!(err, DecodeError::TruncatedHeader { have: 10, need: 24 });
    }

    #[test]
    fn decode_rejects_bad_version() {
        let flows = vec![sample_flow(0)];
        let mut bytes = encode_datagram(&flows, 0, 0).unwrap().to_vec();
        bytes[1] = 9; // version low byte
        assert_eq!(
            decode_datagram(&bytes).unwrap_err(),
            DecodeError::BadVersion(9)
        );
    }

    #[test]
    fn decode_rejects_truncated_records() {
        let flows = vec![sample_flow(0), sample_flow(1)];
        let bytes = encode_datagram(&flows, 0, 0).unwrap();
        let cut = &bytes[..V5_HEADER_LEN + V5_RECORD_LEN + 3];
        match decode_datagram(cut).unwrap_err() {
            DecodeError::TruncatedRecords { declared: 2, .. } => {}
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn decode_rejects_count_over_30() {
        let flows = vec![sample_flow(0)];
        let mut bytes = encode_datagram(&flows, 0, 0).unwrap().to_vec();
        bytes[2] = 0;
        bytes[3] = 31; // count
        assert_eq!(
            decode_datagram(&bytes).unwrap_err(),
            DecodeError::TooManyRecords(31)
        );
    }

    #[test]
    fn exporter_chunks_and_sequences() {
        let flows: Vec<_> = (0..65).map(sample_flow).collect();
        let mut exporter = V5Exporter::new();
        let dgrams = exporter.export(&flows);
        assert_eq!(dgrams.len(), 3); // 30 + 30 + 5
        assert_eq!(exporter.sequence(), 65);
        let d0 = decode_datagram(&dgrams[0]).unwrap();
        let d1 = decode_datagram(&dgrams[1]).unwrap();
        let d2 = decode_datagram(&dgrams[2]).unwrap();
        assert_eq!(d0.header.flow_sequence, 0);
        assert_eq!(d1.header.flow_sequence, 30);
        assert_eq!(d2.header.flow_sequence, 60);
        assert_eq!(d2.flows.len(), 5);
    }

    #[test]
    fn collector_reassembles_exporter_output() {
        let flows: Vec<_> = (0..65).map(sample_flow).collect();
        let mut exporter = V5Exporter::new();
        let mut collector = V5Collector::new();
        for dgram in exporter.export(&flows) {
            collector.ingest(&dgram).unwrap();
        }
        assert_eq!(collector.flows(), flows.as_slice());
        assert_eq!(collector.lost_flows(), 0);
    }

    #[test]
    fn collector_detects_sequence_gaps() {
        let flows: Vec<_> = (0..90).map(sample_flow).collect();
        let mut exporter = V5Exporter::new();
        let dgrams = exporter.export(&flows);
        let mut collector = V5Collector::new();
        collector.ingest(&dgrams[0]).unwrap();
        // dgrams[1] (30 flows) is lost in transit.
        collector.ingest(&dgrams[2]).unwrap();
        assert_eq!(collector.lost_flows(), 30);
        assert_eq!(collector.flows().len(), 60);
    }

    #[test]
    fn collector_state_unchanged_on_decode_error() {
        let mut collector = V5Collector::new();
        let flows = vec![sample_flow(0)];
        let good = encode_datagram(&flows, 0, 0).unwrap();
        collector.ingest(&good).unwrap();
        let before = collector.flows().len();
        assert!(collector.ingest(&good[..10]).is_err());
        assert_eq!(collector.flows().len(), before);
    }

    #[test]
    fn stream_decode_reassembles_concatenated_datagrams() {
        let flows: Vec<_> = (0..75).map(sample_flow).collect();
        let mut exporter = V5Exporter::new();
        let mut file = Vec::new();
        for d in exporter.export(&flows) {
            file.extend_from_slice(&d);
        }
        let dgrams = decode_stream(&file).unwrap();
        assert_eq!(dgrams.len(), 3);
        let decoded: Vec<FlowRecord> = dgrams.into_iter().flat_map(|d| d.flows).collect();
        assert_eq!(decoded, flows);
    }

    #[test]
    fn stream_decode_rejects_trailing_garbage() {
        let flows = vec![sample_flow(0)];
        let mut file = encode_datagram(&flows, 0, 0).unwrap().to_vec();
        file.extend_from_slice(&[1, 2, 3]);
        assert!(decode_stream(&file).is_err());
    }

    #[test]
    fn stream_decode_empty_input() {
        assert_eq!(decode_stream(&[]).unwrap().len(), 0);
    }

    #[test]
    fn empty_datagram_round_trips() {
        let bytes = encode_datagram(&[], 7, 0).unwrap();
        let dgram = decode_datagram(&bytes).unwrap();
        assert_eq!(dgram.header.count, 0);
        assert!(dgram.flows.is_empty());
    }

    #[test]
    fn columnar_decode_matches_decode_then_convert() {
        let flows: Vec<_> = (0..7).map(sample_flow).collect();
        let bytes = encode_datagram(&flows, 1234, 99_000).unwrap();
        let dgram = decode_datagram(&bytes).unwrap();
        let mut cols = FlowColumns::new();
        let header = decode_into_columns(&bytes, &mut cols).unwrap();
        assert_eq!(header, dgram.header);
        assert_eq!(cols.to_flows(), dgram.flows);
    }

    #[test]
    fn columnar_decode_appends_across_datagrams() {
        let flows: Vec<_> = (0..75).map(sample_flow).collect();
        let mut exporter = V5Exporter::new();
        let mut file = Vec::new();
        for d in exporter.export(&flows) {
            file.extend_from_slice(&d);
        }
        let mut cols = FlowColumns::new();
        let headers = decode_stream_into_columns(&file, &mut cols).unwrap();
        assert_eq!(headers.len(), 3);
        assert_eq!(headers[1].flow_sequence, 30);
        assert_eq!(cols.to_flows(), flows);
    }

    #[test]
    fn columnar_decode_errors_match_and_leave_columns_untouched() {
        let flows = vec![sample_flow(0), sample_flow(1)];
        let good = encode_datagram(&flows, 0, 0).unwrap();
        let mut cols = FlowColumns::new();
        decode_into_columns(&good, &mut cols).unwrap();
        let before = cols.clone();
        for bad in [
            &good[..10],                            // truncated header
            &good[..V5_HEADER_LEN + V5_RECORD_LEN], // truncated records
        ] {
            let record_err = decode_datagram(bad).unwrap_err();
            assert_eq!(decode_into_columns(bad, &mut cols).unwrap_err(), record_err);
            assert_eq!(cols, before, "columns unchanged on error");
        }
        let mut wrong_version = good.to_vec();
        wrong_version[1] = 9;
        assert_eq!(
            decode_into_columns(&wrong_version, &mut cols).unwrap_err(),
            DecodeError::BadVersion(9)
        );
        let mut over_count = good.to_vec();
        over_count[2] = 0;
        over_count[3] = 31;
        assert_eq!(
            decode_into_columns(&over_count, &mut cols).unwrap_err(),
            DecodeError::TooManyRecords(31)
        );
        assert_eq!(cols, before);
    }
}
