//! Struct-of-arrays flow storage: one contiguous column per feature.
//!
//! The extraction hot loops (histogram building, pre-filtering,
//! transaction construction) each touch one or two fields of every flow
//! in an interval. Stored as an array of [`FlowRecord`] structs, every
//! such scan strides over all ten fields and wastes cache bandwidth on
//! the eight it ignores. [`FlowColumns`] stores the same flows as ten
//! contiguous columns so a per-feature scan reads exactly the bytes it
//! needs, in order — the layout SIMD-friendly feature loops want.
//!
//! The columnar store is a drop-in sibling of `Vec<FlowRecord>`:
//!
//! - [`FlowColumns::from_flows`] converts a record batch;
//! - [`crate::v5::decode_into_columns`] parses NetFlow v5 datagrams
//!   straight into columns with no intermediate `FlowRecord`;
//! - [`FlowColumns::get`] / [`FlowColumns::iter`] reassemble records on
//!   demand (the compatibility shim for record-oriented consumers);
//! - [`FlowColumns::for_each_raw`] is the hot-path accessor: it matches
//!   the feature **once**, then runs a tight loop over the single column,
//!   yielding exactly the `u64` keys [`FlowFeature::value_of`] would
//!   produce — bit-identical by construction.
//!
//! Parallel walks over a column store reuse [`crate::shard::chunk_ranges`]
//! over row-index ranges, so sharded, streaming, and multi-source
//! execution all split the interval at identical boundaries.

use std::net::Ipv4Addr;
use std::ops::Range;

use crate::feature::FlowFeature;
use crate::flow::{FlowRecord, Protocol, TcpFlags};

/// Number of `u64` lanes in one kernel chunk — the fixed width the
/// batched hashing and membership kernels consume, and the chunk size
/// [`RawChunks`] yields. Eight lanes fill two 256-bit vector registers,
/// which is what both the autovectorized scalar loops and the explicit
/// AVX2 kernels want.
pub const LANES: usize = 8;

/// One column's storage, matched out of [`FlowColumns`] exactly once so
/// chunk loads run a tight widening copy with no per-value dispatch.
#[derive(Debug, Clone, Copy)]
enum ColSlice<'a> {
    U8(&'a [u8]),
    U16(&'a [u16]),
    U32(&'a [u32]),
    /// An IPv4 column read as its high 16 bits (`v >> 16`) — the
    /// /16-network features.
    Net16(&'a [u32]),
}

impl ColSlice<'_> {
    fn len(&self) -> usize {
        match *self {
            ColSlice::U8(s) => s.len(),
            ColSlice::U16(s) => s.len(),
            ColSlice::U32(s) | ColSlice::Net16(s) => s.len(),
        }
    }

    /// Widen values `[at, at + LANES)` into `lanes`.
    #[inline]
    fn widen(&self, at: usize, lanes: &mut [u64; LANES]) {
        match *self {
            ColSlice::U8(s) => widen_into(&s[at..at + LANES], lanes),
            ColSlice::U16(s) => widen_into(&s[at..at + LANES], lanes),
            ColSlice::U32(s) => widen_into(&s[at..at + LANES], lanes),
            ColSlice::Net16(s) => {
                for (dst, &v) in lanes.iter_mut().zip(&s[at..at + LANES]) {
                    *dst = u64::from(v >> 16);
                }
            }
        }
    }
}

#[inline]
fn widen_into<T: Copy + Into<u64>>(src: &[T], lanes: &mut [u64; LANES]) {
    for (dst, &v) in lanes.iter_mut().zip(src) {
        *dst = v.into();
    }
}

/// A single feature column over a row range, exposed as fixed-width
/// `[u64; LANES]` chunks plus a scalar tail — the lane-shaped view the
/// batched kernels read instead of the per-value
/// [`FlowColumns::for_each_raw`] closure.
///
/// The sequence `chunk 0 lanes, chunk 1 lanes, …, tail()` is exactly the
/// key sequence `for_each_raw` would yield over the same range, widened
/// identically for every column width (u8/u16/u32/u64 and the `>> 16`
/// network prefixes).
#[derive(Debug, Clone, Copy)]
pub struct RawChunks<'a> {
    col: ColSlice<'a>,
    /// The trailing `len % LANES` keys, widened eagerly at construction
    /// (at most `LANES - 1` values).
    tail: [u64; LANES],
    tail_len: usize,
}

impl RawChunks<'_> {
    /// Total number of rows covered (full chunks plus tail).
    #[must_use]
    pub fn len(&self) -> usize {
        self.col.len()
    }

    /// Whether the range covers no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.col.len() == 0
    }

    /// Number of full `LANES`-wide chunks.
    #[must_use]
    pub fn full_chunks(&self) -> usize {
        self.col.len() / LANES
    }

    /// Widen chunk `chunk` (rows `chunk * LANES ..`) into `lanes`.
    ///
    /// # Panics
    ///
    /// Panics if `chunk >= self.full_chunks()`.
    #[inline]
    pub fn load(&self, chunk: usize, lanes: &mut [u64; LANES]) {
        self.col.widen(chunk * LANES, lanes);
    }

    /// The trailing `len() % LANES` keys after the last full chunk.
    #[must_use]
    pub fn tail(&self) -> &[u64] {
        &self.tail[..self.tail_len]
    }
}

/// A batch of flows stored column-major: one contiguous `Vec` per field.
///
/// All columns always have identical length ([`FlowColumns::len`]); row
/// `i` across the ten columns is exactly the [`FlowRecord`] returned by
/// [`FlowColumns::get`]. The protocol column stores the IANA protocol
/// number ([`Protocol::number`]), which round-trips losslessly through
/// [`Protocol::from_number`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlowColumns {
    pub(crate) start_ms: Vec<u64>,
    pub(crate) end_ms: Vec<u64>,
    pub(crate) src_ip: Vec<u32>,
    pub(crate) dst_ip: Vec<u32>,
    pub(crate) src_port: Vec<u16>,
    pub(crate) dst_port: Vec<u16>,
    pub(crate) proto: Vec<u8>,
    pub(crate) packets: Vec<u32>,
    pub(crate) bytes: Vec<u32>,
    pub(crate) tcp_flags: Vec<u8>,
}

impl FlowColumns {
    /// An empty column store.
    #[must_use]
    pub fn new() -> Self {
        FlowColumns::default()
    }

    /// An empty column store with every column pre-allocated for
    /// `capacity` rows.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        FlowColumns {
            start_ms: Vec::with_capacity(capacity),
            end_ms: Vec::with_capacity(capacity),
            src_ip: Vec::with_capacity(capacity),
            dst_ip: Vec::with_capacity(capacity),
            src_port: Vec::with_capacity(capacity),
            dst_port: Vec::with_capacity(capacity),
            proto: Vec::with_capacity(capacity),
            packets: Vec::with_capacity(capacity),
            bytes: Vec::with_capacity(capacity),
            tcp_flags: Vec::with_capacity(capacity),
        }
    }

    /// Convert a record batch to columns.
    #[must_use]
    pub fn from_flows(flows: &[FlowRecord]) -> Self {
        let mut cols = FlowColumns::with_capacity(flows.len());
        for flow in flows {
            cols.push(flow);
        }
        cols
    }

    /// Append one flow as a new row across every column.
    pub fn push(&mut self, flow: &FlowRecord) {
        self.start_ms.push(flow.start_ms);
        self.end_ms.push(flow.end_ms);
        self.src_ip.push(u32::from(flow.src_ip));
        self.dst_ip.push(u32::from(flow.dst_ip));
        self.src_port.push(flow.src_port);
        self.dst_port.push(flow.dst_port);
        self.proto.push(flow.proto.number());
        self.packets.push(flow.packets);
        self.bytes.push(flow.bytes);
        self.tcp_flags.push(flow.tcp_flags.0);
    }

    /// Append every row of `other`, in order.
    pub fn extend_from(&mut self, other: &FlowColumns) {
        self.start_ms.extend_from_slice(&other.start_ms);
        self.end_ms.extend_from_slice(&other.end_ms);
        self.src_ip.extend_from_slice(&other.src_ip);
        self.dst_ip.extend_from_slice(&other.dst_ip);
        self.src_port.extend_from_slice(&other.src_port);
        self.dst_port.extend_from_slice(&other.dst_port);
        self.proto.extend_from_slice(&other.proto);
        self.packets.extend_from_slice(&other.packets);
        self.bytes.extend_from_slice(&other.bytes);
        self.tcp_flags.extend_from_slice(&other.tcp_flags);
    }

    /// Number of rows (flows) stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.start_ms.len()
    }

    /// Whether the store holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start_ms.is_empty()
    }

    /// Drop all rows, keeping every column's allocation for reuse (the
    /// recycled-scratch pattern of the streaming engine).
    pub fn clear(&mut self) {
        self.start_ms.clear();
        self.end_ms.clear();
        self.src_ip.clear();
        self.dst_ip.clear();
        self.src_port.clear();
        self.dst_port.clear();
        self.proto.clear();
        self.packets.clear();
        self.bytes.clear();
        self.tcp_flags.clear();
    }

    /// Reassemble row `i` as a [`FlowRecord`] — the compatibility shim
    /// for record-oriented consumers.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn get(&self, i: usize) -> FlowRecord {
        FlowRecord {
            start_ms: self.start_ms[i],
            end_ms: self.end_ms[i],
            src_ip: Ipv4Addr::from(self.src_ip[i]),
            dst_ip: Ipv4Addr::from(self.dst_ip[i]),
            src_port: self.src_port[i],
            dst_port: self.dst_port[i],
            proto: Protocol::from_number(self.proto[i]),
            packets: self.packets[i],
            bytes: self.bytes[i],
            tcp_flags: TcpFlags(self.tcp_flags[i]),
        }
    }

    /// Iterate the rows as reassembled [`FlowRecord`]s, in order.
    pub fn iter(&self) -> impl Iterator<Item = FlowRecord> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Reassemble every row into a fresh `Vec<FlowRecord>`.
    #[must_use]
    pub fn to_flows(&self) -> Vec<FlowRecord> {
        self.iter().collect()
    }

    /// `feature`'s uniform `u64` key at row `i` — exactly
    /// `feature.value_of(&self.get(i)).raw`, without reassembling the
    /// record.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn raw_at(&self, feature: FlowFeature, i: usize) -> u64 {
        match feature {
            FlowFeature::SrcIp => u64::from(self.src_ip[i]),
            FlowFeature::DstIp => u64::from(self.dst_ip[i]),
            FlowFeature::SrcPort => u64::from(self.src_port[i]),
            FlowFeature::DstPort => u64::from(self.dst_port[i]),
            FlowFeature::Proto => u64::from(self.proto[i]),
            FlowFeature::Packets => u64::from(self.packets[i]),
            FlowFeature::Bytes => u64::from(self.bytes[i]),
            FlowFeature::SrcNet16 => u64::from(self.src_ip[i] >> 16),
            FlowFeature::DstNet16 => u64::from(self.dst_ip[i] >> 16),
        }
    }

    /// The hot-path single-column scan: call `f` with `feature`'s uniform
    /// `u64` key for every row in `range`, in row order.
    ///
    /// The feature is matched **once**; the loop body reads one
    /// contiguous column. The keys are bit-identical to
    /// [`FlowFeature::value_of`] over the reassembled records.
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds.
    pub fn for_each_raw<F: FnMut(u64)>(&self, feature: FlowFeature, range: Range<usize>, mut f: F) {
        match feature {
            FlowFeature::SrcIp => self.src_ip[range].iter().for_each(|&v| f(u64::from(v))),
            FlowFeature::DstIp => self.dst_ip[range].iter().for_each(|&v| f(u64::from(v))),
            FlowFeature::SrcPort => self.src_port[range].iter().for_each(|&v| f(u64::from(v))),
            FlowFeature::DstPort => self.dst_port[range].iter().for_each(|&v| f(u64::from(v))),
            FlowFeature::Proto => self.proto[range].iter().for_each(|&v| f(u64::from(v))),
            FlowFeature::Packets => self.packets[range].iter().for_each(|&v| f(u64::from(v))),
            FlowFeature::Bytes => self.bytes[range].iter().for_each(|&v| f(u64::from(v))),
            FlowFeature::SrcNet16 => self.src_ip[range]
                .iter()
                .for_each(|&v| f(u64::from(v >> 16))),
            FlowFeature::DstNet16 => self.dst_ip[range]
                .iter()
                .for_each(|&v| f(u64::from(v >> 16))),
        }
    }

    /// `feature`'s uniform `u64` keys over `range` as a lane-chunked
    /// view: [`RawChunks::full_chunks`] fixed-width `[u64; LANES]`
    /// chunks loaded via [`RawChunks::load`], then a scalar
    /// [`RawChunks::tail`]. The concatenated sequence is bit-identical
    /// to [`for_each_raw`](Self::for_each_raw) over the same range —
    /// this is the accessor the batched kernels consume.
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds.
    #[must_use]
    pub fn raw_chunks(&self, feature: FlowFeature, range: Range<usize>) -> RawChunks<'_> {
        let col = match feature {
            FlowFeature::SrcIp => ColSlice::U32(&self.src_ip[range]),
            FlowFeature::DstIp => ColSlice::U32(&self.dst_ip[range]),
            FlowFeature::SrcPort => ColSlice::U16(&self.src_port[range]),
            FlowFeature::DstPort => ColSlice::U16(&self.dst_port[range]),
            FlowFeature::Proto => ColSlice::U8(&self.proto[range]),
            FlowFeature::Packets => ColSlice::U32(&self.packets[range]),
            FlowFeature::Bytes => ColSlice::U32(&self.bytes[range]),
            FlowFeature::SrcNet16 => ColSlice::Net16(&self.src_ip[range]),
            FlowFeature::DstNet16 => ColSlice::Net16(&self.dst_ip[range]),
        };
        let mut tail = [0u64; LANES];
        let tail_len = col.len() % LANES;
        let tail_start = col.len() - tail_len;
        match col {
            ColSlice::U8(s) => widen_into(&s[tail_start..], &mut tail),
            ColSlice::U16(s) => widen_into(&s[tail_start..], &mut tail),
            ColSlice::U32(s) => widen_into(&s[tail_start..], &mut tail),
            ColSlice::Net16(s) => {
                for (dst, &v) in tail.iter_mut().zip(&s[tail_start..]) {
                    *dst = u64::from(v >> 16);
                }
            }
        }
        RawChunks {
            col,
            tail,
            tail_len,
        }
    }

    /// Heap bytes held by the column allocations.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.start_ms.capacity() * 8
            + self.end_ms.capacity() * 8
            + self.src_ip.capacity() * 4
            + self.dst_ip.capacity() * 4
            + self.src_port.capacity() * 2
            + self.dst_port.capacity() * 2
            + self.proto.capacity()
            + self.packets.capacity() * 4
            + self.bytes.capacity() * 4
            + self.tcp_flags.capacity()
    }
}

impl From<&[FlowRecord]> for FlowColumns {
    fn from(flows: &[FlowRecord]) -> Self {
        FlowColumns::from_flows(flows)
    }
}

impl FromIterator<FlowRecord> for FlowColumns {
    fn from_iter<I: IntoIterator<Item = FlowRecord>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let mut cols = FlowColumns::with_capacity(iter.size_hint().0);
        for flow in iter {
            cols.push(&flow);
        }
        cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_flows() -> Vec<FlowRecord> {
        (0..100u32)
            .map(|i| {
                FlowRecord::new(
                    u64::from(i) * 10,
                    Ipv4Addr::from(0x0a00_0000 + i),
                    Ipv4Addr::from(0xc0a8_0000 + i * 7),
                    (1024 + i) as u16,
                    (80 + i % 3) as u16,
                    Protocol::from_number((i % 200) as u8),
                )
                .with_volume(i + 1, (i + 1) * 40)
                .with_end(u64::from(i) * 10 + 5)
                .with_flags(TcpFlags((i % 64) as u8))
            })
            .collect()
    }

    #[test]
    fn round_trip_preserves_every_record() {
        let flows = sample_flows();
        let cols = FlowColumns::from_flows(&flows);
        assert_eq!(cols.len(), flows.len());
        assert!(!cols.is_empty());
        for (i, flow) in flows.iter().enumerate() {
            assert_eq!(cols.get(i), *flow, "row {i}");
        }
        assert_eq!(cols.to_flows(), flows);
        let collected: Vec<FlowRecord> = cols.iter().collect();
        assert_eq!(collected, flows);
    }

    #[test]
    fn raw_keys_match_value_of_for_every_feature() {
        let flows = sample_flows();
        let cols = FlowColumns::from_flows(&flows);
        for feature in FlowFeature::EXTENDED {
            for (i, flow) in flows.iter().enumerate() {
                assert_eq!(
                    cols.raw_at(feature, i),
                    feature.value_of(flow).raw,
                    "{feature} row {i}"
                );
            }
            let mut scanned = Vec::new();
            cols.for_each_raw(feature, 0..cols.len(), |v| scanned.push(v));
            let expected: Vec<u64> = flows.iter().map(|f| feature.value_of(f).raw).collect();
            assert_eq!(scanned, expected, "{feature} column scan");
        }
    }

    #[test]
    fn for_each_raw_respects_subranges() {
        let flows = sample_flows();
        let cols = FlowColumns::from_flows(&flows);
        let mut scanned = Vec::new();
        cols.for_each_raw(FlowFeature::DstPort, 10..20, |v| scanned.push(v));
        let expected: Vec<u64> = flows[10..20]
            .iter()
            .map(|f| FlowFeature::DstPort.value_of(f).raw)
            .collect();
        assert_eq!(scanned, expected);
    }

    #[test]
    fn clear_keeps_capacity_and_extend_concatenates() {
        let flows = sample_flows();
        let mut cols = FlowColumns::from_flows(&flows);
        let cap = cols.memory_bytes();
        cols.clear();
        assert!(cols.is_empty());
        assert_eq!(cols.memory_bytes(), cap, "clear keeps allocations");
        let a = FlowColumns::from_flows(&flows[..40]);
        let b = FlowColumns::from_flows(&flows[40..]);
        cols.extend_from(&a);
        cols.extend_from(&b);
        assert_eq!(cols.to_flows(), flows);
    }

    #[test]
    fn raw_chunks_pin_against_for_each_raw_for_every_feature() {
        let flows = sample_flows();
        let cols = FlowColumns::from_flows(&flows);
        // Range lengths covering: empty, shorter than one chunk, exactly
        // chunk-aligned, and a len % LANES != 0 tail.
        let ranges = [
            0..0,
            3..3,
            10..13,
            0..LANES,
            0..2 * LANES,
            5..5 + LANES,
            7..100,
            0..97,
        ];
        for feature in FlowFeature::EXTENDED {
            for range in &ranges {
                let mut expected = Vec::new();
                cols.for_each_raw(feature, range.clone(), |v| expected.push(v));
                let chunks = cols.raw_chunks(feature, range.clone());
                assert_eq!(chunks.len(), range.len(), "{feature} {range:?}");
                assert_eq!(chunks.is_empty(), range.is_empty());
                let mut got = Vec::new();
                let mut lanes = [0u64; LANES];
                for c in 0..chunks.full_chunks() {
                    chunks.load(c, &mut lanes);
                    got.extend_from_slice(&lanes);
                }
                got.extend_from_slice(chunks.tail());
                assert_eq!(got, expected, "{feature} {range:?}");
                assert_eq!(chunks.tail().len(), range.len() % LANES);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn raw_chunks_load_past_full_chunks_panics() {
        let cols = FlowColumns::from_flows(&sample_flows());
        let chunks = cols.raw_chunks(FlowFeature::DstPort, 0..10);
        let mut lanes = [0u64; LANES];
        chunks.load(1, &mut lanes); // only one full chunk in 10 rows
    }

    #[test]
    fn from_iterator_matches_from_flows() {
        let flows = sample_flows();
        let a: FlowColumns = flows.iter().copied().collect();
        assert_eq!(a, FlowColumns::from_flows(&flows));
        assert_eq!(FlowColumns::from(&flows[..]), a);
    }
}
