//! Streaming interval assembly for online operation.
//!
//! In the paper's *online* mode, the detector consumes flows as the router
//! exports them and closes a measurement interval every Δ minutes.
//! [`IntervalAssembler`] implements exactly that: feed it flows in rough
//! arrival order and it emits a [`ClosedInterval`] each time a flow arrives
//! past the current window's end (plus a final flush).
//!
//! The assembler tolerates the mild reordering NetFlow collectors see
//! (export batching): flows belonging to an *already-closed* window are
//! counted as [`late_flows`](IntervalAssembler::late_flows) and dropped,
//! mirroring collector practice. Flows dated *before the stream origin*
//! are likewise dropped but tracked separately
//! ([`pre_origin_flows`](IntervalAssembler::pre_origin_flows)), so an
//! operator can tell a mis-set origin (everything pre-origin) from
//! ordinary export reordering (a trickle of late flows).

use std::fmt;

use crate::flow::FlowRecord;
use crate::snapshot::{RestoreError, SnapshotReader, SnapshotWriter};

/// An invalid streaming configuration — the assembler's analogue of the
/// pipeline's `ConfigError`: a human-readable description of the violated
/// constraint, returned by [`IntervalAssembler::try_new`] so callers get
/// a `Result` instead of a panic path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamConfigError(String);

impl StreamConfigError {
    /// Wrap a constraint-violation description.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        StreamConfigError(message.into())
    }
}

impl fmt::Display for StreamConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for StreamConfigError {}

impl From<StreamConfigError> for String {
    fn from(e: StreamConfigError) -> Self {
        e.0
    }
}

/// An interval that has been closed by the assembler, with owned flows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClosedInterval {
    /// Zero-based index since the stream origin.
    pub index: u64,
    /// Inclusive window start, ms.
    pub begin_ms: u64,
    /// Exclusive window end, ms.
    pub end_ms: u64,
    /// Flows that started within the window, in arrival order.
    pub flows: Vec<FlowRecord>,
}

/// Streaming assembler turning a flow stream into closed intervals.
#[derive(Debug)]
pub struct IntervalAssembler {
    origin_ms: u64,
    interval_ms: u64,
    current_index: u64,
    current: Vec<FlowRecord>,
    late_flows: u64,
    pre_origin_flows: u64,
    started: bool,
}

impl IntervalAssembler {
    /// New assembler with windows `[origin + i*Δ, origin + (i+1)*Δ)`,
    /// rejecting an invalid configuration with an error.
    ///
    /// # Errors
    ///
    /// Returns a [`StreamConfigError`] if `interval_ms` is zero.
    pub fn try_new(origin_ms: u64, interval_ms: u64) -> Result<Self, StreamConfigError> {
        if interval_ms == 0 {
            return Err(StreamConfigError::new("interval length must be positive"));
        }
        Ok(IntervalAssembler {
            origin_ms,
            interval_ms,
            current_index: 0,
            current: Vec::new(),
            late_flows: 0,
            pre_origin_flows: 0,
            started: false,
        })
    }

    /// New assembler with windows `[origin + i*Δ, origin + (i+1)*Δ)`.
    ///
    /// A thin wrapper over [`try_new`](Self::try_new) for callers who
    /// treat a bad interval length as a programming error.
    ///
    /// # Panics
    ///
    /// Panics if `interval_ms` is zero.
    #[must_use]
    pub fn new(origin_ms: u64, interval_ms: u64) -> Self {
        Self::try_new(origin_ms, interval_ms)
            .unwrap_or_else(|e| panic!("invalid assembler configuration: {e}"))
    }

    /// Index of the window a start time falls into.
    fn window_of(&self, start_ms: u64) -> Option<u64> {
        start_ms
            .checked_sub(self.origin_ms)
            .map(|off| off / self.interval_ms)
    }

    /// Feed one flow; returns every interval this flow's arrival closes
    /// (possibly several, when the stream skips empty windows — empties are
    /// emitted too, so the downstream KL time series stays aligned).
    pub fn push(&mut self, flow: FlowRecord) -> Vec<ClosedInterval> {
        let Some(window) = self.window_of(flow.start_ms) else {
            // Dated before the stream origin: dropped, but counted
            // apart from ordinary late flows so the two failure modes
            // stay distinguishable.
            self.pre_origin_flows += 1;
            return Vec::new();
        };
        if !self.started {
            self.started = true;
            self.current_index = window;
            // Emit empty windows from the origin up to the first flow so
            // interval indices always start at zero.
            let mut closed = Vec::new();
            for idx in 0..window {
                closed.push(self.make_closed(idx, Vec::new()));
            }
            self.current.push(flow);
            return closed;
        }
        if window < self.current_index {
            self.late_flows += 1;
            return Vec::new();
        }
        let mut closed = Vec::new();
        while window > self.current_index {
            let flows = std::mem::take(&mut self.current);
            closed.push(self.make_closed(self.current_index, flows));
            self.current_index += 1;
        }
        self.current.push(flow);
        closed
    }

    /// Advance the assembler's clock to `now_ms` without a flow: every
    /// window that ends at or before `now_ms`'s window closes (and is
    /// emitted, empties included, exactly as a flow dated `now_ms` would
    /// close them). The punctuation primitive behind event-time
    /// heartbeats — a collector that has seen the exporter's clock reach
    /// `now_ms` knows no flow for an earlier window can still arrive.
    ///
    /// A heartbeat dated before the origin (or inside an already-closed
    /// window) is a no-op: heartbeats carry no data, so nothing is
    /// counted as late or dropped.
    pub fn advance_to(&mut self, now_ms: u64) -> Vec<ClosedInterval> {
        let Some(window) = self.window_of(now_ms) else {
            return Vec::new();
        };
        if !self.started {
            self.started = true;
            self.current_index = 0;
        }
        let mut closed = Vec::new();
        while self.current_index < window {
            let flows = std::mem::take(&mut self.current);
            closed.push(self.make_closed(self.current_index, flows));
            self.current_index += 1;
        }
        closed
    }

    /// Close and emit the in-progress interval (end of stream).
    pub fn flush(&mut self) -> Option<ClosedInterval> {
        if !self.started {
            return None;
        }
        let flows = std::mem::take(&mut self.current);
        let iv = self.make_closed(self.current_index, flows);
        self.current_index += 1;
        Some(iv)
    }

    /// The window length Δ in milliseconds.
    #[must_use]
    pub fn interval_ms(&self) -> u64 {
        self.interval_ms
    }

    /// Flows dropped because they arrived after their window closed.
    #[must_use]
    pub fn late_flows(&self) -> u64 {
        self.late_flows
    }

    /// Flows dropped because they were dated before the stream origin.
    #[must_use]
    pub fn pre_origin_flows(&self) -> u64 {
        self.pre_origin_flows
    }

    /// Every flow the assembler has dropped, for any reason — late plus
    /// pre-origin. A healthy collector keeps this near zero; a growing
    /// count means the origin is wrong or the exporter reorders heavily.
    #[must_use]
    pub fn dropped_flows(&self) -> u64 {
        self.late_flows + self.pre_origin_flows
    }

    /// Serialize the assembler's complete mutable state — origin, window
    /// index, the in-progress window's flows, drop counters, and the
    /// started flag — into a snapshot payload.
    /// [`decode_snapshot`](Self::decode_snapshot) rebuilds an assembler
    /// that continues the stream exactly where this one stood.
    pub fn encode_snapshot(&self, w: &mut SnapshotWriter) {
        w.u64(self.origin_ms);
        w.u64(self.interval_ms);
        w.u64(self.current_index);
        w.flows(&self.current);
        w.u64(self.late_flows);
        w.u64(self.pre_origin_flows);
        w.bool(self.started);
    }

    /// Rebuild an assembler from a snapshot written by
    /// [`encode_snapshot`](Self::encode_snapshot).
    ///
    /// # Errors
    ///
    /// [`RestoreError::Truncated`] on a short payload and
    /// [`RestoreError::Corrupt`] when the recorded configuration is
    /// impossible (zero interval length).
    pub fn decode_snapshot(r: &mut SnapshotReader<'_>) -> Result<Self, RestoreError> {
        let origin_ms = r.u64()?;
        let interval_ms = r.u64()?;
        if interval_ms == 0 {
            return Err(RestoreError::Corrupt("zero interval length".into()));
        }
        let current_index = r.u64()?;
        let current = r.flows()?;
        let late_flows = r.u64()?;
        let pre_origin_flows = r.u64()?;
        let started = r.bool()?;
        Ok(IntervalAssembler {
            origin_ms,
            interval_ms,
            current_index,
            current,
            late_flows,
            pre_origin_flows,
            started,
        })
    }

    fn make_closed(&self, index: u64, flows: Vec<FlowRecord>) -> ClosedInterval {
        let begin = self.origin_ms + index * self.interval_ms;
        ClosedInterval {
            index,
            begin_ms: begin,
            end_ms: begin + self.interval_ms,
            flows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::Protocol;
    use std::net::Ipv4Addr;

    fn flow_at(ms: u64) -> FlowRecord {
        FlowRecord::new(
            ms,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1,
            2,
            Protocol::Udp,
        )
    }

    #[test]
    fn closes_interval_when_next_window_starts() {
        let mut asm = IntervalAssembler::new(0, 1000);
        assert!(asm.push(flow_at(10)).is_empty());
        assert!(asm.push(flow_at(900)).is_empty());
        let closed = asm.push(flow_at(1000));
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].index, 0);
        assert_eq!(closed[0].flows.len(), 2);
        let last = asm.flush().unwrap();
        assert_eq!(last.index, 1);
        assert_eq!(last.flows.len(), 1);
    }

    #[test]
    fn emits_empty_windows_for_gaps() {
        let mut asm = IntervalAssembler::new(0, 1000);
        assert!(asm.push(flow_at(100)).is_empty());
        let closed = asm.push(flow_at(3500));
        assert_eq!(closed.len(), 3); // windows 0,1,2 close
        assert_eq!(closed[0].flows.len(), 1);
        assert!(closed[1].flows.is_empty());
        assert!(closed[2].flows.is_empty());
    }

    #[test]
    fn leading_gap_emits_empty_windows_from_origin() {
        let mut asm = IntervalAssembler::new(0, 1000);
        let closed = asm.push(flow_at(2500));
        assert_eq!(closed.len(), 2);
        assert!(closed.iter().all(|c| c.flows.is_empty()));
        assert_eq!(asm.flush().unwrap().index, 2);
    }

    #[test]
    fn late_flows_are_counted_and_dropped() {
        let mut asm = IntervalAssembler::new(0, 1000);
        asm.push(flow_at(1500));
        let closed = asm.push(flow_at(500)); // window 0 already closed
        assert!(closed.is_empty());
        assert_eq!(asm.late_flows(), 1);
        assert_eq!(asm.pre_origin_flows(), 0);
        assert_eq!(asm.dropped_flows(), 1);
        assert_eq!(asm.flush().unwrap().flows.len(), 1);
    }

    #[test]
    fn flows_before_origin_are_counted_separately() {
        let mut asm = IntervalAssembler::new(10_000, 1000);
        assert!(asm.push(flow_at(500)).is_empty());
        assert_eq!(asm.pre_origin_flows(), 1);
        assert_eq!(asm.late_flows(), 0, "pre-origin is not export lateness");
        assert_eq!(asm.dropped_flows(), 1);
        assert!(asm.flush().is_none(), "never started");
    }

    #[test]
    fn zero_interval_is_an_error_not_a_panic() {
        let err = IntervalAssembler::try_new(0, 0).unwrap_err();
        assert!(err.to_string().contains("positive"), "{err}");
        assert!(IntervalAssembler::try_new(0, 1000).is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid assembler configuration")]
    fn zero_interval_panics_through_new() {
        let _ = IntervalAssembler::new(0, 0);
    }

    #[test]
    fn flush_on_empty_assembler_is_none() {
        let mut asm = IntervalAssembler::new(0, 1000);
        assert!(asm.flush().is_none());
    }

    #[test]
    fn advance_to_closes_like_a_flow_would_without_adding_one() {
        let mut asm = IntervalAssembler::new(0, 1000);
        asm.push(flow_at(100));
        let closed = asm.advance_to(3500);
        let shapes: Vec<(u64, usize)> = closed.iter().map(|c| (c.index, c.flows.len())).collect();
        assert_eq!(shapes, vec![(0, 1), (1, 0), (2, 0)]);
        assert_eq!(asm.dropped_flows(), 0, "heartbeats drop nothing");
        // The in-progress window (3) is untouched and still accepts flows.
        asm.push(flow_at(3600));
        assert_eq!(asm.flush().unwrap().flows.len(), 1);
    }

    #[test]
    fn advance_to_starts_an_idle_stream_from_the_origin() {
        let mut asm = IntervalAssembler::new(0, 1000);
        let closed = asm.advance_to(2500);
        let indices: Vec<u64> = closed.iter().map(|c| c.index).collect();
        assert_eq!(indices, vec![0, 1]);
        assert!(closed.iter().all(|c| c.flows.is_empty()));
    }

    #[test]
    fn stale_and_pre_origin_heartbeats_are_no_ops() {
        let mut asm = IntervalAssembler::new(10_000, 1000);
        assert!(asm.advance_to(500).is_empty(), "pre-origin heartbeat");
        assert_eq!(asm.pre_origin_flows(), 0, "not counted as a drop");
        asm.push(flow_at(12_500));
        assert!(asm.advance_to(11_000).is_empty(), "stale heartbeat");
        assert!(asm.advance_to(12_700).is_empty(), "same-window heartbeat");
        assert_eq!(asm.flush().unwrap().flows.len(), 1);
    }

    #[test]
    fn snapshot_round_trip_resumes_identically() {
        let mut asm = IntervalAssembler::new(0, 1000);
        asm.push(flow_at(100));
        asm.push(flow_at(1500));
        asm.push(flow_at(200)); // late
        let mut w = SnapshotWriter::new();
        asm.encode_snapshot(&mut w);
        let buf = w.into_bytes();
        let mut r = SnapshotReader::new(&buf);
        let mut restored = IntervalAssembler::decode_snapshot(&mut r).unwrap();
        r.finish().unwrap();
        // Both continue the stream identically.
        let tail = [2500u64, 2600, 7000];
        let mut a_out = Vec::new();
        let mut b_out = Vec::new();
        for &ms in &tail {
            a_out.extend(asm.push(flow_at(ms)));
            b_out.extend(restored.push(flow_at(ms)));
        }
        a_out.extend(asm.flush());
        b_out.extend(restored.flush());
        assert_eq!(a_out, b_out);
        assert_eq!(asm.late_flows(), restored.late_flows());
        assert_eq!(asm.pre_origin_flows(), restored.pre_origin_flows());
    }

    #[test]
    fn snapshot_rejects_zero_interval() {
        let mut w = SnapshotWriter::new();
        w.u64(0); // origin
        w.u64(0); // interval — impossible
        let buf = w.into_bytes();
        let mut r = SnapshotReader::new(&buf);
        assert!(IntervalAssembler::decode_snapshot(&mut r).is_err());
    }

    #[test]
    fn streaming_matches_batch_slicing() {
        use crate::trace::FlowTrace;
        let starts = [10u64, 999, 1000, 1001, 2500, 2600, 7000];
        let flows: Vec<_> = starts.iter().map(|&s| flow_at(s)).collect();

        let mut trace = FlowTrace::from_flows(flows.clone());
        let batch: Vec<(u64, usize)> = trace
            .intervals(0, 1000)
            .iter()
            .map(|iv| (iv.index, iv.len()))
            .collect();

        let mut asm = IntervalAssembler::new(0, 1000);
        let mut streamed: Vec<(u64, usize)> = Vec::new();
        for f in flows {
            for c in asm.push(f) {
                streamed.push((c.index, c.flows.len()));
            }
        }
        if let Some(c) = asm.flush() {
            streamed.push((c.index, c.flows.len()));
        }
        assert_eq!(streamed, batch);
    }
}
