//! Traffic features: the dimensions along which flows are histogrammed,
//! voted on, pre-filtered, and mined.
//!
//! The paper uses **five** features for detection (source/destination IP,
//! source/destination port, packets per flow) and **seven** for item-set
//! mining (those five plus protocol and bytes); the §III-D multilevel
//! extension adds two /16 **prefix** features. [`FlowFeature`] enumerates
//! all nine; detection code defaults to
//! [`FlowFeature::DETECTION_FEATURES`], mining to [`FlowFeature::ALL`]
//! (canonical) or [`FlowFeature::EXTENDED`] (with prefixes).
//!
//! A feature *value* is represented uniformly as a `u64` key
//! ([`FeatureValue`]) so that histogramming, voting, and item encoding
//! can be generic over features. The mapping is invertible per feature.

use std::fmt;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use crate::flow::FlowRecord;

/// One of the per-flow traffic features.
///
/// The first seven are the paper's canonical transaction width; the two
/// `*Net16` prefix features are the paper's §III-D extension ("anomalies
/// that affect certain network ranges … can be captured by using IP
/// address prefixes as additional dimensions for item-set mining").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FlowFeature {
    /// Source IPv4 address.
    SrcIp,
    /// Destination IPv4 address.
    DstIp,
    /// Source transport port.
    SrcPort,
    /// Destination transport port.
    DstPort,
    /// IP protocol number.
    Proto,
    /// Number of packets in the flow.
    Packets,
    /// Number of bytes in the flow.
    Bytes,
    /// Source /16 network prefix (multilevel mining dimension).
    SrcNet16,
    /// Destination /16 network prefix (multilevel mining dimension).
    DstNet16,
}

impl FlowFeature {
    /// All seven features, in the canonical (paper) order:
    /// srcIP, dstIP, srcPort, dstPort, protocol, #packets, #bytes.
    pub const ALL: [FlowFeature; 7] = [
        FlowFeature::SrcIp,
        FlowFeature::DstIp,
        FlowFeature::SrcPort,
        FlowFeature::DstPort,
        FlowFeature::Proto,
        FlowFeature::Packets,
        FlowFeature::Bytes,
    ];

    /// All features including the /16 prefix dimensions, in index order —
    /// the width-9 *extended* transaction of the §III-D multilevel mining
    /// mode.
    pub const EXTENDED: [FlowFeature; 9] = [
        FlowFeature::SrcIp,
        FlowFeature::DstIp,
        FlowFeature::SrcPort,
        FlowFeature::DstPort,
        FlowFeature::Proto,
        FlowFeature::Packets,
        FlowFeature::Bytes,
        FlowFeature::SrcNet16,
        FlowFeature::DstNet16,
    ];

    /// The five features monitored by histogram detectors in the paper's
    /// evaluation (§II-E, "Number of Detectors m"): source and destination
    /// IP address, source and destination port, and packets per flow.
    pub const DETECTION_FEATURES: [FlowFeature; 5] = [
        FlowFeature::SrcIp,
        FlowFeature::DstIp,
        FlowFeature::SrcPort,
        FlowFeature::DstPort,
        FlowFeature::Packets,
    ];

    /// Stable small integer index (0..9) in [`FlowFeature::EXTENDED`]
    /// order. Used for compact item encoding in the mining crate.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            FlowFeature::SrcIp => 0,
            FlowFeature::DstIp => 1,
            FlowFeature::SrcPort => 2,
            FlowFeature::DstPort => 3,
            FlowFeature::Proto => 4,
            FlowFeature::Packets => 5,
            FlowFeature::Bytes => 6,
            FlowFeature::SrcNet16 => 7,
            FlowFeature::DstNet16 => 8,
        }
    }

    /// Inverse of [`FlowFeature::index`]. Panics on `i >= 9`.
    #[must_use]
    pub fn from_index(i: usize) -> Self {
        FlowFeature::EXTENDED[i]
    }

    /// Extract this feature's value from a flow as a uniform `u64` key.
    #[must_use]
    pub fn value_of(self, flow: &FlowRecord) -> FeatureValue {
        let raw = match self {
            FlowFeature::SrcIp => u64::from(u32::from(flow.src_ip)),
            FlowFeature::DstIp => u64::from(u32::from(flow.dst_ip)),
            FlowFeature::SrcPort => u64::from(flow.src_port),
            FlowFeature::DstPort => u64::from(flow.dst_port),
            FlowFeature::Proto => u64::from(flow.proto.number()),
            FlowFeature::Packets => u64::from(flow.packets),
            FlowFeature::Bytes => u64::from(flow.bytes),
            FlowFeature::SrcNet16 => u64::from(u32::from(flow.src_ip) >> 16),
            FlowFeature::DstNet16 => u64::from(u32::from(flow.dst_ip) >> 16),
        };
        FeatureValue { feature: self, raw }
    }

    /// The paper's label for the feature (matches Table II's item notation).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FlowFeature::SrcIp => "srcIP",
            FlowFeature::DstIp => "dstIP",
            FlowFeature::SrcPort => "srcPort",
            FlowFeature::DstPort => "dstPort",
            FlowFeature::Proto => "protocol",
            FlowFeature::Packets => "#packets",
            FlowFeature::Bytes => "#bytes",
            FlowFeature::SrcNet16 => "srcNet16",
            FlowFeature::DstNet16 => "dstNet16",
        }
    }
}

impl fmt::Display for FlowFeature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A concrete value of one feature, as extracted from a flow.
///
/// The `raw` key is the uniform `u64` encoding; [`FeatureValue::render`]
/// produces the human-readable form (dotted quad for IPs, plain number for
/// the rest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FeatureValue {
    /// The feature this value belongs to.
    pub feature: FlowFeature,
    /// The uniform `u64` encoding of the value.
    pub raw: u64,
}

impl FeatureValue {
    /// Construct directly from a feature and raw key.
    #[must_use]
    pub fn new(feature: FlowFeature, raw: u64) -> Self {
        FeatureValue { feature, raw }
    }

    /// Human-readable rendering: dotted quad for IP features, decimal
    /// otherwise.
    #[must_use]
    pub fn render(&self) -> String {
        match self.feature {
            FlowFeature::SrcIp | FlowFeature::DstIp => {
                // Raw keys for IP features always fit in u32 by construction.
                Ipv4Addr::from(self.raw as u32).to_string()
            }
            FlowFeature::SrcNet16 | FlowFeature::DstNet16 => {
                format!("{}/16", Ipv4Addr::from((self.raw as u32) << 16))
            }
            _ => self.raw.to_string(),
        }
    }

    /// Whether the given flow carries this value in this feature.
    #[must_use]
    pub fn matches(&self, flow: &FlowRecord) -> bool {
        self.feature.value_of(flow).raw == self.raw
    }
}

impl fmt::Display for FeatureValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.feature, self.render())
    }
}

/// Error parsing a `feature=value` string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseFeatureValueError {
    /// The string has no `=` separator.
    MissingSeparator,
    /// The feature label is not one of the known labels.
    UnknownFeature(String),
    /// The value part does not parse for the feature's type.
    BadValue(String),
}

impl fmt::Display for ParseFeatureValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseFeatureValueError::MissingSeparator => {
                write!(f, "expected feature=value (e.g. dstPort=7000)")
            }
            ParseFeatureValueError::UnknownFeature(s) => write!(
                f,
                "unknown feature {s:?} (expected one of srcIP, dstIP, srcPort, dstPort, \
                 protocol, #packets, #bytes, srcNet16, dstNet16)"
            ),
            ParseFeatureValueError::BadValue(s) => write!(f, "cannot parse value {s:?}"),
        }
    }
}

impl std::error::Error for ParseFeatureValueError {}

impl std::str::FromStr for FeatureValue {
    type Err = ParseFeatureValueError;

    /// Parse the rendered form back: `dstPort=7000`, `srcIP=10.0.0.1`,
    /// `dstNet16=10.16.0.0/16`, `#packets=3` (the `#` is optional).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (label, value) = s
            .split_once('=')
            .ok_or(ParseFeatureValueError::MissingSeparator)?;
        let label = label.trim();
        let feature = FlowFeature::EXTENDED
            .into_iter()
            .find(|f| f.label() == label || f.label().trim_start_matches('#') == label)
            .ok_or_else(|| ParseFeatureValueError::UnknownFeature(label.to_string()))?;
        let value = value.trim();
        let bad = || ParseFeatureValueError::BadValue(value.to_string());
        let raw = match feature {
            FlowFeature::SrcIp | FlowFeature::DstIp => {
                let ip: Ipv4Addr = value.parse().map_err(|_| bad())?;
                u64::from(u32::from(ip))
            }
            FlowFeature::SrcNet16 | FlowFeature::DstNet16 => {
                let base = value.strip_suffix("/16").unwrap_or(value);
                let ip: Ipv4Addr = base.parse().map_err(|_| bad())?;
                u64::from(u32::from(ip) >> 16)
            }
            _ => value.parse::<u64>().map_err(|_| bad())?,
        };
        Ok(FeatureValue::new(feature, raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::Protocol;

    fn flow() -> FlowRecord {
        FlowRecord::new(
            0,
            "192.168.1.10".parse().unwrap(),
            "10.20.30.40".parse().unwrap(),
            5555,
            80,
            Protocol::Tcp,
        )
        .with_volume(3, 120)
    }

    #[test]
    fn all_features_have_stable_indices() {
        for (i, feat) in FlowFeature::EXTENDED.iter().enumerate() {
            assert_eq!(feat.index(), i);
            assert_eq!(FlowFeature::from_index(i), *feat);
        }
        assert_eq!(&FlowFeature::EXTENDED[..7], &FlowFeature::ALL);
    }

    #[test]
    fn prefix_features_extract_and_render() {
        let f = flow();
        let v = FlowFeature::SrcNet16.value_of(&f);
        assert_eq!(
            v.raw,
            u64::from(u32::from("192.168.1.10".parse::<Ipv4Addr>().unwrap()) >> 16)
        );
        assert_eq!(v.render(), "192.168.0.0/16");
        let v = FlowFeature::DstNet16.value_of(&f);
        assert_eq!(v.to_string(), "dstNet16=10.20.0.0/16");
        assert!(v.matches(&f));
    }

    #[test]
    fn detection_features_are_the_papers_five() {
        assert_eq!(FlowFeature::DETECTION_FEATURES.len(), 5);
        assert!(!FlowFeature::DETECTION_FEATURES.contains(&FlowFeature::Proto));
        assert!(!FlowFeature::DETECTION_FEATURES.contains(&FlowFeature::Bytes));
    }

    #[test]
    fn value_extraction_matches_fields() {
        let f = flow();
        assert_eq!(FlowFeature::SrcPort.value_of(&f).raw, 5555);
        assert_eq!(FlowFeature::DstPort.value_of(&f).raw, 80);
        assert_eq!(FlowFeature::Proto.value_of(&f).raw, 6);
        assert_eq!(FlowFeature::Packets.value_of(&f).raw, 3);
        assert_eq!(FlowFeature::Bytes.value_of(&f).raw, 120);
        assert_eq!(
            FlowFeature::SrcIp.value_of(&f).raw,
            u64::from(u32::from("192.168.1.10".parse::<Ipv4Addr>().unwrap()))
        );
    }

    #[test]
    fn render_ip_as_dotted_quad() {
        let f = flow();
        let v = FlowFeature::DstIp.value_of(&f);
        assert_eq!(v.render(), "10.20.30.40");
        assert_eq!(v.to_string(), "dstIP=10.20.30.40");
    }

    #[test]
    fn render_port_as_number() {
        let f = flow();
        let v = FlowFeature::DstPort.value_of(&f);
        assert_eq!(v.to_string(), "dstPort=80");
    }

    #[test]
    fn matches_agrees_with_extraction() {
        let f = flow();
        for feat in FlowFeature::ALL {
            let v = feat.value_of(&f);
            assert!(v.matches(&f), "{v} should match its own flow");
        }
        let other = FeatureValue::new(FlowFeature::DstPort, 443);
        assert!(!other.matches(&f));
    }

    #[test]
    fn display_uses_paper_labels() {
        assert_eq!(FlowFeature::Packets.to_string(), "#packets");
        assert_eq!(FlowFeature::SrcIp.to_string(), "srcIP");
    }

    #[test]
    fn parse_round_trips_rendered_values() {
        let f = flow();
        for feat in FlowFeature::EXTENDED {
            let v = feat.value_of(&f);
            let parsed: FeatureValue = v.to_string().parse().unwrap();
            assert_eq!(parsed, v, "round trip of {v}");
        }
    }

    #[test]
    fn parse_accepts_hash_free_count_labels() {
        let v: FeatureValue = "packets=3".parse().unwrap();
        assert_eq!(v, FeatureValue::new(FlowFeature::Packets, 3));
        let v: FeatureValue = "bytes=120".parse().unwrap();
        assert_eq!(v, FeatureValue::new(FlowFeature::Bytes, 120));
    }

    #[test]
    fn parse_rejects_nonsense() {
        assert_eq!(
            "dstPort7000".parse::<FeatureValue>().unwrap_err(),
            ParseFeatureValueError::MissingSeparator
        );
        assert!(matches!(
            "dstFoo=1".parse::<FeatureValue>().unwrap_err(),
            ParseFeatureValueError::UnknownFeature(_)
        ));
        assert!(matches!(
            "srcIP=not.an.ip".parse::<FeatureValue>().unwrap_err(),
            ParseFeatureValueError::BadValue(_)
        ));
        assert!(matches!(
            "dstPort=abc".parse::<FeatureValue>().unwrap_err(),
            ParseFeatureValueError::BadValue(_)
        ));
    }

    #[test]
    fn parse_prefix_with_or_without_suffix() {
        let a: FeatureValue = "dstNet16=10.16.0.0/16".parse().unwrap();
        let b: FeatureValue = "dstNet16=10.16.9.9".parse().unwrap();
        assert_eq!(a, b, "low bits are masked away");
    }
}
