//! Exporter identity: tagging flows with the device that exported them.
//!
//! The paper's evaluation runs on SWITCH backbone traces collected from
//! **several border routers** feeding one analysis pipeline. To merge
//! those feeds, every flow must carry the identity of its exporter and
//! every exporter must declare how its clock maps onto the shared
//! measurement grid. This module defines both halves of that contract:
//!
//! - [`SourceId`] — a small integer naming one exporter (border router,
//!   collector socket, trace file);
//! - [`SourceSpec`] — the exporter's grid binding: its id plus the
//!   origin of its local clock, so exporters whose clocks disagree by a
//!   fixed skew still land on the same interval index;
//! - [`SourcedFlow`] — a flow record tagged with its exporter, the unit
//!   the multi-source merge layer ([`crate::merge`]) consumes.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::flow::FlowRecord;

/// Identity of one flow exporter (a border router, collector socket, or
/// replayed trace file). Ids are dense small integers assigned by the
/// operator; the merge layer keys its per-source state on them.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct SourceId(pub u32);

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "src{}", self.0)
    }
}

impl From<u32> for SourceId {
    fn from(n: u32) -> Self {
        SourceId(n)
    }
}

/// One exporter's binding onto the shared interval grid.
///
/// `origin_ms` is the exporter-local timestamp that corresponds to grid
/// interval 0: a flow the exporter dates `t` belongs to grid interval
/// `(t - origin_ms) / Δ`. Exporters need not agree on wall clock — a
/// router whose clock runs 250 ms ahead simply declares an origin 250 ms
/// larger, and its flows land on the same grid as everyone else's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SourceSpec {
    /// The exporter's identity.
    pub id: SourceId,
    /// Exporter-local time of grid interval 0, ms.
    pub origin_ms: u64,
}

impl SourceSpec {
    /// A spec for exporter `id` whose local clock origin is `origin_ms`.
    #[must_use]
    pub fn new(id: impl Into<SourceId>, origin_ms: u64) -> Self {
        SourceSpec {
            id: id.into(),
            origin_ms,
        }
    }
}

/// A flow record tagged with the exporter that emitted it — the unit of
/// ingestion in multi-source operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SourcedFlow {
    /// The exporter this flow came from.
    pub source: SourceId,
    /// The flow record, timestamped in the exporter's local clock.
    pub flow: FlowRecord,
}

impl SourcedFlow {
    /// Tag `flow` as coming from `source`.
    #[must_use]
    pub fn new(source: impl Into<SourceId>, flow: FlowRecord) -> Self {
        SourcedFlow {
            source: source.into(),
            flow,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::Protocol;
    use std::net::Ipv4Addr;

    #[test]
    fn source_id_displays_compactly() {
        assert_eq!(SourceId(3).to_string(), "src3");
        assert_eq!(SourceId::from(7u32), SourceId(7));
    }

    #[test]
    fn sourced_flow_carries_both_halves() {
        let f = FlowRecord::new(
            10,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1,
            2,
            Protocol::Udp,
        );
        let sf = SourcedFlow::new(2u32, f);
        assert_eq!(sf.source, SourceId(2));
        assert_eq!(sf.flow, f);
    }

    #[test]
    fn spec_construction() {
        let s = SourceSpec::new(1u32, 250);
        assert_eq!(s.id, SourceId(1));
        assert_eq!(s.origin_ms, 250);
    }
}
