//! Property-based tests for the flow substrate.

use std::net::Ipv4Addr;

use anomex_netflow::v5::{decode_datagram, encode_datagram, V5Collector, V5Exporter};
use anomex_netflow::{FlowFeature, FlowRecord, FlowTrace, IntervalAssembler, Protocol, TcpFlags};
use proptest::prelude::*;

fn arb_flow() -> impl Strategy<Value = FlowRecord> {
    (
        0u64..10_000_000,
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        any::<u8>(),
        1u32..100_000,
        1u32..100_000_000,
        any::<u8>(),
        0u64..60_000,
    )
        .prop_map(
            |(start, src, dst, sport, dport, proto, pkts, bytes, flags, dur)| FlowRecord {
                start_ms: start,
                end_ms: start + dur,
                src_ip: Ipv4Addr::from(src),
                dst_ip: Ipv4Addr::from(dst),
                src_port: sport,
                dst_port: dport,
                proto: Protocol::from_number(proto),
                packets: pkts,
                bytes,
                tcp_flags: TcpFlags(flags),
            },
        )
}

proptest! {
    /// Encoding then decoding a datagram preserves every modeled field.
    /// Note: v5 timestamps are u32 ms, so we constrain start times above.
    #[test]
    fn v5_round_trip(flows in proptest::collection::vec(arb_flow(), 0..=30)) {
        let bytes = encode_datagram(&flows, 42, 7).unwrap();
        let dgram = decode_datagram(&bytes).unwrap();
        prop_assert_eq!(dgram.flows, flows);
    }

    /// Decoding arbitrary bytes never panics — it either parses or errors.
    #[test]
    fn v5_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = decode_datagram(&data);
    }

    /// Exporter → collector is lossless for arbitrary flow streams.
    #[test]
    fn export_collect_lossless(flows in proptest::collection::vec(arb_flow(), 0..200)) {
        let mut exporter = V5Exporter::new();
        let mut collector = V5Collector::new();
        for dgram in exporter.export(&flows) {
            collector.ingest(&dgram).unwrap();
        }
        prop_assert_eq!(collector.lost_flows(), 0);
        prop_assert_eq!(collector.into_flows(), flows);
    }

    /// Interval slicing partitions the trace: every flow appears in exactly
    /// one interval and the interval windows tile the time axis.
    #[test]
    fn intervals_partition(
        flows in proptest::collection::vec(arb_flow(), 1..300),
        interval_ms in 1u64..100_000,
    ) {
        let n = flows.len();
        let mut trace = FlowTrace::from_flows(flows);
        let ivs = trace.intervals(0, interval_ms);
        let total: usize = ivs.iter().map(|iv| iv.flows.len()).sum();
        prop_assert_eq!(total, n);
        for (i, iv) in ivs.iter().enumerate() {
            prop_assert_eq!(iv.index, i as u64);
            prop_assert_eq!(iv.end_ms - iv.begin_ms, interval_ms);
            for f in iv.flows {
                prop_assert!(f.start_ms >= iv.begin_ms && f.start_ms < iv.end_ms);
            }
        }
    }

    /// Streaming assembly of a time-sorted flow stream produces the same
    /// interval contents as batch slicing.
    #[test]
    fn streaming_equals_batch(
        flows in proptest::collection::vec(arb_flow(), 1..300),
        interval_ms in 1u64..100_000,
    ) {
        let mut sorted = flows;
        sorted.sort_by_key(|f| f.start_ms);

        let mut trace = FlowTrace::from_flows(sorted.clone());
        let batch: Vec<usize> = trace.intervals(0, interval_ms).iter().map(|iv| iv.flows.len()).collect();

        let mut asm = IntervalAssembler::new(0, interval_ms);
        let mut streamed = Vec::new();
        for f in sorted {
            for c in asm.push(f) {
                streamed.push(c.flows.len());
            }
        }
        if let Some(c) = asm.flush() {
            streamed.push(c.flows.len());
        }
        prop_assert_eq!(asm.late_flows(), 0);
        prop_assert_eq!(streamed, batch);
    }

    /// Feature extraction is total and the rendered value parses back for
    /// port/count features.
    #[test]
    fn feature_values_render(flow in arb_flow()) {
        for feat in FlowFeature::ALL {
            let v = feat.value_of(&flow);
            prop_assert!(v.matches(&flow));
            let s = v.render();
            match feat {
                FlowFeature::SrcIp | FlowFeature::DstIp => {
                    let ip: Ipv4Addr = s.parse().unwrap();
                    prop_assert_eq!(u64::from(u32::from(ip)), v.raw);
                }
                _ => {
                    prop_assert_eq!(s.parse::<u64>().unwrap(), v.raw);
                }
            }
        }
    }
}
