//! `anomex` — command-line anomaly extraction.
//!
//! ```text
//! anomex generate --out trace.nfv5 [--seed 42] [--scale 0.25] [--scenario small|two-weeks]
//! anomex extract  --in trace.nfv5 [--interval-min 15] [--training 48] [--support 50]
//!                 [--miner apriori|fpgrowth|eclat] [--prefixes] [--intersection]
//! anomex stream   --in trace.nfv5|- [--interval-min 15] [--training 48] [--support 50]
//!                 [--miner apriori|fpgrowth|eclat] [--threads N] [--verbose]
//!                 [--checkpoint-dir DIR] [--checkpoint-every N] [--resume] [--stop-after N]
//! anomex analyze  --in trace.nfv5 --metadata "dstPort=7000,#packets=12" [--support 50]
//!                 [--top N] [--prefixes] [--intersection]
//! anomex table2   [--scale 1.0]
//! anomex help
//! ```
//!
//! Traces are concatenated NetFlow v5 datagrams — the same bytes a 2007
//! router would export — so `generate` output is also a fixture for any
//! other NetFlow tool.

mod args;
mod commands;

use std::process::ExitCode;

use args::Args;

fn main() -> ExitCode {
    let parsed = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::USAGE);
            return ExitCode::FAILURE;
        }
    };
    let result = match parsed.command.as_str() {
        "generate" => commands::generate(&parsed),
        "extract" => commands::extract(&parsed),
        "stream" => commands::stream(&parsed),
        "analyze" => commands::analyze(&parsed),
        "table2" => commands::table2(&parsed),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", commands::USAGE)),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
