//! Minimal dependency-free argument parsing for the `anomex` CLI.

use std::collections::HashMap;

/// Parsed command line: subcommand + `--key value` options. An option
/// may repeat (`--in a.bin --in b.bin`); [`get`](Args::get) reads the
/// last occurrence and [`get_all`](Args::get_all) reads them all, in
/// order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    options: HashMap<String, Vec<String>>,
    flags: Vec<String>,
}

/// Error while interpreting the command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// No subcommand given.
    NoCommand,
    /// `--key` given without a value (and not a known boolean flag).
    MissingValue(String),
    /// A positional argument appeared after the subcommand.
    UnexpectedPositional(String),
    /// An option's value failed to parse.
    BadValue {
        /// The option name.
        key: String,
        /// The raw value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
}

impl std::fmt::Display for ArgsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgsError::NoCommand => write!(f, "no command given; try `anomex help`"),
            ArgsError::MissingValue(k) => write!(f, "option --{k} needs a value"),
            ArgsError::UnexpectedPositional(p) => {
                write!(f, "unexpected argument {p:?}; options start with --")
            }
            ArgsError::BadValue {
                key,
                value,
                expected,
            } => {
                write!(f, "--{key} {value:?}: expected {expected}")
            }
        }
    }
}

impl std::error::Error for ArgsError {}

/// Boolean flags that take no value.
const BOOL_FLAGS: [&str; 8] = [
    "prefixes",
    "intersection",
    "verbose",
    "top",
    "rules",
    "rare",
    "force-rare",
    "resume",
];

impl Args {
    /// Parse an iterator of arguments (excluding the program name).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, ArgsError> {
        let mut iter = args.into_iter().peekable();
        let command = iter.next().ok_or(ArgsError::NoCommand)?;
        if command.starts_with("--") {
            return Err(ArgsError::NoCommand);
        }
        let mut options = HashMap::new();
        let mut flags = Vec::new();
        while let Some(arg) = iter.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(ArgsError::UnexpectedPositional(arg));
            };
            if BOOL_FLAGS.contains(&key) {
                flags.push(key.to_string());
                continue;
            }
            let value = iter
                .next()
                .ok_or_else(|| ArgsError::MissingValue(key.to_string()))?;
            options
                .entry(key.to_string())
                .or_insert_with(Vec::new)
                .push(value);
        }
        Ok(Args {
            command,
            options,
            flags,
        })
    }

    /// A string option (the last occurrence, when repeated).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options
            .get(key)
            .and_then(|v| v.last())
            .map(String::as_str)
    }

    /// Every occurrence of a repeatable option, in command-line order
    /// (empty when the option was not given).
    #[must_use]
    pub fn get_all(&self, key: &str) -> &[String] {
        self.options.get(key).map_or(&[], Vec::as_slice)
    }

    /// A required string option with error text.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// A typed option with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgsError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgsError::BadValue {
                key: key.to_string(),
                value: v.to_string(),
                expected: std::any::type_name::<T>(),
            }),
        }
    }

    /// Whether a boolean flag was given.
    #[must_use]
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Result<Args, ArgsError> {
        Args::parse(s.iter().map(ToString::to_string))
    }

    #[test]
    fn parses_command_and_options() {
        let a = parse(&["generate", "--seed", "42", "--out", "x.nfv5", "--prefixes"]).unwrap();
        assert_eq!(a.command, "generate");
        assert_eq!(a.get("seed"), Some("42"));
        assert_eq!(a.get("out"), Some("x.nfv5"));
        assert!(a.flag("prefixes"));
        assert!(!a.flag("intersection"));
    }

    #[test]
    fn typed_defaults() {
        let a = parse(&["extract", "--support", "500"]).unwrap();
        assert_eq!(a.get_or("support", 100u64).unwrap(), 500);
        assert_eq!(a.get_or("scale", 0.25f64).unwrap(), 0.25);
        assert!(a.get_or::<u64>("support", 1).is_ok());
    }

    #[test]
    fn errors_are_specific() {
        assert_eq!(parse(&[]).unwrap_err(), ArgsError::NoCommand);
        assert_eq!(
            parse(&["x", "--seed"]).unwrap_err(),
            ArgsError::MissingValue("seed".into())
        );
        assert_eq!(
            parse(&["x", "stray"]).unwrap_err(),
            ArgsError::UnexpectedPositional("stray".into())
        );
        let a = parse(&["x", "--support", "abc"]).unwrap();
        assert!(a.get_or("support", 1u64).is_err());
    }

    #[test]
    fn require_reports_the_key() {
        let a = parse(&["x"]).unwrap();
        assert!(a.require("in").unwrap_err().contains("--in"));
    }

    #[test]
    fn resume_is_a_bool_flag() {
        let a = parse(&["stream", "--resume", "--checkpoint-dir", "ck"]).unwrap();
        assert!(a.flag("resume"));
        assert_eq!(a.get("checkpoint-dir"), Some("ck"));
    }

    #[test]
    fn repeated_options_accumulate_in_order() {
        let a = parse(&["stream", "--in", "a.bin", "--in", "b.bin", "--in", "c.bin"]).unwrap();
        assert_eq!(a.get_all("in"), ["a.bin", "b.bin", "c.bin"]);
        assert_eq!(a.get("in"), Some("c.bin"), "get reads the last");
        assert!(a.get_all("out").is_empty(), "absent option is empty");
    }
}
